//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of criterion's API its bench targets use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros (both positional and `name = ..; config = ..; targets = ..`
//! forms).
//!
//! Measurement is intentionally simple: each benchmark is warmed up
//! once, then timed over a fixed iteration budget derived from
//! `sample_size`, reporting mean wall-clock time per iteration. The
//! point is honest relative numbers and compiling bench targets without
//! the real crate, not criterion's statistical machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Completed measurements, collected for the optional JSON report.
static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// One completed benchmark measurement.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Full benchmark id (`group/name` or plain name).
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub per_iter_ns: f64,
    /// Timed iterations behind the mean.
    pub iters: u64,
}

/// Writes every measurement recorded so far as a JSON document to the
/// path in the `BENCH_JSON` environment variable; a no-op when the
/// variable is unset. Called by [`criterion_main!`] after all groups
/// finish, so `BENCH_JSON=out.json cargo bench` leaves a machine-
/// readable report next to the human-readable stdout lines.
pub fn write_json_report() {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    let results = RESULTS.lock().unwrap_or_else(|e| e.into_inner());
    let mut out = String::from("{\n\"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let name = r.name.replace('\\', "\\\\").replace('"', "\\\"");
        out.push_str(&format!(
            "{{\"name\": \"{name}\", \"per_iter_ns\": {:.1}, \"iters\": {}}}",
            r.per_iter_ns, r.iters
        ));
    }
    out.push_str("\n]\n}\n");
    match std::fs::write(&path, out) {
        Ok(()) => println!("bench: wrote {} results -> {path}", results.len()),
        Err(e) => eprintln!("bench: failed to write {path}: {e}"),
    }
}

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterised benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `label/parameter` id.
    pub fn new<P: Display>(label: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{label}/{parameter}"),
        }
    }

    /// Id carrying only the parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the configured iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (also primes caches / lazy statics).
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_secs_f64() * 1e9;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[derive(Clone, Copy, Debug)]
struct Settings {
    sample_size: usize,
    #[allow(dead_code)]
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Settings {
        Settings {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        }
    }
}

fn run_one(name: &str, settings: Settings, f: &mut dyn FnMut(&mut Bencher)) {
    // Iteration budget: a handful of timed iterations per sample-size
    // unit keeps `cargo bench` runs bounded offline.
    let iters = settings.sample_size.max(1) as u64;
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if b.elapsed.is_zero() {
        Duration::ZERO
    } else {
        b.elapsed / (iters as u32)
    };
    println!(
        "bench: {name:<48} {:>12}/iter  ({iters} iters)",
        human(per_iter)
    );
    RESULTS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(BenchResult {
            name: name.to_string(),
            per_iter_ns: per_iter.as_secs_f64() * 1e9,
            iters,
        });
}

/// Top-level benchmark driver (subset of the real `Criterion`).
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Sets the target measurement time (recorded; the offline stub uses
    /// the iteration budget from `sample_size` instead).
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.settings.measurement_time = t;
        self
    }

    /// Sets the per-benchmark sample count.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.settings.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<N: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Criterion {
        run_one(&name.to_string(), self.settings, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<N: Display>(&mut self, name: N) -> BenchmarkGroup<'_> {
        let settings = self.settings;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            settings,
        }
    }
}

/// Group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Sets the group's target measurement time.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.settings.measurement_time = t;
        self
    }

    /// Sets the group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n;
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<N: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.settings, &mut f);
        self
    }

    /// Runs a parameterised benchmark inside the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.settings, &mut |b| f(b, input));
        self
    }

    /// Finishes the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Declares a benchmark group: either `criterion_group!(name, fn, ...)`
/// or the struct form with `name = ..; config = ..; targets = ..`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group and then
/// writing the `BENCH_JSON` report (if requested via the environment).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_square(c: &mut Criterion) {
        c.bench_function("square", |b| b.iter(|| black_box(3u64).pow(2)));
        let mut g = c.benchmark_group("grouped");
        g.measurement_time(Duration::from_millis(10)).sample_size(5);
        for n in [4usize, 8] {
            g.bench_with_input(BenchmarkId::new("sum", n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<usize>())
            });
        }
        g.bench_function(format!("named_{}", 1), |b| b.iter(|| 1 + 1));
        g.finish();
    }

    criterion_group!(positional, bench_square);
    criterion_group! {
        name = structured;
        config = Criterion::default().measurement_time(Duration::from_millis(5)).sample_size(3);
        targets = bench_square, bench_square
    }

    #[test]
    fn both_group_forms_run() {
        positional();
        structured();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("ranks", 4).to_string(), "ranks/4");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn results_are_collected_for_the_json_report() {
        let before = RESULTS.lock().unwrap_or_else(|e| e.into_inner()).len();
        Criterion::default()
            .sample_size(3)
            .bench_function("collected", |b| b.iter(|| black_box(2u64) * 2));
        let results = RESULTS.lock().unwrap_or_else(|e| e.into_inner());
        assert!(results.len() > before);
        let r = results
            .iter()
            .rev()
            .find(|r| r.name == "collected")
            .unwrap();
        assert_eq!(r.iters, 3);
        assert!(r.per_iter_ns >= 0.0);
    }
}
