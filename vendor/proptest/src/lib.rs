//! Offline drop-in subset of the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `proptest`'s API its test suites actually use:
//!
//! - the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//!   `prop_filter` combinators;
//! - strategies for integer / float ranges, tuples (up to 6),
//!   [`Just`], and `prop::collection::vec`;
//! - the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//!   plus `prop_assert!` / `prop_assert_eq!`;
//! - [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate: no shrinking (a failing case panics
//! with the assertion message directly), and generation is driven by the
//! workspace's deterministic xoshiro256++ [`rand::rngs::StdRng`], so a
//! failing property reproduces across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Test-harness configuration (subset of the real `ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
    /// Maximum draw rejections (filter misses) tolerated per strategy
    /// before the harness gives up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

impl ProptestConfig {
    /// Config requiring `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Random source handed to strategies (wraps the deterministic
/// workspace [`StdRng`]).
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Deterministic generator for a named test.
    pub fn for_test(name: &str) -> TestRng {
        // FNV-1a over the test name gives each property its own stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(h),
        }
    }

    /// Access to the underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply draws a fresh value per case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to pick a dependent strategy.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects values failing `pred`; retries up to an internal cap.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..4096 {
            let v = self.inner.new_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("proptest filter '{}' rejected too many values", self.whence);
    }
}

/// Strategy producing a clone of a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(*self.start()..*self.end())
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// `prop::collection` — container strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Accepted size arguments for [`vec`].
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.rng().gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.rng().gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S, R> {
        elem: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.new_value(rng)).collect()
        }
    }

    /// Vector strategy: each element drawn from `elem`, length from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(elem: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { elem, size }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };

    /// Module-path mirror so `prop::collection::vec` resolves through the
    /// prelude glob, as it does with the real crate.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property, reporting the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!("proptest case failed: {}", format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "{} == {} failed: {:?} vs {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "{} != {} failed: both {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    let strat = ($(&$strat,)+);
                    let ($($arg,)+) = $crate::Strategy::new_value(&strat, &mut rng);
                    let run = || -> () { $body };
                    let _ = case;
                    run();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u64, usize)> {
        (0u64..100, 1usize..=4)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in 0u64..1000, b in -2i64..=2, f in -1.5f64..2.5) {
            prop_assert!(a < 1000);
            prop_assert!((-2..=2).contains(&b));
            prop_assert!((-1.5..2.5).contains(&f));
        }

        #[test]
        fn tuple_patterns_bind((a, b) in arb_pair()) {
            prop_assert!(a < 100 && (1..=4).contains(&b));
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0u32..10, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn flat_map_dependent(xs in (1usize..=6).prop_flat_map(|n| prop::collection::vec(0.0f64..1.0, n))) {
            prop_assert!(!xs.is_empty() && xs.len() <= 6);
        }

        #[test]
        fn filter_and_map(v in (0u32..100).prop_filter("even", |x| x % 2 == 0).prop_map(|x| x + 1)) {
            prop_assert!(v % 2 == 1);
        }

        #[test]
        fn just_clones(v in Just(vec![1, 2, 3])) {
            prop_assert_eq!(v, vec![1, 2, 3]);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0usize..10) {
            prop_assert!(x < 10);
        }
    }
}
