//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *small* slice of `rand`'s API it actually uses:
//!
//! - [`RngCore`] / [`Rng`] / [`SeedableRng`] traits;
//! - [`rngs::StdRng`], implemented as xoshiro256++ seeded through
//!   SplitMix64 (`seed_from_u64`'s documented expansion scheme);
//! - `Rng::gen::<T>()` for the primitive types the kernels sample, and
//!   `Rng::gen_range` over integer/float ranges.
//!
//! Determinism contract: for a fixed seed the generated stream is stable
//! across platforms and releases of this workspace — checkpoint/resume
//! and the chaos fault plans rely on that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an [`RngCore`] (the `Standard`
/// distribution of real `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "gen_range: empty range");
                let span = (e as i128 - s as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (s as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every bit source.
pub trait Rng: RngCore {
    /// Uniform draw of a primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
    /// Bernoulli draw.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step — the standard expander for xoshiro seeding.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// (Real `rand 0.8` uses ChaCha12 here; the algorithms in this
    /// workspace only require determinism and reasonable equidistribution,
    /// which xoshiro256++ provides at a fraction of the code.)
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Exposes the raw state (used by checkpointing to make random
        /// streams resumable).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> StdRng {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is invalid for xoshiro; SplitMix64 cannot
            // produce four zeros from any seed, but keep a guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// `thread_rng` stand-in: a fresh generator seeded from the system clock
/// and a per-thread counter. Only for non-reproducible convenience paths.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5eed);
    SeedableRng::seed_from_u64(nanos ^ (std::process::id() as u64) << 32)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f64_unit_interval_and_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-2i64..=2);
            assert!((-2..=2).contains(&w));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(11);
        for _ in 0..10 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn dyn_rng_core_usable() {
        let mut rng = StdRng::seed_from_u64(3);
        let dynref: &mut dyn RngCore = &mut rng;
        let x: f64 = dynref.gen();
        assert!((0.0..1.0).contains(&x));
    }
}
