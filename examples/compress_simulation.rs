//! Compressing scientific-simulation data (the paper's §4.2 scenario).
//!
//! ```sh
//! cargo run --release --example compress_simulation
//! ```
//!
//! Generates the Miranda-like fluid-flow field, then compares STHOSVD and
//! rank-adaptive HOSI-DT at the paper's three tolerances, reporting
//! time-to-tolerance, achieved error, and compression ratio — the
//! trade-off a simulation group would actually evaluate before adopting a
//! compressor.

use ra_hooi::datasets::{miranda_like, TOLERANCES, TOLERANCE_LABELS};
use ra_hooi::prelude::*;
use std::time::Instant;

fn main() {
    let spec = miranda_like(5); // 80^3 single-precision field
    println!("generating {} …", spec.name);
    let x = spec.build::<f32>();
    let gb = (x.num_entries() * 4) as f64 / 1e9;
    println!("tensor {:?} ({:.3} GB in f32)\n", x.shape().dims(), gb);

    println!(
        "{:<6} {:>10} {:>12} {:>10} {:>12} {:>10} {:>9}",
        "eps", "algorithm", "time (s)", "error", "ranks", "compress", "speedup"
    );

    for (&eps, label) in TOLERANCES.iter().zip(TOLERANCE_LABELS) {
        // Baseline: STHOSVD with the error-specified truncation rule.
        let t0 = Instant::now();
        let st = sthosvd(&x, &SthosvdTruncation::RelError(eps));
        let st_time = t0.elapsed().as_secs_f64();
        println!(
            "{:<6} {:>10} {:>12.3} {:>10.4} {:>12} {:>9.0}x {:>9}",
            format!("{eps}"),
            "STHOSVD",
            st_time,
            st.rel_error,
            format!("{:?}", st.tucker.ranks()),
            st.tucker.compression_ratio(),
            "1.0x"
        );

        // Rank-adaptive HOSI-DT, starting from a 25% overestimate of
        // STHOSVD's ranks (the paper's fastest configuration).
        let start: Vec<usize> = st
            .tucker
            .ranks()
            .iter()
            .zip(x.shape().dims())
            .map(|(&r, &n)| ((r as f64 * 1.25).ceil() as usize).min(n))
            .collect();
        let cfg = RaConfig::ra_hosi_dt(eps, &start)
            .with_seed(3)
            .stopping_on_threshold();
        let t0 = Instant::now();
        let ra = ra_hooi(&x, &cfg);
        let ra_time = t0.elapsed().as_secs_f64();
        println!(
            "{:<6} {:>10} {:>12.3} {:>10.4} {:>12} {:>9.0}x {:>8.1}x",
            format!("({label})"),
            "RA-HOSI-DT",
            ra_time,
            ra.rel_error,
            format!("{:?}", ra.tucker.ranks()),
            ra.tucker.compression_ratio(),
            st_time / ra_time
        );
        assert!(ra.rel_error <= eps, "tolerance violated");
    }

    println!("\nThe high-compression rows are where the paper reports its 82x-156x");
    println!("Miranda speedups; the advantage shrinks as eps tightens because the");
    println!("ranks (and hence HOOI's r-dependent costs) grow.");
}
