//! How starting ranks shape the rank-adaptive loop (paper §4.2, Fig. 4).
//!
//! ```sh
//! cargo run --release --example rank_adaptive_exploration
//! ```
//!
//! Runs RA-HOSI-DT on the HCCI-like combustion field from perfect,
//! overshot, and undershot starting ranks and prints the per-iteration
//! trajectory of (ranks, error, relative size) — the behaviour the paper
//! summarizes as: overshoot converges in one sweep and truncates; a
//! perfect start converges in one or two; an undershoot must grow ranks
//! until an overestimate is discovered, then converges in one more sweep.

use ra_hooi::datasets::hcci_like;
use ra_hooi::prelude::*;

fn main() {
    let spec = hcci_like(3); // 36x36x33x24, double precision
    println!("generating {} …", spec.name);
    let x = spec.build::<f64>();
    let eps = 0.05;

    // The "perfect" ranks are STHOSVD's output at the same tolerance.
    let st = sthosvd(&x, &SthosvdTruncation::RelError(eps));
    let perfect = st.tucker.ranks();
    println!(
        "STHOSVD at eps={eps}: ranks {perfect:?}, error {:.4}, rel size {:.4}\n",
        st.rel_error,
        st.tucker.relative_size()
    );

    let dims = x.shape().dims().to_vec();
    let starts: [(&str, Vec<usize>); 3] = [
        ("perfect", perfect.clone()),
        (
            "over (+25%)",
            perfect
                .iter()
                .zip(&dims)
                .map(|(&r, &n)| ((r as f64 * 1.25).ceil() as usize).min(n))
                .collect(),
        ),
        (
            "under (-25%)",
            perfect
                .iter()
                .map(|&r| ((r as f64 * 0.75).floor() as usize).max(1))
                .collect(),
        ),
    ];

    for (label, start) in starts {
        println!("--- start = {label}: {start:?} ---");
        let cfg = RaConfig::ra_hosi_dt(eps, &start)
            .with_seed(11)
            .with_max_iters(3);
        let res = ra_hooi(&x, &cfg);
        for (k, it) in res.iterations.iter().enumerate() {
            println!(
                "  sweep {}: {:?} -> {:?}  err {:.4}  size {:.4}  {}",
                k + 1,
                it.ranks_in,
                it.ranks_out,
                it.rel_error,
                it.relative_size,
                if it.truncated {
                    "TRUNCATED"
                } else if it.met_threshold {
                    "met"
                } else {
                    "grow"
                },
            );
        }
        println!(
            "  final: ranks {:?}, error {:.4}, rel size {:.4} (STHOSVD {:.4})\n",
            res.tucker.ranks(),
            res.rel_error,
            res.tucker.relative_size(),
            st.tucker.relative_size()
        );
    }
    println!("Note how the core-analysis step can shift rank across modes to beat");
    println!("STHOSVD's greedy per-mode truncation on total size (§5).");
}
