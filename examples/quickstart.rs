//! Quickstart: compress a low-rank-plus-noise tensor three ways.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a synthetic 3-way tensor with known Tucker ranks, then:
//! 1. recovers it with fixed-rank HOSI-DT (the paper's fastest variant),
//! 2. compresses it to a 5% error budget with STHOSVD (the baseline),
//! 3. does the same with rank-adaptive HOSI-DT, letting it pick ranks.

use ra_hooi::prelude::*;

fn main() {
    // A 64x64x64 tensor that is (ranks 6,6,6) + 1% noise.
    let spec = SyntheticSpec::new(&[64, 64, 64], &[6, 6, 6], 0.01, 42);
    let x = spec.build::<f32>();
    println!(
        "input: {:?} ({} entries)",
        x.shape().dims(),
        x.num_entries()
    );

    // --- 1. fixed-rank HOOI with dimension trees + subspace iteration ---
    let cfg = HooiConfig::hosi_dt().with_max_iters(2).with_seed(1);
    let res = hooi(&x, &[6, 6, 6], &cfg);
    println!(
        "\nHOSI-DT, ranks [6,6,6]: rel error {:.4} in {} sweeps ({:.3}s: {})",
        res.rel_error(),
        res.sweeps.len(),
        res.timings.total_secs(),
        res.timings.summary(),
    );

    // --- 2. error-specified STHOSVD ---
    let st = sthosvd(&x, &SthosvdTruncation::RelError(0.05));
    println!(
        "\nSTHOSVD, eps=0.05: ranks {:?}, rel error {:.4}, compression {:.0}x",
        st.tucker.ranks(),
        st.rel_error,
        st.tucker.compression_ratio(),
    );

    // --- 3. rank-adaptive HOSI-DT from a deliberately wrong start ---
    let cfg = RaConfig::ra_hosi_dt(0.05, &[3, 3, 3]) // undershoot on purpose
        .with_alpha(2.0)
        .with_seed(1);
    let ra = ra_hooi(&x, &cfg);
    println!(
        "\nRA-HOSI-DT, eps=0.05 from ranks [3,3,3]: final ranks {:?}, rel error {:.4}, compression {:.0}x",
        ra.tucker.ranks(),
        ra.rel_error,
        ra.tucker.compression_ratio(),
    );
    for (k, it) in ra.iterations.iter().enumerate() {
        println!(
            "  sweep {}: ranks {:?} -> {:?}, error {:.4}, size {:.4}, met={}",
            k + 1,
            it.ranks_in,
            it.ranks_out,
            it.rel_error,
            it.relative_size,
            it.met_threshold
        );
    }

    // Verify against an explicit reconstruction.
    let direct = ra.tucker.reconstruct().rel_error(&x);
    println!(
        "\nreconstruction check: direct error {direct:.4} (reported {:.4})",
        ra.rel_error
    );
    assert!(ra.rel_error <= 0.05);
}
