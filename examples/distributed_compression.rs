//! Distributed Tucker compression on the message-passing runtime.
//!
//! ```sh
//! cargo run --release --example distributed_compression
//! ```
//!
//! Launches an 8-rank universe, distributes a 4-way tensor over a 2x2x2x1
//! processor grid, and runs distributed STHOSVD and distributed
//! rank-adaptive HOSI-DT — the same collective code paths a real MPI
//! deployment would execute — then verifies both against the sequential
//! implementations and reports the communication volume per algorithm.

use ra_hooi::dist::DistTensor;
use ra_hooi::mpi::{CartGrid, Universe};
use ra_hooi::prelude::*;
use ra_hooi::tucker::dist::{dist_ra_hooi, dist_sthosvd};

fn main() {
    let dims = [32usize, 32, 32, 16];
    let spec = SyntheticSpec::new(&dims, &[5, 5, 5, 4], 0.01, 77);
    let grid_dims = [2usize, 2, 2, 1];
    let eps = 0.05;

    println!("distributing a {dims:?} tensor over a {grid_dims:?} grid (8 ranks)…\n");

    // --- distributed STHOSVD ---
    let u = Universe::new(8);
    let s = spec.clone();
    let results = u.run(|c| {
        let grid = CartGrid::new(c, &grid_dims);
        let x_full = s.build::<f32>();
        let x = DistTensor::scatter_from_replicated(&grid, &x_full);
        let res = dist_sthosvd(&grid, &x, &SthosvdTruncation::RelError(eps));
        (res.rel_error, res.tucker.ranks())
    });
    let st_bytes = u.traffic().snapshot().0;
    let (st_err, st_ranks) = &results[0];
    println!(
        "dist STHOSVD:    error {st_err:.4}, ranks {st_ranks:?}, traffic {:.2} MB",
        st_bytes as f64 / 1e6
    );

    // --- distributed rank-adaptive HOSI-DT ---
    let u = Universe::new(8);
    let s = spec.clone();
    let cfg = RaConfig::ra_hosi_dt(eps, &[6, 6, 6, 5])
        .with_seed(2)
        .stopping_on_threshold();
    let cfg2 = cfg.clone();
    let results = u.run(move |c| {
        let grid = CartGrid::new(c, &grid_dims);
        let x_full = s.build::<f32>();
        let x = DistTensor::scatter_from_replicated(&grid, &x_full);
        let res = dist_ra_hooi(&grid, &x, &cfg2);
        (res.rel_error, res.tucker.ranks())
    });
    let ra_bytes = u.traffic().snapshot().0;
    let (ra_err, ra_ranks) = &results[0];
    println!(
        "dist RA-HOSI-DT: error {ra_err:.4}, ranks {ra_ranks:?}, traffic {:.2} MB",
        ra_bytes as f64 / 1e6
    );

    // --- verify against the sequential implementations ---
    let x = spec.build::<f32>();
    let st_seq = sthosvd(&x, &SthosvdTruncation::RelError(eps));
    let ra_seq = ra_hooi(&x, &cfg);
    println!(
        "\nsequential STHOSVD error {:.4} (dist {:.4})",
        st_seq.rel_error, st_err
    );
    println!(
        "sequential RA error      {:.4} (dist {:.4})",
        ra_seq.rel_error, ra_err
    );
    // f32 accumulations over ~half a million elements take different
    // summation orders on the distributed reduce tree vs the sequential
    // path, so the rel_errors agree to ~1e-3 of their magnitude, not bitwise.
    assert!((st_seq.rel_error - st_err).abs() < 1e-4);
    assert!(ra_err <= &eps);
    println!("\ndistributed and sequential agree; both meet eps = {eps}.");
}
