//! Partial decompression: the introduction's motivating use case.
//!
//! ```sh
//! cargo run --release --example partial_decompression
//! ```
//!
//! "The Tucker format has an advantage that subtensors can be efficiently
//! decompressed without reconstructing the full tensor, which allows for
//! fast visualization of particular time steps, spatial regions, or
//! quantities of interest." This example compresses an HCCI-like
//! combustion field once, then pulls out (a) a single time step, (b) one
//! physical variable over all space/time, and (c) a small spatial window,
//! comparing the flop cost of each against a full reconstruction.

use ra_hooi::datasets::hcci_like;
use ra_hooi::prelude::*;
use ra_hooi::tensor::flops;

fn main() {
    let spec = hcci_like(3); // 36x36x33x24, double precision
    println!("generating {} …", spec.name);
    let x = spec.build::<f64>();
    let dims = x.shape().dims().to_vec();
    println!("field: {:?} = (x, y, variable, time)\n", dims);

    // Compress once to 5% with rank-adaptive HOSI-DT.
    let cfg = RaConfig::ra_hosi_dt(0.05, &[10, 10, 12, 8])
        .with_seed(1)
        .stopping_on_threshold();
    let ra = ra_hooi(&x, &cfg);
    println!(
        "compressed to ranks {:?} ({:.0}x, rel error {:.4})\n",
        ra.tucker.ranks(),
        ra.tucker.compression_ratio(),
        ra.rel_error
    );

    let (_, full_flops) = flops::measure(|| ra.tucker.reconstruct());
    println!("full reconstruction: {full_flops} flops (reference)");

    // (a) one time step.
    let ((), step_flops) = flops::measure(|| {
        let _ = ra.tucker.reconstruct_slice(3, dims[3] / 2);
    });
    println!(
        "one time step:       {step_flops} flops  ({:.1}x cheaper)",
        full_flops as f64 / step_flops as f64
    );

    // (b) one physical variable across all space and time.
    let ((), var_flops) = flops::measure(|| {
        let _ = ra.tucker.reconstruct_slice(2, 0);
    });
    println!(
        "one variable:        {var_flops} flops  ({:.1}x cheaper)",
        full_flops as f64 / var_flops as f64
    );

    // (c) an 8x8 spatial window of one variable at one time step.
    let ((), window_flops) = flops::measure(|| {
        let _ = ra
            .tucker
            .reconstruct_region(&[10, 10, 0, dims[3] / 2], &[8, 8, 1, 1]);
    });
    println!(
        "8x8 window:          {window_flops} flops  ({:.0}x cheaper)",
        full_flops as f64 / window_flops as f64
    );

    // Accuracy spot check on the window.
    let window = ra
        .tucker
        .reconstruct_region(&[10, 10, 0, dims[3] / 2], &[8, 8, 1, 1]);
    let mut num = 0.0;
    let mut den = 0.0;
    for idx in window.shape().indices() {
        let gidx = [idx[0] + 10, idx[1] + 10, 0, dims[3] / 2];
        let d = window.get(&idx) - x.get(&gidx);
        num += d * d;
        den += x.get(&gidx) * x.get(&gidx);
    }
    println!("\nwindow relative error: {:.4}", (num / den).sqrt());
}
