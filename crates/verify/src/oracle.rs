//! Naive reference implementations ("oracles") of every numerical
//! kernel in the workspace.
//!
//! Each oracle is written for *obviousness*, not speed: triple loops,
//! `f64` accumulation regardless of the storage scalar, and textbook
//! formulas with no blocking, memoization, or layout tricks. The
//! optimized kernels in `ratucker-tensor` / `ratucker-linalg` are
//! verified against these differentially — any disagreement beyond
//! [`crate::tolerances`] is a bug in one of the two, and the oracle is
//! short enough to audit by eye.

use ratucker_tensor::{fold, unfold, DenseTensor, Matrix, Scalar, Shape, Transpose};

/// Textbook `C = A · B` with a triple loop and `f64` accumulation.
pub fn matmul_naive<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul_naive: inner dimensions disagree"
    );
    Matrix::from_fn(a.rows(), b.cols(), |i, j| {
        let acc: f64 = (0..a.cols())
            .map(|k| a[(i, k)].to_f64() * b[(k, j)].to_f64())
            .sum();
        T::from_f64(acc)
    })
}

/// TTM by the definition: unfold, multiply naively, fold back.
///
/// Matches [`ratucker_tensor::ttm`]'s conventions: `Transpose::No`
/// computes `Y_(mode) = M · X_(mode)` with `M : p × n_mode`, and
/// `Transpose::Yes` computes `Y_(mode) = Mᵀ · X_(mode)` with
/// `M : n_mode × p` (the factor-matrix case).
pub fn ttm_naive<T: Scalar>(
    x: &DenseTensor<T>,
    mode: usize,
    m: &Matrix<T>,
    t: Transpose,
) -> DenseTensor<T> {
    let eff = match t {
        Transpose::No => m.clone(),
        Transpose::Yes => m.transpose(),
    };
    assert_eq!(
        eff.cols(),
        x.dim(mode),
        "ttm_naive: operand does not match mode {mode}"
    );
    let y = matmul_naive(&eff, &unfold(x, mode));
    let mut dims = x.shape().dims().to_vec();
    dims[mode] = eff.rows();
    fold(&y, mode, &Shape::new(&dims))
}

/// Gram matrix by the definition: `G = X_(mode) · X_(mode)ᵀ`, entry by
/// entry with `f64` accumulation.
pub fn gram_naive<T: Scalar>(x: &DenseTensor<T>, mode: usize) -> Matrix<T> {
    let u = unfold(x, mode);
    let n = u.rows();
    Matrix::from_fn(n, n, |i, j| {
        let acc: f64 = (0..u.cols())
            .map(|k| u[(i, k)].to_f64() * u[(j, k)].to_f64())
            .sum();
        T::from_f64(acc)
    })
}

/// Eigenvalues of a symmetric matrix by classical two-sided cyclic
/// Jacobi, independent of `ratucker_linalg::sym_evd`. Returned in
/// descending order.
///
/// The rotation for the `(p, q)` pivot uses the textbook stable choice
/// `t = sign(θ) / (|θ| + √(θ² + 1))` with `θ = (a_qq − a_pp) / 2a_pq`,
/// which annihilates `a_pq` while keeping `|t| ≤ 1`.
pub fn jacobi_eigenvalues_naive(a: &Matrix<f64>) -> Vec<f64> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "jacobi_eigenvalues_naive: matrix not square");
    let mut m = a.as_slice().to_vec();
    let idx = |i: usize, j: usize| i + j * n;
    let scale = m.iter().fold(0.0f64, |s, v| s.max(v.abs())).max(1.0);
    for _sweep in 0..100 {
        let off: f64 = (0..n)
            .flat_map(|p| (p + 1..n).map(move |q| (p, q)))
            .map(|(p, q)| m[idx(p, q)] * m[idx(p, q)])
            .sum();
        if off.sqrt() <= 1e-15 * scale {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m[idx(p, q)];
                if apq.abs() <= 1e-18 * scale {
                    continue;
                }
                let theta = (m[idx(q, q)] - m[idx(p, p)]) / (2.0 * apq);
                let sign = if theta >= 0.0 { 1.0 } else { -1.0 };
                let t = sign / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // B = A · J, then Jᵀ · B, with J the (p, q) rotation.
                for k in 0..n {
                    let akp = m[idx(k, p)];
                    let akq = m[idx(k, q)];
                    m[idx(k, p)] = c * akp - s * akq;
                    m[idx(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = m[idx(p, k)];
                    let aqk = m[idx(q, k)];
                    m[idx(p, k)] = c * apk - s * aqk;
                    m[idx(q, k)] = s * apk + c * aqk;
                }
            }
        }
    }
    let mut evs: Vec<f64> = (0..n).map(|i| m[idx(i, i)]).collect();
    evs.sort_by(|x, y| y.partial_cmp(x).unwrap());
    evs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tolerances::{TOL_EVD_CROSS, TOL_ORACLE};
    use ratucker_tensor::kernels;
    use ratucker_tensor::ttm;
    use ratucker_tensor::{gram, Transpose};

    /// Deterministic pseudo-random fill in [−1, 1] (splitmix-style).
    fn fill(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut z = *state;
        z ^= z >> 33;
        z = z.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        z ^= z >> 33;
        (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }

    fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        let mut s = seed;
        Matrix::from_fn(rows, cols, |_, _| fill(&mut s))
    }

    fn rand_tensor(dims: &[usize], seed: u64) -> DenseTensor<f64> {
        let mut s = seed;
        DenseTensor::from_fn(Shape::new(dims), |_| fill(&mut s))
    }

    #[test]
    fn matmul_matches_the_optimized_implementation() {
        let a = rand_matrix(7, 5, 11);
        let b = rand_matrix(5, 6, 12);
        let fast = a.matmul(&b);
        let slow = matmul_naive(&a, &b);
        assert!(fast.max_abs_diff(&slow) < TOL_ORACLE);
    }

    #[test]
    fn gemm_kernels_match_the_naive_oracle() {
        let (m, n, k) = (6, 5, 4);
        let a = rand_matrix(m, k, 21); // m×k
        let at = a.transpose(); // k×m
        let b = rand_matrix(k, n, 22); // k×n
        let bt = b.transpose(); // n×k
        let want = matmul_naive(&a, &b);

        let mut c = vec![0.0f64; m * n];
        kernels::gemm_nn(m, n, k, a.as_slice(), m, b.as_slice(), k, &mut c, m);
        assert!(Matrix::from_vec(m, n, c).max_abs_diff(&want) < TOL_ORACLE);

        let mut c = vec![0.0f64; m * n];
        kernels::gemm_tn(m, n, k, at.as_slice(), k, b.as_slice(), k, &mut c, m);
        assert!(Matrix::from_vec(m, n, c).max_abs_diff(&want) < TOL_ORACLE);

        let mut c = vec![0.0f64; m * n];
        kernels::gemm_nt(m, n, k, a.as_slice(), m, bt.as_slice(), n, &mut c, m);
        assert!(Matrix::from_vec(m, n, c).max_abs_diff(&want) < TOL_ORACLE);
    }

    #[test]
    fn syrk_kernels_match_the_naive_oracle_on_their_triangle() {
        let (n, k) = (5, 7);
        let a = rand_matrix(k, n, 31); // k×n, C = AᵀA is n×n
        let want_tn = matmul_naive(&a.transpose(), &a);
        let mut c = vec![0.0f64; n * n];
        kernels::syrk_tn(n, k, a.as_slice(), k, &mut c, n);
        let got = Matrix::from_vec(n, n, c);
        for j in 0..n {
            for i in j..n {
                assert!(
                    (got[(i, j)] - want_tn[(i, j)]).abs() < TOL_ORACLE,
                    "syrk_tn ({i},{j})"
                );
            }
        }

        let b = rand_matrix(n, k, 32); // n×k, C = BBᵀ is n×n
        let want_nt = matmul_naive(&b, &b.transpose());
        let mut c = vec![0.0f64; n * n];
        kernels::syrk_nt(n, k, b.as_slice(), n, &mut c, n);
        let got = Matrix::from_vec(n, n, c);
        for j in 0..n {
            for i in j..n {
                assert!(
                    (got[(i, j)] - want_nt[(i, j)]).abs() < TOL_ORACLE,
                    "syrk_nt ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn vector_kernels_match_f64_references() {
        let x = rand_matrix(1, 64, 41).into_vec();
        let y0 = rand_matrix(1, 64, 42).into_vec();

        let mut y = y0.clone();
        kernels::axpy(0.75, &x, &mut y);
        for i in 0..x.len() {
            assert!((y[i] - (y0[i] + 0.75 * x[i])).abs() < TOL_ORACLE);
        }

        let d = kernels::dot(&x, &y0);
        let want: f64 = x.iter().zip(&y0).map(|(a, b)| a * b).sum();
        assert!((d - want).abs() < TOL_ORACLE);

        let nrm = kernels::nrm2(&x);
        let want = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((nrm - want).abs() < TOL_ORACLE);

        let mut z = x.clone();
        kernels::scal(-2.0, &mut z);
        for i in 0..x.len() {
            assert!((z[i] + 2.0 * x[i]).abs() < TOL_ORACLE);
        }
    }

    #[test]
    fn ttm_matches_the_unfold_oracle_in_both_transpose_modes() {
        let x = rand_tensor(&[5, 4, 3], 51);
        for mode in 0..3 {
            let m_no = rand_matrix(2, x.dim(mode), 60 + mode as u64);
            let fast = ttm(&x, mode, &m_no, Transpose::No);
            let slow = ttm_naive(&x, mode, &m_no, Transpose::No);
            assert!(fast.max_abs_diff(&slow) < TOL_ORACLE, "No, mode {mode}");

            let m_yes = rand_matrix(x.dim(mode), 2, 70 + mode as u64);
            let fast = ttm(&x, mode, &m_yes, Transpose::Yes);
            let slow = ttm_naive(&x, mode, &m_yes, Transpose::Yes);
            assert!(fast.max_abs_diff(&slow) < TOL_ORACLE, "Yes, mode {mode}");
        }
    }

    #[test]
    fn gram_matches_the_entrywise_oracle_on_every_mode() {
        let x = rand_tensor(&[4, 5, 3], 81);
        for mode in 0..3 {
            let fast = gram(&x, mode);
            let slow = gram_naive(&x, mode);
            assert!(fast.max_abs_diff(&slow) < TOL_ORACLE, "mode {mode}");
        }
    }

    #[test]
    fn sym_evd_eigenvalues_match_the_independent_jacobi_oracle() {
        let x = rand_tensor(&[6, 5, 4], 91);
        for mode in 0..3 {
            let g = gram(&x, mode);
            let fast = ratucker_linalg::sym_evd(&g);
            let slow = jacobi_eigenvalues_naive(&g);
            assert_eq!(fast.values.len(), slow.len());
            for (k, (a, b)) in fast.values.iter().zip(&slow).enumerate() {
                assert!(
                    (a - b).abs() < TOL_EVD_CROSS * (1.0 + b.abs()),
                    "mode {mode}, λ_{k}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn svd_singular_values_match_the_jacobi_oracle_on_the_gram() {
        let a = rand_matrix(5, 7, 101);
        let s = ratucker_linalg::svd_jacobi(&a);
        let evs = jacobi_eigenvalues_naive(&matmul_naive(&a, &a.transpose()));
        for (j, (sv, ev)) in s.sigma.iter().zip(&evs).enumerate().take(a.rows()) {
            assert!(
                (sv * sv - ev).abs() < TOL_EVD_CROSS * (1.0 + ev.abs()),
                "σ_{j}² = {} vs λ_{j} = {ev}",
                sv * sv
            );
        }
    }

    #[test]
    fn jacobi_oracle_recovers_a_known_spectrum() {
        // Diagonal + rotation: spectrum known exactly by construction.
        let q = ratucker_linalg::qr(&rand_matrix(5, 5, 111)).q;
        let lambda = [9.0, 4.0, 1.0, 0.25, 0.0];
        let a = Matrix::from_fn(5, 5, |i, j| {
            (0..5).map(|k| q[(i, k)] * lambda[k] * q[(j, k)]).sum()
        });
        let evs = jacobi_eigenvalues_naive(&a);
        for (got, want) in evs.iter().zip(&lambda) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }
}
