//! Verification layer for the RA-HOOI workspace: differential oracles
//! and algebraic invariant checkers for every numerical kernel.
//!
//! Correctness here rests on two independent legs (DESIGN.md §12):
//!
//! 1. **Differential oracles** ([`oracle`]) — naive, audit-by-eye
//!    reference implementations (triple-loop GEMM, unfold-then-multiply
//!    TTM and Gram, an independent cyclic-Jacobi eigensolver) that the
//!    optimized kernels are compared against numerically.
//! 2. **Algebraic invariants** ([`invariants`]) — properties any
//!    correct output must satisfy regardless of implementation:
//!    orthonormal factors, symmetric PSD Grams, the core-norm error
//!    identity, TTM mode-order commutativity, and monotone HOOI fit.
//!
//! Every tolerance used by either leg lives in [`tolerances`] with a
//! derivation comment — there are no magic numbers at call sites.
//!
//! The third leg, *schedule exploration* (replaying a distributed
//! program under adversarial message schedules and asserting
//! bit-identical results), lives in `ratucker-mpi` as
//! [`Universe::explore`](../ratucker_mpi/struct.Universe.html) because
//! it needs fabric internals; this crate's integration tests drive it
//! over the real solvers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod invariants;
pub mod oracle;
pub mod tolerances;

pub use invariants::{
    check_core_norm_identity, check_factor_match, check_monotone_fit, check_orthonormal,
    check_symmetric_psd, check_ttm_commutes,
};
pub use oracle::{gram_naive, jacobi_eigenvalues_naive, matmul_naive, ttm_naive};
