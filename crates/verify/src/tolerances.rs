//! The single source of truth for every verification tolerance.
//!
//! Each constant documents *why* its value is what it is, so a failing
//! conformance test points at either a genuine regression or a
//! consciously revised bound — never at an unexplained magic number.
//! DESIGN.md §12 reproduces this table; keep the two in sync.
//!
//! All tolerances are **relative**: checks scale them by the magnitude
//! of the data being compared (a matrix norm, `1 + |λ|`, …), so the
//! same constants work for well- and badly-scaled inputs.

/// Optimized kernel vs. naive triple-loop oracle, `f64` data.
///
/// Both sides perform the same O(n) additions per output entry in
/// different orders, so the difference is bounded by `n · ε ≈ 1e-14`
/// for the dimensions the suite uses. `1e-10` leaves four orders of
/// headroom while still catching any indexing or blocking bug (those
/// produce O(1) errors).
pub const TOL_ORACLE: f64 = 1e-10;

/// `sym_evd` eigenvalues vs. the independent cyclic-Jacobi oracle.
///
/// Two different EVD implementations agree on eigenvalues to roughly
/// `‖A‖ · ε` each; `1e-8` covers accumulation over sweeps on the ≤12
/// dimensional Gram matrices the suite feeds them.
pub const TOL_EVD_CROSS: f64 = 1e-8;

/// Orthonormality defect `‖UᵀU − I‖_max` of computed factor matrices.
///
/// Householder QR and Jacobi EVD both deliver defects of a few `ε`;
/// `1e-9` is loose enough for accumulation across HOOI sweeps and tight
/// enough that a forgotten normalization (defect O(1)) is unmissable.
pub const TOL_ORTHO: f64 = 1e-9;

/// Core-norm error identity: `‖X − X̂‖² = ‖X‖² − ‖G‖²` (orthonormal
/// factors), checked against explicit reconstruction.
///
/// The identity holds exactly in exact arithmetic; in `f64` the two
/// sides differ by cancellation in `‖X‖² − ‖G‖²`, amplified when the
/// residual is small. `1e-8` on the *relative* error covers the suite's
/// ≥1% noise floors.
pub const TOL_CORE_NORM: f64 = 1e-8;

/// TTM mode-order commutativity: `X ×_i A ×_j B` vs. `X ×_j B ×_i A`.
///
/// Mathematically exact for distinct modes; numerically the two
/// orderings round differently, bounded by a few `n · ε` relative to
/// the result norm.
pub const TOL_TTM_COMMUTE: f64 = 1e-12;

/// Slack for the monotone-fit invariant of fixed-rank HOOI.
///
/// Each block-coordinate sweep can only lower the exact objective; the
/// *reported* per-sweep relative error is computed through the core-norm
/// identity and may tick up by cancellation noise. Anything above this
/// slack is a genuine convergence bug.
pub const TOL_MONOTONE_SLACK: f64 = 1e-12;

/// Distributed vs. sequential relative error, `f64`, fixed ranks.
///
/// The distributed pipeline sums Gram matrices and norms in a different
/// order (tree allreduce vs. left-to-right), perturbing the result at
/// ~`√n_ops · ε ≈ 1e-13`. The eigensolver then runs on bitwise-different
/// input. `1e-8` is far above that floor and far below any algorithmic
/// divergence.
pub const TOL_DIST_REL_ERROR: f64 = 1e-8;

/// Distributed vs. sequential factor matrices (column-sign insensitive).
///
/// Eigenvector sensitivity is `perturbation / gap`; the synthetic
/// conformance tensors have O(1) spectral gaps between kept and
/// discarded eigenvalues, so a ~1e-13 Gram perturbation moves factor
/// entries by ~1e-12. `1e-6` keeps the check robust to genuinely close
/// kept eigenvalues without letting a wrong subspace through.
pub const TOL_DIST_FACTOR: f64 = 1e-6;
