//! Algebraic invariant checkers.
//!
//! Where the differential oracles in [`crate::oracle`] ask "does the
//! optimized kernel compute the same numbers as the naive one?", these
//! checkers ask "does the output satisfy the algebra it must satisfy
//! regardless of implementation?" — orthonormality, Gram symmetry and
//! positive semidefiniteness, the core-norm error identity, TTM
//! mode-order commutativity, and the monotone fit of block coordinate
//! descent. Every checker returns `Result<(), String>` with a message
//! precise enough to file as a bug report.

use crate::oracle::jacobi_eigenvalues_naive;
use ratucker_tensor::{ttm, DenseTensor, Matrix, Scalar, Transpose};

/// Checks `‖UᵀU − I‖_max ≤ tol` for a factor matrix `U`.
pub fn check_orthonormal<T: Scalar>(u: &Matrix<T>, tol: f64) -> Result<(), String> {
    let defect = u.orthonormality_defect();
    if defect <= tol {
        Ok(())
    } else {
        Err(format!(
            "{}x{} factor has orthonormality defect {defect:.3e} > {tol:.1e}",
            u.rows(),
            u.cols()
        ))
    }
}

/// Checks that `g` is symmetric and positive semidefinite (both up to
/// `tol` relative to its largest entry). PSD is certified through the
/// independent Jacobi eigenvalue oracle, not the production EVD.
pub fn check_symmetric_psd<T: Scalar>(g: &Matrix<T>, tol: f64) -> Result<(), String> {
    let n = g.rows();
    if n != g.cols() {
        return Err(format!("Gram matrix is {}x{}, not square", n, g.cols()));
    }
    let gf = Matrix::from_fn(n, n, |i, j| g[(i, j)].to_f64());
    let scale = gf
        .as_slice()
        .iter()
        .fold(0.0f64, |s, v| s.max(v.abs()))
        .max(1.0);
    for i in 0..n {
        for j in i + 1..n {
            let gap = (gf[(i, j)] - gf[(j, i)]).abs();
            if gap > tol * scale {
                return Err(format!(
                    "asymmetry at ({i},{j}): |{} − {}| = {gap:.3e} > {:.1e}",
                    gf[(i, j)],
                    gf[(j, i)],
                    tol * scale
                ));
            }
        }
    }
    let evs = jacobi_eigenvalues_naive(&gf);
    if let Some(min) = evs.last() {
        if *min < -tol * scale {
            return Err(format!(
                "not PSD: smallest eigenvalue {min:.3e} < −{:.1e}",
                tol * scale
            ));
        }
    }
    Ok(())
}

/// Checks the error identity `‖X − X̂‖² = ‖X‖² − ‖G‖²` that holds for
/// any Tucker pair with orthonormal factors, by comparing three numbers
/// that must agree: the identity-implied relative error, the explicitly
/// reconstructed relative error, and the `reported` one.
pub fn check_core_norm_identity<T: Scalar>(
    x: &DenseTensor<T>,
    core: &DenseTensor<T>,
    factors: &[Matrix<T>],
    reported: f64,
    tol: f64,
) -> Result<(), String> {
    let x_norm_sq = x.squared_norm_f64();
    if x_norm_sq == 0.0 {
        return Err("cannot check the identity on a zero tensor".into());
    }
    let implied = ((x_norm_sq - core.squared_norm_f64()).max(0.0) / x_norm_sq).sqrt();
    let mut xhat = core.clone();
    for (j, u) in factors.iter().enumerate() {
        xhat = ttm(&xhat, j, u, Transpose::No);
    }
    let direct = xhat.rel_error(x);
    if (implied - direct).abs() > tol {
        return Err(format!(
            "core-norm identity broken: implied error {implied:.12e} vs reconstructed \
             {direct:.12e} (gap > {tol:.1e})"
        ));
    }
    if (reported - direct).abs() > tol {
        return Err(format!(
            "reported error {reported:.12e} disagrees with reconstruction {direct:.12e} \
             (gap > {tol:.1e})"
        ));
    }
    Ok(())
}

/// Checks that TTMs on *distinct* modes commute: applying `ops` in the
/// given order and in reverse must agree to `tol` relative to the
/// result norm.
pub fn check_ttm_commutes<T: Scalar>(
    x: &DenseTensor<T>,
    ops: &[(usize, Matrix<T>, Transpose)],
    tol: f64,
) -> Result<(), String> {
    for (a, op_a) in ops.iter().enumerate() {
        for op_b in ops.iter().skip(a + 1) {
            if op_a.0 == op_b.0 {
                return Err(format!(
                    "mode {} appears twice; only distinct-mode TTMs commute",
                    op_a.0
                ));
            }
        }
    }
    let apply = |order: &mut dyn Iterator<Item = &(usize, Matrix<T>, Transpose)>| {
        order.fold(x.clone(), |y, (mode, m, t)| ttm(&y, *mode, m, *t))
    };
    let fwd = apply(&mut ops.iter());
    let rev = apply(&mut ops.iter().rev());
    let scale = fwd
        .data()
        .iter()
        .fold(0.0f64, |s, v| s.max(v.to_f64().abs()))
        .max(1.0);
    let gap = fwd.max_abs_diff(&rev);
    if gap > tol * scale {
        return Err(format!(
            "TTM order changed the result by {gap:.3e} > {:.1e}",
            tol * scale
        ));
    }
    Ok(())
}

/// Checks that a per-sweep error history is non-increasing up to
/// `slack` (the monotone-fit property of fixed-rank HOOI).
pub fn check_monotone_fit(errors: &[f64], slack: f64) -> Result<(), String> {
    for (i, w) in errors.windows(2).enumerate() {
        if w[1] > w[0] + slack {
            return Err(format!(
                "fit regressed at sweep {}: {} → {} (rise > {slack:.1e})",
                i + 1,
                w[0],
                w[1]
            ));
        }
    }
    Ok(())
}

/// Compares two factor matrices up to per-column sign (the inherent
/// ambiguity of eigenvector bases): `‖a_j − s_j b_j‖_max ≤ tol` with
/// `s_j = sign(a_jᵀ b_j)`.
pub fn check_factor_match<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>, tol: f64) -> Result<(), String> {
    if a.rows() != b.rows() || a.cols() != b.cols() {
        return Err(format!(
            "factor shapes disagree: {}x{} vs {}x{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        ));
    }
    for j in 0..a.cols() {
        let dot: f64 = a
            .col(j)
            .iter()
            .zip(b.col(j))
            .map(|(&x, &y)| x.to_f64() * y.to_f64())
            .sum();
        let s = if dot >= 0.0 { 1.0 } else { -1.0 };
        for (i, (&x, &y)) in a.col(j).iter().zip(b.col(j)).enumerate() {
            let gap = (x.to_f64() - s * y.to_f64()).abs();
            if gap > tol {
                return Err(format!(
                    "column {j} (sign {s:+}): entry {i} differs by {gap:.3e} > {tol:.1e}"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tolerances::{TOL_CORE_NORM, TOL_MONOTONE_SLACK, TOL_ORTHO, TOL_TTM_COMMUTE};
    use ratucker_tensor::Shape;

    fn fill(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut z = *state;
        z ^= z >> 33;
        z = z.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        z ^= z >> 33;
        (z >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }

    fn rand_tensor(dims: &[usize], seed: u64) -> DenseTensor<f64> {
        let mut s = seed;
        DenseTensor::from_fn(Shape::new(dims), |_| fill(&mut s))
    }

    fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        let mut s = seed;
        Matrix::from_fn(rows, cols, |_, _| fill(&mut s))
    }

    #[test]
    fn orthonormality_checker_accepts_q_and_rejects_scaled_q() {
        let q = ratucker_linalg::qr(&rand_matrix(8, 4, 1)).q;
        assert!(check_orthonormal(&q, TOL_ORTHO).is_ok());
        let mut bad = q.clone();
        for v in bad.col_mut(1) {
            *v *= 1.0 + 1e-6;
        }
        assert!(check_orthonormal(&bad, TOL_ORTHO).is_err());
    }

    #[test]
    fn gram_checker_accepts_real_grams_and_rejects_tampering() {
        let x = rand_tensor(&[4, 3, 3], 2);
        for mode in 0..3 {
            let g = ratucker_tensor::gram(&x, mode);
            assert!(check_symmetric_psd(&g, TOL_ORTHO).is_ok(), "mode {mode}");
        }
        let mut g = ratucker_tensor::gram(&x, 0);
        g[(0, 1)] += 0.5; // break symmetry
        assert!(check_symmetric_psd(&g, TOL_ORTHO).is_err());
        let mut g = ratucker_tensor::gram(&x, 0);
        let n = g.rows();
        for i in 0..n {
            g[(i, i)] -= 100.0; // push the spectrum negative
        }
        assert!(check_symmetric_psd(&g, TOL_ORTHO).is_err());
    }

    #[test]
    fn ttm_commutativity_holds_on_distinct_modes_only() {
        let x = rand_tensor(&[5, 4, 3], 3);
        let ops = vec![
            (0usize, rand_matrix(5, 2, 4), Transpose::Yes),
            (2usize, rand_matrix(3, 2, 5), Transpose::Yes),
        ];
        assert!(check_ttm_commutes(&x, &ops, TOL_TTM_COMMUTE).is_ok());
        let dup = vec![
            (1usize, rand_matrix(2, 4, 6), Transpose::No),
            (1usize, rand_matrix(2, 2, 7), Transpose::No),
        ];
        assert!(check_ttm_commutes(&x, &dup, TOL_TTM_COMMUTE).is_err());
    }

    #[test]
    fn monotone_checker_flags_a_rise_beyond_slack() {
        assert!(check_monotone_fit(&[0.5, 0.3, 0.3, 0.2], TOL_MONOTONE_SLACK).is_ok());
        assert!(check_monotone_fit(&[0.5, 0.3, 0.300001], TOL_MONOTONE_SLACK).is_err());
    }

    #[test]
    fn factor_match_is_sign_insensitive_but_not_value_insensitive() {
        let a = ratucker_linalg::qr(&rand_matrix(6, 3, 8)).q;
        let mut flipped = a.clone();
        for v in flipped.col_mut(2) {
            *v = -*v;
        }
        assert!(check_factor_match(&a, &flipped, 1e-12).is_ok());
        let mut bad = a.clone();
        bad[(0, 0)] += 1e-3;
        assert!(check_factor_match(&a, &bad, 1e-6).is_err());
    }

    #[test]
    fn core_norm_identity_validates_a_real_decomposition() {
        // An exact low-rank tensor: X = G ×1 U1 ×2 U2 ×3 U3.
        let g0 = rand_tensor(&[2, 2, 2], 9);
        let us: Vec<Matrix<f64>> = [(5, 10u64), (4, 11), (3, 12)]
            .iter()
            .map(|&(n, s)| ratucker_linalg::qr(&rand_matrix(n, 2, s)).q)
            .collect();
        let mut x = g0.clone();
        for (j, u) in us.iter().enumerate() {
            x = ttm(&x, j, u, Transpose::No);
        }
        // Exact decomposition → reported error 0.
        assert!(check_core_norm_identity(&x, &g0, &us, 0.0, TOL_CORE_NORM).is_ok());
        // A lying reported error must be caught.
        assert!(check_core_norm_identity(&x, &g0, &us, 0.3, TOL_CORE_NORM).is_err());
    }
}
