//! Schedule exploration over the real distributed solvers.
//!
//! `Universe::explore` replays a workload under ≥25 deterministic
//! message schedules (OS baseline, adversarial starvation / LIFO /
//! cross-traffic delay, seeded random) and asserts bit-identical
//! per-rank results, deadlock-freedom, and the fabric's traffic
//! invariants. Because the collectives use fixed reduction trees and
//! per-link FIFO is never violated, *any* divergence is a genuine
//! schedule race, not floating-point noise.
//!
//! Two workloads:
//!
//! 1. a fault-free distributed STHOSVD at P = 4 returning the raw bit
//!    patterns of every factor matrix, the local core block, and the
//!    relative error (the ISSUE acceptance check);
//! 2. a full shrink-and-continue recovery at P = 4: rank 2 is crashed
//!    mid-workload by the fault injector, the survivors revoke → agree
//!    → shrink → restore the dead rank's block from its buddy replica →
//!    re-block onto the [2, 1] grid → run a post-recovery collective.
//!    The returned state (survivor set, shrunken grid, restored block
//!    bits, collective result) must be identical under every schedule
//!    even though *where* each survivor first observes the failure is
//!    schedule-dependent;
//! 3. a full straggler demotion at P = 4: rank 1 runs 5 ms late on
//!    every data-plane operation, the induced-wait detector confirms it
//!    after a committed sweep, the grid demotes it online (verdict →
//!    retire → shrink → restore → redistribute), and the run completes
//!    on the survivors. The digest (who was demoted, the final grid,
//!    the result bits) must be identical under every schedule — the
//!    perturbations are microsecond-scale, so they can never flip the
//!    millisecond-scale verdict.

use std::time::Duration;

use ratucker::dist::dist_sthosvd;
use ratucker::prelude::*;
use ratucker_dist::{
    restorer_for, try_redistribute, try_refresh_buddies, BlockPiece, DistTensor, TensorDist,
};
use ratucker_mpi::{
    choose_shrunk_dims, sum_op, try_rebuild_grid, CartGrid, Comm, CommError, FaultPlan,
    SchedulePolicy, ShrinkOutcome, Universe,
};
use ratucker_tensor::Shape;

const N_SCHEDULES: usize = 25;

#[test]
fn dist_sthosvd_factors_are_bit_identical_under_25_schedules() {
    let spec = SyntheticSpec::new(&[10, 9, 8], &[3, 3, 2], 0.02, 4242);
    let u = Universe::new(4);
    u.set_recv_timeout(Duration::from_secs(20));
    let report = u.explore(N_SCHEDULES, 0xE5E5, move |c| {
        let grid = CartGrid::new(c, &[2, 2, 1]);
        let x = DistTensor::scatter_from_replicated(&grid, &spec.build::<f64>());
        let res = dist_sthosvd(&grid, &x, &SthosvdTruncation::Ranks(vec![3, 3, 2]));
        // Raw bit patterns, so explore's PartialEq comparison is a
        // bitwise check, not an approximate one.
        let mut bits = vec![res.rel_error.to_bits()];
        for f in &res.tucker.factors {
            bits.extend(f.as_slice().iter().map(|v| v.to_bits()));
        }
        bits.extend(res.tucker.core.local().data().iter().map(|v| v.to_bits()));
        bits
    });
    assert_eq!(report.policies.len(), N_SCHEDULES);
    assert!(
        report.failed_ranks.is_empty(),
        "fault-free run failed on ranks {:?}",
        report.failed_ranks
    );
    // The suite must actually be diverse: baseline first, all distinct.
    assert_eq!(report.policies[0], SchedulePolicy::Os);
    for (i, a) in report.policies.iter().enumerate() {
        for b in report.policies.iter().skip(i + 1) {
            assert_ne!(a, b, "duplicate schedule in the suite");
        }
    }
}

#[test]
fn p4_pipelined_ttm_si_bit_identical_under_25_schedules() {
    use ratucker::dist::dist_hooi;
    use ratucker_dist::dist_ttm;
    use ratucker_tensor::{Matrix, Transpose};

    // Both pipelined kernels under every schedule: the mode-1 TTM over a
    // 4-rank fiber (slab reduce-scatters in flight behind slab GEMMs)
    // and the HOSI subspace iteration (slab allreduces in flight behind
    // slab contractions). Each schedule must (a) agree bitwise with the
    // blocking path replayed under the *same* schedule and (b) agree
    // bitwise across schedules — any divergence is a schedule race in
    // the split-phase machinery, not roundoff.
    let spec = SyntheticSpec::new(&[12, 16, 10], &[3, 4, 2], 0.02, 4343);
    let u = Universe::new(4);
    u.set_recv_timeout(Duration::from_secs(20));
    let report = u.explore(N_SCHEDULES, 0x0E71, move |c| {
        let grid = CartGrid::new(c, &[1, 4, 1]);
        let x = DistTensor::scatter_from_replicated(&grid, &spec.build::<f64>());
        let m = Matrix::from_fn(16, 8, |i, j| (((i * 8 + j) as f64) * 0.37).sin());

        set_overlap(OverlapMode::On);
        let y_on = dist_ttm(&grid, &x, 1, &m, Transpose::Yes);
        set_overlap(OverlapMode::Off);
        let y_off = dist_ttm(&grid, &x, 1, &m, Transpose::Yes);
        set_overlap(OverlapMode::On);
        assert_eq!(
            y_on.local()
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            y_off
                .local()
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            "pipelined TTM diverged from blocking under this schedule"
        );

        let cfg = HooiConfig::hosi_dt().with_max_iters(2).with_seed(9);
        let res = dist_hooi(&grid, &x, &[3, 4, 2], &cfg);
        let mut bits: Vec<u64> = y_on.local().data().iter().map(|v| v.to_bits()).collect();
        bits.push(res.rel_error.to_bits());
        for f in &res.tucker.factors {
            bits.extend(f.as_slice().iter().map(|v| v.to_bits()));
        }
        bits
    });
    assert_eq!(report.policies.len(), N_SCHEDULES);
    assert!(
        report.failed_ranks.is_empty(),
        "pipelined kernels failed on ranks {:?}",
        report.failed_ranks
    );
}

const GRID: [usize; 2] = [2, 2];
const DIMS: [usize; 2] = [12, 10];
const CRASH_RANK: usize = 2;
/// Fabric-op index of the injected crash: safely past grid setup and
/// the buddy refresh (~10 ops on rank 2), inside the allreduce loop.
const CRASH_OP: u64 = 60;

/// The survivors' workload: set up a block-distributed tensor with
/// degree-1 buddy replication, run collectives until the injected crash
/// surfaces as a typed error, then recover online and report the
/// post-recovery state.
fn recovery_workload(c: Comm) -> Vec<u64> {
    let grid = CartGrid::new(c, &GRID);
    let x = DistTensor::from_fn(&grid, Shape::new(&DIMS), |idx| {
        (idx[0] * 31 + idx[1] * 7) as f64 / 17.0
    });
    let buddies = try_refresh_buddies(&grid, &x, 1).expect("the crash lands after the refresh");

    // Drive collectives until rank 2's crash is observed. Which
    // iteration (and which CommError variant) each survivor sees is
    // schedule-dependent; nothing from this loop may leak into the
    // return value.
    let work = || -> Result<(), CommError> {
        for _ in 0..200 {
            grid.comm
                .try_allreduce(vec![x.local().squared_norm_f64()], sum_op)?;
        }
        Ok(())
    };
    work().expect_err("the injected crash must surface within 200 allreduces");

    // Online recovery, mirroring the resilient driver: revoke → agree →
    // shrink → buddy-restore → re-block → rebuild the grid.
    grid.comm.revoke();
    let survivors = grid.comm.try_agree().expect("survivors agree");
    let p = grid.comm.size();
    let me = grid.comm.rank();
    let in_surv = |r: usize| survivors.contains(&grid.comm.world_rank_of(r));
    let dead: Vec<usize> = (0..p).filter(|&r| !in_surv(r)).collect();
    assert_eq!(dead, vec![CRASH_RANK], "exactly the crashed rank is dead");

    let newcomm = grid
        .comm
        .shrink(&survivors)
        .expect("an agreed survivor is in its own survivor list");
    let mut pieces = vec![BlockPiece::from_block(x.dist(), x.coords(), x.local())];
    for &d in &dead {
        let holder = restorer_for(d, p, 1, in_surv).expect("the buddy of rank 2 survived");
        if holder == me {
            let rep = buddies
                .replica_for(d)
                .expect("the ring successor holds the replica");
            pieces.push(rep.to_piece(&x));
        }
    }
    let new_dims = choose_shrunk_dims(&GRID, newcomm.size());
    let new_dist = TensorDist::new(Shape::new(&DIMS), &new_dims);
    let block = try_redistribute(&newcomm, &new_dist, pieces).expect("re-blocking succeeds");

    match try_rebuild_grid(newcomm, &GRID).expect("grid rebuild succeeds") {
        ShrinkOutcome::Active(g2) => {
            let xb = block.expect("active ranks of the shrunken grid receive a block");
            let total = g2
                .comm
                .try_allreduce(vec![xb.local().squared_norm_f64()], sum_op)
                .expect("post-recovery collective succeeds")[0];
            let mut out = vec![1u64];
            out.extend(survivors.iter().map(|&s| s as u64));
            out.extend(g2.dims().iter().map(|&d| d as u64));
            out.push(total.to_bits());
            out.extend(xb.local().data().iter().map(|v| v.to_bits()));
            out
        }
        ShrinkOutcome::Spare(_) => {
            let mut out = vec![u64::MAX];
            out.extend(survivors.iter().map(|&s| s as u64));
            out
        }
    }
}

#[test]
fn p4_recovery_converges_to_identical_state_under_25_schedules() {
    let plan = FaultPlan::quiet(11).with_crash(CRASH_RANK, CRASH_OP);
    let u = Universe::with_fault_plan(4, plan);
    u.set_recv_timeout(Duration::from_secs(20));
    let report = u.explore(N_SCHEDULES, 0x2ECE, recovery_workload);
    assert_eq!(report.policies.len(), N_SCHEDULES);
    // Exactly the crashed rank fails — under every schedule, with the
    // same deterministic panic message (checked inside explore).
    assert_eq!(report.failed_ranks, vec![CRASH_RANK]);
}

#[test]
fn p4_straggler_demotion_converges_to_identical_state_under_25_schedules() {
    use ratucker::{dist_ra_hooi_resilient, ResilienceConfig, ResilientOutcome};
    use ratucker_obs::StragglerPolicy;

    const VICTIM: usize = 1;
    let plan = FaultPlan::quiet(91).with_slow_rank(VICTIM, Duration::from_millis(5));
    let u = Universe::with_fault_plan(4, plan);
    u.set_recv_timeout(Duration::from_secs(60));
    let report = u.explore(N_SCHEDULES, 0xDE40, move |c| {
        let spec = SyntheticSpec::new(&[12, 10, 8], &[3, 3, 2], 0.01, 913);
        let grid = CartGrid::new(c, &[2, 2, 1]);
        let x = DistTensor::scatter_from_replicated(&grid, &spec.build::<f64>());
        let cfg = RaConfig::ra_hosi_dt(0.1, &[2, 2, 2])
            .with_seed(31)
            .with_alpha(2.0)
            .with_max_iters(3);
        // The 2.0 multiple absorbs the blame cascade (ranks queued up
        // behind the victim accrue secondary wait); the 5 ms/op signal
        // is ~300× the largest schedule perturbation, so the verdict
        // cannot flip with the schedule.
        let res = ResilienceConfig::default().with_straggler(
            StragglerPolicy::new(2.0)
                .with_consecutive(1)
                .with_min_secs(0.02),
        );
        match dist_ra_hooi_resilient(&grid, &x, &cfg, &res).expect("no rank errors out") {
            ResilientOutcome::Completed { result, report, .. } => {
                let mut out = vec![1u64];
                out.extend(report.demoted_ranks.iter().map(|&r| r as u64));
                out.extend(report.final_grid.iter().map(|&d| d as u64));
                out.push(result.rel_error.to_bits());
                for f in &result.tucker.factors {
                    out.extend(f.as_slice().iter().map(|v| v.to_bits()));
                }
                out
            }
            ResilientOutcome::Spare { report, .. } => {
                let mut out = vec![u64::MAX];
                out.extend(report.demoted_ranks.iter().map(|&r| r as u64));
                out
            }
            ResilientOutcome::FallbackToCheckpoint { dead, .. } => {
                panic!("no checkpoint policy is configured, yet fallback named {dead:?}")
            }
        }
    });
    assert_eq!(report.policies.len(), N_SCHEDULES);
    assert!(
        report.failed_ranks.is_empty(),
        "demotion must be clean on every rank, failed: {:?}",
        report.failed_ranks
    );
}

#[test]
fn p8_budget_pressure_converges_to_identical_state_under_25_schedules() {
    use ratucker::{dist_ra_hooi_resilient, ResilienceConfig, ResilientOutcome};

    // The chaos-suite scenario-14 cell: rank 3's budget shrinks to
    // 28800 B at its own fabric op 60 — program-order deterministic on
    // the pressured rank, and far from a sweep-commit boundary, so the
    // refusal always lands mid-sweep. The ladder verdict travels the
    // revocation-immune ctrl plane, so every schedule must agree rung 1
    // and finish bit-identical on the full grid.
    let plan = FaultPlan::quiet(67).with_mem_pressure(3, 60, 28_800);
    let u = Universe::with_fault_plan(8, plan);
    u.set_recv_timeout(Duration::from_secs(60));
    let report = u.explore(N_SCHEDULES, 0xB4D6, move |c| {
        let spec = SyntheticSpec::new(&[24, 20, 16], &[6, 6, 4], 0.01, 914);
        let grid = CartGrid::new(c, &[2, 2, 2]);
        let x = DistTensor::scatter_from_replicated(&grid, &spec.build::<f64>());
        let cfg = RaConfig::ra_hosi_dt(0.1, &[3, 3, 2])
            .with_seed(31)
            .with_alpha(2.0)
            .with_max_iters(3);
        let res = ResilienceConfig::default().with_buddy_degree(0);
        match dist_ra_hooi_resilient(&grid, &x, &cfg, &res).expect("no rank errors out") {
            ResilientOutcome::Completed { result, report, .. } => {
                let mut out = vec![1u64, report.max_rung as u64];
                out.extend(report.final_grid.iter().map(|&d| d as u64));
                out.push(result.rel_error.to_bits());
                for f in &result.tucker.factors {
                    out.extend(f.as_slice().iter().map(|v| v.to_bits()));
                }
                out
            }
            other => panic!("budget pressure must stay on the ladder, got {other:?}"),
        }
    });
    assert_eq!(report.policies.len(), N_SCHEDULES);
    assert!(
        report.failed_ranks.is_empty(),
        "degradation must be clean on every rank, failed: {:?}",
        report.failed_ranks
    );
}
