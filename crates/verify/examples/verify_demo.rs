//! End-to-end demo of the verification layer's public API.
//!
//! Runs a sequential ST-HOSVD, checks it against the differential
//! oracles and structural invariants, then replays a distributed
//! allreduce under 12 message schedules with `Universe::explore` and
//! prints the schedule suite it survived.
//!
//! ```text
//! cargo run --release -p ratucker-verify --example verify_demo
//! ```

use ratucker::prelude::*;
use ratucker_mpi::{sum_op, Universe};
use ratucker_tensor::{ttm, Matrix, Transpose};
use ratucker_verify::tolerances::{TOL_CORE_NORM, TOL_MONOTONE_SLACK, TOL_ORACLE, TOL_ORTHO};
use ratucker_verify::{check_core_norm_identity, check_monotone_fit, check_orthonormal, ttm_naive};

fn main() {
    // A noisy synthetic tensor with a known low-rank construction.
    let x = SyntheticSpec::new(&[12, 10, 8], &[3, 3, 2], 0.01, 7).build::<f64>();

    // --- leg 1: differential oracle --------------------------------
    let u = ratucker_linalg::qr(&Matrix::<f64>::from_fn(12, 3, |i, j| {
        ((i * 5 + j * 3 + 1) as f64).sin()
    }))
    .q;
    let fast = ttm(&x, 0, &u, Transpose::Yes);
    let slow = ttm_naive(&x, 0, &u, Transpose::Yes);
    let diff = fast.max_abs_diff(&slow);
    assert!(diff < TOL_ORACLE, "ttm oracle divergence: {diff:e}");
    println!("oracle: ttm matches the naive reference to {diff:.2e}");

    // --- leg 2: structural invariants ------------------------------
    let res = sthosvd(&x, &SthosvdTruncation::Ranks(vec![3, 3, 2]));
    for (k, f) in res.tucker.factors.iter().enumerate() {
        check_orthonormal(f, TOL_ORTHO).unwrap_or_else(|e| panic!("factor {k}: {e}"));
    }
    check_core_norm_identity(
        &x,
        &res.tucker.core,
        &res.tucker.factors,
        res.rel_error,
        TOL_CORE_NORM,
    )
    .expect("core norm identity");
    let hooi = hooi(
        &x,
        &[3, 3, 2],
        &HooiConfig::hosi_dt().with_max_iters(3).with_seed(1),
    );
    let errors: Vec<f64> = hooi.sweeps.iter().map(|s| s.rel_error).collect();
    check_monotone_fit(&errors, TOL_MONOTONE_SLACK).expect("monotone fit");
    println!("invariants: orthonormal factors, core-norm identity, monotone fit {errors:.4?}");

    // --- leg 3: schedule exploration -------------------------------
    let report = Universe::new(4).explore(12, 0xDEC0, |c| {
        let rank = c.rank();
        c.try_allreduce(vec![(rank + 1) as f64], sum_op).unwrap()
    });
    assert!(report.failed_ranks.is_empty());
    println!(
        "explore: bit-identical allreduce under {} schedules:",
        report.policies.len()
    );
    for p in &report.policies {
        println!("  {p:?}");
    }
}
