//! Property-based tests of the tensor substrate invariants.

use proptest::prelude::*;
use ratucker_tensor::prelude::*;
use ratucker_tensor::{contract_all_but, fold, gram, leading_norm_sq, prefix_squared_sums, unfold};

/// Strategy: a small random shape (2–4 modes, dims 1–6).
fn shape_strategy() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..=6, 2..=4)
}

/// Strategy: a tensor with the given shape and entries in [-1, 1].
fn tensor_strategy(dims: Vec<usize>) -> impl Strategy<Value = DenseTensor<f64>> {
    let n: usize = dims.iter().product();
    prop::collection::vec(-1.0f64..1.0, n)
        .prop_map(move |data| DenseTensor::from_vec(Shape::new(&dims), data))
}

fn arb_tensor() -> impl Strategy<Value = DenseTensor<f64>> {
    shape_strategy().prop_flat_map(tensor_strategy)
}

fn arb_tensor_with_mode() -> impl Strategy<Value = (DenseTensor<f64>, usize)> {
    arb_tensor().prop_flat_map(|t| {
        let d = t.order();
        (Just(t), 0..d)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn unfold_fold_roundtrip((x, mode) in arb_tensor_with_mode()) {
        let m = unfold(&x, mode);
        let back = fold(&m, mode, x.shape());
        prop_assert_eq!(back.max_abs_diff(&x), 0.0);
    }

    #[test]
    fn unfold_preserves_norm((x, mode) in arb_tensor_with_mode()) {
        let m = unfold(&x, mode);
        prop_assert!((m.fro_norm() - x.norm()).abs() < 1e-10);
    }

    #[test]
    fn ttm_matches_unfolding_definition((x, mode) in arb_tensor_with_mode(), rows in 1usize..4) {
        let n_j = x.dim(mode);
        let m = Matrix::from_fn(rows, n_j, |i, j| ((i * n_j + j) as f64 * 0.37).sin());
        let fast = ttm(&x, mode, &m, Transpose::No);
        let slow = {
            let unf = unfold(&x, mode);
            let prod = m.matmul(&unf);
            fold(&prod, mode, &x.shape().with_dim(mode, rows))
        };
        prop_assert!(fast.max_abs_diff(&slow) < 1e-11);
    }

    #[test]
    fn ttm_is_linear((x, mode) in arb_tensor_with_mode(), alpha in -2.0f64..2.0) {
        let n_j = x.dim(mode);
        let m = Matrix::from_fn(2, n_j, |i, j| ((i + 2 * j) as f64 * 0.21).cos());
        let mut xs = x.clone();
        xs.scale(alpha);
        let mut y_scaled = ttm(&x, mode, &m, Transpose::No);
        y_scaled.scale(alpha);
        let y2 = ttm(&xs, mode, &m, Transpose::No);
        prop_assert!(y_scaled.max_abs_diff(&y2) < 1e-9);
    }

    #[test]
    fn gram_is_psd_with_norm_trace((x, mode) in arb_tensor_with_mode()) {
        let g = gram(&x, mode);
        // Symmetric.
        prop_assert!(g.max_abs_diff(&g.transpose()) < 1e-12);
        // Trace = squared norm.
        let trace: f64 = (0..g.rows()).map(|i| g[(i, i)]).sum();
        prop_assert!((trace - x.squared_norm_f64()).abs() < 1e-9);
        // Rayleigh quotients nonnegative on a probe vector.
        let v: Vec<f64> = (0..g.rows()).map(|i| ((i * 3 + 1) as f64).sin()).collect();
        let mut quad = 0.0;
        for i in 0..g.rows() {
            for j in 0..g.cols() {
                quad += v[i] * g[(i, j)] * v[j];
            }
        }
        prop_assert!(quad >= -1e-9);
    }

    #[test]
    fn contraction_generalizes_gram((x, mode) in arb_tensor_with_mode()) {
        let z = contract_all_but(&x, &x, mode);
        let g = gram(&x, mode);
        prop_assert!(z.max_abs_diff(&g) < 1e-11);
    }

    #[test]
    fn prefix_sums_match_subtensor_norms(x in arb_tensor()) {
        let p = prefix_squared_sums(&x);
        // Check a few corners including the full tensor.
        let dims = x.shape().dims().to_vec();
        let full: Vec<usize> = dims.clone();
        prop_assert!((leading_norm_sq(&p, &full) - x.squared_norm_f64()).abs() < 1e-9);
        let ones = vec![1; dims.len()];
        let first = x.get(&vec![0; dims.len()]);
        prop_assert!((leading_norm_sq(&p, &ones) - first * first).abs() < 1e-12);
    }

    #[test]
    fn leading_subtensor_norm_agrees_with_prefix(x in arb_tensor()) {
        let p = prefix_squared_sums(&x);
        let ranks: Vec<usize> = x.shape().dims().iter().map(|&n| n.div_ceil(2)).collect();
        let sub = x.leading_subtensor(&ranks);
        prop_assert!((sub.squared_norm_f64() - leading_norm_sq(&p, &ranks)).abs() < 1e-9);
    }

    #[test]
    fn multi_ttm_order_independent(x in tensor_strategy(vec![4, 3, 5])) {
        let a = Matrix::from_fn(2, 4, |i, j| ((i + j) as f64).sin());
        let c = Matrix::from_fn(2, 5, |i, j| ((i * 2 + j) as f64).cos());
        let fwd = multi_ttm(&x, &[(0, &a, Transpose::No), (2, &c, Transpose::No)]);
        let rev = multi_ttm(&x, &[(2, &c, Transpose::No), (0, &a, Transpose::No)]);
        prop_assert!(fwd.max_abs_diff(&rev) < 1e-10);
    }

    #[test]
    fn norm_invariant_under_orthonormal_ttm((x, mode) in arb_tensor_with_mode(), seed in 0u64..1000) {
        use rand::SeedableRng;
        let n_j = x.dim(mode);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let q: Matrix<f64> = ratucker_tensor::random::random_orthonormal(n_j, n_j, &mut rng);
        let y = ttm(&x, mode, &q, Transpose::Yes);
        prop_assert!((y.norm() - x.norm()).abs() < 1e-9);
    }
}
