//! Tensor shapes, strides, and multi-index arithmetic.
//!
//! Entries are stored mode-0-fastest ("generalized column-major"), matching
//! TuckerMPI's local layout: the linear offset of index `(i_0, …, i_{d-1})`
//! is `Σ_k i_k · stride_k` with `stride_k = Π_{m<k} n_m`.

use std::fmt;

/// The dimensions of a `d`-way tensor.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from its per-mode dimensions.
    ///
    /// # Panics
    /// Panics if `dims` is empty or any dimension is zero: degenerate
    /// tensors are never meaningful in the Tucker algorithms and allowing
    /// them would litter every kernel with guards.
    pub fn new(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "tensor must have at least one mode");
        assert!(
            dims.iter().all(|&n| n > 0),
            "tensor dimensions must be positive, got {dims:?}"
        );
        Shape(dims.to_vec())
    }

    /// Number of modes (`d`).
    #[inline]
    pub fn order(&self) -> usize {
        self.0.len()
    }

    /// Dimension of mode `j`.
    #[inline]
    pub fn dim(&self, mode: usize) -> usize {
        self.0[mode]
    }

    /// All dimensions as a slice.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Total number of entries `Π_k n_k`.
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.0.iter().product()
    }

    /// Stride of mode `j` in the linear layout: `Π_{m<j} n_m`.
    #[inline]
    pub fn stride(&self, mode: usize) -> usize {
        self.0[..mode].iter().product()
    }

    /// Product of dimensions strictly before `mode` (the "left" extent of
    /// the `[left, n_j, right]` slab view used by the TTM/Gram kernels).
    #[inline]
    pub fn left(&self, mode: usize) -> usize {
        self.stride(mode)
    }

    /// Product of dimensions strictly after `mode` (the "right" extent).
    #[inline]
    pub fn right(&self, mode: usize) -> usize {
        self.0[mode + 1..].iter().product()
    }

    /// Returns a copy with mode `j` replaced by `new_dim`.
    pub fn with_dim(&self, mode: usize, new_dim: usize) -> Shape {
        let mut dims = self.0.clone();
        dims[mode] = new_dim;
        Shape::new(&dims)
    }

    /// Linear offset of a multi-index.
    #[inline]
    pub fn linear_index(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.order());
        let mut off = 0;
        let mut stride = 1;
        for (k, &i) in idx.iter().enumerate() {
            debug_assert!(i < self.0[k], "index {i} out of bounds in mode {k}");
            off += i * stride;
            stride *= self.0[k];
        }
        off
    }

    /// Inverse of [`Shape::linear_index`].
    pub fn multi_index(&self, mut linear: usize) -> Vec<usize> {
        let mut idx = vec![0; self.order()];
        for (k, &n) in self.0.iter().enumerate() {
            idx[k] = linear % n;
            linear /= n;
        }
        debug_assert_eq!(linear, 0);
        idx
    }

    /// Column index of the multi-index in the mode-`j` unfolding, following
    /// Kolda's convention: the remaining modes vary with the *lower* modes
    /// fastest (mode `j` excluded).
    pub fn unfold_col(&self, mode: usize, idx: &[usize]) -> usize {
        let mut col = 0;
        let mut stride = 1;
        for (k, &i) in idx.iter().enumerate() {
            if k == mode {
                continue;
            }
            col += i * stride;
            stride *= self.0[k];
        }
        col
    }

    /// Iterator over all multi-indices in layout (mode-0-fastest) order.
    pub fn indices(&self) -> IndexIter {
        IndexIter {
            shape: self.0.clone(),
            next: Some(vec![0; self.order()]),
        }
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let strs: Vec<String> = self.0.iter().map(|n| n.to_string()).collect();
        write!(f, "{}", strs.join("x"))
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const D: usize> From<[usize; D]> for Shape {
    fn from(dims: [usize; D]) -> Self {
        Shape::new(&dims)
    }
}

/// Iterator produced by [`Shape::indices`].
pub struct IndexIter {
    shape: Vec<usize>,
    next: Option<Vec<usize>>,
}

impl Iterator for IndexIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let current = self.next.take()?;
        let mut succ = current.clone();
        for k in 0..self.shape.len() {
            succ[k] += 1;
            if succ[k] < self.shape[k] {
                self.next = Some(succ);
                break;
            }
            succ[k] = 0;
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_properties() {
        let s = Shape::new(&[3, 4, 5]);
        assert_eq!(s.order(), 3);
        assert_eq!(s.num_entries(), 60);
        assert_eq!(s.stride(0), 1);
        assert_eq!(s.stride(1), 3);
        assert_eq!(s.stride(2), 12);
        assert_eq!(s.left(1), 3);
        assert_eq!(s.right(1), 5);
        assert_eq!(s.with_dim(1, 7).dims(), &[3, 7, 5]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_dim() {
        Shape::new(&[3, 0, 5]);
    }

    #[test]
    #[should_panic(expected = "at least one mode")]
    fn rejects_empty() {
        Shape::new(&[]);
    }

    #[test]
    fn linear_index_roundtrip() {
        let s = Shape::new(&[2, 3, 4]);
        for lin in 0..s.num_entries() {
            let idx = s.multi_index(lin);
            assert_eq!(s.linear_index(&idx), lin);
        }
    }

    #[test]
    fn indices_cover_all_in_layout_order() {
        let s = Shape::new(&[2, 3]);
        let all: Vec<Vec<usize>> = s.indices().collect();
        assert_eq!(
            all,
            vec![
                vec![0, 0],
                vec![1, 0],
                vec![0, 1],
                vec![1, 1],
                vec![0, 2],
                vec![1, 2]
            ]
        );
    }

    #[test]
    fn unfold_col_mode0_matches_strides() {
        // For mode 0, the column index must equal the linear index of the
        // remaining modes in their own layout.
        let s = Shape::new(&[4, 3, 2]);
        assert_eq!(s.unfold_col(0, &[2, 1, 1]), 1 + 3);
        assert_eq!(s.unfold_col(1, &[2, 1, 1]), 2 + 4);
        assert_eq!(s.unfold_col(2, &[2, 1, 0]), 2 + 4);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Shape::new(&[10, 20]).to_string(), "10x20");
    }
}
