//! Multidimensional prefix sums.
//!
//! The rank-adaptive core analysis (paper §3.2) evaluates the norm of
//! *every* leading subtensor of the core in `O(d·r^d)` operations "by
//! employing a multidimensional prefix sum computation across the squares
//! of the core entries". This module provides that primitive:
//! `P[i] = Σ_{k ≤ i (componentwise)} G[k]²`, so that
//! `‖G(0..=i_0, …, 0..=i_{d-1})‖² = P[i]` in O(1) per query.

use crate::dense::DenseTensor;
use crate::scalar::Scalar;

/// Computes the inclusive prefix-sum tensor of squared entries.
///
/// Accumulation is in `f64` regardless of the input precision: the stopping
/// rule compares these sums against `(1−ε²)‖X‖²` and single-precision
/// accumulation over `r^d` terms would poison the rank decision.
pub fn prefix_squared_sums<T: Scalar>(g: &DenseTensor<T>) -> DenseTensor<f64> {
    let shape = g.shape().clone();
    let mut p = DenseTensor::from_vec(
        shape.clone(),
        g.data()
            .iter()
            .map(|&x| {
                let v = x.to_f64();
                v * v
            })
            .collect(),
    );
    crate::flops::add((shape.order() as u64 + 2) * g.num_entries() as u64);
    // One running-sum pass per mode turns elementwise squares into the
    // d-dimensional inclusive prefix sum.
    let d = shape.order();
    for mode in 0..d {
        let left = shape.left(mode);
        let n_j = shape.dim(mode);
        let right = shape.right(mode);
        let slab = left * n_j;
        let data = p.data_mut();
        for r in 0..right {
            let base = r * slab;
            for i in 1..n_j {
                let (prev, cur) =
                    data[base + (i - 1) * left..base + (i + 1) * left].split_at_mut(left);
                for l in 0..left {
                    cur[l] += prev[l];
                }
            }
        }
    }
    p
}

/// `‖G(0..r_0, …, 0..r_{d-1})‖²` read off a prefix tensor (`r_k ≥ 1`,
/// exclusive upper bounds as rank values).
#[inline]
pub fn leading_norm_sq(prefix: &DenseTensor<f64>, ranks: &[usize]) -> f64 {
    let idx: Vec<usize> = ranks.iter().map(|&r| r - 1).collect();
    prefix.get(&idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force_norm_sq(g: &DenseTensor<f64>, ranks: &[usize]) -> f64 {
        let mut acc = 0.0;
        for idx in g.shape().indices() {
            if idx.iter().zip(ranks).all(|(&i, &r)| i < r) {
                let v = g.get(&idx);
                acc += v * v;
            }
        }
        acc
    }

    #[test]
    fn prefix_matches_brute_force() {
        let g = DenseTensor::from_fn([3, 4, 2], |idx| {
            ((idx[0] * 7 + idx[1] * 3 + idx[2] + 1) as f64).sin()
        });
        let p = prefix_squared_sums(&g);
        for idx in g.shape().indices() {
            let ranks: Vec<usize> = idx.iter().map(|&i| i + 1).collect();
            let want = brute_force_norm_sq(&g, &ranks);
            let got = leading_norm_sq(&p, &ranks);
            assert!((got - want).abs() < 1e-12, "ranks {ranks:?}");
        }
    }

    #[test]
    fn full_prefix_equals_total_norm() {
        let g = DenseTensor::from_fn([2, 3, 2, 2], |idx| {
            (idx.iter().sum::<usize>() as f64 + 0.5).cos()
        });
        let p = prefix_squared_sums(&g);
        let full: Vec<usize> = g.shape().dims().to_vec();
        assert!((leading_norm_sq(&p, &full) - g.squared_norm_f64()).abs() < 1e-12);
    }

    #[test]
    fn prefix_is_monotone() {
        let g = DenseTensor::from_fn([4, 4], |idx| ((idx[0] + 2 * idx[1]) as f64).sin());
        let p = prefix_squared_sums(&g);
        for i in 1..4 {
            for j in 1..4 {
                assert!(
                    leading_norm_sq(&p, &[i + 1, j + 1]) >= leading_norm_sq(&p, &[i, j]) - 1e-15
                );
            }
        }
    }

    #[test]
    fn works_in_single_precision_input() {
        let g = DenseTensor::from_fn([3, 3], |idx| (idx[0] + idx[1]) as f32 * 0.5);
        let p = prefix_squared_sums(&g);
        assert!((leading_norm_sq(&p, &[1, 1]) - 0.0).abs() < 1e-12);
        assert!((leading_norm_sq(&p, &[2, 2]) - (0.25 + 0.25 + 1.0)).abs() < 1e-6);
    }
}
