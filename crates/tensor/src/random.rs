//! Random tensors, matrices, and normal variates.
//!
//! Normal sampling is a local Box–Muller transform over `rand`'s uniform
//! generator — the single place it is needed does not justify an extra
//! dependency (see DESIGN.md §3).

use crate::dense::DenseTensor;
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::shape::Shape;
use rand::Rng;

/// Draws one standard-normal variate via Box–Muller.
pub fn standard_normal<T: Scalar, R: Rng + ?Sized>(rng: &mut R) -> T {
    // u1 ∈ (0, 1] so ln(u1) is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    T::from_f64(z)
}

/// A tensor with i.i.d. standard-normal entries.
pub fn normal_tensor<T: Scalar, R: Rng + ?Sized>(
    shape: impl Into<Shape>,
    rng: &mut R,
) -> DenseTensor<T> {
    let shape = shape.into();
    let data = (0..shape.num_entries())
        .map(|_| standard_normal::<T, R>(rng))
        .collect();
    DenseTensor::from_vec(shape, data)
}

/// A matrix with i.i.d. standard-normal entries.
pub fn normal_matrix<T: Scalar, R: Rng + ?Sized>(
    rows: usize,
    cols: usize,
    rng: &mut R,
) -> Matrix<T> {
    Matrix::from_fn(rows, cols, |_, _| standard_normal::<T, R>(rng))
}

/// A matrix with orthonormal columns, built by Gram–Schmidt on a Gaussian
/// draw (`rows ≥ cols`). Used for random HOOI initialization (§2.2) and
/// for expanding factor matrices when the rank-adaptive loop grows ranks.
pub fn random_orthonormal<T: Scalar, R: Rng + ?Sized>(
    rows: usize,
    cols: usize,
    rng: &mut R,
) -> Matrix<T> {
    assert!(
        rows >= cols,
        "cannot build {cols} orthonormal columns in R^{rows}"
    );
    let mut q = normal_matrix::<T, R>(rows, cols, rng);
    orthonormalize_columns(&mut q, 0);
    q
}

/// Modified Gram–Schmidt with one reorthogonalization pass, orthonormalizing
/// columns `start..` against *all* earlier columns (columns `0..start` are
/// assumed orthonormal already — the rank-expansion case).
///
/// If a column is (numerically) dependent it is replaced by a fresh
/// deterministic pivot vector and the pass retried, so the routine always
/// returns a full set of orthonormal columns.
pub fn orthonormalize_columns<T: Scalar>(m: &mut Matrix<T>, start: usize) {
    let rows = m.rows();
    let cols = m.cols();
    assert!(rows >= cols, "more columns than rows cannot be orthonormal");
    for j in start..cols {
        let mut attempt = 0usize;
        loop {
            // Two MGS sweeps ("twice is enough").
            for _ in 0..2 {
                for k in 0..j {
                    let proj = {
                        let (ck, cj) = m.cols_mut_pair(k, j);
                        crate::kernels::dot(ck, cj)
                    };
                    let (ck, cj) = m.cols_mut_pair(k, j);
                    crate::kernels::axpy(-proj, ck, cj);
                }
            }
            let norm = crate::kernels::nrm2(m.col(j));
            if norm.to_f64() > 1e-10 {
                let inv = T::ONE / norm;
                crate::kernels::scal(inv, m.col_mut(j));
                break;
            }
            // Degenerate draw: replace with a canonical basis vector offset
            // by the attempt count, then re-orthogonalize.
            attempt += 1;
            assert!(attempt <= rows, "could not complete orthonormal basis");
            let col = m.col_mut(j);
            col.fill(T::ZERO);
            col[(j + attempt) % rows] = T::ONE;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0f64;
        let mut sq = 0.0f64;
        for _ in 0..n {
            let z: f64 = standard_normal(&mut rng);
            sum += z;
            sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn random_orthonormal_is_orthonormal() {
        let mut rng = StdRng::seed_from_u64(3);
        let q: Matrix<f64> = random_orthonormal(20, 7, &mut rng);
        assert!(q.orthonormality_defect() < 1e-12);
    }

    #[test]
    fn random_orthonormal_f32() {
        let mut rng = StdRng::seed_from_u64(4);
        let q: Matrix<f32> = random_orthonormal(15, 5, &mut rng);
        assert!(q.orthonormality_defect() < 1e-5);
    }

    #[test]
    fn extend_preserves_existing_columns() {
        let mut rng = StdRng::seed_from_u64(5);
        let q: Matrix<f64> = random_orthonormal(12, 3, &mut rng);
        let extra = normal_matrix::<f64, _>(12, 2, &mut rng);
        let mut ext = q.hcat(&extra);
        orthonormalize_columns(&mut ext, 3);
        assert!(ext.orthonormality_defect() < 1e-12);
        // First three columns untouched.
        for j in 0..3 {
            assert_eq!(ext.col(j), q.col(j));
        }
    }

    #[test]
    fn orthonormalize_recovers_from_dependent_columns() {
        // Columns 1 and 2 are identical — MGS must replace the duplicate.
        let mut m = Matrix::from_fn(5, 3, |i, j| if j == 0 { (i + 1) as f64 } else { 1.0 });
        orthonormalize_columns(&mut m, 0);
        assert!(m.orthonormality_defect() < 1e-12);
    }

    #[test]
    fn normal_tensor_has_right_shape() {
        let mut rng = StdRng::seed_from_u64(9);
        let t: DenseTensor<f32> = normal_tensor([3, 4, 5], &mut rng);
        assert_eq!(t.num_entries(), 60);
        assert!(t.norm() > 0.0);
    }
}
