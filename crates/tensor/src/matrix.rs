//! Dense column-major matrices.
//!
//! A [`Matrix`] is the 2-way specialization used for factor matrices,
//! Gram matrices, and the `Z` blocks of subspace iteration. Storage is
//! column-major (`a[i + j*rows]`), consistent with the tensor layout: the
//! mode-0 unfolding of a tensor *is* a column-major matrix over the same
//! buffer.

use crate::scalar::Scalar;
use ratucker_mem::{bytes_of, BudgetExceeded, Charge};
use std::fmt;

/// A dense column-major matrix.
///
/// The buffer is charged to the calling rank's `ratucker-mem` ledger
/// for the matrix's lifetime (the `charge` member releases on drop;
/// `Clone` re-charges). The infallible constructors track without
/// enforcing; [`Matrix::try_zeros`] additionally respects the budget.
#[derive(Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
    charge: Charge,
}

impl<T: Scalar> Matrix<T> {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
            charge: Charge::force(bytes_of::<T>(rows * cols)),
        }
    }

    /// A `rows × cols` zero matrix, charged against the rank's memory
    /// budget — refused (with nothing allocated) if it would not fit.
    pub fn try_zeros(rows: usize, cols: usize) -> Result<Self, BudgetExceeded> {
        let charge = Charge::try_new(bytes_of::<T>(rows * cols))?;
        Ok(Matrix {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
            charge,
        })
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Builds a matrix entry-wise from `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for j in 0..cols {
            for i in 0..rows {
                data.push(f(i, j));
            }
        }
        let charge = Charge::force(bytes_of::<T>(data.len()));
        Matrix {
            rows,
            cols,
            data,
            charge,
        }
    }

    /// Wraps an existing column-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        let charge = Charge::force(bytes_of::<T>(data.len()));
        Matrix {
            rows,
            cols,
            data,
            charge,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying column-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the underlying buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// `true` when every entry is finite (no NaN/Inf) — the screening
    /// predicate applied at distributed kernel boundaries.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite_s())
    }

    /// Column `j` as a contiguous slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[T] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutable column `j`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [T] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Two distinct mutable columns (`j1 != j2`), for in-place rotations.
    pub fn cols_mut_pair(&mut self, j1: usize, j2: usize) -> (&mut [T], &mut [T]) {
        assert_ne!(j1, j2);
        let r = self.rows;
        if j1 < j2 {
            let (a, b) = self.data.split_at_mut(j2 * r);
            (&mut a[j1 * r..j1 * r + r], &mut b[..r])
        } else {
            let (a, b) = self.data.split_at_mut(j1 * r);
            let col2 = &mut a[j2 * r..j2 * r + r];
            (&mut b[..r], col2)
        }
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Rows `offset..offset+len` as a new matrix (used for decompressing
    /// subtensors: slicing factor rows selects a spatial/temporal region).
    pub fn row_slice(&self, offset: usize, len: usize) -> Matrix<T> {
        assert!(
            offset + len <= self.rows,
            "row slice {offset}+{len} exceeds {} rows",
            self.rows
        );
        Matrix::from_fn(len, self.cols, |i, j| self[(offset + i, j)])
    }

    /// The first `k` columns as a new matrix (factor-matrix truncation).
    pub fn leading_cols(&self, k: usize) -> Matrix<T> {
        assert!(k <= self.cols, "cannot take {k} of {} columns", self.cols);
        Matrix {
            rows: self.rows,
            cols: k,
            data: self.data[..k * self.rows].to_vec(),
            charge: Charge::force(bytes_of::<T>(k * self.rows)),
        }
    }

    /// Appends the columns of `other` on the right (rank expansion).
    pub fn hcat(&self, other: &Matrix<T>) -> Matrix<T> {
        assert_eq!(self.rows, other.rows, "row mismatch in hcat");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        let charge = Charge::force(bytes_of::<T>(data.len()));
        Matrix {
            rows: self.rows,
            cols: self.cols + other.cols,
            data,
            charge,
        }
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> T {
        let mut acc = 0.0f64;
        for &x in &self.data {
            let v = x.to_f64();
            acc += v * v;
        }
        T::from_f64(acc.sqrt())
    }

    /// Largest absolute entry of `self - other` (test helper).
    pub fn max_abs_diff(&self, other: &Matrix<T>) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }

    /// `‖AᵀA − I‖_max`: deviation of the columns from orthonormality.
    pub fn orthonormality_defect(&self) -> f64 {
        let mut worst = 0.0f64;
        for j1 in 0..self.cols {
            for j2 in j1..self.cols {
                let dot: f64 = self
                    .col(j1)
                    .iter()
                    .zip(self.col(j2))
                    .map(|(&a, &b)| a.to_f64() * b.to_f64())
                    .sum();
                let target = if j1 == j2 { 1.0 } else { 0.0 };
                worst = worst.max((dot - target).abs());
            }
        }
        worst
    }

    /// Matrix product `self * other` (convenience wrapper over the GEMM
    /// kernel; hot paths call [`crate::kernels::gemm_nn`] directly).
    pub fn matmul(&self, other: &Matrix<T>) -> Matrix<T> {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch");
        let mut c = Matrix::zeros(self.rows, other.cols);
        crate::kernels::gemm_nn(
            self.rows,
            other.cols,
            self.cols,
            self.as_slice(),
            self.rows,
            other.as_slice(),
            other.rows,
            c.as_mut_slice(),
            self.rows,
        );
        c
    }

    /// `selfᵀ * other`.
    pub fn t_matmul(&self, other: &Matrix<T>) -> Matrix<T> {
        assert_eq!(self.rows, other.rows, "inner dimension mismatch");
        let mut c = Matrix::zeros(self.cols, other.cols);
        crate::kernels::gemm_tn(
            self.cols,
            other.cols,
            self.rows,
            self.as_slice(),
            self.rows,
            other.as_slice(),
            other.rows,
            c.as_mut_slice(),
            self.cols,
        );
        c
    }
}

impl<T: Scalar> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i + j * self.rows]
    }
}

impl<T: Scalar> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i + j * self.rows]
    }
}

impl<T: Scalar> fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        let show_cols = self.cols.min(8);
        for i in 0..show_rows {
            write!(f, "  ")?;
            for j in 0..show_cols {
                write!(f, "{:>12.5} ", self[(i, j)].to_f64())?;
            }
            if show_cols < self.cols {
                write!(f, "…")?;
            }
            writeln!(f)?;
        }
        if show_rows < self.rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_zeros_respects_the_budget() {
        ratucker_mem::install_rank(Some(100), 0);
        let ok = Matrix::<f64>::try_zeros(3, 4).expect("96 B fits");
        assert!(Matrix::<f64>::try_zeros(2, 2).is_err(), "32 B over budget");
        drop(ok);
        assert!(Matrix::<f64>::try_zeros(2, 2).is_ok());
        ratucker_mem::install_rank(None, 0);
    }

    #[test]
    fn index_and_columns() {
        let m = Matrix::from_fn(3, 2, |i, j| (i + 10 * j) as f64);
        assert_eq!(m[(2, 1)], 12.0);
        assert_eq!(m.col(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn all_finite_screens_nan_and_inf() {
        let mut m = Matrix::from_fn(3, 2, |i, j| (i + j) as f32);
        assert!(m.all_finite());
        m[(1, 1)] = f32::NAN;
        assert!(!m.all_finite());
        m[(1, 1)] = f32::INFINITY;
        assert!(!m.all_finite());
    }

    #[test]
    fn identity_times_anything() {
        let a = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64);
        let id = Matrix::identity(4);
        assert_eq!(id.matmul(&a).max_abs_diff(&a), 0.0);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(4, 3, |i, j| (i as f64) - (j as f64) * 0.5);
        assert_eq!(a.transpose().transpose().max_abs_diff(&a), 0.0);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Matrix::from_fn(5, 3, |i, j| ((i + j) as f64).sin());
        let b = Matrix::from_fn(5, 4, |i, j| ((2 * i + j) as f64).cos());
        let direct = a.t_matmul(&b);
        let explicit = a.transpose().matmul(&b);
        assert!(direct.max_abs_diff(&explicit) < 1e-12);
    }

    #[test]
    fn leading_cols_truncates() {
        let a = Matrix::from_fn(2, 3, |i, j| (i + 2 * j) as f32);
        let t = a.leading_cols(2);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.col(1), a.col(1));
    }

    #[test]
    fn hcat_appends() {
        let a = Matrix::from_fn(2, 1, |i, _| i as f64);
        let b = Matrix::from_fn(2, 2, |i, j| (10 + i + j) as f64);
        let c = a.hcat(&b);
        assert_eq!(c.cols(), 3);
        assert_eq!(c.col(0), a.col(0));
        assert_eq!(c.col(2), b.col(1));
    }

    #[test]
    fn orthonormality_defect_detects() {
        let id: Matrix<f64> = Matrix::identity(3);
        assert!(id.orthonormality_defect() < 1e-15);
        let mut bad = id.clone();
        bad[(0, 1)] = 0.5;
        assert!(bad.orthonormality_defect() > 0.4);
    }

    #[test]
    fn cols_mut_pair_both_orders() {
        let mut m = Matrix::from_fn(2, 3, |i, j| (i + 10 * j) as f64);
        {
            let (a, b) = m.cols_mut_pair(0, 2);
            std::mem::swap(&mut a[0], &mut b[0]);
        }
        assert_eq!(m[(0, 0)], 20.0);
        assert_eq!(m[(0, 2)], 0.0);
        {
            let (a, b) = m.cols_mut_pair(2, 0);
            std::mem::swap(&mut a[0], &mut b[0]);
        }
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(0, 2)], 20.0);
    }

    #[test]
    fn fro_norm_simple() {
        let m = Matrix::from_vec(2, 1, vec![3.0f64, 4.0]);
        assert!((m.fro_norm() - 5.0).abs() < 1e-15);
    }
}
