//! Explicit mode-`j` unfoldings.
//!
//! The production TTM/Gram kernels ([`crate::ttm`], [`crate::gram`]) never
//! materialize unfoldings; these explicit copies exist as the reference
//! implementation the fast paths are tested against, and for the rare
//! places (QR panel of small matrices) where a compact copy is genuinely
//! convenient.

use crate::dense::DenseTensor;
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::shape::Shape;

/// Materializes the mode-`j` unfolding `X_(j)` as an
/// `n_j × (N / n_j)` matrix (Kolda column ordering).
pub fn unfold<T: Scalar>(x: &DenseTensor<T>, mode: usize) -> Matrix<T> {
    let n_j = x.dim(mode);
    let ncols = x.num_entries() / n_j;
    let mut m = Matrix::zeros(n_j, ncols);
    let shape = x.shape();
    // Walk the tensor in layout order; for each entry compute its
    // (row, col) in the unfolding. The mode-0 case is a straight memcpy.
    if mode == 0 {
        m.as_mut_slice().copy_from_slice(x.data());
        return m;
    }
    let left = shape.left(mode);
    let right = shape.right(mode);
    // Layout order: linear = l + i*left + r*left*n_j.
    // Unfold column (Kolda) = l + r*left (lower modes fastest).
    let data = x.data();
    for r in 0..right {
        for i in 0..n_j {
            let src = (r * n_j + i) * left;
            for l in 0..left {
                m[(i, l + r * left)] = data[src + l];
            }
        }
    }
    m
}

/// Inverse of [`unfold`]: folds an `n_j × (N / n_j)` matrix back into a
/// tensor of the given shape along `mode`.
pub fn fold<T: Scalar>(m: &Matrix<T>, mode: usize, shape: &Shape) -> DenseTensor<T> {
    assert_eq!(m.rows(), shape.dim(mode), "row count must equal n_mode");
    assert_eq!(
        m.rows() * m.cols(),
        shape.num_entries(),
        "entry count mismatch in fold"
    );
    let mut t = DenseTensor::zeros(shape.clone());
    if mode == 0 {
        t.data_mut().copy_from_slice(m.as_slice());
        return t;
    }
    let left = shape.left(mode);
    let right = shape.right(mode);
    let n_j = shape.dim(mode);
    let data = t.data_mut();
    for r in 0..right {
        for i in 0..n_j {
            let dst = (r * n_j + i) * left;
            for l in 0..left {
                data[dst + l] = m[(i, l + r * left)];
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unfold_fold_roundtrip_all_modes() {
        let x = DenseTensor::from_fn([3, 4, 2, 5], |idx| {
            (idx[0] + 3 * idx[1] + 12 * idx[2] + 24 * idx[3]) as f64
        });
        for mode in 0..4 {
            let m = unfold(&x, mode);
            let back = fold(&m, mode, x.shape());
            assert_eq!(back.max_abs_diff(&x), 0.0, "mode {mode}");
        }
    }

    #[test]
    fn unfold_entries_match_definition() {
        // X_(j)[i_j, col] must equal X[idx] with col from Shape::unfold_col.
        let x = DenseTensor::from_fn([2, 3, 4], |idx| (idx[0] + 2 * idx[1] + 6 * idx[2]) as f32);
        for mode in 0..3 {
            let m = unfold(&x, mode);
            for idx in x.shape().indices() {
                let col = x.shape().unfold_col(mode, &idx);
                assert_eq!(m[(idx[mode], col)], x.get(&idx), "mode {mode} idx {idx:?}");
            }
        }
    }

    #[test]
    fn unfold_mode0_is_memcpy() {
        let x = DenseTensor::from_fn([4, 6], |idx| (idx[0] * 10 + idx[1]) as f64);
        let m = unfold(&x, 0);
        assert_eq!(m.as_slice(), x.data());
    }

    #[test]
    fn fold_rejects_wrong_shape() {
        let m: Matrix<f64> = Matrix::zeros(3, 4);
        let shape = Shape::new(&[3, 2, 2]);
        let t = fold(&m, 0, &shape);
        assert_eq!(t.num_entries(), 12);
    }

    #[test]
    #[should_panic(expected = "entry count mismatch")]
    fn fold_panics_on_count_mismatch() {
        let m: Matrix<f64> = Matrix::zeros(3, 5);
        let shape = Shape::new(&[3, 2, 2]);
        fold(&m, 0, &shape);
    }
}
