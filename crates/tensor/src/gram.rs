//! Gram matrices of tensor unfoldings.
//!
//! `G = X_(j) X_(j)ᵀ` is the `n_j × n_j` symmetric positive semidefinite
//! matrix whose leading eigenvectors are the leading left singular vectors
//! of the unfolding — the LLSV building block of STHOSVD (Alg. 1) and of
//! the Gram+EVD variants of HOOI (Alg. 2). Computed slab-wise without
//! materializing the unfolding.

use crate::dense::DenseTensor;
use crate::kernels;
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Computes `X_(mode) · X_(mode)ᵀ`.
pub fn gram<T: Scalar>(x: &DenseTensor<T>, mode: usize) -> Matrix<T> {
    let n_j = x.dim(mode);
    let mut g = Matrix::zeros(n_j, n_j);
    gram_accumulate(x, mode, &mut g);
    g
}

/// Accumulates `X_(mode) · X_(mode)ᵀ` into `g` (distributed callers sum
/// local contributions into a shared output before an allreduce).
pub fn gram_accumulate<T: Scalar>(x: &DenseTensor<T>, mode: usize, g: &mut Matrix<T>) {
    let n_j = x.dim(mode);
    assert_eq!(g.rows(), n_j, "Gram output must be n_mode x n_mode");
    assert_eq!(g.cols(), n_j, "Gram output must be n_mode x n_mode");

    if mode == 0 {
        // X_(0) is the natural n_0 × rest view: one symmetric rank-k
        // update G += X_(0) X_(0)ᵀ.
        let rest = x.num_entries() / n_j;
        kernels::syrk_nt(n_j, rest, x.data(), n_j, g.as_mut_slice(), n_j);
        return;
    }

    let left = x.shape().left(mode);
    let right = x.shape().right(mode);
    let slab = left * n_j;

    let total_fl = (n_j as u64) * (n_j as u64 + 1) * (left as u64) * (right as u64);
    let nt = crate::par::num_threads();
    if nt > 1 && right >= 2 && n_j >= 2 && total_fl >= crate::par::PAR_MIN_FLOPS {
        // Split G's *columns* across the pool; every worker sweeps ALL
        // slabs in ascending order for its columns, so each Gram entry
        // sees the same ascending (slab, k) accumulation chain as the
        // serial per-slab loop below — bit-identical at any worker
        // count. The mirror runs once at the end (the serial path's
        // per-slab mirrors are overwrites of the same lower triangle,
        // so the final bits agree). Formula flops for the whole update
        // are charged on the calling rank thread.
        crate::flops::add(total_fl);
        let xdata = x.data();
        let ranges = crate::par::partition(n_j, nt.min(n_j));
        let parts = crate::par::split_columns(g.as_mut_slice(), n_j, &ranges);
        crate::par::for_each_part(parts, |_, (cols, gsub)| {
            for r in 0..right {
                let a = &xdata[r * slab..(r + 1) * slab];
                kernels::syrk_trapezoid(n_j, left, a, left, false, cols.clone(), gsub, n_j);
            }
        });
        kernels::mirror_lower(n_j, g.as_mut_slice(), n_j);
        return;
    }

    // Each slab A_r is left × n_j; G += A_rᵀ A_r.
    for r in 0..right {
        let a = &x.data()[r * slab..(r + 1) * slab];
        kernels::syrk_tn(n_j, left, a, left, g.as_mut_slice(), n_j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unfold::unfold;

    fn test_tensor(dims: &[usize]) -> DenseTensor<f64> {
        DenseTensor::from_fn(crate::shape::Shape::new(dims), |idx| {
            let mut v = 0.3;
            for (k, &i) in idx.iter().enumerate() {
                v += ((k + 1) * (i + 1)) as f64 * 0.07;
            }
            v.cos()
        })
    }

    #[test]
    fn gram_matches_unfold_reference() {
        let x = test_tensor(&[4, 3, 5, 2]);
        for mode in 0..4 {
            let unf = unfold(&x, mode);
            let want = unf.matmul(&unf.transpose());
            let got = gram(&x, mode);
            assert!(got.max_abs_diff(&want) < 1e-11, "mode {mode}");
        }
    }

    #[test]
    fn gram_is_symmetric_psd_trace() {
        let x = test_tensor(&[3, 6, 2]);
        for mode in 0..3 {
            let g = gram(&x, mode);
            // Symmetry.
            assert!(g.max_abs_diff(&g.transpose()) < 1e-12);
            // trace(G) = ‖X‖².
            let trace: f64 = (0..g.rows()).map(|i| g[(i, i)]).sum();
            assert!((trace - x.squared_norm_f64()).abs() < 1e-10, "mode {mode}");
            // Diagonal nonnegative.
            for i in 0..g.rows() {
                assert!(g[(i, i)] >= -1e-14);
            }
        }
    }

    #[test]
    fn gram_accumulate_sums_contributions() {
        let x = test_tensor(&[3, 4]);
        let mut g = gram(&x, 1);
        let single = g.clone();
        gram_accumulate(&x, 1, &mut g);
        // Accumulating a second time doubles every entry.
        for i in 0..g.rows() {
            for j in 0..g.cols() {
                assert!((g[(i, j)] - 2.0 * single[(i, j)]).abs() < 1e-12);
            }
        }
    }
}
