//! Dense `d`-way tensor substrate for the RA-HOOI reproduction.
//!
//! This crate provides the local (single-address-space) tensor machinery
//! that TuckerMPI supplies in C++: generalized column-major dense tensors,
//! mode-`j` unfoldings, tensor-times-matrix (TTM) products, unfolding Gram
//! matrices, the all-but-one contraction needed by subspace iteration, and
//! multidimensional prefix sums for the rank-adaptive core analysis. It
//! also hosts the workspace's low-level GEMM kernels and flop accounting.
//!
//! Layout convention throughout: entries are stored mode-0-fastest, so the
//! mode-0 unfolding is a zero-copy column-major matrix view.
//!
//! # Example
//!
//! ```
//! use ratucker_tensor::prelude::*;
//!
//! let x = DenseTensor::from_fn([4, 3, 2], |idx| (idx[0] + idx[1] + idx[2]) as f64);
//! // TTM with a 2x3 matrix in mode 1 shrinks that mode to 2.
//! let m = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
//! let y = ttm(&x, 1, &m, Transpose::No);
//! assert_eq!(y.shape().dims(), &[4, 2, 2]);
//! // Entry check against the definition Y_(1) = M · X_(1).
//! let want: f64 = (0..3).map(|k| m[(0, k)] * x.get(&[1, k, 1])).sum();
//! assert_eq!(y.get(&[1, 0, 1]), want);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contract;
pub mod dense;
pub mod flops;
pub mod gram;
pub mod io;
pub mod kernels;
pub mod matrix;
pub mod par;
pub mod prefix;
pub mod random;
pub mod scalar;
pub mod shape;
pub mod ttm;
pub mod unfold;

pub use contract::{contract_all_but, contract_all_but_accumulate};
pub use dense::DenseTensor;
pub use gram::{gram, gram_accumulate};
pub use matrix::Matrix;
pub use prefix::{leading_norm_sq, prefix_squared_sums};
pub use scalar::Scalar;
pub use shape::Shape;
pub use ttm::{multi_ttm, multi_ttm_all_but, ttm, ttm_right_range, Transpose};
pub use unfold::{fold, unfold};

/// Common imports.
pub mod prelude {
    pub use crate::dense::DenseTensor;
    pub use crate::matrix::Matrix;
    pub use crate::scalar::Scalar;
    pub use crate::shape::Shape;
    pub use crate::ttm::{multi_ttm, multi_ttm_all_but, ttm, ttm_right_range, Transpose};
}
