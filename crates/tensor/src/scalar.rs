//! Floating-point scalar abstraction.
//!
//! All numerical code in the workspace is generic over [`Scalar`] so that
//! the synthetic experiments can run in single precision (as in the paper's
//! §4.1) while the HCCI/SP-like datasets run in double precision (§4.2.2).

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real floating-point scalar (`f32` or `f64`).
///
/// The trait deliberately exposes only the operations the kernels need;
/// everything is a thin wrapper over the primitive method of the same name.
pub trait Scalar:
    Copy
    + Send
    + Sync
    + 'static
    + Debug
    + Display
    + PartialOrd
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + Default
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon of the underlying type.
    const EPSILON: Self;

    /// Lossy conversion from `f64` (used for constants and tolerances).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64` (used for accumulation and reporting).
    fn to_f64(self) -> f64;
    /// Conversion from a `usize` count.
    fn from_usize(v: usize) -> Self {
        Self::from_f64(v as f64)
    }
    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Fused multiply-add `self * a + b` (maps to the hardware FMA when
    /// available; the GEMM inner loops depend on this for throughput).
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// `max` that ignores NaN ordering subtleties (inputs are finite here).
    fn max_s(self, other: Self) -> Self {
        if self > other {
            self
        } else {
            other
        }
    }
    /// `min` counterpart of [`Scalar::max_s`].
    fn min_s(self, other: Self) -> Self {
        if self < other {
            self
        } else {
            other
        }
    }
    /// Euclidean hypotenuse, overflow-safe.
    fn hypot(self, other: Self) -> Self;
    /// Sign-transfer: |self| * sign(other), LAPACK's `SIGN`.
    fn copysign_s(self, other: Self) -> Self;
    /// True if the value is finite (not NaN/inf).
    fn is_finite_s(self) -> bool;
}

macro_rules! impl_scalar {
    ($t:ty) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const EPSILON: Self = <$t>::EPSILON;

            #[inline(always)]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                self.sqrt()
            }
            #[inline(always)]
            fn abs(self) -> Self {
                self.abs()
            }
            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                self.mul_add(a, b)
            }
            #[inline(always)]
            fn hypot(self, other: Self) -> Self {
                self.hypot(other)
            }
            #[inline(always)]
            fn copysign_s(self, other: Self) -> Self {
                self.copysign(other)
            }
            #[inline(always)]
            fn is_finite_s(self) -> bool {
                self.is_finite()
            }
        }
    };
}

impl_scalar!(f32);
impl_scalar!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_roundtrip<T: Scalar>() {
        assert_eq!(T::ZERO.to_f64(), 0.0);
        assert_eq!(T::ONE.to_f64(), 1.0);
        let x = T::from_f64(2.25);
        assert_eq!(x.to_f64(), 2.25);
        assert_eq!(x.sqrt().to_f64(), 1.5);
        assert_eq!((-x).abs().to_f64(), 2.25);
        assert_eq!(T::from_usize(7).to_f64(), 7.0);
    }

    #[test]
    fn roundtrip_f32() {
        generic_roundtrip::<f32>();
    }

    #[test]
    fn roundtrip_f64() {
        generic_roundtrip::<f64>();
    }

    #[test]
    fn mul_add_matches() {
        let a = 1.5f64;
        assert_eq!(a.mul_add(2.0, 3.0), Scalar::mul_add(a, 2.0, 3.0));
    }

    #[test]
    fn minmax_ignore_order() {
        assert_eq!(2.0f32.max_s(3.0), 3.0);
        assert_eq!(2.0f32.min_s(3.0), 2.0);
    }

    #[test]
    fn copysign_transfers_sign() {
        assert_eq!(3.0f64.copysign_s(-1.0), -3.0);
        assert_eq!((-3.0f64).copysign_s(1.0), 3.0);
    }
}
