//! Raw binary tensor I/O.
//!
//! TuckerMPI consumes scientific datasets as raw little-endian arrays of
//! `f32`/`f64` (the Miranda preprocessing step of the paper's artifact
//! produces exactly that). This module reads and writes that format, plus
//! a small self-describing header variant (`.rtt`, "ratucker tensor") so
//! round trips do not need out-of-band shape information.
//!
//! Block reads ([`read_block_raw`]) let each rank of a distributed run
//! load only its own sub-block with seeks, without materializing the full
//! tensor anywhere.

use crate::dense::DenseTensor;
use crate::scalar::Scalar;
use crate::shape::Shape;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Magic bytes of the self-describing format.
const MAGIC: &[u8; 4] = b"RTT1";

/// Element types representable in the headers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ElemType {
    /// 32-bit float.
    F32,
    /// 64-bit float.
    F64,
}

impl ElemType {
    fn code(self) -> u8 {
        match self {
            ElemType::F32 => 4,
            ElemType::F64 => 8,
        }
    }

    fn from_code(c: u8) -> io::Result<ElemType> {
        match c {
            4 => Ok(ElemType::F32),
            8 => Ok(ElemType::F64),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown element type code {other}"),
            )),
        }
    }

    /// Size in bytes.
    pub fn size(self) -> usize {
        self.code() as usize
    }
}

/// A [`Scalar`] with a fixed on-disk little-endian encoding.
pub trait IoScalar: Scalar {
    /// The element type tag.
    const ELEM: ElemType;
    /// Encodes into little-endian bytes.
    fn write_le(self, buf: &mut Vec<u8>);
    /// Decodes from little-endian bytes (`bytes.len() == ELEM.size()`).
    fn read_le(bytes: &[u8]) -> Self;
}

impl IoScalar for f32 {
    const ELEM: ElemType = ElemType::F32;
    fn write_le(self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn read_le(bytes: &[u8]) -> Self {
        f32::from_le_bytes(bytes.try_into().expect("4 bytes"))
    }
}

impl IoScalar for f64 {
    const ELEM: ElemType = ElemType::F64;
    fn write_le(self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn read_le(bytes: &[u8]) -> Self {
        f64::from_le_bytes(bytes.try_into().expect("8 bytes"))
    }
}

fn encode_elems<T: IoScalar>(data: &[T]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(data.len() * T::ELEM.size());
    for &x in data {
        x.write_le(&mut buf);
    }
    buf
}

fn decode_elems<T: IoScalar>(bytes: &[u8]) -> io::Result<Vec<T>> {
    let es = T::ELEM.size();
    if !bytes.len().is_multiple_of(es) {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "byte count not a multiple of the element size",
        ));
    }
    Ok(bytes.chunks_exact(es).map(T::read_le).collect())
}

/// Writes a tensor as a headerless raw little-endian array (TuckerMPI's
/// input convention; layout order = this crate's layout order).
pub fn write_raw<T: IoScalar>(path: impl AsRef<Path>, x: &DenseTensor<T>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&encode_elems(x.data()))?;
    w.flush()
}

/// Reads a headerless raw array; the shape must be supplied (as the
/// paper's drivers do via the parameter file's `Global dims`).
pub fn read_raw<T: IoScalar>(
    path: impl AsRef<Path>,
    shape: impl Into<Shape>,
) -> io::Result<DenseTensor<T>> {
    let shape = shape.into();
    let mut bytes = Vec::new();
    BufReader::new(File::open(path)?).read_to_end(&mut bytes)?;
    let data: Vec<T> = decode_elems(&bytes)?;
    if data.len() != shape.num_entries() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "file holds {} elements but shape {shape} needs {}",
                data.len(),
                shape.num_entries()
            ),
        ));
    }
    Ok(DenseTensor::from_vec(shape, data))
}

/// Writes a tensor with a self-describing header
/// (`RTT1 | elem-code u8 | order u8 | dims u64×d | payload`).
pub fn write_rtt<T: IoScalar>(path: impl AsRef<Path>, x: &DenseTensor<T>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&[T::ELEM.code(), x.order() as u8])?;
    for k in 0..x.order() {
        w.write_all(&(x.dim(k) as u64).to_le_bytes())?;
    }
    w.write_all(&encode_elems(x.data()))?;
    w.flush()
}

/// Reads the header of a self-describing file: `(elem type, shape)`.
pub fn read_rtt_header(path: impl AsRef<Path>) -> io::Result<(ElemType, Shape)> {
    let mut r = BufReader::new(File::open(path)?);
    read_header(&mut r)
}

fn read_header<R: Read>(r: &mut R) -> io::Result<(ElemType, Shape)> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not an RTT1 file",
        ));
    }
    let mut meta = [0u8; 2];
    r.read_exact(&mut meta)?;
    let elem = ElemType::from_code(meta[0])?;
    let order = meta[1] as usize;
    if order == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "zero-order tensor",
        ));
    }
    let mut dims = Vec::with_capacity(order);
    for _ in 0..order {
        let mut b = [0u8; 8];
        r.read_exact(&mut b)?;
        dims.push(u64::from_le_bytes(b) as usize);
    }
    Ok((elem, Shape::new(&dims)))
}

/// Reads a self-describing tensor file.
pub fn read_rtt<T: IoScalar>(path: impl AsRef<Path>) -> io::Result<DenseTensor<T>> {
    let mut r = BufReader::new(File::open(path)?);
    let (elem, shape) = read_header(&mut r)?;
    if elem != T::ELEM {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("file stores {elem:?}, requested {:?}", T::ELEM),
        ));
    }
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    let data: Vec<T> = decode_elems(&bytes)?;
    if data.len() != shape.num_entries() {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "truncated payload",
        ));
    }
    Ok(DenseTensor::from_vec(shape, data))
}

/// Reads one block `offset[k]..offset[k]+len[k]` of a headerless raw
/// tensor of global shape `global`, seeking over the file so only the
/// block's bytes are read — what each rank of a distributed run does.
pub fn read_block_raw<T: IoScalar>(
    path: impl AsRef<Path>,
    global: &Shape,
    offsets: &[usize],
    lens: &[usize],
) -> io::Result<DenseTensor<T>> {
    assert_eq!(offsets.len(), global.order());
    assert_eq!(lens.len(), global.order());
    for k in 0..global.order() {
        assert!(
            offsets[k] + lens[k] <= global.dim(k),
            "block exceeds mode {k}"
        );
    }
    let es = T::ELEM.size();
    let mut f = File::open(path)?;
    let local_shape = Shape::new(lens);
    let run = lens[0];
    let mut out: Vec<T> = Vec::with_capacity(local_shape.num_entries());
    let mut buf = vec![0u8; run * es];
    // Iterate over all non-mode-0 local indices; each is one contiguous
    // run of `lens[0]` elements in the file.
    let outer_shape = Shape::new(&lens[1..].iter().map(|&l| l.max(1)).collect::<Vec<_>>());
    let mut gidx = vec![0usize; global.order()];
    for outer in outer_shape.indices() {
        gidx[0] = offsets[0];
        for (k, &i) in outer.iter().enumerate() {
            gidx[k + 1] = offsets[k + 1] + i;
        }
        let pos = global.linear_index(&gidx) * es;
        f.seek(SeekFrom::Start(pos as u64))?;
        f.read_exact(&mut buf)?;
        out.extend(decode_elems::<T>(&buf)?);
    }
    Ok(DenseTensor::from_vec(local_shape, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ratucker_io_test_{}_{name}", std::process::id()));
        p
    }

    fn sample() -> DenseTensor<f64> {
        DenseTensor::from_fn([3, 4, 2], |idx| {
            (idx[0] + 10 * idx[1] + 100 * idx[2]) as f64
        })
    }

    #[test]
    fn raw_roundtrip() {
        let p = tmp("raw");
        let x = sample();
        write_raw(&p, &x).unwrap();
        let back: DenseTensor<f64> = read_raw(&p, [3, 4, 2]).unwrap();
        assert_eq!(back.max_abs_diff(&x), 0.0);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn raw_shape_mismatch_is_error() {
        let p = tmp("raw_mismatch");
        write_raw(&p, &sample()).unwrap();
        let err = read_raw::<f64>(&p, [3, 4, 3]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn rtt_roundtrip_with_header() {
        let p = tmp("rtt");
        let x = sample();
        write_rtt(&p, &x).unwrap();
        let (elem, shape) = read_rtt_header(&p).unwrap();
        assert_eq!(elem, ElemType::F64);
        assert_eq!(shape.dims(), &[3, 4, 2]);
        let back: DenseTensor<f64> = read_rtt(&p).unwrap();
        assert_eq!(back.max_abs_diff(&x), 0.0);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn rtt_f32_roundtrip() {
        let p = tmp("rtt32");
        let x = DenseTensor::from_fn([5, 2], |idx| (idx[0] as f32) - 0.5 * idx[1] as f32);
        write_rtt(&p, &x).unwrap();
        let back: DenseTensor<f32> = read_rtt(&p).unwrap();
        assert_eq!(back.max_abs_diff(&x), 0.0);
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn rtt_wrong_precision_is_error() {
        let p = tmp("rtt_wrong");
        write_rtt(&p, &sample()).unwrap();
        assert!(read_rtt::<f32>(&p).is_err());
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn rtt_rejects_garbage() {
        let p = tmp("garbage");
        std::fs::write(&p, b"not a tensor at all").unwrap();
        assert!(read_rtt::<f64>(&p).is_err());
        std::fs::remove_file(p).unwrap();
    }

    #[test]
    fn block_read_matches_leading_and_interior_blocks() {
        let p = tmp("block");
        let x = sample();
        write_raw(&p, &x).unwrap();
        // Interior block.
        let block: DenseTensor<f64> =
            read_block_raw(&p, x.shape(), &[1, 1, 0], &[2, 2, 2]).unwrap();
        assert_eq!(block.shape().dims(), &[2, 2, 2]);
        for idx in block.shape().indices() {
            let gidx = [idx[0] + 1, idx[1] + 1, idx[2]];
            assert_eq!(block.get(&idx), x.get(&gidx), "{idx:?}");
        }
        // Full-tensor "block".
        let full: DenseTensor<f64> = read_block_raw(&p, x.shape(), &[0, 0, 0], &[3, 4, 2]).unwrap();
        assert_eq!(full.max_abs_diff(&x), 0.0);
        std::fs::remove_file(p).unwrap();
    }
}
