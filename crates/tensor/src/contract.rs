//! All-but-one tensor contractions.
//!
//! The subspace-iteration LLSV (Alg. 5, line 3) needs `Z = A · Gᵀ` where
//! `A = Y_(j)` is the unfolding of the all-but-one multi-TTM result and
//! `G = G_(j)` is the matching unfolding of the current core. Written on
//! tensors, `Z[a, b] = Σ_{i : i_j = a} Y[i] · G[i with i_j ← b]` — a
//! contraction over every mode except `j` between two tensors that agree
//! in all non-`j` dimensions. The paper notes this kernel did not exist in
//! TuckerMPI and "mimics the computation of the Gram matrix … but is a
//! nonsymmetric operation" (§3.4); this module is that kernel.

use crate::dense::DenseTensor;
use crate::kernels;
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Computes `Z = Y_(mode) · G_(mode)ᵀ` (an `n_mode × r_mode` matrix)
/// without materializing either unfolding.
///
/// # Panics
/// Panics if `y` and `g` differ in any dimension other than `mode`.
pub fn contract_all_but<T: Scalar>(
    y: &DenseTensor<T>,
    g: &DenseTensor<T>,
    mode: usize,
) -> Matrix<T> {
    let mut z = Matrix::zeros(y.dim(mode), g.dim(mode));
    contract_all_but_accumulate(y, g, mode, &mut z);
    z
}

/// Accumulating form of [`contract_all_but`], for distributed partial sums.
pub fn contract_all_but_accumulate<T: Scalar>(
    y: &DenseTensor<T>,
    g: &DenseTensor<T>,
    mode: usize,
    z: &mut Matrix<T>,
) {
    assert_eq!(y.order(), g.order(), "order mismatch in contraction");
    for k in 0..y.order() {
        if k != mode {
            assert_eq!(
                y.dim(k),
                g.dim(k),
                "contraction requires matching dims in mode {k} (got {} vs {})",
                y.dim(k),
                g.dim(k)
            );
        }
    }
    let n_j = y.dim(mode);
    let r_j = g.dim(mode);
    assert_eq!(z.rows(), n_j);
    assert_eq!(z.cols(), r_j);

    if mode == 0 {
        // Z = Y_(0) · G_(0)ᵀ on the natural views: (n_0 × rest)·(rest × r_0).
        let rest = y.num_entries() / n_j;
        kernels::gemm_nt(
            n_j,
            r_j,
            rest,
            y.data(),
            n_j,
            g.data(),
            r_j,
            z.as_mut_slice(),
            n_j,
        );
        return;
    }

    let left = y.shape().left(mode);
    let right = y.shape().right(mode);
    let y_slab = left * n_j;
    let g_slab = left * r_j;
    // Z += A_rᵀ B_r for each right slab (A_r : left×n_j, B_r : left×r_j).
    for r in 0..right {
        let a = &y.data()[r * y_slab..(r + 1) * y_slab];
        let b = &g.data()[r * g_slab..(r + 1) * g_slab];
        kernels::gemm_tn(n_j, r_j, left, a, left, b, left, z.as_mut_slice(), n_j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unfold::unfold;

    fn tensor_from_seed(dims: &[usize], seed: f64) -> DenseTensor<f64> {
        DenseTensor::from_fn(crate::shape::Shape::new(dims), |idx| {
            let mut v = seed;
            for (k, &i) in idx.iter().enumerate() {
                v += ((k + 1) * (i + 2)) as f64 * 0.13;
            }
            v.sin()
        })
    }

    #[test]
    fn contraction_matches_unfold_reference() {
        let dims_y = [4, 3, 5];
        for mode in 0..3 {
            let mut dims_g = dims_y;
            dims_g[mode] = 2; // r_mode != n_mode
            let y = tensor_from_seed(&dims_y, 0.1);
            let g = tensor_from_seed(&dims_g, 0.7);
            let want = unfold(&y, mode).matmul(&unfold(&g, mode).transpose());
            let got = contract_all_but(&y, &g, mode);
            assert!(got.max_abs_diff(&want) < 1e-11, "mode {mode}");
        }
    }

    #[test]
    fn contraction_with_self_equals_gram() {
        let y = tensor_from_seed(&[3, 4, 2], 0.2);
        for mode in 0..3 {
            let z = contract_all_but(&y, &y, mode);
            let g = crate::gram::gram(&y, mode);
            assert!(z.max_abs_diff(&g) < 1e-11, "mode {mode}");
        }
    }

    #[test]
    fn accumulate_form_sums() {
        let y = tensor_from_seed(&[3, 4], 0.3);
        let g = tensor_from_seed(&[3, 2], 0.9);
        let once = contract_all_but(&y, &g, 1);
        let mut acc = once.clone();
        contract_all_but_accumulate(&y, &g, 1, &mut acc);
        for i in 0..acc.rows() {
            for j in 0..acc.cols() {
                assert!((acc[(i, j)] - 2.0 * once[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "matching dims")]
    fn rejects_mismatched_free_modes() {
        let y: DenseTensor<f64> = DenseTensor::zeros([3, 4]);
        let g: DenseTensor<f64> = DenseTensor::zeros([3, 5]);
        contract_all_but(&y, &g, 0);
    }
}
