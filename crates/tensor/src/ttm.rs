//! Tensor-times-matrix (TTM) products.
//!
//! `Y = X ×_j M` is defined by `Y_(j) = M · X_(j)`. The kernel never forms
//! the unfolding: with the mode-0-fastest layout, `X` viewed along mode `j`
//! is a stack of `right` contiguous `left × n_j` slabs, and each output
//! slab is one GEMM. Mode 0 collapses to a single large GEMM on the
//! natural matrix view.
//!
//! In the Tucker algorithms the matrix is almost always a *factor matrix
//! transposed* (`X ×_j U_jᵀ` with `U_j ∈ ℝ^{n_j×r_j}`), so the API takes
//! the factor as stored plus a [`Transpose`] flag rather than forcing
//! callers to materialize `Uᵀ`.

use crate::dense::DenseTensor;
use crate::kernels;
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Whether the matrix operand of a TTM is applied as stored or transposed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transpose {
    /// `Y_(j) = M · X_(j)` with `M : p × n_j`.
    No,
    /// `Y_(j) = Mᵀ · X_(j)` with `M : n_j × p` (the factor-matrix case).
    Yes,
}

/// Computes `Y = X ×_mode op(M)`.
///
/// # Panics
/// Panics if the inner dimension of `op(M)` does not match `n_mode`.
pub fn ttm<T: Scalar>(
    x: &DenseTensor<T>,
    mode: usize,
    m: &Matrix<T>,
    trans: Transpose,
) -> DenseTensor<T> {
    let n_j = x.dim(mode);
    let (p, inner) = match trans {
        Transpose::No => (m.rows(), m.cols()),
        Transpose::Yes => (m.cols(), m.rows()),
    };
    assert_eq!(
        inner, n_j,
        "TTM inner dimension mismatch in mode {mode}: op(M) is ?x{inner}, n_mode={n_j}"
    );
    let out_shape = x.shape().with_dim(mode, p);
    let mut y = DenseTensor::zeros(out_shape);

    if mode == 0 {
        // Single GEMM on the natural n_0 × (N/n_0) views.
        let rest = x.num_entries() / n_j;
        match trans {
            Transpose::No => kernels::gemm_nn(
                p,
                rest,
                n_j,
                m.as_slice(),
                p,
                x.data(),
                n_j,
                y.data_mut(),
                p,
            ),
            Transpose::Yes => kernels::gemm_tn(
                p,
                rest,
                n_j,
                m.as_slice(),
                n_j,
                x.data(),
                n_j,
                y.data_mut(),
                p,
            ),
        }
        return y;
    }

    let left = x.shape().left(mode);
    let right = x.shape().right(mode);
    let x_slab = left * n_j;
    let y_slab = left * p;
    // C_r (left×p) = A_r (left×n_j) · op(M): Transpose::No applies Mᵀ
    // (M : p × n_j), Transpose::Yes applies M as stored (M : n_j × p).
    let bt = trans == Transpose::No;
    let ldb = if bt { p } else { n_j };

    let total_fl = 2 * (left as u64) * (p as u64) * (n_j as u64) * (right as u64);
    let nt = crate::par::num_threads();
    if nt > 1 && right >= nt && total_fl >= crate::par::PAR_MIN_FLOPS {
        // Enough slabs to feed every worker: split the *slab batch*
        // across the pool (each output slab is written by exactly one
        // worker, so the per-element accumulation order is unchanged and
        // the result is bit-identical to the serial loop below). The
        // flop formula for the whole batch is charged on the calling
        // rank thread, matching the accounting convention in `flops`.
        crate::flops::add(total_fl);
        let xdata = x.data();
        let mslice = m.as_slice();
        let ranges = crate::par::partition(right, nt);
        let parts = crate::par::split_columns(y.data_mut(), y_slab, &ranges);
        crate::par::for_each_part(parts, |_, (slabs, ysub)| {
            for (off, c) in ysub.chunks_exact_mut(y_slab).enumerate() {
                let r = slabs.start + off;
                let a = &xdata[r * x_slab..(r + 1) * x_slab];
                kernels::gemm_serial(left, p, n_j, a, left, false, mslice, ldb, bt, c, left);
            }
        });
        return y;
    }

    for r in 0..right {
        let a = &x.data()[r * x_slab..(r + 1) * x_slab];
        let c = &mut y.data_mut()[r * y_slab..(r + 1) * y_slab];
        match trans {
            Transpose::No => kernels::gemm_nt(left, p, n_j, a, left, m.as_slice(), p, c, left),
            Transpose::Yes => kernels::gemm_nn(left, p, n_j, a, left, m.as_slice(), n_j, c, left),
        }
    }
    y
}

/// Computes the right-slab restriction of [`ttm`] without materializing
/// the input slab: the output slabs `range` selects from
/// `Y = X ×_mode op(M)`, returned as their packed contiguous run of
/// `left × p × range.len()` entries (for mode 0, the column range
/// `range` of the natural `p × (N/n_0)` output view).
///
/// Bit-identical to the matching entries of the full [`ttm`]: for
/// `mode > 0` each output slab is one independent GEMM either way, and
/// for `mode == 0` the restriction is a column range of the single
/// natural GEMM, whose per-column results are independent of the column
/// partition (the §16 kernel contract).
///
/// # Panics
/// Panics on an inner dimension mismatch, or if `range` exceeds the
/// right extent (`N/n_0` for mode 0).
pub fn ttm_right_range<T: Scalar>(
    x: &DenseTensor<T>,
    mode: usize,
    m: &Matrix<T>,
    trans: Transpose,
    range: std::ops::Range<usize>,
) -> Vec<T> {
    let n_j = x.dim(mode);
    let (p, inner) = match trans {
        Transpose::No => (m.rows(), m.cols()),
        Transpose::Yes => (m.cols(), m.rows()),
    };
    assert_eq!(
        inner, n_j,
        "TTM inner dimension mismatch in mode {mode}: op(M) is ?x{inner}, n_mode={n_j}"
    );
    let cols = range.len();

    if mode == 0 {
        let rest = x.num_entries() / n_j;
        assert!(range.end <= rest, "right range {range:?} exceeds {rest}");
        let a = &x.data()[range.start * n_j..range.end * n_j];
        let mut y = vec![T::ZERO; p * cols];
        match trans {
            Transpose::No => kernels::gemm_nn(p, cols, n_j, m.as_slice(), p, a, n_j, &mut y, p),
            Transpose::Yes => kernels::gemm_tn(p, cols, n_j, m.as_slice(), n_j, a, n_j, &mut y, p),
        }
        return y;
    }

    let left = x.shape().left(mode);
    let right = x.shape().right(mode);
    assert!(range.end <= right, "right range {range:?} exceeds {right}");
    let x_slab = left * n_j;
    let y_slab = left * p;
    let bt = trans == Transpose::No;
    let ldb = if bt { p } else { n_j };
    let mut y = vec![T::ZERO; y_slab * cols];

    let total_fl = 2 * (left as u64) * (p as u64) * (n_j as u64) * (cols as u64);
    let nt = crate::par::num_threads();
    if nt > 1 && cols >= nt && total_fl >= crate::par::PAR_MIN_FLOPS {
        // Same pooled split as `ttm`: each output slab is written by
        // exactly one worker, bit-identical to the serial loop below.
        crate::flops::add(total_fl);
        let xdata = x.data();
        let mslice = m.as_slice();
        let ranges = crate::par::partition(cols, nt);
        let start = range.start;
        let parts = crate::par::split_columns(&mut y, y_slab, &ranges);
        crate::par::for_each_part(parts, |_, (slabs, ysub)| {
            for (off, c) in ysub.chunks_exact_mut(y_slab).enumerate() {
                let r = start + slabs.start + off;
                let a = &xdata[r * x_slab..(r + 1) * x_slab];
                kernels::gemm_serial(left, p, n_j, a, left, false, mslice, ldb, bt, c, left);
            }
        });
        return y;
    }

    for (off, r) in range.enumerate() {
        let a = &x.data()[r * x_slab..(r + 1) * x_slab];
        let c = &mut y[off * y_slab..(off + 1) * y_slab];
        match trans {
            Transpose::No => kernels::gemm_nt(left, p, n_j, a, left, m.as_slice(), p, c, left),
            Transpose::Yes => kernels::gemm_nn(left, p, n_j, a, left, m.as_slice(), n_j, c, left),
        }
    }
    y
}

/// Applies a sequence of TTMs in the given order.
///
/// Each element is `(mode, matrix, transpose)`. Order matters for cost but
/// not for the result (TTMs in distinct modes commute); the Tucker
/// algorithms choose orders deliberately (see the dimension-tree module).
pub fn multi_ttm<T: Scalar>(
    x: &DenseTensor<T>,
    ops: &[(usize, &Matrix<T>, Transpose)],
) -> DenseTensor<T> {
    let mut cur: Option<DenseTensor<T>> = None;
    for &(mode, m, trans) in ops {
        let next = match &cur {
            None => ttm(x, mode, m, trans),
            Some(t) => ttm(t, mode, m, trans),
        };
        cur = Some(next);
    }
    cur.unwrap_or_else(|| x.clone())
}

/// Convenience: `X ×_1 U_1ᵀ ×_2 U_2ᵀ … ×_d U_dᵀ` skipping `skip_mode`
/// (the all-but-one multi-TTM at the heart of each HOOI subiteration,
/// Alg. 2 line 5). Modes are applied in increasing order except that the
/// skipped mode is omitted; pass `skip_mode = usize::MAX` to apply all.
pub fn multi_ttm_all_but<T: Scalar>(
    x: &DenseTensor<T>,
    factors: &[Matrix<T>],
    skip_mode: usize,
) -> DenseTensor<T> {
    let ops: Vec<(usize, &Matrix<T>, Transpose)> = factors
        .iter()
        .enumerate()
        .filter(|&(k, _)| k != skip_mode)
        .map(|(k, u)| (k, u, Transpose::Yes))
        .collect();
    multi_ttm(x, &ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unfold::{fold, unfold};

    fn reference_ttm(
        x: &DenseTensor<f64>,
        mode: usize,
        m: &Matrix<f64>,
        trans: Transpose,
    ) -> DenseTensor<f64> {
        let unf = unfold(x, mode);
        let prod = match trans {
            Transpose::No => m.matmul(&unf),
            Transpose::Yes => m.t_matmul(&unf),
        };
        let p = match trans {
            Transpose::No => m.rows(),
            Transpose::Yes => m.cols(),
        };
        fold(&prod, mode, &x.shape().with_dim(mode, p))
    }

    fn test_tensor(dims: &[usize]) -> DenseTensor<f64> {
        DenseTensor::from_fn(crate::shape::Shape::new(dims), |idx| {
            let mut v = 1.0;
            for (k, &i) in idx.iter().enumerate() {
                v += ((k + 2) * i) as f64 * 0.1;
            }
            v.sin()
        })
    }

    #[test]
    fn ttm_right_range_is_bitwise_slice_of_full_ttm() {
        let x = test_tensor(&[4, 3, 5, 2]);
        for mode in 0..4 {
            let n_j = x.dim(mode);
            let m = Matrix::from_fn(2, n_j, |i, j| ((i * n_j + j) as f64).cos());
            for trans in [Transpose::No, Transpose::Yes] {
                let (op, p) = match trans {
                    Transpose::No => (m.clone(), 2),
                    Transpose::Yes => (
                        Matrix::from_fn(n_j, 2, |i, j| ((i + 3 * j) as f64).sin()),
                        2,
                    ),
                };
                let full = ttm(&x, mode, &op, trans);
                let left = x.shape().left(mode);
                let right = full.num_entries() / (left * p);
                let y_slab = left * p;
                // Every split point: the packed range must be the exact
                // bit pattern of the matching run of the full output.
                for split in 0..=right {
                    for (range, base) in [(0..split, 0usize), (split..right, split * y_slab)] {
                        let cols = range.len();
                        let part = ttm_right_range(&x, mode, &op, trans, range);
                        let want = &full.data()[base..base + cols * y_slab];
                        assert_eq!(
                            part.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                            "mode {mode} split {split}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn ttm_matches_unfold_reference_all_modes() {
        let x = test_tensor(&[4, 3, 5, 2]);
        for mode in 0..4 {
            let n_j = x.dim(mode);
            let m = Matrix::from_fn(2, n_j, |i, j| ((i * n_j + j) as f64).cos());
            let fast = ttm(&x, mode, &m, Transpose::No);
            let slow = reference_ttm(&x, mode, &m, Transpose::No);
            assert!(fast.max_abs_diff(&slow) < 1e-12, "mode {mode}");
        }
    }

    #[test]
    fn ttm_transposed_matches_reference() {
        let x = test_tensor(&[3, 4, 2]);
        for mode in 0..3 {
            let n_j = x.dim(mode);
            let u = Matrix::from_fn(n_j, 2, |i, j| ((i + 3 * j) as f64).sin());
            let fast = ttm(&x, mode, &u, Transpose::Yes);
            let slow = reference_ttm(&x, mode, &u, Transpose::Yes);
            assert!(fast.max_abs_diff(&slow) < 1e-12, "mode {mode}");
        }
    }

    #[test]
    fn ttm_identity_is_noop() {
        let x = test_tensor(&[3, 4, 2]);
        for mode in 0..3 {
            let id = Matrix::identity(x.dim(mode));
            let y = ttm(&x, mode, &id, Transpose::No);
            assert_eq!(y.max_abs_diff(&x), 0.0);
        }
    }

    #[test]
    fn ttms_in_distinct_modes_commute() {
        let x = test_tensor(&[4, 3, 5]);
        let a = Matrix::from_fn(2, 4, |i, j| ((i + j) as f64).sin());
        let b = Matrix::from_fn(2, 5, |i, j| ((i * 2 + j) as f64).cos());
        let y1 = ttm(&ttm(&x, 0, &a, Transpose::No), 2, &b, Transpose::No);
        let y2 = ttm(&ttm(&x, 2, &b, Transpose::No), 0, &a, Transpose::No);
        assert!(y1.max_abs_diff(&y2) < 1e-12);
    }

    #[test]
    fn ttm_is_linear_in_tensor() {
        let x = test_tensor(&[3, 4]);
        let mut x2 = x.clone();
        x2.scale(2.0);
        let m = Matrix::from_fn(2, 4, |i, j| (i + j) as f64);
        let mut y = ttm(&x, 1, &m, Transpose::No);
        y.scale(2.0);
        let y2 = ttm(&x2, 1, &m, Transpose::No);
        assert!(y.max_abs_diff(&y2) < 1e-12);
    }

    #[test]
    fn multi_ttm_all_but_skips_mode() {
        let x = test_tensor(&[4, 3, 5]);
        let factors: Vec<Matrix<f64>> = (0..3)
            .map(|k| Matrix::from_fn(x.dim(k), 2, |i, j| ((i + j + k) as f64).sin()))
            .collect();
        let y = multi_ttm_all_but(&x, &factors, 1);
        assert_eq!(y.shape().dims(), &[2, 3, 2]);
        let expect = ttm(
            &ttm(&x, 0, &factors[0], Transpose::Yes),
            2,
            &factors[2],
            Transpose::Yes,
        );
        assert!(y.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn multi_ttm_empty_is_copy() {
        let x = test_tensor(&[2, 2]);
        let y = multi_ttm(&x, &[]);
        assert_eq!(y.max_abs_diff(&x), 0.0);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn ttm_rejects_bad_dims() {
        let x: DenseTensor<f64> = DenseTensor::zeros([3, 4]);
        let m: Matrix<f64> = Matrix::zeros(2, 5);
        ttm(&x, 0, &m, Transpose::No);
    }

    #[test]
    fn norm_invariant_under_orthogonal_ttm() {
        // ‖X ×_j Qᵀ‖ = ‖X‖ when Q is square orthogonal.
        let x = test_tensor(&[3, 4, 2]);
        // Householder-free orthogonal matrix: permutation + sign flips.
        let q = {
            let mut q = Matrix::zeros(4, 4);
            q[(0, 2)] = 1.0;
            q[(1, 0)] = -1.0;
            q[(2, 3)] = 1.0;
            q[(3, 1)] = -1.0;
            q
        };
        let y = ttm(&x, 1, &q, Transpose::Yes);
        assert!((y.norm() - x.norm()).abs() < 1e-12);
    }
}
