//! Low-level dense multiply kernels (the workspace's "BLAS").
//!
//! All kernels operate on column-major buffers with explicit leading
//! dimensions so the tensor slab views in [`crate::ttm`] and
//! [`crate::gram`] can be multiplied in place without copies. Every kernel
//! *accumulates* into `C` (callers zero the output first when needed) and
//! reports its flops to [`crate::flops`] (formula-based counts — see the
//! convention documented there).
//!
//! # Architecture (DESIGN.md §16)
//!
//! The GEMM variants share one BLIS-style packed path: operand panels are
//! copied into contiguous cache-blocked buffers (`MC`×`KC` micropanels of
//! A in MR-row strips, `KC`×`NC` micropanels of B in NR-column strips,
//! zero-padded at the edges), and an `MR`×`NR` register-tile microkernel
//! walks the packed panels in an autovectorization-friendly inner loop.
//! Packing makes the inner loop layout-independent, so the transposed
//! variants (`gemm_tn`/`gemm_nt`) and non-unit leading dimensions cost
//! only a different pack gather, and odd `m`/`n`/`k` are handled by
//! padded edge tiles whose out-of-range lanes are computed (on zeros) but
//! never stored. Tiny products (`2mnk <` [`PACK_MIN_FLOPS`]) skip the
//! packing overhead and run an unblocked loop instead. We avoid
//! `mul_add` because without `-C target-feature=+fma` it lowers to a
//! libm call and destroys throughput.
//!
//! # The canonical accumulation order (bit-identity contract)
//!
//! Every path — packed, unblocked, any worker count, and any split of
//! `k` into separate accumulating calls — produces *bit-identical*
//! results, because each output element is always the same rounding
//! chain: `C[i,j] ← ((C[i,j] + A(i,0)·B(0,j)) + A(i,1)·B(1,j)) + …` in
//! ascending `k`. The microkernel loads the C tile into registers,
//! consumes `KC` blocks in ascending order, and stores back between
//! blocks; an exact f32/f64 store/load does not re-round, so the chain
//! equals the fully sequential one. Parallel execution splits *output
//! columns* (or TTM slabs) across workers, never the `k` dimension, so
//! each element's chain is computed entirely by one worker in the same
//! order regardless of [`crate::par::num_threads`]. The SYRK kernels
//! inherit the same guarantee for the lower triangle (the upper one is
//! an exact mirror copy), which is what lets `ratucker-dist` stream Gram
//! updates in `k`-batches at degradation rung ≥ 2 bit-identically.

// BLAS-style (dims, buffers, leading dims) signatures, and indexed
// micro-loops kept in the shape rustc's vectorizer handles best.
#![allow(clippy::too_many_arguments)]
#![allow(clippy::needless_range_loop)]

use crate::flops;
use crate::par;
use crate::scalar::Scalar;

/// Microkernel register-tile rows (one-or-two SIMD vectors of f64/f32).
const MR: usize = 8;
/// Microkernel register-tile columns: 8 independent accumulator rows
/// (one per column) hide the vector-add latency of the per-element
/// dependency chains, measurably better than the classic 4-wide tile
/// (the chain, not issue width, is the bound — see DESIGN.md §16).
const NR: usize = 8;
/// Rows of A packed per cache block (micropanel strip height `MC`×`KC`
/// sized for L2 residency: 128·256·8 B = 256 KiB for f64).
const MC: usize = 128;
/// Depth of one packed block; also the interval between exact C
/// store/loads in the accumulation chain.
const KC: usize = 256;
/// Columns of B packed per cache block (`KC`×`NC` ≈ 1 MiB for f64).
const NC: usize = 512;
/// Column-block width of the SYRK trapezoid sweep: small enough that the
/// redundant above-diagonal work within a diagonal block stays a few
/// percent, large enough to amortize packing the trapezoid's A panel.
const SYRK_BLOCK: usize = 8;

/// Below this many flops (`2mnk`) a product runs the unblocked loop:
/// packing would cost a comparable number of memory moves. The threshold
/// never changes results — both paths produce the canonical chain.
const PACK_MIN_FLOPS: u64 = 16 * 1024;

/// Panic-with-context bounds check shared by the GEMM kernels.
#[inline]
fn check_dims(len: usize, ld: usize, inner: usize, outer: usize, name: &str) {
    assert!(ld >= inner, "{name}: leading dimension {ld} < rows {inner}");
    if outer > 0 {
        assert!(
            len >= ld * (outer - 1) + inner,
            "{name}: buffer too small ({len} < {})",
            ld * (outer - 1) + inner
        );
    }
}

/// Packs the `mc`×`kc` block of A starting at (`ic`, `pc`) into MR-row
/// micropanels: panel `p` holds rows `ic + p·MR ..` stored as
/// `buf[p·kc·MR + l·MR + i]`, zero-padded past the last valid row.
/// `at == true` reads A transposed (element `(i, l)` at `a[l + i·lda]`).
fn pack_a<T: Scalar>(
    a: &[T],
    lda: usize,
    at: bool,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    buf: &mut [T],
) {
    let panels = mc.div_ceil(MR);
    for p in 0..panels {
        let i0 = ic + p * MR;
        let rows = MR.min(ic + mc - i0);
        let dst = &mut buf[p * kc * MR..(p * kc + kc) * MR];
        for l in 0..kc {
            let d = &mut dst[l * MR..(l + 1) * MR];
            if at {
                for i in 0..rows {
                    d[i] = a[(pc + l) + (i0 + i) * lda];
                }
            } else {
                let src = &a[i0 + (pc + l) * lda..];
                d[..rows].copy_from_slice(&src[..rows]);
            }
            for x in &mut d[rows..] {
                *x = T::ZERO;
            }
        }
    }
}

/// Packs the `kc`×`nc` block of B starting at (`pc`, `jc`) into NR-column
/// micropanels: panel `q` holds columns `jc + q·NR ..` stored as
/// `buf[q·kc·NR + l·NR + j]`, zero-padded past the last valid column.
/// `bt == true` reads B transposed (element `(l, j)` at `b[j + l·ldb]`).
fn pack_b<T: Scalar>(
    b: &[T],
    ldb: usize,
    bt: bool,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    buf: &mut [T],
) {
    let panels = nc.div_ceil(NR);
    for q in 0..panels {
        let j0 = jc + q * NR;
        let cols = NR.min(jc + nc - j0);
        let dst = &mut buf[q * kc * NR..(q * kc + kc) * NR];
        for l in 0..kc {
            let d = &mut dst[l * NR..(l + 1) * NR];
            for j in 0..cols {
                d[j] = if bt {
                    b[(j0 + j) + (pc + l) * ldb]
                } else {
                    b[(pc + l) + (j0 + j) * ldb]
                };
            }
            for x in &mut d[cols..] {
                *x = T::ZERO;
            }
        }
    }
}

/// The register-tile inner kernel: `acc[MR×NR] += Ap · Bp` over `kc`
/// depth steps in ascending order. `ap`/`bp` are one packed micropanel
/// each; fixed-size row/column views let rustc unroll and vectorize the
/// update without bounds checks.
///
/// `acc` is taken and returned **by value**, and inlining is forced: as
/// a standalone function the accumulator is an in-memory argument that
/// must stay consistent across the loop's potential panic edges, which
/// makes LLVM spill all MR×NR accumulators to the stack on every depth
/// step (~3× slower). Inlined, the tile is a caller-local that SROA
/// promotes to vector registers and the loop carries no stores at all.
#[inline(always)]
fn microkernel<T: Scalar>(kc: usize, ap: &[T], bp: &[T], mut acc: [T; MR * NR]) -> [T; MR * NR] {
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    for l in 0..kc {
        let ar: &[T; MR] = ap[l * MR..(l + 1) * MR].try_into().expect("MR slice");
        let br: &[T; NR] = bp[l * NR..(l + 1) * NR].try_into().expect("NR slice");
        for j in 0..NR {
            let s = br[j];
            for i in 0..MR {
                acc[j * MR + i] += ar[i] * s;
            }
        }
    }
    acc
}

/// Unblocked fallback for tiny products; same canonical accumulation
/// chain as the packed path (ascending `k`, per-element sequential).
fn gemm_small<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    a: &[T],
    lda: usize,
    at: bool,
    b: &[T],
    ldb: usize,
    bt: bool,
    c: &mut [T],
    ldc: usize,
) {
    for j in 0..n {
        let cj = &mut c[j * ldc..j * ldc + m];
        for l in 0..k {
            let s = if bt { b[j + l * ldb] } else { b[l + j * ldb] };
            if at {
                for i in 0..m {
                    cj[i] += a[l + i * lda] * s;
                }
            } else {
                let al = &a[l * lda..l * lda + m];
                for i in 0..m {
                    cj[i] += al[i] * s;
                }
            }
        }
    }
}

/// The packed MC/KC/NC loop nest over one output column range.
fn gemm_packed<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    a: &[T],
    lda: usize,
    at: bool,
    b: &[T],
    ldb: usize,
    bt: bool,
    c: &mut [T],
    ldc: usize,
) {
    let kc_cap = KC.min(k);
    let apack_cap = MC.div_ceil(MR).min(m.div_ceil(MR)) * MR * kc_cap;
    let bpack_cap = (NC / NR).min(n.div_ceil(NR)) * NR * kc_cap;
    // Plain (unledgered) scratch: bounded transient kernel workspace,
    // ≤ ~1.5 MiB, documented as outside the memory-budget model.
    let mut apack = vec![T::ZERO; apack_cap];
    let mut bpack = vec![T::ZERO; bpack_cap];
    let mut acc = [T::ZERO; MR * NR];

    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let nc_panels = nc.div_ceil(NR);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            pack_b(b, ldb, bt, pc, kc, jc, nc, &mut bpack);
            let mut ic = 0;
            while ic < m {
                let mc = MC.min(m - ic);
                let mc_panels = mc.div_ceil(MR);
                pack_a(a, lda, at, ic, mc, pc, kc, &mut apack);
                for q in 0..nc_panels {
                    let jb = jc + q * NR;
                    let tn = NR.min(jc + nc - jb);
                    let bp = &bpack[q * kc * NR..(q + 1) * kc * NR];
                    for p in 0..mc_panels {
                        let ib = ic + p * MR;
                        let tm = MR.min(ic + mc - ib);
                        let ap = &apack[p * kc * MR..(p + 1) * kc * MR];
                        if tm == MR && tn == NR {
                            for j in 0..NR {
                                let col = &c[ib + (jb + j) * ldc..ib + (jb + j) * ldc + MR];
                                acc[j * MR..(j + 1) * MR].copy_from_slice(col);
                            }
                            acc = microkernel(kc, ap, bp, acc);
                            for j in 0..NR {
                                let col = &mut c[ib + (jb + j) * ldc..ib + (jb + j) * ldc + MR];
                                col.copy_from_slice(&acc[j * MR..(j + 1) * MR]);
                            }
                        } else {
                            // Edge tile: stage through a zero-padded
                            // register tile; padded lanes multiply zeros
                            // and are never stored.
                            acc = [T::ZERO; MR * NR];
                            for j in 0..tn {
                                for i in 0..tm {
                                    acc[j * MR + i] = c[(ib + i) + (jb + j) * ldc];
                                }
                            }
                            acc = microkernel(kc, ap, bp, acc);
                            for j in 0..tn {
                                for i in 0..tm {
                                    c[(ib + i) + (jb + j) * ldc] = acc[j * MR + i];
                                }
                            }
                        }
                    }
                }
                ic += mc;
            }
            pc += kc;
        }
        jc += nc;
    }
}

/// Serial GEMM entry shared by every variant and by the TTM/Gram slab
/// paths: no flop accounting (callers count their documented formulas)
/// and no worker-pool dispatch (callers own the parallel split), so it
/// is safe to invoke from inside pool workers.
pub(crate) fn gemm_serial<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    a: &[T],
    lda: usize,
    at: bool,
    b: &[T],
    ldb: usize,
    bt: bool,
    c: &mut [T],
    ldc: usize,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if 2 * (m as u64) * (n as u64) * (k as u64) < PACK_MIN_FLOPS {
        gemm_small(m, n, k, a, lda, at, b, ldb, bt, c, ldc);
    } else {
        gemm_packed(m, n, k, a, lda, at, b, ldb, bt, c, ldc);
    }
}

/// Counts flops, then runs the product across the worker pool by
/// splitting C's columns into per-worker panels (see the module docs for
/// why the split cannot change results).
fn gemm_dispatch<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    a: &[T],
    lda: usize,
    at: bool,
    b: &[T],
    ldb: usize,
    bt: bool,
    c: &mut [T],
    ldc: usize,
) {
    let fl = 2 * (m as u64) * (n as u64) * (k as u64);
    flops::add(fl);
    let nt = par::num_threads();
    if nt <= 1 || fl < par::PAR_MIN_FLOPS || n < 2 {
        return gemm_serial(m, n, k, a, lda, at, b, ldb, bt, c, ldc);
    }
    let ranges = par::partition(n, nt.min(n));
    let parts = par::split_columns(c, ldc, &ranges);
    par::for_each_part(parts, |_, (cols, csub)| {
        let b_off = if bt {
            &b[cols.start..]
        } else {
            &b[cols.start * ldb..]
        };
        gemm_serial(m, cols.len(), k, a, lda, at, b_off, ldb, bt, csub, ldc);
    });
}

/// `C += A · B` where `A` is `m×k`, `B` is `k×n`, `C` is `m×n`.
pub fn gemm_nn<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    check_dims(a.len(), lda, m, k, "gemm_nn A");
    check_dims(b.len(), ldb, k, n, "gemm_nn B");
    check_dims(c.len(), ldc, m, n, "gemm_nn C");
    gemm_dispatch(m, n, k, a, lda, false, b, ldb, false, c, ldc);
}

/// `C += Aᵀ · B` where `A` is `k×m`, `B` is `k×n`, `C` is `m×n`.
pub fn gemm_tn<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    check_dims(a.len(), lda, k, m, "gemm_tn A");
    check_dims(b.len(), ldb, k, n, "gemm_tn B");
    check_dims(c.len(), ldc, m, n, "gemm_tn C");
    gemm_dispatch(m, n, k, a, lda, true, b, ldb, false, c, ldc);
}

/// `C += A · Bᵀ` where `A` is `m×k`, `B` is `n×k`, `C` is `m×n`.
pub fn gemm_nt<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    check_dims(a.len(), lda, m, k, "gemm_nt A");
    check_dims(b.len(), ldb, n, k, "gemm_nt B");
    check_dims(c.len(), ldc, m, n, "gemm_nt C");
    gemm_dispatch(m, n, k, a, lda, false, b, ldb, true, c, ldc);
}

/// Copies the strictly-lower triangle into the upper one.
pub(crate) fn mirror_lower<T: Scalar>(n: usize, c: &mut [T], ldc: usize) {
    for j in 0..n {
        for i in j + 1..n {
            c[j + i * ldc] = c[i + j * ldc];
        }
    }
}

/// Unblocked SYRK fallbacks: canonical ascending-`k` chains on the lower
/// triangle, mirrored by the caller.
fn syrk_tn_small<T: Scalar>(n: usize, k: usize, a: &[T], lda: usize, c: &mut [T], ldc: usize) {
    for j in 0..n {
        for l in 0..k {
            let s = a[l + j * lda];
            for i in j..n {
                c[i + j * ldc] += a[l + i * lda] * s;
            }
        }
    }
}

fn syrk_nt_small<T: Scalar>(m: usize, k: usize, a: &[T], lda: usize, c: &mut [T], ldc: usize) {
    for j in 0..m {
        for l in 0..k {
            let s = a[j + l * lda];
            let col = &a[l * lda..l * lda + m];
            for i in j..m {
                c[i + j * ldc] += col[i] * s;
            }
        }
    }
}

/// One worker's share of a SYRK: sweeps its column range `cols` of the
/// lower trapezoid in [`SYRK_BLOCK`]-wide panels, each panel one packed
/// GEMM `C[j0.., j0..j1) += op(A)[j0.., :] · op(A)[:, j0..j1)`. Entries
/// *above* the diagonal inside a panel are computed redundantly and later
/// overwritten by the mirror — the price of routing through the packed
/// rectangular kernel, bounded by `SYRK_BLOCK / n`.
///
/// `nt == true` selects the `A·Aᵀ` orientation (`A` is `dim×k`, offset
/// rows), otherwise `Aᵀ·A` (`A` is `k×dim`, offset columns). `csub` is
/// the column panel of C starting at column `cols.start`.
pub(crate) fn syrk_trapezoid<T: Scalar>(
    dim: usize,
    k: usize,
    a: &[T],
    lda: usize,
    nt: bool,
    cols: std::ops::Range<usize>,
    csub: &mut [T],
    ldc: usize,
) {
    let mut j0 = cols.start;
    while j0 < cols.end {
        let jw = SYRK_BLOCK.min(cols.end - j0);
        let rows = dim - j0;
        let cblk = &mut csub[(j0 - cols.start) * ldc + j0..];
        if nt {
            let a_off = &a[j0..];
            gemm_serial(rows, jw, k, a_off, lda, false, a_off, lda, true, cblk, ldc);
        } else {
            let a_off = &a[j0 * lda..];
            gemm_serial(rows, jw, k, a_off, lda, true, a_off, lda, false, cblk, ldc);
        }
        j0 += jw;
    }
}

/// Shared SYRK driver: formula flop count, small/packed selection,
/// column partition across the pool, final mirror.
fn syrk_dispatch<T: Scalar>(
    dim: usize,
    k: usize,
    a: &[T],
    lda: usize,
    nt_kind: bool,
    c: &mut [T],
    ldc: usize,
) {
    let fl = (dim as u64) * ((dim as u64) + 1) * (k as u64);
    flops::add(fl);
    if fl < PACK_MIN_FLOPS {
        if nt_kind {
            syrk_nt_small(dim, k, a, lda, c, ldc);
        } else {
            syrk_tn_small(dim, k, a, lda, c, ldc);
        }
    } else {
        let workers = if fl < par::PAR_MIN_FLOPS {
            1
        } else {
            par::num_threads()
        };
        let ranges = par::partition(dim, workers.min(dim));
        let parts = par::split_columns(c, ldc, &ranges);
        par::for_each_part(parts, |_, (cols, csub)| {
            syrk_trapezoid(dim, k, a, lda, nt_kind, cols, csub, ldc);
        });
    }
    mirror_lower(dim, c, ldc);
}

/// Symmetric rank-k update: `C += Aᵀ · A` (`A` is `k×n`, `C` is `n×n`).
///
/// Only the lower triangle is accumulated (then mirrored); this is the
/// Gram building block and is counted as `n(n+1)k` multiply-adds.
/// Accumulating in ascending `k`-batches over several calls is
/// bit-identical to one monolithic call (module docs).
pub fn syrk_tn<T: Scalar>(n: usize, k: usize, a: &[T], lda: usize, c: &mut [T], ldc: usize) {
    check_dims(a.len(), lda, k, n, "syrk_tn A");
    check_dims(c.len(), ldc, n, n, "syrk_tn C");
    syrk_dispatch(n, k, a, lda, false, c, ldc);
}

/// Symmetric rank-k update from the left: `C += A · Aᵀ` (`A` is `m×k`,
/// `C` is `m×m`). Lower triangle accumulated, then mirrored; counted as
/// `m(m+1)k` multiply-adds — half of the general `gemm_nt`, which is what
/// the Gram-matrix cost rows of the paper's Table 1 assume.
pub fn syrk_nt<T: Scalar>(m: usize, k: usize, a: &[T], lda: usize, c: &mut [T], ldc: usize) {
    check_dims(a.len(), lda, m, k, "syrk_nt A");
    check_dims(c.len(), ldc, m, m, "syrk_nt C");
    syrk_dispatch(m, k, a, lda, true, c, ldc);
}

/// `y += alpha * x`.
#[inline]
pub fn axpy<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) {
    debug_assert_eq!(x.len(), y.len());
    flops::add(2 * x.len() as u64);
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Dot product.
#[inline]
pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> T {
    debug_assert_eq!(x.len(), y.len());
    flops::add(2 * x.len() as u64);
    let mut acc = T::ZERO;
    for (&xi, &yi) in x.iter().zip(y) {
        acc += xi * yi;
    }
    acc
}

/// Scales a vector in place.
#[inline]
pub fn scal<T: Scalar>(alpha: T, x: &mut [T]) {
    flops::add(x.len() as u64);
    for xi in x {
        *xi *= alpha;
    }
}

/// Euclidean norm with scaling to avoid overflow/underflow (LAPACK dnrm2).
pub fn nrm2<T: Scalar>(x: &[T]) -> T {
    flops::add(2 * x.len() as u64);
    let mut scale = T::ZERO;
    let mut ssq = T::ONE;
    for &xi in x {
        if xi != T::ZERO {
            let absxi = xi.abs();
            if scale < absxi {
                let r = scale / absxi;
                ssq = T::ONE + ssq * r * r;
                scale = absxi;
            } else {
                let r = absxi / scale;
                ssq += r * r;
            }
        }
    }
    scale * ssq.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn naive_mm(a: &Matrix<f64>, b: &Matrix<f64>) -> Matrix<f64> {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for l in 0..a.cols() {
                    acc += a[(i, l)] * b[(l, j)];
                }
                c[(i, j)] = acc;
            }
        }
        c
    }

    fn test_mats(m: usize, k: usize, n: usize) -> (Matrix<f64>, Matrix<f64>) {
        let a = Matrix::from_fn(m, k, |i, j| ((3 * i + 7 * j + 1) as f64).sin());
        let b = Matrix::from_fn(k, n, |i, j| ((5 * i + 2 * j + 2) as f64).cos());
        (a, b)
    }

    #[test]
    fn gemm_nn_matches_naive() {
        let (a, b) = test_mats(7, 5, 6);
        let want = naive_mm(&a, &b);
        let mut c = Matrix::zeros(7, 6);
        gemm_nn(
            7,
            6,
            5,
            a.as_slice(),
            7,
            b.as_slice(),
            5,
            c.as_mut_slice(),
            7,
        );
        assert!(c.max_abs_diff(&want) < 1e-13);
    }

    #[test]
    fn gemm_nn_matches_naive_above_pack_threshold() {
        // 37·41·43 is odd in every dimension and well past PACK_MIN_FLOPS,
        // so this exercises the packed path with edge tiles on all sides.
        let (a, b) = test_mats(37, 41, 43);
        let want = naive_mm(&a, &b);
        let mut c = Matrix::zeros(37, 43);
        gemm_nn(
            37,
            43,
            41,
            a.as_slice(),
            37,
            b.as_slice(),
            41,
            c.as_mut_slice(),
            37,
        );
        assert!(c.max_abs_diff(&want) < 1e-12);
    }

    #[test]
    fn gemm_tn_matches_naive() {
        // A is stored k×m; the kernel computes C = Aᵀ B.
        let a_km = Matrix::from_fn(5, 7, |i, j| ((i * 7 + j) as f64).sin());
        let b_kn = Matrix::from_fn(5, 6, |i, j| ((i + 2 * j) as f64).cos());
        let want = naive_mm(&a_km.transpose(), &b_kn);
        let mut c = Matrix::zeros(7, 6);
        gemm_tn(
            7,
            6,
            5,
            a_km.as_slice(),
            5,
            b_kn.as_slice(),
            5,
            c.as_mut_slice(),
            7,
        );
        assert!(c.max_abs_diff(&want) < 1e-13);
    }

    #[test]
    fn gemm_tn_matches_naive_above_pack_threshold() {
        let a_km = Matrix::from_fn(33, 29, |i, j| ((i * 29 + j) as f64 * 0.1).sin());
        let b_kn = Matrix::from_fn(33, 31, |i, j| ((i + 2 * j) as f64 * 0.1).cos());
        let want = naive_mm(&a_km.transpose(), &b_kn);
        let mut c = Matrix::zeros(29, 31);
        gemm_tn(
            29,
            31,
            33,
            a_km.as_slice(),
            33,
            b_kn.as_slice(),
            33,
            c.as_mut_slice(),
            29,
        );
        assert!(c.max_abs_diff(&want) < 1e-12);
    }

    #[test]
    fn gemm_nt_matches_naive() {
        let a = Matrix::from_fn(4, 5, |i, j| ((i + 3 * j) as f64).sin());
        let b = Matrix::from_fn(6, 5, |i, j| ((2 * i + j) as f64).cos());
        let want = naive_mm(&a, &b.transpose());
        let mut c = Matrix::zeros(4, 6);
        gemm_nt(
            4,
            6,
            5,
            a.as_slice(),
            4,
            b.as_slice(),
            6,
            c.as_mut_slice(),
            4,
        );
        assert!(c.max_abs_diff(&want) < 1e-13);
    }

    #[test]
    fn gemm_nt_matches_naive_above_pack_threshold() {
        let a = Matrix::from_fn(31, 37, |i, j| ((i + 3 * j) as f64 * 0.07).sin());
        let b = Matrix::from_fn(35, 37, |i, j| ((2 * i + j) as f64 * 0.07).cos());
        let want = naive_mm(&a, &b.transpose());
        let mut c = Matrix::zeros(31, 35);
        gemm_nt(
            31,
            35,
            37,
            a.as_slice(),
            31,
            b.as_slice(),
            35,
            c.as_mut_slice(),
            31,
        );
        assert!(c.max_abs_diff(&want) < 1e-12);
    }

    #[test]
    fn gemm_accumulates() {
        let a: Matrix<f64> = Matrix::identity(3);
        let b = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let mut c = Matrix::identity(3);
        gemm_nn(
            3,
            3,
            3,
            a.as_slice(),
            3,
            b.as_slice(),
            3,
            c.as_mut_slice(),
            3,
        );
        // C = I + I*B
        for i in 0..3 {
            for j in 0..3 {
                let want = b[(i, j)] + if i == j { 1.0 } else { 0.0 };
                assert_eq!(c[(i, j)], want);
            }
        }
    }

    #[test]
    fn syrk_matches_gemm_tn() {
        let a = Matrix::from_fn(8, 5, |i, j| ((i * 5 + j) as f64).sin());
        let want = a.t_matmul(&a);
        let mut c = Matrix::zeros(5, 5);
        syrk_tn(5, 8, a.as_slice(), 8, c.as_mut_slice(), 5);
        assert!(c.max_abs_diff(&want) < 1e-13);
    }

    #[test]
    fn syrk_tn_matches_reference_above_pack_threshold() {
        let a = Matrix::from_fn(61, 45, |i, j| ((i * 45 + j) as f64 * 0.03).sin());
        let want = a.t_matmul(&a);
        let mut c = Matrix::zeros(45, 45);
        syrk_tn(45, 61, a.as_slice(), 61, c.as_mut_slice(), 45);
        assert!(c.max_abs_diff(&want) < 1e-11);
        // Symmetry is exact (mirror copy).
        for j in 0..45 {
            for i in j + 1..45 {
                assert_eq!(c[(i, j)].to_bits(), c[(j, i)].to_bits());
            }
        }
    }

    #[test]
    fn syrk_nt_matches_reference_above_pack_threshold() {
        let a = Matrix::from_fn(45, 61, |i, j| ((i * 61 + j) as f64 * 0.03).cos());
        let want = a.matmul(&a.transpose());
        let mut c = Matrix::zeros(45, 45);
        syrk_nt(45, 61, a.as_slice(), 45, c.as_mut_slice(), 45);
        assert!(c.max_abs_diff(&want) < 1e-11);
    }

    #[test]
    fn syrk_nt_k_batched_accumulation_is_bit_identical() {
        // The streamed-Gram contract (`ratucker-dist` at rung ≥ 2):
        // accumulating A's columns in ascending batches over several
        // syrk_nt calls must reproduce the monolithic call bit-for-bit.
        let m = 45;
        let k = 64;
        let a = Matrix::from_fn(m, k, |i, j| ((i * k + j) as f64 * 0.011).sin());
        let mut mono = Matrix::<f64>::zeros(m, m);
        syrk_nt(m, k, a.as_slice(), m, mono.as_mut_slice(), m);
        let mut batched = Matrix::<f64>::zeros(m, m);
        for (k0, kb) in [(0usize, 17usize), (17, 30), (47, 17)] {
            syrk_nt(m, kb, &a.as_slice()[k0 * m..], m, batched.as_mut_slice(), m);
        }
        for (x, y) in mono.as_slice().iter().zip(batched.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn results_are_bit_identical_across_worker_counts() {
        let (a, b) = test_mats(67, 59, 71);
        let mut reference: Option<Vec<f64>> = None;
        for nt in [1usize, 2, 4] {
            crate::par::set_num_threads(nt);
            let mut c = Matrix::<f64>::zeros(67, 71);
            gemm_nn(
                67,
                71,
                59,
                a.as_slice(),
                67,
                b.as_slice(),
                59,
                c.as_mut_slice(),
                67,
            );
            match &reference {
                None => reference = Some(c.as_slice().to_vec()),
                Some(want) => {
                    for (x, y) in want.iter().zip(c.as_slice()) {
                        assert_eq!(x.to_bits(), y.to_bits(), "worker count {nt} diverged");
                    }
                }
            }
        }
        crate::par::set_num_threads(1);
    }

    #[test]
    fn gemm_with_submatrix_leading_dims() {
        // Multiply the top-left 2x2 blocks of 4x4 matrices using lda=4.
        let a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let b = Matrix::from_fn(4, 4, |i, j| (i + j) as f64);
        let mut c = vec![0.0f64; 4]; // 2x2, ldc=2
        gemm_nn(2, 2, 2, a.as_slice(), 4, b.as_slice(), 4, &mut c, 2);
        // Naive on the blocks:
        for i in 0..2 {
            for j in 0..2 {
                let want: f64 = (0..2).map(|l| a[(i, l)] * b[(l, j)]).sum();
                assert_eq!(c[i + 2 * j], want);
            }
        }
    }

    #[test]
    fn packed_gemm_with_nonunit_leading_dims() {
        // 30×30 blocks of 40×40 buffers (lda=ldb=ldc=40), past the pack
        // threshold so the packed path handles the ld gather.
        let a = Matrix::from_fn(40, 40, |i, j| ((i * 40 + j) as f64 * 0.01).sin());
        let b = Matrix::from_fn(40, 40, |i, j| ((i + j) as f64 * 0.01).cos());
        let mut c = vec![0.0f64; 40 * 40];
        gemm_nn(30, 30, 30, a.as_slice(), 40, b.as_slice(), 40, &mut c, 40);
        for i in 0..30 {
            for j in 0..30 {
                let want: f64 = (0..30).map(|l| a[(i, l)] * b[(l, j)]).sum();
                assert!((c[i + 40 * j] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn nrm2_is_overflow_safe() {
        let big = vec![1e300f64, 1e300];
        let n = nrm2(&big);
        assert!((n - 1e300 * 2.0f64.sqrt()).abs() / n < 1e-14);
        assert_eq!(nrm2::<f64>(&[]), 0.0);
        assert_eq!(nrm2(&[0.0f64, 0.0]), 0.0);
    }

    #[test]
    fn dot_axpy_scal_basics() {
        assert_eq!(dot(&[1.0f64, 2.0], &[3.0, 4.0]), 11.0);
        let mut y = vec![1.0f64, 1.0];
        axpy(2.0, &[10.0, 20.0], &mut y);
        assert_eq!(y, vec![21.0, 41.0]);
        scal(0.5, &mut y);
        assert_eq!(y, vec![10.5, 20.5]);
    }

    #[test]
    fn flop_counting_gemm() {
        crate::flops::reset();
        let a: Matrix<f32> = Matrix::zeros(4, 3);
        let b: Matrix<f32> = Matrix::zeros(3, 5);
        let mut c: Matrix<f32> = Matrix::zeros(4, 5);
        gemm_nn(
            4,
            5,
            3,
            a.as_slice(),
            4,
            b.as_slice(),
            3,
            c.as_mut_slice(),
            4,
        );
        assert_eq!(crate::flops::get(), 2 * 4 * 5 * 3);
    }

    #[test]
    fn flop_count_is_input_independent() {
        // The zero-skip branch of the old scalar kernel made performed
        // work depend on the data; the accounting convention (flops.rs)
        // is formula-based, and the packed kernel now performs exactly
        // the counted multiply-adds regardless of zeros in the input.
        crate::flops::reset();
        let a: Matrix<f64> = Matrix::zeros(6, 6); // all zeros
        let mut c: Matrix<f64> = Matrix::zeros(6, 6);
        gemm_nn(
            6,
            6,
            6,
            a.as_slice(),
            6,
            a.as_slice(),
            6,
            c.as_mut_slice(),
            6,
        );
        assert_eq!(crate::flops::get(), 2 * 6 * 6 * 6);
    }
}
