//! Low-level dense multiply kernels (the workspace's "BLAS").
//!
//! All kernels operate on column-major buffers with explicit leading
//! dimensions so the tensor slab views in [`crate::ttm`] and
//! [`crate::gram`] can be multiplied in place without copies. Every kernel
//! *accumulates* into `C` (callers zero the output first when needed) and
//! reports its flops to [`crate::flops`].
//!
//! The inner loops are written as contiguous column updates
//! (`c[i] += a[i] * s`), the form rustc auto-vectorizes reliably; we avoid
//! `mul_add` here because without `-C target-feature=+fma` it lowers to a
//! libm call and destroys throughput.

#![allow(clippy::too_many_arguments)] // BLAS-style (dims, buffers, leading dims) signatures

use crate::flops;
use crate::scalar::Scalar;

/// Panic-with-context bounds check shared by the GEMM kernels.
#[inline]
fn check_dims(len: usize, ld: usize, inner: usize, outer: usize, name: &str) {
    assert!(ld >= inner, "{name}: leading dimension {ld} < rows {inner}");
    if outer > 0 {
        assert!(
            len >= ld * (outer - 1) + inner,
            "{name}: buffer too small ({len} < {})",
            ld * (outer - 1) + inner
        );
    }
}

/// `C += A · B` where `A` is `m×k`, `B` is `k×n`, `C` is `m×n`.
pub fn gemm_nn<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    check_dims(a.len(), lda, m, k, "gemm_nn A");
    check_dims(b.len(), ldb, k, n, "gemm_nn B");
    check_dims(c.len(), ldc, m, n, "gemm_nn C");
    flops::add(2 * (m as u64) * (n as u64) * (k as u64));
    for j in 0..n {
        let c_col = &mut c[j * ldc..j * ldc + m];
        for l in 0..k {
            let s = b[l + j * ldb];
            if s == T::ZERO {
                continue;
            }
            let a_col = &a[l * lda..l * lda + m];
            for i in 0..m {
                c_col[i] += a_col[i] * s;
            }
        }
    }
}

/// `C += Aᵀ · B` where `A` is `k×m`, `B` is `k×n`, `C` is `m×n`.
pub fn gemm_tn<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    check_dims(a.len(), lda, k, m, "gemm_tn A");
    check_dims(b.len(), ldb, k, n, "gemm_tn B");
    check_dims(c.len(), ldc, m, n, "gemm_tn C");
    flops::add(2 * (m as u64) * (n as u64) * (k as u64));
    for j in 0..n {
        let b_col = &b[j * ldb..j * ldb + k];
        for i in 0..m {
            let a_col = &a[i * lda..i * lda + k];
            let mut acc = T::ZERO;
            for l in 0..k {
                acc += a_col[l] * b_col[l];
            }
            c[i + j * ldc] += acc;
        }
    }
}

/// `C += A · Bᵀ` where `A` is `m×k`, `B` is `n×k`, `C` is `m×n`.
pub fn gemm_nt<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    check_dims(a.len(), lda, m, k, "gemm_nt A");
    check_dims(b.len(), ldb, n, k, "gemm_nt B");
    check_dims(c.len(), ldc, m, n, "gemm_nt C");
    flops::add(2 * (m as u64) * (n as u64) * (k as u64));
    for l in 0..k {
        let a_col = &a[l * lda..l * lda + m];
        for j in 0..n {
            let s = b[j + l * ldb];
            if s == T::ZERO {
                continue;
            }
            let c_col = &mut c[j * ldc..j * ldc + m];
            for i in 0..m {
                c_col[i] += a_col[i] * s;
            }
        }
    }
}

/// Symmetric rank-k update: `C += Aᵀ · A` (`A` is `k×n`, `C` is `n×n`).
///
/// Only the lower triangle is computed, then mirrored; this is the Gram
/// building block and costs `n(n+1)k` multiply-adds, counted as such.
pub fn syrk_tn<T: Scalar>(n: usize, k: usize, a: &[T], lda: usize, c: &mut [T], ldc: usize) {
    check_dims(a.len(), lda, k, n, "syrk_tn A");
    check_dims(c.len(), ldc, n, n, "syrk_tn C");
    flops::add((n as u64) * ((n as u64) + 1) * (k as u64));
    for j in 0..n {
        let a_j = &a[j * lda..j * lda + k];
        for i in j..n {
            let a_i = &a[i * lda..i * lda + k];
            let mut acc = T::ZERO;
            for l in 0..k {
                acc += a_i[l] * a_j[l];
            }
            c[i + j * ldc] += acc;
        }
    }
    // Mirror the strictly-lower triangle into the upper one.
    for j in 0..n {
        for i in j + 1..n {
            c[j + i * ldc] = c[i + j * ldc];
        }
    }
}

/// Symmetric rank-k update from the left: `C += A · Aᵀ` (`A` is `m×k`,
/// `C` is `m×m`). Lower triangle computed, then mirrored; costs
/// `m(m+1)k` multiply-adds — half of the general `gemm_nt`, which is what
/// the Gram-matrix cost rows of the paper's Table 1 assume.
pub fn syrk_nt<T: Scalar>(m: usize, k: usize, a: &[T], lda: usize, c: &mut [T], ldc: usize) {
    check_dims(a.len(), lda, m, k, "syrk_nt A");
    check_dims(c.len(), ldc, m, m, "syrk_nt C");
    flops::add((m as u64) * ((m as u64) + 1) * (k as u64));
    for l in 0..k {
        let col = &a[l * lda..l * lda + m];
        for j in 0..m {
            let s = col[j];
            if s == T::ZERO {
                continue;
            }
            let c_col = &mut c[j * ldc..j * ldc + m];
            for i in j..m {
                c_col[i] += col[i] * s;
            }
        }
    }
    for j in 0..m {
        for i in j + 1..m {
            c[j + i * ldc] = c[i + j * ldc];
        }
    }
}

/// `y += alpha * x`.
#[inline]
pub fn axpy<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) {
    debug_assert_eq!(x.len(), y.len());
    flops::add(2 * x.len() as u64);
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Dot product.
#[inline]
pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> T {
    debug_assert_eq!(x.len(), y.len());
    flops::add(2 * x.len() as u64);
    let mut acc = T::ZERO;
    for (&xi, &yi) in x.iter().zip(y) {
        acc += xi * yi;
    }
    acc
}

/// Scales a vector in place.
#[inline]
pub fn scal<T: Scalar>(alpha: T, x: &mut [T]) {
    flops::add(x.len() as u64);
    for xi in x {
        *xi *= alpha;
    }
}

/// Euclidean norm with scaling to avoid overflow/underflow (LAPACK dnrm2).
pub fn nrm2<T: Scalar>(x: &[T]) -> T {
    flops::add(2 * x.len() as u64);
    let mut scale = T::ZERO;
    let mut ssq = T::ONE;
    for &xi in x {
        if xi != T::ZERO {
            let absxi = xi.abs();
            if scale < absxi {
                let r = scale / absxi;
                ssq = T::ONE + ssq * r * r;
                scale = absxi;
            } else {
                let r = absxi / scale;
                ssq += r * r;
            }
        }
    }
    scale * ssq.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn naive_mm(a: &Matrix<f64>, b: &Matrix<f64>) -> Matrix<f64> {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for l in 0..a.cols() {
                    acc += a[(i, l)] * b[(l, j)];
                }
                c[(i, j)] = acc;
            }
        }
        c
    }

    fn test_mats(m: usize, k: usize, n: usize) -> (Matrix<f64>, Matrix<f64>) {
        let a = Matrix::from_fn(m, k, |i, j| ((3 * i + 7 * j + 1) as f64).sin());
        let b = Matrix::from_fn(k, n, |i, j| ((5 * i + 2 * j + 2) as f64).cos());
        (a, b)
    }

    #[test]
    fn gemm_nn_matches_naive() {
        let (a, b) = test_mats(7, 5, 6);
        let want = naive_mm(&a, &b);
        let mut c = Matrix::zeros(7, 6);
        gemm_nn(
            7,
            6,
            5,
            a.as_slice(),
            7,
            b.as_slice(),
            5,
            c.as_mut_slice(),
            7,
        );
        assert!(c.max_abs_diff(&want) < 1e-13);
    }

    #[test]
    fn gemm_tn_matches_naive() {
        // A is stored k×m; the kernel computes C = Aᵀ B.
        let a_km = Matrix::from_fn(5, 7, |i, j| ((i * 7 + j) as f64).sin());
        let b_kn = Matrix::from_fn(5, 6, |i, j| ((i + 2 * j) as f64).cos());
        let want = naive_mm(&a_km.transpose(), &b_kn);
        let mut c = Matrix::zeros(7, 6);
        gemm_tn(
            7,
            6,
            5,
            a_km.as_slice(),
            5,
            b_kn.as_slice(),
            5,
            c.as_mut_slice(),
            7,
        );
        assert!(c.max_abs_diff(&want) < 1e-13);
    }

    #[test]
    fn gemm_nt_matches_naive() {
        let a = Matrix::from_fn(4, 5, |i, j| ((i + 3 * j) as f64).sin());
        let b = Matrix::from_fn(6, 5, |i, j| ((2 * i + j) as f64).cos());
        let want = naive_mm(&a, &b.transpose());
        let mut c = Matrix::zeros(4, 6);
        gemm_nt(
            4,
            6,
            5,
            a.as_slice(),
            4,
            b.as_slice(),
            6,
            c.as_mut_slice(),
            4,
        );
        assert!(c.max_abs_diff(&want) < 1e-13);
    }

    #[test]
    fn gemm_accumulates() {
        let a: Matrix<f64> = Matrix::identity(3);
        let b = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let mut c = Matrix::identity(3);
        gemm_nn(
            3,
            3,
            3,
            a.as_slice(),
            3,
            b.as_slice(),
            3,
            c.as_mut_slice(),
            3,
        );
        // C = I + I*B
        for i in 0..3 {
            for j in 0..3 {
                let want = b[(i, j)] + if i == j { 1.0 } else { 0.0 };
                assert_eq!(c[(i, j)], want);
            }
        }
    }

    #[test]
    fn syrk_matches_gemm_tn() {
        let a = Matrix::from_fn(8, 5, |i, j| ((i * 5 + j) as f64).sin());
        let want = a.t_matmul(&a);
        let mut c = Matrix::zeros(5, 5);
        syrk_tn(5, 8, a.as_slice(), 8, c.as_mut_slice(), 5);
        assert!(c.max_abs_diff(&want) < 1e-13);
    }

    #[test]
    fn gemm_with_submatrix_leading_dims() {
        // Multiply the top-left 2x2 blocks of 4x4 matrices using lda=4.
        let a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let b = Matrix::from_fn(4, 4, |i, j| (i + j) as f64);
        let mut c = vec![0.0f64; 4]; // 2x2, ldc=2
        gemm_nn(2, 2, 2, a.as_slice(), 4, b.as_slice(), 4, &mut c, 2);
        // Naive on the blocks:
        for i in 0..2 {
            for j in 0..2 {
                let want: f64 = (0..2).map(|l| a[(i, l)] * b[(l, j)]).sum();
                assert_eq!(c[i + 2 * j], want);
            }
        }
    }

    #[test]
    fn nrm2_is_overflow_safe() {
        let big = vec![1e300f64, 1e300];
        let n = nrm2(&big);
        assert!((n - 1e300 * 2.0f64.sqrt()).abs() / n < 1e-14);
        assert_eq!(nrm2::<f64>(&[]), 0.0);
        assert_eq!(nrm2(&[0.0f64, 0.0]), 0.0);
    }

    #[test]
    fn dot_axpy_scal_basics() {
        assert_eq!(dot(&[1.0f64, 2.0], &[3.0, 4.0]), 11.0);
        let mut y = vec![1.0f64, 1.0];
        axpy(2.0, &[10.0, 20.0], &mut y);
        assert_eq!(y, vec![21.0, 41.0]);
        scal(0.5, &mut y);
        assert_eq!(y, vec![10.5, 20.5]);
    }

    #[test]
    fn flop_counting_gemm() {
        crate::flops::reset();
        let a: Matrix<f32> = Matrix::zeros(4, 3);
        let b: Matrix<f32> = Matrix::zeros(3, 5);
        let mut c: Matrix<f32> = Matrix::zeros(4, 5);
        gemm_nn(
            4,
            5,
            3,
            a.as_slice(),
            4,
            b.as_slice(),
            3,
            c.as_mut_slice(),
            4,
        );
        assert_eq!(crate::flops::get(), 2 * 4 * 5 * 3);
    }
}
