//! Intra-rank worker pool for the compute kernels.
//!
//! Each simulated MPI rank is one OS thread (`ratucker-mpi`); this module
//! lets the kernels on that rank fan work out across a small pool of
//! scoped workers (`std::thread::scope`, no external dependencies) while
//! keeping every numerical result **bit-identical at any worker count**.
//!
//! The contract that makes this safe (DESIGN.md §16):
//!
//! - Work is split into *parts* (GEMM column panels, TTM slabs, SYRK
//!   column blocks) such that every output element is computed entirely
//!   within one part, and the per-element accumulation order inside a
//!   part does not depend on the partition. The partition itself
//!   ([`partition`]) is a deterministic function of `(len, workers)`, so
//!   runs are reproducible, and because floating-point order is fixed per
//!   element the result is the same at 1, 2, or 64 workers.
//! - Workers start with fresh thread-local [`crate::flops`] and
//!   `ratucker_mem` ledgers; on join, [`for_each_part`] *harvests* both
//!   back into the calling (rank) thread — flops are added and ledger
//!   counters absorbed via [`ratucker_mem::absorb_worker`] — so per-rank
//!   accounting partitions exactly as if the work had run inline.
//!
//! The pool size resolves, in order: [`set_num_threads`] (the `Threads`
//! config key / `--threads` flag land here), then the
//! [`THREADS_ENV`]` = RATUCKER_THREADS` environment variable, then 1
//! (serial). Parsing the env saturates absurd values to [`MAX_THREADS`]
//! and warns once on malformed input instead of silently ignoring it,
//! matching the `MPISIM_RECV_TIMEOUT_SECS` precedent in `ratucker-mpi`.

use crate::flops;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable selecting the per-rank worker count.
pub const THREADS_ENV: &str = "RATUCKER_THREADS";

/// Upper bound on the worker count; values parsed from the environment
/// or passed to [`set_num_threads`] saturate here. Far above any sane
/// oversubscription (every simulated rank spawns its own pool).
pub const MAX_THREADS: usize = 256;

/// Kernels skip the pool entirely below this many flops: spawning a
/// scoped worker costs on the order of 10 µs, so a parallel region must
/// amortize several spawns to win. ~2 Mflop (≈ a 100³ GEMM) is the
/// break-even neighbourhood on current hardware.
pub(crate) const PAR_MIN_FLOPS: u64 = 2 * 1024 * 1024;

/// 0 = unresolved (consult the environment on first use).
static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Parses a `RATUCKER_THREADS` value: a positive integer, saturating to
/// [`MAX_THREADS`].
fn parse_threads(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<u128>() {
        Ok(0) => Err("0 workers is meaningless (use 1 for serial)".into()),
        Ok(n) => Ok(usize::try_from(n).unwrap_or(usize::MAX).min(MAX_THREADS)),
        Err(err) => Err(format!("not a number: {err}")),
    }
}

fn threads_from_env() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(v) => parse_threads(&v).unwrap_or_else(|why| {
            // Warn exactly once per process, like mpisim's recv-timeout
            // override: a silently ignored knob is worse than a noisy one.
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "ratucker: ignoring malformed {THREADS_ENV}={v:?} ({why}); running serial"
                );
            });
            1
        }),
        Err(_) => 1,
    }
}

/// The resolved worker count (≥ 1). Results never depend on it — only
/// wall-clock time does.
pub fn num_threads() -> usize {
    match NUM_THREADS.load(Ordering::Relaxed) {
        0 => {
            let n = threads_from_env();
            NUM_THREADS.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Overrides the worker count process-wide (clamped to
/// `1..=`[`MAX_THREADS`]). Process-wide rather than thread-local on
/// purpose: simulated rank threads are spawned *after* the driver parses
/// its flags, and must inherit the setting.
pub fn set_num_threads(n: usize) {
    NUM_THREADS.store(n.clamp(1, MAX_THREADS), Ordering::Relaxed);
}

/// Splits `0..len` into `parts` contiguous, maximally balanced ranges
/// (the first `len % parts` ranges get one extra item). Deterministic in
/// `(len, parts)`; empty ranges are never returned (callers clamp
/// `parts` to `len` first — a `parts > len` request yields `len`
/// single-item ranges).
pub fn partition(len: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for w in 0..parts {
        let size = base + usize::from(w < extra);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

/// What a worker sends home when it joins.
struct Harvest {
    flops: u64,
    ledger: ratucker_mem::LedgerStats,
}

/// Runs `f(index, part)` for every part, splitting the parts across up
/// to [`num_threads`] scoped workers (contiguous assignment via
/// [`partition`]; the calling thread works the first chunk itself).
///
/// On join, each worker's thread-local flop count and memory-ledger
/// counters are harvested back into the calling thread, so rank-level
/// accounting is independent of the worker count. A panicking worker
/// propagates its panic to the caller.
///
/// Correctness requirement on callers: parts must own disjoint output
/// regions (e.g. `&mut` column panels), and the numerical work for a
/// given part must not depend on which worker runs it or on how many
/// workers exist — see the module docs for the bit-identity argument.
pub fn for_each_part<P, F>(parts: Vec<P>, f: F)
where
    P: Send,
    F: Fn(usize, P) + Sync,
{
    let n = parts.len();
    let nt = num_threads().min(n);
    if nt <= 1 {
        for (i, p) in parts.into_iter().enumerate() {
            f(i, p);
        }
        return;
    }
    let ranges = partition(n, nt);
    let mut chunks: Vec<(usize, Vec<P>)> = Vec::with_capacity(nt);
    let mut it = parts.into_iter();
    for r in &ranges {
        chunks.push((r.start, it.by_ref().take(r.len()).collect()));
    }
    let f = &f;
    let mut harvested: Vec<Harvest> = Vec::with_capacity(nt - 1);
    std::thread::scope(|s| {
        let mut drain = chunks.into_iter();
        let mine = drain.next().expect("nt >= 1");
        let handles: Vec<_> = drain
            .map(|(base, chunk)| {
                s.spawn(move || {
                    for (off, p) in chunk.into_iter().enumerate() {
                        f(base + off, p);
                    }
                    // Fresh thread ⇒ the counters hold exactly this
                    // worker's contribution.
                    Harvest {
                        flops: flops::get(),
                        ledger: ratucker_mem::stats(),
                    }
                })
            })
            .collect();
        for (off, p) in mine.1.into_iter().enumerate() {
            f(mine.0 + off, p);
        }
        for h in handles {
            harvested.push(h.join().expect("ratucker kernel worker panicked"));
        }
    });
    for h in harvested {
        flops::add(h.flops);
        ratucker_mem::absorb_worker(&h.ledger);
    }
}

/// Splits a column-major buffer into per-range `&mut` column panels:
/// range `j0..j1` maps to `buf[j0*ld ..]` up to the next range's start
/// (the final panel takes the buffer tail, covering `ld ≥ rows` slack).
/// Ranges must be the contiguous ascending cover produced by
/// [`partition`].
pub(crate) fn split_columns<'a, T>(
    buf: &'a mut [T],
    ld: usize,
    ranges: &[Range<usize>],
) -> Vec<(Range<usize>, &'a mut [T])> {
    let mut out = Vec::with_capacity(ranges.len());
    let mut rest = buf;
    let mut consumed = 0;
    for (idx, r) in ranges.iter().enumerate() {
        debug_assert_eq!(r.start, consumed, "ranges must tile 0..n contiguously");
        if idx + 1 == ranges.len() {
            out.push((r.clone(), std::mem::take(&mut rest)));
        } else {
            let (head, tail) = rest.split_at_mut(r.len() * ld);
            out.push((r.clone(), head));
            rest = tail;
        }
        consumed = r.end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Serializes tests that flip the process-global worker count.
    static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn partition_is_balanced_and_exhaustive() {
        for len in 0..40usize {
            for parts in 1..10usize {
                let ranges = partition(len, parts);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, len);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    next = r.end;
                }
                if len > 0 {
                    let min = ranges.iter().map(|r| r.len()).min().unwrap();
                    let max = ranges.iter().map(|r| r.len()).max().unwrap();
                    assert!(max - min <= 1, "unbalanced: {ranges:?}");
                    assert!(ranges.iter().all(|r| !r.is_empty()));
                }
            }
        }
    }

    #[test]
    fn parse_saturates_and_rejects() {
        assert_eq!(parse_threads("4"), Ok(4));
        assert_eq!(parse_threads(" 2 "), Ok(2));
        assert_eq!(parse_threads("999999999999999999999999"), Ok(MAX_THREADS));
        assert!(parse_threads("0").is_err());
        assert!(parse_threads("two").is_err());
        assert!(parse_threads("").is_err());
    }

    #[test]
    fn for_each_part_visits_every_index_once() {
        let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        for nt in [1, 2, 4] {
            set_num_threads(nt);
            let hits: Vec<AtomicU64> = (0..23).map(|_| AtomicU64::new(0)).collect();
            let parts: Vec<usize> = (0..23).collect();
            for_each_part(parts, |idx, item| {
                assert_eq!(idx, item);
                hits[idx].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
        set_num_threads(1);
    }

    #[test]
    fn worker_flops_are_harvested_to_the_caller() {
        let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        set_num_threads(4);
        flops::reset();
        for_each_part((0..8).collect::<Vec<usize>>(), |_, _| flops::add(10));
        assert_eq!(flops::get(), 80);
        set_num_threads(1);
        flops::reset();
    }

    #[test]
    fn worker_ledger_charges_are_absorbed() {
        let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        set_num_threads(2);
        ratucker_mem::install_rank(None, 0);
        for_each_part(vec![0usize, 1], |_, _| {
            let c = ratucker_mem::Charge::force(1000);
            drop(c);
        });
        let s = ratucker_mem::stats();
        assert_eq!(s.charged, 2000);
        assert_eq!(s.released, 2000);
        assert_eq!(s.live, 0);
        assert!(s.hwm >= 1000);
        set_num_threads(1);
        ratucker_mem::install_rank(None, 0);
    }

    #[test]
    fn split_columns_tiles_the_buffer() {
        let mut buf = vec![0u32; 3 * 7]; // 3 rows (ld=3), 7 cols
        let ranges = partition(7, 3);
        let parts = split_columns(&mut buf, 3, &ranges);
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(|(_, s)| s.len()).sum();
        assert_eq!(total, 21);
        for (r, s) in &parts {
            assert!(s.len() >= r.len() * 3);
        }
    }
}
