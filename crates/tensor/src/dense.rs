//! Dense `d`-way tensors in generalized column-major layout.

use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::shape::Shape;
use ratucker_mem::{bytes_of, BudgetExceeded, Charge};

/// A dense tensor with entries stored mode-0-fastest.
///
/// The buffer is charged to the calling rank's `ratucker-mem` ledger
/// for the tensor's lifetime (released on drop, re-charged on clone).
/// The infallible constructors track without enforcing;
/// [`DenseTensor::try_zeros`] / [`DenseTensor::try_from_vec`]
/// additionally respect the rank's budget.
#[derive(Clone, PartialEq)]
pub struct DenseTensor<T> {
    shape: Shape,
    data: Vec<T>,
    charge: Charge,
}

impl<T: Scalar> DenseTensor<T> {
    /// All-zeros tensor of the given shape.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let data = vec![T::ZERO; shape.num_entries()];
        let charge = Charge::force(bytes_of::<T>(data.len()));
        DenseTensor {
            shape,
            data,
            charge,
        }
    }

    /// All-zeros tensor charged against the rank's memory budget —
    /// refused (with nothing allocated) if it would not fit.
    pub fn try_zeros(shape: impl Into<Shape>) -> Result<Self, BudgetExceeded> {
        let shape = shape.into();
        let charge = Charge::try_new(bytes_of::<T>(shape.num_entries()))?;
        let data = vec![T::ZERO; shape.num_entries()];
        Ok(DenseTensor {
            shape,
            data,
            charge,
        })
    }

    /// Budget-checked variant of [`DenseTensor::from_vec`]: charges the
    /// adopted buffer against the rank's budget.
    ///
    /// # Panics
    /// Panics if the buffer length does not match the shape.
    pub fn try_from_vec(shape: impl Into<Shape>, data: Vec<T>) -> Result<Self, BudgetExceeded> {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.num_entries(),
            "buffer length {} does not match shape {shape}",
            data.len()
        );
        let charge = Charge::try_new(bytes_of::<T>(data.len()))?;
        Ok(DenseTensor {
            shape,
            data,
            charge,
        })
    }

    /// Builds a tensor entry-wise from a multi-index function.
    pub fn from_fn(shape: impl Into<Shape>, mut f: impl FnMut(&[usize]) -> T) -> Self {
        let shape = shape.into();
        let mut data = Vec::with_capacity(shape.num_entries());
        for idx in shape.indices() {
            data.push(f(&idx));
        }
        let charge = Charge::force(bytes_of::<T>(data.len()));
        DenseTensor {
            shape,
            data,
            charge,
        }
    }

    /// Wraps an existing buffer (must be in layout order).
    ///
    /// # Panics
    /// Panics if the buffer length does not match the shape.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<T>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.num_entries(),
            "buffer length {} does not match shape {shape}",
            data.len()
        );
        let charge = Charge::force(bytes_of::<T>(data.len()));
        DenseTensor {
            shape,
            data,
            charge,
        }
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.shape.order()
    }

    /// Dimension of mode `j`.
    #[inline]
    pub fn dim(&self, mode: usize) -> usize {
        self.shape.dim(mode)
    }

    /// Total entry count.
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.data.len()
    }

    /// `true` when every entry is finite (no NaN/Inf) — the screening
    /// predicate applied at distributed kernel boundaries.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite_s())
    }

    /// Underlying buffer in layout order.
    #[inline]
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable buffer access.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Entry at a multi-index.
    #[inline]
    pub fn get(&self, idx: &[usize]) -> T {
        self.data[self.shape.linear_index(idx)]
    }

    /// Sets the entry at a multi-index.
    #[inline]
    pub fn set(&mut self, idx: &[usize], v: T) {
        let off = self.shape.linear_index(idx);
        self.data[off] = v;
    }

    /// Frobenius-style tensor norm ‖X‖ (accumulated in `f64`).
    pub fn norm(&self) -> T {
        T::from_f64(self.squared_norm_f64().sqrt())
    }

    /// ‖X‖² accumulated in `f64`, the quantity the rank-adaptive stopping
    /// rule of Alg. 3 compares against `(1-ε²)‖X‖²`.
    pub fn squared_norm_f64(&self) -> f64 {
        crate::flops::add(2 * self.data.len() as u64);
        let mut acc = 0.0f64;
        for &x in &self.data {
            let v = x.to_f64();
            acc += v * v;
        }
        acc
    }

    /// In-place `self += alpha * other` (used by noise injection).
    pub fn add_scaled(&mut self, alpha: T, other: &DenseTensor<T>) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add_scaled");
        crate::kernels::axpy(alpha, &other.data, &mut self.data);
    }

    /// Scales every entry.
    pub fn scale(&mut self, alpha: T) {
        crate::kernels::scal(alpha, &mut self.data);
    }

    /// Largest absolute entry-wise difference (test helper).
    pub fn max_abs_diff(&self, other: &DenseTensor<T>) -> f64 {
        assert_eq!(self.shape, other.shape, "shape mismatch in max_abs_diff");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }

    /// Relative Frobenius error ‖self − other‖ / ‖other‖.
    pub fn rel_error(&self, other: &DenseTensor<T>) -> f64 {
        assert_eq!(self.shape, other.shape, "shape mismatch in rel_error");
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for (&a, &b) in self.data.iter().zip(&other.data) {
            let d = a.to_f64() - b.to_f64();
            num += d * d;
            den += b.to_f64() * b.to_f64();
        }
        (num / den).sqrt()
    }

    /// The leading subtensor `X(0..r_0, …, 0..r_{d-1})` as a new tensor.
    ///
    /// This is the truncation primitive of the rank-adaptive core analysis
    /// (§3.2): any leading subtensor of the core, with the corresponding
    /// leading factor columns, is a valid Tucker approximation.
    pub fn leading_subtensor(&self, ranks: &[usize]) -> DenseTensor<T> {
        assert_eq!(ranks.len(), self.order(), "rank vector order mismatch");
        for (k, &r) in ranks.iter().enumerate() {
            assert!(
                r >= 1 && r <= self.dim(k),
                "rank {r} out of range for mode {k} (dim {})",
                self.dim(k)
            );
        }
        let sub_shape = Shape::new(ranks);
        let mut out = DenseTensor::zeros(sub_shape.clone());
        // Copy contiguous mode-0 runs.
        let run = ranks[0];
        let out_entries = sub_shape.num_entries();
        let mut idx = vec![0usize; self.order()];
        let mut out_off = 0;
        while out_off < out_entries {
            let src = self.shape.linear_index(&idx);
            out.data[out_off..out_off + run].copy_from_slice(&self.data[src..src + run]);
            out_off += run;
            // Advance the multi-index over modes 1.. (mode 0 handled by runs).
            for k in 1..self.order() {
                idx[k] += 1;
                if idx[k] < ranks[k] {
                    break;
                }
                idx[k] = 0;
            }
        }
        out
    }

    /// Views the tensor as its mode-0 unfolding: an `n_0 × (N/n_0)`
    /// column-major matrix *over the same buffer* (zero-copy by layout).
    pub fn as_mode0_matrix(&self) -> (usize, usize, &[T]) {
        let n0 = self.dim(0);
        (n0, self.num_entries() / n0, &self.data)
    }

    /// Reinterprets the buffer under a new shape with equal entry count.
    pub fn reshape(self, shape: impl Into<Shape>) -> DenseTensor<T> {
        let shape = shape.into();
        assert_eq!(
            shape.num_entries(),
            self.data.len(),
            "reshape must preserve entry count"
        );
        DenseTensor {
            shape,
            data: self.data,
            charge: self.charge,
        }
    }

    /// Converts a 2-way tensor into a [`Matrix`] (zero-copy).
    pub fn into_matrix(self) -> Matrix<T> {
        assert_eq!(self.order(), 2, "into_matrix requires a 2-way tensor");
        Matrix::from_vec(self.dim(0), self.dim(1), self.data)
    }
}

impl<T: Scalar> std::fmt::Debug for DenseTensor<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DenseTensor({}, {} entries, ‖·‖={:.6e})",
            self.shape,
            self.num_entries(),
            self.norm().to_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_ledger_charged_for_their_lifetime() {
        ratucker_mem::install_rank(None, 0);
        let base = ratucker_mem::stats().live;
        let t: DenseTensor<f64> = DenseTensor::zeros([4, 4]);
        assert_eq!(ratucker_mem::stats().live, base + 128);
        let u = t.clone();
        assert_eq!(ratucker_mem::stats().live, base + 256);
        let r = u.reshape([2, 8]); // moves the charge, no re-charge
        assert_eq!(ratucker_mem::stats().live, base + 256);
        drop(r);
        drop(t);
        assert_eq!(ratucker_mem::stats().live, base);
        ratucker_mem::install_rank(None, 0);
    }

    #[test]
    fn try_zeros_respects_the_budget() {
        ratucker_mem::install_rank(Some(200), 0);
        let ok: DenseTensor<f64> = DenseTensor::try_zeros([5]).expect("40 B fits");
        let err = DenseTensor::<f64>::try_zeros([4, 8]).expect_err("256 B must not fit");
        assert_eq!(err.requested, 256);
        assert_eq!(err.budget, 200);
        assert!(DenseTensor::<f64>::try_from_vec([3], vec![1.0; 3]).is_ok());
        drop(ok);
        ratucker_mem::install_rank(None, 0);
    }

    #[test]
    fn from_fn_and_get_agree() {
        let t = DenseTensor::from_fn([2, 3, 4], |idx| {
            (idx[0] + 10 * idx[1] + 100 * idx[2]) as f64
        });
        assert_eq!(t.get(&[1, 2, 3]), 321.0);
        assert_eq!(t.get(&[0, 0, 0]), 0.0);
    }

    #[test]
    fn layout_is_mode0_fastest() {
        let t = DenseTensor::from_fn([2, 2], |idx| (idx[0] + 2 * idx[1]) as f32);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn norm_matches_manual() {
        let t = DenseTensor::from_vec([2, 2], vec![1.0f64, 2.0, 2.0, 4.0]);
        assert!((t.norm() - 5.0).abs() < 1e-14);
        assert!((t.squared_norm_f64() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn leading_subtensor_extracts() {
        let t = DenseTensor::from_fn([3, 3, 3], |idx| (idx[0] + 3 * idx[1] + 9 * idx[2]) as f64);
        let s = t.leading_subtensor(&[2, 1, 2]);
        assert_eq!(s.shape().dims(), &[2, 1, 2]);
        for idx in s.shape().indices() {
            assert_eq!(s.get(&idx), t.get(&idx));
        }
    }

    #[test]
    fn leading_subtensor_full_is_identity() {
        let t = DenseTensor::from_fn([2, 3], |idx| (idx[0] * 5 + idx[1]) as f32);
        let s = t.leading_subtensor(&[2, 3]);
        assert_eq!(s, t);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn leading_subtensor_rejects_overshoot() {
        let t: DenseTensor<f64> = DenseTensor::zeros([2, 2]);
        t.leading_subtensor(&[3, 1]);
    }

    #[test]
    fn add_scaled_and_rel_error() {
        let a = DenseTensor::from_vec([2], vec![1.0f64, 0.0]);
        let mut b = a.clone();
        let noise = DenseTensor::from_vec([2], vec![0.0f64, 1.0]);
        b.add_scaled(0.5, &noise);
        assert!((b.rel_error(&a) - 0.5).abs() < 1e-14);
    }

    #[test]
    fn all_finite_screens_nan_and_inf() {
        let mut t = DenseTensor::from_fn([2, 3], |idx| (idx[0] + idx[1]) as f64);
        assert!(t.all_finite());
        t.data_mut()[3] = f64::NAN;
        assert!(!t.all_finite());
        t.data_mut()[3] = f64::NEG_INFINITY;
        assert!(!t.all_finite());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = DenseTensor::from_fn([2, 3], |idx| (idx[0] + 2 * idx[1]) as f64);
        let data_before = t.data().to_vec();
        let r = t.reshape([3, 2]);
        assert_eq!(r.data(), &data_before[..]);
    }

    #[test]
    fn into_matrix_roundtrip() {
        let t = DenseTensor::from_fn([3, 2], |idx| (idx[0] + 3 * idx[1]) as f64);
        let m = t.clone().into_matrix();
        for i in 0..3 {
            for j in 0..2 {
                assert_eq!(m[(i, j)], t.get(&[i, j]));
            }
        }
    }
}
