//! Thread-local floating-point-operation accounting.
//!
//! The paper's Table 1 states leading-order flop costs for every kernel;
//! to *validate* those formulas (rather than restate them) each kernel in
//! this workspace reports the flops it performed. Counters are
//! thread-local so that each simulated MPI rank (one thread per rank in
//! `ratucker-mpi`) accumulates its own local count, mirroring the per-
//! processor cost expressions of the paper.
//!
//! # Accounting convention
//!
//! Counts are **formula-based and input-independent**: each public kernel
//! charges its closed-form cost (`2mnk` for GEMM, `n(n+1)k` for the SYRK
//! Gram update, the analogous sums for TTM) up front on the thread that
//! *called* it, regardless of the data. The old scalar kernels had a
//! zero-skip branch that silently made performed work data-dependent; the
//! packed microkernel path performs exactly the counted multiply-adds
//! (padded edge lanes compute on zeros and are charged — they are real
//! issued operations). Internal helpers (`kernels::gemm_serial` and the
//! slab loops in `ttm`/`gram`) charge nothing, so routing one product
//! through many sub-calls never double-counts.
//!
//! Intra-rank worker threads ([`crate::par`]) start with a zero counter
//! and are harvested back into the calling rank thread on join, so the
//! per-rank totals — and every obs/trace partition invariant built on
//! them — are independent of `RATUCKER_THREADS`.

use std::cell::Cell;

thread_local! {
    static FLOPS: Cell<u64> = const { Cell::new(0) };
}

/// Adds `n` flops to the current thread's counter.
#[inline]
pub fn add(n: u64) {
    FLOPS.with(|c| c.set(c.get().wrapping_add(n)));
}

/// Returns the current thread's cumulative flop count.
pub fn get() -> u64 {
    FLOPS.with(|c| c.get())
}

/// Resets the current thread's counter to zero.
pub fn reset() {
    FLOPS.with(|c| c.set(0));
}

/// Runs `f` and returns `(result, flops performed by f on this thread)`.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = get();
    let out = f();
    (out, get().wrapping_sub(before))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_and_reset() {
        reset();
        add(10);
        add(32);
        assert_eq!(get(), 42);
        reset();
        assert_eq!(get(), 0);
    }

    #[test]
    fn measure_is_differential() {
        reset();
        add(5);
        let ((), inner) = measure(|| add(7));
        assert_eq!(inner, 7);
        assert_eq!(get(), 12);
    }

    #[test]
    fn counters_are_per_thread() {
        reset();
        add(3);
        let handle = std::thread::spawn(|| {
            add(100);
            get()
        });
        assert_eq!(handle.join().unwrap(), 100);
        assert_eq!(get(), 3);
    }
}
