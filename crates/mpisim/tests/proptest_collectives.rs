//! Property-based tests: every collective must agree with its sequential
//! specification for arbitrary payloads, rank counts, and roots.

use proptest::prelude::*;
use ratucker_mpi::{sum_op, Universe};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn allreduce_equals_sequential_fold(
        p in 1usize..=6,
        len in 0usize..8,
        seed in 0u64..1000,
    ) {
        // Deterministic per-rank payloads derived from (seed, rank).
        let payload = move |rank: usize| -> Vec<f64> {
            (0..len).map(|i| ((seed as usize + rank * 31 + i * 7) % 97) as f64).collect()
        };
        let expected: Vec<f64> = (0..len)
            .map(|i| (0..p).map(|r| payload(r)[i]).sum())
            .collect();
        let out = Universe::launch(p, move |c| c.allreduce(payload(c.rank()), sum_op));
        for v in out {
            prop_assert_eq!(&v, &expected);
        }
    }

    #[test]
    fn bcast_delivers_root_payload(
        p in 1usize..=6,
        root_pick in 0usize..6,
        len in 0usize..8,
    ) {
        let root = root_pick % p;
        let data: Vec<u64> = (0..len as u64).map(|i| i * 3 + 1).collect();
        let expected = data.clone();
        let out = Universe::launch(p, move |c| {
            let send = if c.rank() == root { data.clone() } else { Vec::new() };
            c.bcast(root, send)
        });
        for v in out {
            prop_assert_eq!(&v, &expected);
        }
    }

    #[test]
    fn allgather_then_flatten_reconstructs_all(
        p in 1usize..=6,
        seed in 0u64..1000,
    ) {
        let payload = move |rank: usize| -> Vec<u64> {
            (0..(rank % 3) + 1).map(|i| seed + (rank * 100 + i) as u64).collect()
        };
        let out = Universe::launch(p, move |c| c.allgatherv(payload(c.rank())));
        for blocks in out {
            prop_assert_eq!(blocks.len(), p);
            for (r, b) in blocks.iter().enumerate() {
                prop_assert_eq!(b, &payload(r));
            }
        }
    }

    #[test]
    fn reduce_scatter_partitions_allreduce(
        p in 1usize..=5,
        seed in 0u64..1000,
        counts_seed in 0usize..100,
    ) {
        // Random per-rank counts (some possibly zero).
        let counts: Vec<usize> = (0..p).map(|i| (counts_seed + i * 13) % 4).collect();
        let total: usize = counts.iter().sum();
        let payload = move |rank: usize| -> Vec<f64> {
            (0..total).map(|i| ((seed as usize + rank * 17 + i * 5) % 89) as f64).collect()
        };
        let full_sum: Vec<f64> = (0..total)
            .map(|i| (0..p).map(|r| payload(r)[i]).sum())
            .collect();
        let counts2 = counts.clone();
        let out = Universe::launch(p, move |c| {
            c.reduce_scatter(payload(c.rank()), &counts2, sum_op)
        });
        let mut offset = 0;
        for (r, block) in out.into_iter().enumerate() {
            prop_assert_eq!(&block[..], &full_sum[offset..offset + counts[r]]);
            offset += counts[r];
        }
    }

    #[test]
    fn alltoall_is_a_transpose(p in 1usize..=6, seed in 0u64..100) {
        let out = Universe::launch(p, move |c| {
            let blocks: Vec<Vec<u64>> =
                (0..p).map(|dst| vec![seed + (c.rank() * 1000 + dst) as u64]).collect();
            c.alltoallv(blocks)
        });
        for (me, rows) in out.into_iter().enumerate() {
            for (src, b) in rows.into_iter().enumerate() {
                prop_assert_eq!(b, vec![seed + (src * 1000 + me) as u64]);
            }
        }
    }

    #[test]
    fn delay_only_fault_plans_preserve_collective_semantics(
        p in 2usize..=6,
        len in 1usize..8,
        seed in 0u64..1000,
        plan_seed in 0u64..1000,
        prob_pct in 0u32..=100,
    ) {
        // A plan that can only reorder timing must be invisible to the
        // collectives: same sums, same blocks, bit for bit.
        let plan = ratucker_mpi::FaultPlan::quiet(plan_seed)
            .with_delays(prob_pct as f64 / 100.0, std::time::Duration::from_micros(400));
        prop_assert!(plan.is_semantics_preserving());

        let payload = move |rank: usize| -> Vec<f64> {
            (0..len)
                .map(|i| ((seed as usize + rank * 29 + i * 11) % 83) as f64 * 0.5)
                .collect()
        };
        let expected: Vec<f64> = (0..len)
            .map(|i| (0..p).map(|r| payload(r)[i]).sum())
            .collect();

        let u = Universe::with_fault_plan(p, plan);
        let out = u.run(move |c| {
            let summed = c.allreduce(payload(c.rank()), sum_op);
            let gathered = c.allgatherv(payload(c.rank()));
            (summed, gathered)
        });
        for (summed, gathered) in out {
            prop_assert_eq!(&summed, &expected);
            for (r, b) in gathered.iter().enumerate() {
                prop_assert_eq!(b, &payload(r));
            }
        }
    }

    #[test]
    fn retry_healed_flaky_links_leave_collectives_bit_identical(
        p in 2usize..=5,
        len in 1usize..8,
        seed in 0u64..1000,
        plan_seed in 0u64..1000,
        prob_pct in 1u32..=20,
        link_seed in 0usize..100,
    ) {
        // A flaky link loses messages, so the plan is *not*
        // semantics-preserving on its own — but bounded retry heals it,
        // and because loss decisions are pure functions of the per-link
        // message index, a healed run is bit-identical to a fault-free
        // one. At 20% loss and 12 retries the chance of exhaustion is
        // ~0.2^13 per message — never within this suite's lifetime.
        let src = link_seed % p;
        let dst = (src + 1 + link_seed % (p - 1)) % p;
        let plan = ratucker_mpi::FaultPlan::quiet(plan_seed)
            .with_flaky_link(src, dst, prob_pct as f64 / 100.0);
        prop_assert!(!plan.is_semantics_preserving());

        let payload = move |rank: usize| -> Vec<f64> {
            (0..len)
                .map(|i| ((seed as usize + rank * 29 + i * 11) % 83) as f64 * 0.5)
                .collect()
        };
        let workload = move |c: ratucker_mpi::Comm| {
            let summed = c.allreduce(payload(c.rank()), sum_op);
            let gathered = c.allgatherv(payload(c.rank()));
            let bits: Vec<u64> = summed
                .iter()
                .chain(gathered.iter().flatten())
                .map(|v| v.to_bits())
                .collect();
            bits
        };
        let baseline = Universe::new(p).run(workload);

        let u = Universe::with_fault_plan(p, plan);
        u.set_retry_policy(Some(ratucker_mpi::RetryPolicy::new(12)));
        let healed = u.run(workload);
        prop_assert_eq!(&healed, &baseline);

        // The ledger stays partitioned through retries, and any drop
        // that occurred was healed rather than surfacing as a timeout.
        let stats = u.traffic();
        prop_assert!(stats.check_invariant().is_ok());
        let dropped = stats.dropped.load(std::sync::atomic::Ordering::Relaxed);
        let healed = stats.drops_healed.load(std::sync::atomic::Ordering::Relaxed);
        prop_assert!(healed >= u64::from(dropped > 0));
    }

    #[test]
    fn type_mismatch_is_reported_not_panicked(p in 2usize..=4) {
        // Regression (ISSUE satellite): mismatched element types across a
        // send/recv pair must surface as a typed error through try_run —
        // no should_panic involved.
        let out = Universe::new(p).try_run(move |c| {
            if c.rank() == 0 {
                c.send(1, vec![1.0f64, 2.0]);
                Ok(())
            } else if c.rank() == 1 {
                match c.try_recv::<u64>(0) {
                    Err(e) => Err(e),
                    Ok(_) => Ok(()),
                }
            } else {
                Ok(())
            }
        });
        for (rank, r) in out.into_iter().enumerate() {
            let inner = r.expect("no rank panics in this scenario");
            if rank == 1 {
                let err = inner.expect_err("rank 1 must observe the type mismatch");
                prop_assert!(
                    err.to_string().contains("unexpected element type"),
                    "got: {err}"
                );
            } else {
                prop_assert!(inner.is_ok());
            }
        }
    }

    #[test]
    fn split_partitions_and_preserves_ranks(p in 1usize..=8, ncolors in 1usize..4) {
        let out = Universe::launch(p, move |c| {
            let color = c.rank() % ncolors;
            let sub = c.split(color, c.rank());
            (color, sub.rank(), sub.size())
        });
        for (rank, (color, sub_rank, sub_size)) in out.into_iter().enumerate() {
            let members: Vec<usize> = (0..p).filter(|r| r % ncolors == color).collect();
            prop_assert_eq!(sub_size, members.len());
            prop_assert_eq!(members[sub_rank], rank);
        }
    }
}
