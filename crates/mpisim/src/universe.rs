//! Launching a set of ranks.
//!
//! [`Universe::run`] plays the role of `mpirun`: it spawns one OS thread
//! per rank, hands each a world [`Comm`], and collects the per-rank return
//! values. A rank panic propagates (all other ranks then fail their next
//! receive with a closed-channel error instead of hanging).

use crate::comm::Comm;
use crate::fabric::{Fabric, TrafficStats};
use std::sync::Arc;

/// A set of `p` ranks over a shared fabric.
pub struct Universe {
    fabric: Arc<Fabric>,
}

impl Universe {
    /// Creates a universe with `p` ranks.
    pub fn new(p: usize) -> Universe {
        Universe {
            fabric: Fabric::new(p),
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.fabric.size()
    }

    /// Traffic counters accumulated by everything run on this universe.
    pub fn traffic(&self) -> &TrafficStats {
        self.fabric.stats()
    }

    /// Runs `f` on every rank concurrently and returns the per-rank
    /// results in rank order. May be called repeatedly; traffic counters
    /// accumulate across calls.
    pub fn run<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Comm) -> R + Sync,
    {
        let p = self.fabric.size();
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..p)
                .map(|rank| {
                    let comm = Comm::world(Arc::clone(&self.fabric), rank);
                    scope.spawn(move || f(comm))
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(rank, h)| {
                    h.join()
                        .unwrap_or_else(|_| panic!("rank {rank} panicked"))
                })
                .collect()
        })
    }

    /// Convenience one-shot: build a universe, run, return results.
    pub fn launch<R, F>(p: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Comm) -> R + Sync,
    {
        Universe::new(p).run(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_their_ids() {
        let ids = Universe::launch(5, |c| (c.rank(), c.size()));
        for (i, &(r, s)) in ids.iter().enumerate() {
            assert_eq!(r, i);
            assert_eq!(s, 5);
        }
    }

    #[test]
    fn universe_is_reusable() {
        let u = Universe::new(3);
        let a = u.run(|c| c.rank());
        let b = u.run(|c| c.rank() * 10);
        assert_eq!(a, vec![0, 1, 2]);
        assert_eq!(b, vec![0, 10, 20]);
    }

    #[test]
    fn single_rank_universe() {
        let out = Universe::launch(1, |c| {
            c.barrier();
            c.rank()
        });
        assert_eq!(out, vec![0]);
    }
}
