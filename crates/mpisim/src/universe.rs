//! Launching a set of ranks.
//!
//! [`Universe::run`] plays the role of `mpirun`: it spawns one OS thread
//! per rank, hands each a world [`Comm`], and collects the per-rank return
//! values. [`Universe::try_run`] is the fault-tolerant variant: a rank
//! panic (including injected crashes from a [`FaultPlan`]) is caught and
//! returned as a [`RankFailure`] carrying the original panic payload,
//! while the crashed rank is retired on the fabric so surviving ranks
//! observe [`crate::CommError::PeerClosed`] instead of hanging.

use crate::comm::Comm;
use crate::fabric::{Adversary, Fabric, SchedulePolicy, TrafficStats};
use crate::fault::{FaultPlan, RankFailure};
use std::panic::AssertUnwindSafe;
use std::sync::Arc;
use std::time::Duration;

std::thread_local! {
    /// Set while a rank thread runs under a universe: the process-wide
    /// panic hook stays quiet for these threads because the panic is
    /// captured (and re-raised or reported) by the launcher.
    static RANK_THREAD: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Installs (once) a panic hook that suppresses the default "thread
/// panicked" stderr noise for rank threads, whose panics are captured.
fn install_quiet_hook() {
    static HOOK: std::sync::OnceLock<()> = std::sync::OnceLock::new();
    HOOK.get_or_init(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !RANK_THREAD.with(|f| f.get()) || std::env::var_os("MPISIM_RANK_BACKTRACE").is_some()
            {
                default(info);
            }
        }));
    });
}

/// Stringifies a panic payload, preserving `&str` / `String` payloads.
fn payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Outcome summary of [`Universe::explore`]. All assertions happen
/// *inside* `explore` (it panics on any divergence, deadlock, or
/// accounting violation), so the report is purely diagnostic.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// The schedule policies exercised, in order; index 0 is the
    /// unperturbed baseline every later schedule is compared against.
    pub policies: Vec<SchedulePolicy>,
    /// Ranks that failed — identically under every schedule — if the
    /// workload deliberately includes failing ranks (fault injection).
    pub failed_ranks: Vec<usize>,
}

/// The deterministic schedule suite [`Universe::explore`] runs: the `Os`
/// baseline, the LIFO, crossing-delay, and wait-starving overlap
/// adversaries, starvation of each rank in turn, then seeded-random
/// schedules derived from `seed`. All `n_schedules` entries are pairwise
/// distinct.
pub fn schedule_suite(p: usize, n_schedules: usize, seed: u64) -> Vec<SchedulePolicy> {
    (0..n_schedules)
        .map(|i| match i {
            0 => SchedulePolicy::Os,
            1 => SchedulePolicy::Adversarial(Adversary::Lifo),
            2 => SchedulePolicy::Adversarial(Adversary::CrossDelay),
            3 => SchedulePolicy::Adversarial(Adversary::StarveWaits),
            _ if i - 4 < p => SchedulePolicy::Adversarial(Adversary::StarveRank { rank: i - 4 }),
            _ => SchedulePolicy::SeededRandom {
                seed: seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(i as u64),
            },
        })
        .collect()
}

/// Sentinel for "no budget" in [`Universe`]'s atomic budget cell.
const NO_BUDGET: u64 = u64::MAX;

/// A set of `p` ranks over a shared fabric.
pub struct Universe {
    fabric: Arc<Fabric>,
    /// Per-rank memory budget installed on each rank thread's ledger at
    /// spawn ([`NO_BUDGET`] = unbudgeted).
    mem_budget: std::sync::atomic::AtomicU64,
    /// Degradation rung each rank's ledger starts on (admission control
    /// may start a job pre-degraded instead of rejecting it).
    start_rung: std::sync::atomic::AtomicU8,
}

impl Universe {
    /// Creates a universe with `p` ranks.
    pub fn new(p: usize) -> Universe {
        Universe {
            fabric: Fabric::new(p),
            mem_budget: std::sync::atomic::AtomicU64::new(NO_BUDGET),
            start_rung: std::sync::atomic::AtomicU8::new(0),
        }
    }

    /// Creates a universe with `p` ranks and a fault-injection plan
    /// attached to its fabric.
    pub fn with_fault_plan(p: usize, plan: FaultPlan) -> Universe {
        let u = Universe::new(p);
        u.fabric.attach_fault_plan(plan);
        u
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.fabric.size()
    }

    /// Traffic counters accumulated by everything run on this universe.
    pub fn traffic(&self) -> &TrafficStats {
        self.fabric.stats()
    }

    /// The underlying fabric (for timeout / fault-plan configuration).
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// Overrides the blocked-receive timeout for all ranks. The default
    /// is 120 s, or the value of `MPISIM_RECV_TIMEOUT_SECS` if set.
    pub fn set_recv_timeout(&self, timeout: Duration) -> &Universe {
        self.fabric.set_recv_timeout(timeout);
        self
    }

    /// Attaches (or replaces) a fault-injection plan.
    pub fn set_fault_plan(&self, plan: FaultPlan) -> &Universe {
        self.fabric.attach_fault_plan(plan);
        self
    }

    /// Removes the fault-injection plan, if any. A long-lived universe
    /// needs this between jobs: `reset_for_run` re-arms the plan's op
    /// counters on every run, so a one-shot injected crash would fire
    /// again on the *next* job unless the plan is cleared once consumed.
    pub fn clear_fault_plan(&self) -> &Universe {
        self.fabric.clear_fault_plan();
        self
    }

    /// Installs (or clears, with `None`) per-collective deadline budgets
    /// for all ranks (see [`crate::DeadlinePolicy`]).
    pub fn set_deadline_policy(&self, policy: Option<crate::DeadlinePolicy>) -> &Universe {
        self.fabric.set_deadline_policy(policy);
        self
    }

    /// Installs (or clears, with `None`) the retry-with-backoff policy
    /// for all ranks (see [`crate::RetryPolicy`]).
    pub fn set_retry_policy(&self, policy: Option<crate::RetryPolicy>) -> &Universe {
        self.fabric.set_retry_policy(policy);
        self
    }

    /// Installs (or, with [`SchedulePolicy::Os`], clears) a schedule
    /// perturbation policy for subsequent runs.
    pub fn set_schedule_policy(&self, policy: SchedulePolicy) -> &Universe {
        self.fabric.set_schedule_policy(policy);
        self
    }

    /// Installs (or clears, with `None`) a per-rank memory budget:
    /// every rank thread spawned by subsequent runs starts with its
    /// `ratucker-mem` ledger reset and this budget in force.
    pub fn set_mem_budget(&self, budget: Option<u64>) -> &Universe {
        self.mem_budget.store(
            budget.unwrap_or(NO_BUDGET),
            std::sync::atomic::Ordering::Relaxed,
        );
        self
    }

    /// Sets the degradation rung rank ledgers start on (default 0).
    /// Admission control uses this to start a tight-budget job already
    /// degraded instead of rejecting it outright.
    pub fn set_start_rung(&self, rung: u8) -> &Universe {
        self.start_rung
            .store(rung, std::sync::atomic::Ordering::Relaxed);
        self
    }

    /// Replays `f` under `n_schedules` distinct deterministic message
    /// schedules (see [`schedule_suite`]) and asserts that the program is
    /// schedule-independent:
    ///
    /// - **bit-identical results** — every rank's return value equals the
    ///   baseline (`Os`) schedule's, compared with `PartialEq` (return
    ///   raw factor data, not summaries, to make this a bitwise check);
    /// - **identical failure sets** — ranks that panic (e.g. injected
    ///   crashes) fail on the same rank with the same message everywhere;
    /// - **deadlock-freedom** — no rank times out on a receive under any
    ///   schedule;
    /// - **traffic invariants** — the fabric's accounting invariant
    ///   (`attempted == delivered + dropped`) and per-kind partition
    ///   invariant hold after every run.
    ///
    /// Panics with a message naming the offending schedule on any
    /// violation; otherwise returns a diagnostic [`ExploreReport`]. The
    /// previously installed schedule policy is replaced, and the fabric
    /// is left back on [`SchedulePolicy::Os`].
    pub fn explore<R, F>(&self, n_schedules: usize, seed: u64, f: F) -> ExploreReport
    where
        R: Send + PartialEq + std::fmt::Debug,
        F: Fn(Comm) -> R + Sync,
    {
        assert!(n_schedules > 0, "explore needs at least one schedule");
        let policies = schedule_suite(self.size(), n_schedules, seed);
        let mut baseline: Option<Vec<Result<R, RankFailure>>> = None;
        for (i, &policy) in policies.iter().enumerate() {
            self.fabric.set_schedule_policy(policy);
            let out = self.try_run(&f);
            self.fabric.set_schedule_policy(SchedulePolicy::Os);
            for (rank, res) in out.iter().enumerate() {
                if let Err(failure) = res {
                    assert!(
                        !failure.message.contains("timed out waiting"),
                        "schedule {i} ({policy:?}): rank {rank} deadlocked: {}",
                        failure.message
                    );
                }
            }
            // The fabric is quiescent between runs, so both counter
            // invariants must hold exactly (they are cumulative across
            // schedules; monotonicity keeps the checks valid).
            if let Err((attempted, delivered, dropped)) = self.fabric.stats().check_invariant() {
                panic!(
                    "schedule {i} ({policy:?}): traffic accounting violated: \
                     attempted {attempted} != delivered {delivered} + dropped {dropped}"
                );
            }
            if let Err(err) = self.fabric.stats().check_kind_partition() {
                panic!("schedule {i} ({policy:?}): kind-partition invariant violated: {err:?}");
            }
            match &baseline {
                None => baseline = Some(out),
                Some(base) => {
                    for (rank, (b, o)) in base.iter().zip(&out).enumerate() {
                        match (b, o) {
                            (Ok(bv), Ok(ov)) => assert!(
                                bv == ov,
                                "schedule {i} ({policy:?}): rank {rank} diverged from the \
                                 baseline schedule:\n  baseline: {bv:?}\n  got:      {ov:?}"
                            ),
                            (Err(bf), Err(of)) => assert!(
                                bf.message == of.message,
                                "schedule {i} ({policy:?}): rank {rank} failed differently: \
                                 baseline {:?}, got {:?}",
                                bf.message,
                                of.message
                            ),
                            (Ok(_), Err(of)) => panic!(
                                "schedule {i} ({policy:?}): rank {rank} failed where the \
                                 baseline succeeded: {}",
                                of.message
                            ),
                            (Err(bf), Ok(_)) => panic!(
                                "schedule {i} ({policy:?}): rank {rank} succeeded where the \
                                 baseline failed: {}",
                                bf.message
                            ),
                        }
                    }
                }
            }
        }
        let failed_ranks = baseline
            .map(|base| {
                base.iter()
                    .enumerate()
                    .filter_map(|(rank, res)| res.is_err().then_some(rank))
                    .collect()
            })
            .unwrap_or_default();
        ExploreReport {
            policies,
            failed_ranks,
        }
    }

    /// Runs `f` on every rank concurrently, catching per-rank panics.
    ///
    /// Returns one entry per rank, in rank order: `Ok(result)` for ranks
    /// that returned, `Err(RankFailure)` — with the original panic
    /// payload preserved — for ranks that panicked (organically or via
    /// an injected crash). A panicking rank is retired on the fabric
    /// immediately, so surviving ranks blocked on it fail fast with
    /// [`crate::CommError::PeerClosed`] rather than waiting out the
    /// receive timeout. Never aborts the process; never hangs longer
    /// than the receive timeout.
    pub fn try_run<R, F>(&self, f: F) -> Vec<Result<R, RankFailure>>
    where
        R: Send,
        F: Fn(Comm) -> R + Sync,
    {
        install_quiet_hook();
        self.fabric.reset_for_run();
        let p = self.fabric.size();
        let budget = self.mem_budget.load(std::sync::atomic::Ordering::Relaxed);
        let budget = (budget != NO_BUDGET).then_some(budget);
        let rung = self.start_rung.load(std::sync::atomic::Ordering::Relaxed);
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..p)
                .map(|rank| {
                    let fabric = Arc::clone(&self.fabric);
                    scope.spawn(move || {
                        RANK_THREAD.with(|flag| flag.set(true));
                        // Fresh ledger per run: replayed schedules (and
                        // reused universes) start from identical
                        // accounting state.
                        ratucker_mem::install_rank(budget, rung);
                        let comm = Comm::world(Arc::clone(&fabric), rank);
                        let result = std::panic::catch_unwind(AssertUnwindSafe(|| f(comm)));
                        if result.is_err() {
                            // Wake peers blocked on this rank.
                            fabric.retire(rank);
                        }
                        result
                    })
                })
                .collect();
            handles
                .into_iter()
                .enumerate()
                .map(|(rank, h)| match h.join() {
                    Ok(Ok(value)) => Ok(value),
                    Ok(Err(payload)) => Err(RankFailure {
                        rank,
                        message: payload_to_string(payload.as_ref()),
                    }),
                    // The catch_unwind above makes this unreachable, but
                    // translate rather than abort if it ever happens.
                    Err(payload) => Err(RankFailure {
                        rank,
                        message: payload_to_string(payload.as_ref()),
                    }),
                })
                .collect()
        })
    }

    /// Runs `f` on every rank concurrently and returns the per-rank
    /// results in rank order. May be called repeatedly; traffic counters
    /// accumulate across calls.
    ///
    /// # Panics
    /// If any rank panics, re-raises with the rank id *and the rank's
    /// original panic message* attached.
    pub fn run<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Comm) -> R + Sync,
    {
        self.try_run(f)
            .into_iter()
            .map(|res| match res {
                Ok(v) => v,
                Err(failure) => panic!("rank {} panicked: {}", failure.rank, failure.message),
            })
            .collect()
    }

    /// Convenience one-shot: build a universe, run, return results.
    pub fn launch<R, F>(p: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Comm) -> R + Sync,
    {
        Universe::new(p).run(f)
    }

    /// Convenience one-shot for the fault-tolerant path: build a
    /// universe with `plan` attached, `try_run`, return per-rank
    /// outcomes.
    pub fn try_launch<R, F>(p: usize, plan: FaultPlan, f: F) -> Vec<Result<R, RankFailure>>
    where
        R: Send,
        F: Fn(Comm) -> R + Sync,
    {
        Universe::with_fault_plan(p, plan).try_run(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_their_ids() {
        let ids = Universe::launch(5, |c| (c.rank(), c.size()));
        for (i, &(r, s)) in ids.iter().enumerate() {
            assert_eq!(r, i);
            assert_eq!(s, 5);
        }
    }

    #[test]
    fn universe_is_reusable() {
        let u = Universe::new(3);
        let a = u.run(|c| c.rank());
        let b = u.run(|c| c.rank() * 10);
        assert_eq!(a, vec![0, 1, 2]);
        assert_eq!(b, vec![0, 10, 20]);
    }

    #[test]
    fn single_rank_universe() {
        let out = Universe::launch(1, |c| {
            c.barrier();
            c.rank()
        });
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn mem_budget_and_rung_are_installed_on_rank_threads() {
        let u = Universe::new(2);
        u.set_mem_budget(Some(4096)).set_start_rung(1);
        let out = u.run(|_c| (ratucker_mem::budget(), ratucker_mem::rung()));
        assert!(out.iter().all(|&(b, r)| b == Some(4096) && r == 1));
        // Clearing restores unbudgeted rung-0 ledgers on the next run.
        u.set_mem_budget(None).set_start_rung(0);
        let out = u.run(|_c| (ratucker_mem::budget(), ratucker_mem::rung()));
        assert!(out.iter().all(|&(b, r)| b.is_none() && r == 0));
    }

    #[test]
    fn mem_pressure_arms_the_budget_at_its_onset_op() {
        use crate::fault::FaultPlan;
        // Each barrier is a fixed number of fabric ops; after enough of
        // them every rank is past onset 4.
        let u = Universe::with_fault_plan(2, FaultPlan::quiet(3).with_mem_pressure(1, 4, 1 << 16));
        let out = u.run(|c| {
            let before = ratucker_mem::budget();
            for _ in 0..8 {
                c.barrier();
            }
            (before, ratucker_mem::budget())
        });
        assert_eq!(out[0], (None, None), "unpressured rank stays unbudgeted");
        assert_eq!(out[1].0, None, "pressure must not fire before onset");
        assert_eq!(out[1].1, Some(1 << 16), "pressure armed at onset");
    }

    #[test]
    fn try_run_captures_panic_payload() {
        let u = Universe::new(2);
        let out = u.try_run(|c| {
            if c.rank() == 1 {
                panic!("deliberate failure on rank {}", c.rank());
            }
            c.rank()
        });
        assert_eq!(out[0].as_ref().unwrap(), &0);
        let failure = out[1].as_ref().unwrap_err();
        assert_eq!(failure.rank, 1);
        assert_eq!(failure.message, "deliberate failure on rank 1");
    }

    #[test]
    fn run_reraises_with_original_message() {
        let err = std::panic::catch_unwind(|| {
            Universe::launch(2, |c| {
                if c.rank() == 0 {
                    panic!("the real reason");
                }
                c.rank()
            });
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("rank 0 panicked") && msg.contains("the real reason"),
            "got: {msg}"
        );
    }

    #[test]
    fn crashed_peer_fails_fast_not_timeout() {
        use std::time::Instant;
        let u = Universe::new(2);
        u.set_recv_timeout(Duration::from_secs(30));
        let start = Instant::now();
        let out = u.try_run(|c| {
            if c.rank() == 0 {
                panic!("rank 0 dies before sending");
            }
            // Rank 1 blocks on rank 0; must fail fast via PeerClosed.
            c.recv::<f64>(0).len()
        });
        assert!(out[0].is_err());
        assert!(out[1].is_err());
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "survivor should fail fast, took {:?}",
            start.elapsed()
        );
        let msg = &out[1].as_ref().unwrap_err().message;
        assert!(msg.contains("fabric channel closed"), "got: {msg}");
    }

    #[test]
    fn universe_usable_after_failed_try_run() {
        let u = Universe::new(2);
        let bad = u.try_run(|c| {
            if c.rank() == 0 {
                panic!("boom");
            }
            c.rank()
        });
        assert!(bad[0].is_err());
        let good = u.try_run(|c| {
            c.barrier();
            c.rank() + 100
        });
        assert_eq!(
            good.into_iter().map(Result::unwrap).collect::<Vec<_>>(),
            vec![100, 101]
        );
    }

    #[test]
    fn explore_accepts_schedule_invariant_collectives() {
        let u = Universe::new(4);
        u.set_recv_timeout(Duration::from_secs(20));
        let report = u.explore(8, 42, |c| {
            let sum = c.allreduce(vec![c.rank() as f64 + 1.0, 2.5], |acc, x| {
                for (a, b) in acc.iter_mut().zip(x) {
                    *a += *b;
                }
            });
            c.barrier();
            // Return raw bits so the comparison is bitwise, not approximate.
            sum.iter().map(|v| v.to_bits()).collect::<Vec<u64>>()
        });
        assert_eq!(report.policies.len(), 8);
        assert!(report.failed_ranks.is_empty());
        // Suite structure: baseline first, every policy distinct.
        assert_eq!(report.policies[0], SchedulePolicy::Os);
        for (i, a) in report.policies.iter().enumerate() {
            for b in &report.policies[i + 1..] {
                assert_ne!(a, b, "schedules must be pairwise distinct");
            }
        }
    }

    #[test]
    fn explore_detects_divergent_results() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let u = Universe::new(2);
        // A deliberately schedule-dependent "program": rank 0's result
        // changes on every run, so the second schedule must diverge.
        let counter = AtomicU64::new(0);
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            u.explore(3, 7, |c| {
                if c.rank() == 0 {
                    counter.fetch_add(1, Ordering::SeqCst)
                } else {
                    0
                }
            });
        }));
        let msg = payload_to_string(res.unwrap_err().as_ref());
        assert!(msg.contains("diverged"), "got: {msg}");
    }

    #[test]
    fn injected_crash_is_reported_per_rank() {
        use crate::fault::FaultPlan;
        let out = Universe::try_launch(2, FaultPlan::quiet(0).with_crash(1, 1), |c| {
            c.barrier();
            c.rank()
        });
        assert!(out[0].is_err() || out[0].is_ok()); // rank 0: PeerClosed panic or completed
        let f = out[1].as_ref().unwrap_err();
        assert!(f.message.contains("injected crash"), "got: {}", f.message);
    }

    #[test]
    fn clear_fault_plan_disarms_before_next_run() {
        // Without the clear, reset_for_run re-arms the plan's op counters
        // and the second run would crash again.
        use crate::fault::FaultPlan;
        let u = Universe::new(2);
        u.set_fault_plan(FaultPlan::quiet(0).with_crash(1, 1));
        let first = u.try_run(|c| {
            c.barrier();
            c.rank()
        });
        assert!(first[1].is_err(), "crash plan should fire on first run");
        u.clear_fault_plan();
        let second = u.try_run(|c| {
            c.barrier();
            c.rank()
        });
        for (r, res) in second.iter().enumerate() {
            assert_eq!(*res.as_ref().expect("clean run after clear"), r);
        }
    }
}
