//! Typed communication errors and deterministic fault injection.
//!
//! The paper's algorithms target thousands of ranks, where message loss,
//! stragglers, and node failure are routine. This module gives the
//! simulated fabric the same failure surface:
//!
//! - [`CommError`] — the typed error every fallible fabric / collective
//!   operation returns instead of panicking;
//! - [`FaultPlan`] — a seeded, fully deterministic description of the
//!   faults to inject (per-link delay, message drop, payload corruption,
//!   rank crash at operation *N*). Every decision is a pure function of
//!   `(seed, src, dst, per-link message index)` or `(seed, rank, op
//!   index)`, so any failing chaos scenario replays bit-identically from
//!   its plan;
//! - [`RankFailure`] — the per-rank outcome captured by
//!   [`crate::Universe::try_run`] when a rank panics instead of
//!   returning.

use std::fmt;
use std::time::Duration;

/// Error type for fallible fabric and collective operations.
///
/// The `Display` text of each variant is the exact message the legacy
/// panicking API raises, so `should_panic(expected = ...)` tests keep
/// working against the thin wrappers.
#[derive(Clone, Debug, PartialEq)]
pub enum CommError {
    /// A blocked receive exceeded the fabric's receive timeout — the
    /// moral equivalent of a deadlock or a lost message.
    Timeout {
        /// World rank of the expected sender.
        src: usize,
        /// World rank of the receiver that timed out.
        dst: usize,
        /// How long the receiver waited.
        waited: Duration,
    },
    /// The peer rank retired (panicked / crashed) while this rank was
    /// sending to or receiving from it.
    PeerClosed {
        /// World rank of the retired peer.
        peer: usize,
        /// World rank of the surviving side.
        me: usize,
    },
    /// The received payload's element type did not match the expected
    /// one — mismatched collective calls, MPI's datatype error.
    TypeMismatch {
        /// World rank of the sender.
        src: usize,
        /// World rank of the receiver.
        dst: usize,
        /// The element type the receiver asked for.
        expected: &'static str,
    },
    /// A fault injected by the attached [`FaultPlan`].
    Injected {
        /// Rank at which the fault fired.
        rank: usize,
        /// Human-readable description of the injected fault.
        what: String,
    },
    /// Numerical corruption (NaN/Inf) detected by a kernel-boundary
    /// screen — either in this rank's local input block or in a
    /// collective's result (a corrupted payload from another rank).
    Corrupted {
        /// World rank that detected the corruption.
        rank: usize,
        /// Where the corruption was found.
        what: String,
    },
    /// *Finite* silent data corruption caught by an ABFT checksum: the
    /// post-allreduce verification of a checksum-augmented kernel found a
    /// mismatch larger than the numerical tolerance, even though every
    /// value is finite (so the NaN/Inf screens could not have fired).
    SilentCorruption {
        /// Tensor mode of the contraction whose checksum failed.
        mode: usize,
        /// Relative checksum mismatch observed.
        rel_err: f64,
    },
    /// The communicator was revoked by a peer that observed a failure
    /// (the ULFM `MPI_Comm_revoke` notice): every pending and future
    /// operation on it aborts so all survivors reach the agreement
    /// collective promptly instead of waiting out timeouts.
    Revoked {
        /// World rank observing the revocation.
        rank: usize,
    },
    /// A payload arrived with the right element type but the wrong
    /// element count — the signature of a dropped or misrouted message
    /// desynchronizing a point-to-point channel (the *next* payload on
    /// the channel was consumed in the lost one's place). Failure-class:
    /// the recovery path's epoch bump quarantines the stale traffic.
    SizeMismatch {
        /// World rank of the sender.
        src: usize,
        /// World rank of the receiver.
        dst: usize,
        /// Element count the receiver expected.
        expected: usize,
        /// Element count actually received.
        got: usize,
    },
    /// A receive exceeded its per-collective deadline budget (the
    /// [`crate::DeadlinePolicy`] layer *under* the global recv timeout):
    /// the peer is slow-but-alive — a gray failure — and the caller gets
    /// to react long before the coarse [`CommError::Timeout`] would fire.
    DeadlineExceeded {
        /// World rank of the expected sender (the suspected straggler).
        src: usize,
        /// World rank of the receiver whose budget expired.
        dst: usize,
        /// The collective kind whose budget expired.
        kind: &'static str,
        /// The per-operation budget that was exhausted.
        budget: Duration,
    },
    /// The rank was demoted by the failure detector (straggler demotion
    /// or a deadline-blame eviction): its peers have agreed to treat it
    /// as failed, and every further fabric operation it issues — or that
    /// targets it — aborts with this error so the shrink machinery takes
    /// over instead of a stall.
    Demoted {
        /// World rank that was demoted.
        rank: usize,
    },
    /// An allocation was refused by the rank's memory-budget ledger
    /// (`ratucker-mem`): the requested working set would not fit under
    /// the budget. A *resource* failure, not a data failure — the
    /// recovery loop reacts by stepping down the graceful-degradation
    /// ladder (smaller staging, streamed accumulation, frozen rank
    /// growth) instead of aborting the process the way a real OOM would.
    BudgetExceeded {
        /// World rank whose budget was exhausted.
        rank: usize,
        /// Allocation phase (ledger attribution) of the refused charge.
        phase: &'static str,
        /// Bytes the refused charge asked for.
        requested: u64,
        /// Live ledger bytes at the time of the refusal.
        live: u64,
        /// The budget in force, in bytes.
        budget: u64,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Timeout { src, dst, waited } => write!(
                f,
                "rank {dst} timed out waiting for a message from rank {src} \
                 (mismatched collective?) after {:.1}s",
                waited.as_secs_f64()
            ),
            CommError::PeerClosed { peer, me } => write!(
                f,
                "fabric channel closed: a rank panicked \
                 (rank {peer} retired; observed by rank {me})"
            ),
            CommError::TypeMismatch { src, dst, expected } => write!(
                f,
                "rank {dst} received a message from rank {src} \
                 with unexpected element type {expected}"
            ),
            CommError::Injected { rank, what } => {
                write!(f, "injected fault at rank {rank}: {what}")
            }
            CommError::Corrupted { rank, what } => {
                write!(f, "rank {rank} detected corrupted data: {what}")
            }
            CommError::SilentCorruption { mode, rel_err } => write!(
                f,
                "ABFT checksum mismatch in mode {mode} \
                 (silent data corruption, relative error {rel_err:.3e})"
            ),
            CommError::Revoked { rank } => write!(
                f,
                "communicator revoked for fault recovery (observed by rank {rank})"
            ),
            // `src == dst` marks a self-detected configuration mismatch
            // (e.g. a grid shape that disagrees with its communicator)
            // rather than a wrong-sized message from a peer.
            CommError::SizeMismatch {
                src,
                dst,
                expected,
                got,
            } if src == dst => write!(
                f,
                "rank {dst} detected a size mismatch: got {got}, expected {expected} \
                 (configuration disagrees with the communicator?)"
            ),
            CommError::SizeMismatch {
                src,
                dst,
                expected,
                got,
            } => write!(
                f,
                "rank {dst} received a wrong-sized payload from rank {src} \
                 (lost or misrouted message?): got {got} elements, expected {expected}"
            ),
            CommError::DeadlineExceeded {
                src,
                dst,
                kind,
                budget,
            } => write!(
                f,
                "rank {dst} exceeded the {kind} deadline budget of {:.3}s \
                 waiting for rank {src} (slow-but-alive peer?)",
                budget.as_secs_f64()
            ),
            CommError::Demoted { rank } => write!(
                f,
                "rank {rank} was demoted by the failure detector \
                 (straggler eviction)"
            ),
            CommError::BudgetExceeded {
                rank,
                phase,
                requested,
                live,
                budget,
            } => write!(
                f,
                "rank {rank} exceeded its memory budget in phase {phase}: \
                 requested {requested} B with {live} B live against a {budget} B budget"
            ),
        }
    }
}

impl std::error::Error for CommError {}

/// Outcome of a rank that panicked under [`crate::Universe::try_run`].
#[derive(Clone, Debug)]
pub struct RankFailure {
    /// The rank that failed.
    pub rank: usize,
    /// The panic payload, stringified (`&str` / `String` payloads are
    /// preserved verbatim).
    pub message: String,
}

impl fmt::Display for RankFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank {} panicked: {}", self.rank, self.message)
    }
}

impl std::error::Error for RankFailure {}

/// How an injected corruption mangles an `f64`/`f32` payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorruptMode {
    /// Flip one mantissa/exponent bit of one element (silent data
    /// corruption — the value stays "plausible").
    BitFlip,
    /// Overwrite one element with NaN (detectable by the numerical
    /// guards at kernel boundaries).
    NanInject,
    /// Flip one *exponent* bit of one element, with a guaranteed-finite
    /// result: the value changes by a large power-of-two factor but stays
    /// an ordinary float, so NaN/Inf screens provably cannot catch it —
    /// only the ABFT checksums can.
    ExponentFlip,
}

/// Deterministic, seeded fault-injection plan attachable to a fabric.
///
/// All probabilities are evaluated with a counter-based hash, never an
/// RNG stream shared across threads, so injection decisions are
/// independent of thread scheduling: message *k* on link `src→dst` is
/// delayed/dropped/corrupted iff `hash(seed, src, dst, k)` says so,
/// regardless of when it is sent.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed from which every injection decision is derived.
    pub seed: u64,
    /// Probability that a message is delayed, and the maximum delay.
    pub delay: Option<(f64, Duration)>,
    /// Probability that a message is silently dropped (the receiver
    /// surfaces this as [`CommError::Timeout`]).
    pub drop: Option<f64>,
    /// Probability that an `f64`/`f32` payload is corrupted, and how.
    pub corrupt: Option<(f64, CorruptMode)>,
    /// `(rank, op)` pairs: rank `rank` panics ("crashes") when it issues
    /// its `op`-th fabric operation (sends + receives, 1-based).
    pub crashes: Vec<(usize, u64)>,
    /// `(rank, delay)` pairs: a *persistently slow* rank — every fabric
    /// rendezvous (send and receive) it participates in is delayed by
    /// the fixed duration. The gray-failure analogue of a crash plan:
    /// the rank stays alive and correct, just late, every single time.
    pub slow_ranks: Vec<(usize, Duration)>,
    /// `(rank, op)` pairs: suppress `slow_ranks` delays for `rank`
    /// until it has issued `op` fabric operations (sends + receives,
    /// 1-based) — models a node that *degrades mid-run* (thermal
    /// throttling, a failing disk) rather than booting slow. First
    /// match wins; absent means slow from the first operation.
    pub slow_onset: Vec<(usize, u64)>,
    /// `(src, dst, prob)` triples: a *flaky link* — messages on the
    /// specific `src→dst` link are dropped with probability `prob`,
    /// decided by the same counter-based hash as [`FaultPlan::drop_for`]
    /// (distinct salt), so flaky-link runs replay bit-identically.
    pub flaky_links: Vec<(usize, usize, f64)>,
    /// `(rank, onset, budget)` triples: *memory pressure* — when `rank`
    /// issues its `onset`-th fabric operation (sends + receives,
    /// 1-based, the same counter [`FaultPlan::slow_delay_at`] gates on)
    /// its `ratucker-mem` ledger budget shrinks to `budget` bytes.
    /// Models a co-tenant landing on the node mid-run. Deterministic:
    /// the onset is a program-order operation count, not wall time.
    pub mem_pressure: Vec<(usize, u64, u64)>,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a baseline).
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            delay: None,
            drop: None,
            corrupt: None,
            crashes: Vec::new(),
            slow_ranks: Vec::new(),
            slow_onset: Vec::new(),
            flaky_links: Vec::new(),
            mem_pressure: Vec::new(),
        }
    }

    /// Adds random per-message delays: each message is delayed with
    /// probability `prob` by a deterministic duration in `[0, max]`.
    pub fn with_delays(mut self, prob: f64, max: Duration) -> FaultPlan {
        self.delay = Some((prob, max));
        self
    }

    /// Adds random message drops with probability `prob`.
    pub fn with_drops(mut self, prob: f64) -> FaultPlan {
        self.drop = Some(prob);
        self
    }

    /// Adds random payload corruption with probability `prob`.
    pub fn with_corruption(mut self, prob: f64, mode: CorruptMode) -> FaultPlan {
        self.corrupt = Some((prob, mode));
        self
    }

    /// Schedules rank `rank` to crash at its `op`-th fabric operation
    /// (1-based across sends and receives).
    pub fn with_crash(mut self, rank: usize, op: u64) -> FaultPlan {
        self.crashes.push((rank, op));
        self
    }

    /// Marks `rank` as persistently slow: every fabric rendezvous it
    /// participates in is delayed by `delay`.
    pub fn with_slow_rank(mut self, rank: usize, delay: Duration) -> FaultPlan {
        self.slow_ranks.push((rank, delay));
        self
    }

    /// Delays the onset of `rank`'s persistent slowness until its
    /// `op`-th fabric operation (1-based): before that the rank runs at
    /// full speed. Lets a scenario get through setup collectives before
    /// the node turns dead-slow.
    pub fn with_slow_onset(mut self, rank: usize, op: u64) -> FaultPlan {
        self.slow_onset.push((rank, op));
        self
    }

    /// Marks the `src→dst` link as flaky: each message on it is dropped
    /// with probability `prob` (deterministic, counter-hashed).
    pub fn with_flaky_link(mut self, src: usize, dst: usize, prob: f64) -> FaultPlan {
        self.flaky_links.push((src, dst, prob));
        self
    }

    /// Schedules memory pressure on `rank`: from its `onset`-th fabric
    /// operation (1-based) onward, the rank's ledger budget is `budget`
    /// bytes. First entry for a rank wins.
    pub fn with_mem_pressure(mut self, rank: usize, onset: u64, budget: u64) -> FaultPlan {
        self.mem_pressure.push((rank, onset, budget));
        self
    }

    /// True if the plan can only reorder timing (delays, slow ranks),
    /// never lose or alter data — such a plan must be
    /// semantics-preserving. Flaky links lose messages, so they are not,
    /// even though retry-with-backoff can heal them in practice.
    pub fn is_semantics_preserving(&self) -> bool {
        self.drop.is_none()
            && self.corrupt.is_none()
            && self.crashes.is_empty()
            && self.flaky_links.is_empty()
            && self.mem_pressure.is_empty()
    }

    /// The scheduled crash op for `rank`, if any (first match wins).
    pub fn crash_op(&self, rank: usize) -> Option<u64> {
        self.crashes
            .iter()
            .find(|&&(r, _)| r == rank)
            .map(|&(_, op)| op)
    }

    /// Deterministic 64-bit hash for the `idx`-th message on `src→dst`.
    pub fn link_hash(&self, src: usize, dst: usize, idx: u64) -> u64 {
        let mut x = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((src as u64) << 32 | dst as u64)
            .wrapping_add(idx.wrapping_mul(0xD1B5_4A32_D192_ED03));
        // SplitMix64 finalizer.
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// Converts a hash to a uniform probability in `[0, 1)`.
    pub fn unit(h: u64) -> f64 {
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Should message `idx` on `src→dst` be delayed, and by how much?
    pub fn delay_for(&self, src: usize, dst: usize, idx: u64) -> Option<Duration> {
        let (prob, max) = self.delay?;
        let h = self.link_hash(src, dst, idx ^ 0x00DE_1A4D);
        if Self::unit(h) < prob {
            let frac = Self::unit(self.link_hash(src, dst, idx ^ 0x5EED_0001));
            Some(Duration::from_nanos((max.as_nanos() as f64 * frac) as u64))
        } else {
            None
        }
    }

    /// Should message `idx` on `src→dst` be dropped?
    pub fn drop_for(&self, src: usize, dst: usize, idx: u64) -> bool {
        match self.drop {
            Some(prob) => {
                let h = self.link_hash(src, dst, idx ^ 0x0000_D401);
                Self::unit(h) < prob
            }
            None => false,
        }
    }

    /// Should message `idx` on `src→dst` be dropped by a *flaky link*?
    /// Distinct salt from [`FaultPlan::drop_for`], so the two drop
    /// sources decide independently.
    pub fn flaky_drop_for(&self, src: usize, dst: usize, idx: u64) -> bool {
        self.flaky_links
            .iter()
            .filter(|&&(s, d, _)| s == src && d == dst)
            .any(|&(_, _, prob)| {
                let h = self.link_hash(src, dst, idx ^ 0x00F1_AC4E);
                Self::unit(h) < prob
            })
    }

    /// Combined loss decision for message `idx` on `src→dst`: the plan's
    /// global drop probability *or* a flaky link. This is the predicate
    /// the send path (and its retry loop) evaluates per attempt.
    pub fn lost_for(&self, src: usize, dst: usize, idx: u64) -> bool {
        self.drop_for(src, dst, idx) || self.flaky_drop_for(src, dst, idx)
    }

    /// The persistent-slowness delay for `rank`, if any (delays from
    /// repeated entries accumulate). Ignores any onset — see
    /// [`FaultPlan::slow_delay_at`] for the onset-aware variant.
    pub fn slow_delay(&self, rank: usize) -> Option<Duration> {
        let total: Duration = self
            .slow_ranks
            .iter()
            .filter(|&&(r, _)| r == rank)
            .map(|&(_, d)| d)
            .sum();
        (total > Duration::ZERO).then_some(total)
    }

    /// The persistent-slowness delay applying to `rank`'s `op`-th fabric
    /// operation (1-based): `None` while the operation count is still
    /// below the rank's scheduled onset.
    pub fn slow_delay_at(&self, rank: usize, op: u64) -> Option<Duration> {
        let onset = self
            .slow_onset
            .iter()
            .find(|&&(r, _)| r == rank)
            .map_or(0, |&(_, at)| at);
        if op < onset {
            return None;
        }
        self.slow_delay(rank)
    }

    /// The memory budget applying to `rank`'s `op`-th fabric operation
    /// (1-based): `None` while the operation count is below the rank's
    /// scheduled pressure onset, or when the rank has no entry.
    pub fn mem_budget_at(&self, rank: usize, op: u64) -> Option<u64> {
        self.mem_pressure
            .iter()
            .find(|&&(r, _, _)| r == rank)
            .and_then(|&(_, onset, budget)| (op >= onset).then_some(budget))
    }

    /// Should message `idx` on `src→dst` be corrupted? Returns the mode
    /// and a hash to derive element/bit choice from.
    pub fn corrupt_for(&self, src: usize, dst: usize, idx: u64) -> Option<(CorruptMode, u64)> {
        let (prob, mode) = self.corrupt?;
        let h = self.link_hash(src, dst, idx ^ 0x00C0_44D7);
        if Self::unit(h) < prob {
            Some((mode, self.link_hash(src, dst, idx ^ 0x00C0_44D8)))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::quiet(42)
            .with_delays(0.5, Duration::from_micros(500))
            .with_drops(0.1)
            .with_corruption(0.2, CorruptMode::NanInject);
        let b = a.clone();
        for idx in 0..200 {
            assert_eq!(a.delay_for(0, 1, idx), b.delay_for(0, 1, idx));
            assert_eq!(a.drop_for(1, 0, idx), b.drop_for(1, 0, idx));
            assert_eq!(
                a.corrupt_for(2, 3, idx).map(|(m, h)| (m as u8, h)),
                b.corrupt_for(2, 3, idx).map(|(m, h)| (m as u8, h))
            );
        }
    }

    #[test]
    fn probabilities_roughly_hold() {
        let plan = FaultPlan::quiet(7).with_drops(0.25);
        let n = 10_000;
        let dropped = (0..n).filter(|&i| plan.drop_for(0, 1, i)).count();
        let frac = dropped as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.03, "drop fraction {frac}");
    }

    #[test]
    fn quiet_plan_injects_nothing() {
        let plan = FaultPlan::quiet(3);
        assert!(plan.is_semantics_preserving());
        for idx in 0..100 {
            assert!(plan.delay_for(0, 1, idx).is_none());
            assert!(!plan.drop_for(0, 1, idx));
            assert!(plan.corrupt_for(0, 1, idx).is_none());
        }
        assert_eq!(plan.crash_op(0), None);
    }

    #[test]
    fn delay_only_plan_is_semantics_preserving() {
        let plan = FaultPlan::quiet(1).with_delays(0.9, Duration::from_micros(100));
        assert!(plan.is_semantics_preserving());
        assert!(!plan.clone().with_drops(0.1).is_semantics_preserving());
        assert!(!plan.clone().with_crash(0, 5).is_semantics_preserving());
        // Slow ranks only reorder timing; flaky links lose data.
        assert!(plan
            .clone()
            .with_slow_rank(1, Duration::from_micros(50))
            .is_semantics_preserving());
        assert!(!plan.with_flaky_link(0, 1, 0.2).is_semantics_preserving());
    }

    #[test]
    fn slow_onset_gates_the_delay_by_operation_count() {
        let plan = FaultPlan::quiet(7)
            .with_slow_rank(1, Duration::from_millis(5))
            .with_slow_onset(1, 10);
        assert_eq!(plan.slow_delay_at(1, 0), None);
        assert_eq!(plan.slow_delay_at(1, 9), None);
        assert_eq!(plan.slow_delay_at(1, 10), Some(Duration::from_millis(5)));
        assert_eq!(plan.slow_delay_at(1, 11), Some(Duration::from_millis(5)));
        // The onset-ignoring accessor still reports the full delay, and
        // a rank without an onset entry is slow from the start.
        assert_eq!(plan.slow_delay(1), Some(Duration::from_millis(5)));
        let no_onset = FaultPlan::quiet(7).with_slow_rank(2, Duration::from_millis(3));
        assert_eq!(no_onset.slow_delay_at(2, 0), Some(Duration::from_millis(3)));
        // Onset alone (no slow delay) injects nothing.
        assert_eq!(
            FaultPlan::quiet(7)
                .with_slow_onset(1, 5)
                .slow_delay_at(1, 99),
            None
        );
    }

    #[test]
    fn slow_onset_plans_stay_semantics_preserving() {
        let plan = FaultPlan::quiet(7)
            .with_slow_rank(1, Duration::from_millis(5))
            .with_slow_onset(1, 10);
        assert!(plan.is_semantics_preserving());
    }

    #[test]
    fn slow_rank_delays_are_per_rank_and_accumulate() {
        let plan = FaultPlan::quiet(5)
            .with_slow_rank(2, Duration::from_millis(3))
            .with_slow_rank(2, Duration::from_millis(1));
        assert_eq!(plan.slow_delay(2), Some(Duration::from_millis(4)));
        assert_eq!(plan.slow_delay(0), None);
        assert_eq!(FaultPlan::quiet(5).slow_delay(2), None);
    }

    #[test]
    fn flaky_link_decisions_are_deterministic_and_link_local() {
        let plan = FaultPlan::quiet(11).with_flaky_link(0, 1, 0.3);
        let n = 10_000;
        let dropped = (0..n).filter(|&i| plan.flaky_drop_for(0, 1, i)).count();
        let frac = dropped as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.03, "flaky drop fraction {frac}");
        // Only the configured link is flaky — and replays agree.
        assert!((0..n).all(|i| !plan.flaky_drop_for(1, 0, i)));
        let replay = plan.clone();
        assert!((0..200).all(|i| plan.lost_for(0, 1, i) == replay.lost_for(0, 1, i)));
        // A lost message is lost regardless of which source decided it.
        let both = plan.with_drops(0.1);
        assert!((0..200).all(|i| {
            both.lost_for(0, 1, i) == (both.drop_for(0, 1, i) || both.flaky_drop_for(0, 1, i))
        }));
    }

    #[test]
    fn mem_pressure_onset_gates_the_budget_by_operation_count() {
        let plan = FaultPlan::quiet(9).with_mem_pressure(2, 40, 1 << 20);
        assert_eq!(plan.mem_budget_at(2, 0), None);
        assert_eq!(plan.mem_budget_at(2, 39), None);
        assert_eq!(plan.mem_budget_at(2, 40), Some(1 << 20));
        assert_eq!(plan.mem_budget_at(2, 41), Some(1 << 20));
        assert_eq!(plan.mem_budget_at(0, 100), None);
        // Pressure changes what the program can do — not just timing.
        assert!(!plan.is_semantics_preserving());
    }

    #[test]
    fn budget_exceeded_display_is_stable() {
        let e = CommError::BudgetExceeded {
            rank: 3,
            phase: "gram",
            requested: 4096,
            live: 900,
            budget: 2048,
        };
        let s = e.to_string();
        assert!(s.contains("rank 3 exceeded its memory budget"), "got: {s}");
        assert!(s.contains("phase gram"), "got: {s}");
        assert!(s.contains("4096 B"), "got: {s}");
    }

    #[test]
    fn gray_failure_error_display_is_stable() {
        let d = CommError::DeadlineExceeded {
            src: 3,
            dst: 0,
            kind: "allreduce",
            budget: Duration::from_millis(250),
        };
        assert!(d
            .to_string()
            .contains("exceeded the allreduce deadline budget"));
        assert!(d.to_string().contains("waiting for rank 3"));
        let m = CommError::Demoted { rank: 5 };
        assert!(m.to_string().contains("rank 5 was demoted"));
    }

    #[test]
    fn comm_error_display_is_stable() {
        let t = CommError::Timeout {
            src: 1,
            dst: 0,
            waited: Duration::from_secs(2),
        };
        assert!(t.to_string().contains("timed out waiting for a message"));
        let m = CommError::TypeMismatch {
            src: 0,
            dst: 1,
            expected: "f64",
        };
        assert!(m.to_string().contains("unexpected element type"));
        let p = CommError::PeerClosed { peer: 2, me: 0 };
        assert!(p.to_string().starts_with("fabric channel closed"));
    }
}
