//! Threaded message-passing runtime — the MPI stand-in substrate.
//!
//! The paper runs on OpenMPI across NERSC Perlmutter; this crate provides
//! the same programming model in a single process so the distributed
//! algorithms can be implemented *and validated* faithfully: ranks are OS
//! threads, point-to-point messages travel over per-pair channels, and the
//! full set of collectives the Tucker kernels need (barrier, broadcast,
//! reduce, allreduce, ring allgather, ring reduce-scatter, all-to-all,
//! gather, comm split, Cartesian grids) is implemented on top.
//!
//! Every byte sent is counted ([`fabric::TrafficStats`]), which is how the
//! communication-cost claims of the paper's Table 2 are validated against
//! *measured* traffic rather than restated formulas.
//!
//! # Example
//!
//! ```
//! use ratucker_mpi::{sum_op, CartGrid, Universe};
//!
//! // Four ranks on a 2x2 grid: allreduce along each grid fiber.
//! let sums = Universe::launch(4, |comm| {
//!     let grid = CartGrid::new(comm, &[2, 2]);
//!     let mine = vec![grid.coord(0) as u64 + 1];
//!     // Sum over the ranks sharing my column (coordinate 1 varies).
//!     grid.mode_comm(1).allreduce(mine, sum_op)[0]
//! });
//! // Ranks in column 0 sum 1+1, column 1 sums 2+2.
//! assert_eq!(sums, vec![2, 4, 2, 4]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comm;
pub mod fabric;
pub mod fault;
pub mod grid;
pub mod request;
pub mod universe;

pub use comm::{max_op, sum_op, Comm};
pub use fabric::{
    Adversary, CollectiveKind, DeadlinePolicy, Fabric, KindSnapshot, RetryPolicy, SchedulePolicy,
    TrafficScope, TrafficStats, KIND_COUNT, RECV_TIMEOUT, RECV_TIMEOUT_ENV,
};
pub use fault::{CommError, CorruptMode, FaultPlan, RankFailure};
pub use grid::{choose_shrunk_dims, enumerate_grids, try_rebuild_grid, CartGrid, ShrinkOutcome};
pub use request::Request;
pub use universe::{schedule_suite, ExploreReport, Universe};

#[cfg(test)]
mod collective_tests {
    use super::*;

    #[test]
    fn barrier_all_sizes() {
        for p in [1, 2, 3, 4, 7, 8] {
            Universe::launch(p, |c| {
                for _ in 0..3 {
                    c.barrier();
                }
            });
        }
    }

    #[test]
    fn bcast_from_every_root() {
        for p in [1, 2, 3, 5, 8] {
            for root in 0..p {
                let out = Universe::launch(p, move |c| {
                    let data = if c.rank() == root {
                        vec![42.5f64, -1.0, root as f64]
                    } else {
                        Vec::new()
                    };
                    c.bcast(root, data)
                });
                for v in out {
                    assert_eq!(v, vec![42.5, -1.0, root as f64], "p={p} root={root}");
                }
            }
        }
    }

    #[test]
    fn reduce_sums_to_root() {
        for p in [1, 2, 3, 6, 8] {
            for root in [0, p - 1] {
                let out = Universe::launch(p, move |c| {
                    let data = vec![c.rank() as u64, 1u64];
                    c.reduce(root, data, sum_op)
                });
                let expected_sum: u64 = (0..p as u64).sum();
                for (r, res) in out.into_iter().enumerate() {
                    if r == root {
                        assert_eq!(res.unwrap(), vec![expected_sum, p as u64]);
                    } else {
                        assert!(res.is_none());
                    }
                }
            }
        }
    }

    #[test]
    fn allreduce_matches_sequential_fold() {
        for p in [1, 2, 4, 5, 8] {
            let out = Universe::launch(p, |c| {
                let data = vec![(c.rank() + 1) as f64; 4];
                c.allreduce(data, sum_op)
            });
            let want: f64 = (1..=p as u64).sum::<u64>() as f64;
            for v in out {
                assert_eq!(v, vec![want; 4]);
            }
        }
    }

    #[test]
    fn allreduce_max() {
        let out = Universe::launch(6, |c| {
            let data = vec![(c.rank() * 7 % 5) as i64];
            c.allreduce(data, max_op)
        });
        for v in out {
            assert_eq!(v[0], 4); // max of {0,2,4,1,3,0}
        }
    }

    #[test]
    fn allgatherv_variable_blocks() {
        for p in [1, 2, 3, 5] {
            let out = Universe::launch(p, |c| {
                let data: Vec<u64> = (0..c.rank() + 1)
                    .map(|i| (c.rank() * 10 + i) as u64)
                    .collect();
                c.allgatherv(data)
            });
            for blocks in out {
                assert_eq!(blocks.len(), p);
                for (r, b) in blocks.iter().enumerate() {
                    let want: Vec<u64> = (0..r + 1).map(|i| (r * 10 + i) as u64).collect();
                    assert_eq!(b, &want, "p={p} block {r}");
                }
            }
        }
    }

    #[test]
    fn reduce_scatter_even_blocks() {
        for p in [1, 2, 4, 8] {
            let out = Universe::launch(p, move |c| {
                // Every rank contributes data[i] = i; block b (length 2)
                // must come back as p * [2b, 2b+1].
                let data: Vec<u64> = (0..2 * p as u64).collect();
                let counts = vec![2usize; p];
                c.reduce_scatter(data, &counts, sum_op)
            });
            for (r, block) in out.into_iter().enumerate() {
                let want: Vec<u64> = (0..2u64).map(|i| (2 * r as u64 + i) * p as u64).collect();
                assert_eq!(block, want, "p={p} rank {r}");
            }
        }
    }

    #[test]
    fn reduce_scatter_uneven_blocks() {
        let p = 3;
        let counts = [1usize, 3, 2];
        let out = Universe::launch(p, move |c| {
            let scale = (c.rank() + 1) as f64;
            let data: Vec<f64> = (0..6).map(|i| scale * i as f64).collect();
            c.reduce_scatter(data, &counts, sum_op)
        });
        // Sum of scales = 1+2+3 = 6.
        let offsets = [0usize, 1, 4];
        for (r, block) in out.into_iter().enumerate() {
            let want: Vec<f64> = (0..counts[r])
                .map(|i| 6.0 * (offsets[r] + i) as f64)
                .collect();
            assert_eq!(block, want, "rank {r}");
        }
    }

    #[test]
    fn alltoallv_exchanges_blocks() {
        let p = 4;
        let out = Universe::launch(p, |c| {
            let blocks: Vec<Vec<u64>> = (0..p)
                .map(|dst| vec![(c.rank() * 100 + dst) as u64])
                .collect();
            c.alltoallv(blocks)
        });
        for (me, received) in out.into_iter().enumerate() {
            for (src, b) in received.into_iter().enumerate() {
                assert_eq!(b, vec![(src * 100 + me) as u64]);
            }
        }
    }

    #[test]
    fn gatherv_collects_on_root() {
        let out = Universe::launch(4, |c| c.gatherv(2, vec![c.rank() as u32; c.rank()]));
        for (r, res) in out.into_iter().enumerate() {
            if r == 2 {
                let blocks = res.unwrap();
                for (src, b) in blocks.into_iter().enumerate() {
                    assert_eq!(b, vec![src as u32; src]);
                }
            } else {
                assert!(res.is_none());
            }
        }
    }

    #[test]
    fn split_forms_row_communicators() {
        // 6 ranks → 2 colors of 3; key reverses the order within color.
        let out = Universe::launch(6, |c| {
            let color = c.rank() % 2;
            let key = 100 - c.rank();
            let sub = c.split(color, key);
            let gathered = sub.allgatherv(vec![c.rank() as u64]);
            (sub.rank(), sub.size(), gathered)
        });
        for (r, (sub_rank, sub_size, gathered)) in out.into_iter().enumerate() {
            assert_eq!(sub_size, 3);
            let flat: Vec<u64> = gathered.into_iter().flatten().collect();
            if r % 2 == 0 {
                assert_eq!(flat, vec![4, 2, 0]); // descending by key order
            } else {
                assert_eq!(flat, vec![5, 3, 1]);
            }
            let expect_rank = flat.iter().position(|&x| x == r as u64).unwrap();
            assert_eq!(sub_rank, expect_rank);
        }
    }

    #[test]
    fn nested_splits_work() {
        // Split twice: 8 → 2 groups of 4 → 4 groups of 2.
        let out = Universe::launch(8, |c| {
            let sub = c.split(c.rank() / 4, c.rank());
            let subsub = sub.split(sub.rank() / 2, sub.rank());
            let s = subsub.allreduce(vec![c.rank() as u64], sum_op);
            s[0]
        });
        assert_eq!(out, vec![1, 1, 5, 5, 9, 9, 13, 13]);
    }

    #[test]
    fn point_to_point_between_ranks() {
        let out = Universe::launch(2, |c| {
            if c.rank() == 0 {
                c.send(1, vec![3.25f32]);
                c.recv::<f32>(1)
            } else {
                let got = c.recv::<f32>(0);
                c.send(0, vec![got[0] * 2.0]);
                got
            }
        });
        assert_eq!(out[0], vec![6.5]);
        assert_eq!(out[1], vec![3.25]);
    }

    #[test]
    fn agree_and_shrink_survive_a_crash() {
        use std::time::Duration;
        // 8 ranks; rank 2 dies early. Survivors revoke, agree on the
        // surviving set, shrink, and keep computing on 7 ranks — no
        // restart, no hang.
        let u = Universe::with_fault_plan(8, FaultPlan::quiet(11).with_crash(2, 4));
        u.set_recv_timeout(Duration::from_secs(10));
        let out = u.try_run(|c| {
            // Phase 1: collectives until the failure surfaces.
            loop {
                if c.try_allreduce(vec![1u64], sum_op).is_err() {
                    break;
                }
            }
            c.revoke();
            let survivors = c.try_agree().expect("agreement must succeed");
            let comm = c.shrink(&survivors).expect("caller is a survivor");
            // Phase 2: aligned post-recovery collectives on the shrunken
            // communicator (stale pre-recovery traffic is epoch-filtered).
            let mut last = 0;
            for _ in 0..3 {
                last = comm
                    .try_allreduce(vec![1u64], sum_op)
                    .expect("post-recovery collective")[0];
            }
            (survivors, comm.size(), last)
        });
        let expected_survivors: Vec<usize> = (0..8).filter(|&r| r != 2).collect();
        for (r, res) in out.iter().enumerate() {
            if r == 2 {
                assert!(res.is_err(), "rank 2 must have crashed");
            } else {
                let (survivors, size, last) = res.as_ref().unwrap();
                assert_eq!(survivors, &expected_survivors, "rank {r} survivor view");
                assert_eq!(*size, 7);
                assert_eq!(*last, 7, "rank {r} post-recovery allreduce");
            }
        }
    }

    #[test]
    fn counters_stay_consistent_under_injected_drop() {
        use std::time::Duration;
        // Regression (satellite): a collective aborting mid-fanout due to
        // dropped messages must leave attempted == delivered + dropped.
        let u = Universe::with_fault_plan(4, FaultPlan::quiet(5).with_drops(0.4));
        u.set_recv_timeout(Duration::from_millis(50));
        let _ = u.try_run(|c| {
            for _ in 0..4 {
                let _ = c.try_allreduce(vec![1.0f64; 32], sum_op);
                let _ = c.try_allgatherv(vec![c.rank() as u64; 8]);
            }
        });
        let stats = u.traffic();
        let attempted = stats.attempted.load(std::sync::atomic::Ordering::Relaxed);
        let dropped = stats.dropped.load(std::sync::atomic::Ordering::Relaxed);
        assert!(attempted > 0, "collectives attempted traffic");
        assert!(dropped > 0, "drop plan must have fired");
        stats
            .check_invariant()
            .unwrap_or_else(|(a, d, x)| panic!("attempted {a} != delivered {d} + dropped {x}"));
    }

    #[test]
    fn traffic_accounting_allreduce() {
        let u = Universe::new(4);
        u.run(|c| {
            let _ = c.allreduce(vec![0.0f64; 100], sum_op);
        });
        let (bytes, msgs) = u.traffic().snapshot();
        // Reduce (3 sends of 800B) + bcast (3 sends of 800B) = 4800 bytes.
        assert_eq!(bytes, 4800);
        assert_eq!(msgs, 6);
        // Both legs are attributed to the allreduce kind.
        let totals = u.traffic().kind_totals();
        assert_eq!(totals.bytes_of(CollectiveKind::Allreduce), 4800);
        assert_eq!(totals.messages_of(CollectiveKind::Allreduce), 6);
        assert_eq!(totals.total_bytes(), 4800);
        u.traffic().check_kind_partition().unwrap();
    }

    #[test]
    fn collectives_charge_their_own_kind() {
        let u = Universe::new(4);
        u.run(|c| {
            c.barrier();
            let _ = c.bcast(1, if c.rank() == 1 { vec![1u64; 5] } else { vec![] });
            let _ = c.reduce(0, vec![1.0f64; 3], sum_op);
            let _ = c.allreduce(vec![1.0f64; 2], sum_op);
            let _ = c.allgatherv(vec![c.rank() as u64; 2]);
            let _ = c.reduce_scatter(vec![1.0f64; 4], &[1, 1, 1, 1], sum_op);
            let _ = c.alltoallv((0..4).map(|d| vec![d as u32]).collect());
            let _ = c.gatherv(3, vec![c.rank() as u8]);
            let _ = c.split(c.rank() % 2, c.rank());
            if c.rank() == 0 {
                c.send(1, vec![9i64]);
            }
            if c.rank() == 1 {
                let _ = c.recv::<i64>(0);
            }
        });
        let totals = u.traffic().kind_totals();
        for kind in CollectiveKind::ALL {
            assert!(
                totals.messages_of(kind) > 0,
                "kind {} saw no traffic",
                kind.name()
            );
        }
        // split rides on allgatherv: one u64 triple ring (3 words x 3
        // sends x 4 ranks) on top of the explicit 2-word allgatherv.
        assert_eq!(
            totals.bytes_of(CollectiveKind::Allgatherv),
            3 * 4 * 8 * 3 + 3 * 4 * 8 * 2
        );
        assert_eq!(totals.bytes_of(CollectiveKind::PointToPoint), 8);
        assert_eq!(totals.total_bytes(), u.traffic().snapshot().0);
        assert_eq!(totals.total_messages(), u.traffic().snapshot().1);
        u.traffic().check_kind_partition().unwrap();
    }
}
