//! Split-phase (nonblocking) communication: post now, complete later.
//!
//! The blocking collectives in [`crate::comm`] serialize communication
//! against local compute. The pipelined TTM/SI kernels in the `dist`
//! crate instead *post* an operation, overlap the next slab's GEMM with
//! the traffic in flight, and *wait* just before combining — the classic
//! split-phase pattern of `MPI_Isend`/`MPI_Wait`. This module provides
//! that shape over the same fabric:
//!
//! - [`Comm::isend`] / [`Comm::irecv`] — point-to-point post/wait;
//! - [`Comm::ibcast`], [`Comm::iallreduce`], [`Comm::iallgatherv`],
//!   [`Comm::ireduce_scatter`] — split-phase collectives;
//! - [`Comm::ireduce_scatter_blocks`] — the zero-copy form: callers
//!   hand over one owned `Vec` per destination and each block *moves*
//!   into the fabric, skipping the contiguous staging buffer the
//!   MPI-style counted interface forces.
//!
//! # Execution model
//!
//! The simulator has no progress thread, so a request follows MPI's
//! weak-progress model: the **eager leg** of an operation executes at
//! post time (sends never block — links are unbounded FIFOs), and the
//! remainder — every leg that would have to wait on a peer — runs inside
//! [`Request::wait`] (or [`Request::test`] once its first inbound
//! message is observable). Concretely:
//!
//! - `isend` completes entirely at post;
//! - `ibcast` at the root completes at post (the root only sends);
//! - `iallreduce` on an odd rank posts its single reduce-leg send
//!   eagerly, deferring only the broadcast leg;
//! - `ireduce_scatter` uses a pairwise exchange: **all** `p-1`
//!   contribution sends post eagerly, so the whole payload is in flight
//!   during the overlap window and `wait` only receives and combines;
//! - the ring `iallgatherv` posts its step-0 send eagerly, deferring
//!   the remaining ring steps (every later hop forwards received data,
//!   so nothing more can execute early).
//!
//! Each deferred leg either replays the blocking algorithm's exact
//! per-link program order, or (pairwise `ireduce_scatter`) reproduces
//! the blocking ring's exact floating-point accumulation order, so a
//! split-phase operation is **bit-identical** to its blocking
//! counterpart and may be freely mixed with blocking collectives on the
//! same communicator — as long as at most one operation per
//! communicator is in flight at a time (the links are tagless FIFOs,
//! the usual single-channel MPI ordering contract).
//!
//! # Accounting, deadlines, faults
//!
//! Every leg goes through the same `send_k`/`recv_k` internals as the
//! blocking collectives, so traffic is charged to the operation's
//! [`CollectiveKind`] the moment each send is posted — eager-leg bytes
//! land on the ledger at post time — and the per-kind partition
//! invariant (`Σ kinds == global`) holds at every instant, even with
//! requests in flight. Deadline budgets, retry-with-backoff healing,
//! and fault injection (drops, corruption, crashes) apply unchanged;
//! errors surface from `wait`/`test` as typed [`CommError`]s.
//!
//! # Drop safety
//!
//! A `Request` dropped without `wait` (an early-return error path, say)
//! would otherwise strand its in-flight messages in the fabric
//! mailboxes, desynchronizing the *next* operation on those links. The
//! drop guard therefore drains the request — running its deferred legs
//! and discarding the result — unless the thread is already panicking
//! (a dying rank cannot be asked to communicate).

use crate::comm::{Comm, Elem};
use crate::fabric::CollectiveKind;
use crate::fault::CommError;

/// The deferred remainder of a split-phase operation.
type Continuation<R> = Box<dyn FnOnce(&Comm) -> Result<R, CommError> + Send>;

/// A readiness probe: would running the continuation complete without
/// blocking (or fail fast with a typed error)?
type ReadyProbe = Box<dyn Fn(&Comm) -> bool + Send>;

/// A handle to an in-flight split-phase operation (see the module docs
/// for the execution model). Obtain one from [`Comm::isend`],
/// [`Comm::irecv`], or the `i*` collectives; complete it with
/// [`Request::wait`] or poll it with [`Request::test`]. Dropping a
/// request without waiting drains it (see "Drop safety" above).
#[must_use = "a posted request should be completed with wait() or test()"]
pub struct Request<R> {
    comm: Comm,
    /// Deferred legs; `None` once completed (or if the operation
    /// finished entirely at post time).
    run: Option<Continuation<R>>,
    /// Nonblocking completability probe; `None` for multi-step deferred
    /// operations, whose completion requires a potentially-blocking
    /// `wait`.
    ready: Option<ReadyProbe>,
    /// Result of an operation that completed at post time (or via a
    /// failed eager leg), not yet claimed by `wait`/`test`.
    done: Option<Result<R, CommError>>,
}

impl<R: Send + 'static> Request<R> {
    /// A request that completed entirely at post time.
    fn completed(comm: &Comm, result: Result<R, CommError>) -> Request<R> {
        Request {
            comm: comm.clone(),
            run: None,
            ready: None,
            done: Some(result),
        }
    }

    /// A request whose remainder runs at `wait` time.
    fn deferred(
        comm: &Comm,
        run: impl FnOnce(&Comm) -> Result<R, CommError> + Send + 'static,
    ) -> Request<R> {
        Request {
            comm: comm.clone(),
            run: Some(Box::new(run)),
            ready: None,
            done: None,
        }
    }

    /// A deferred request with a nonblocking readiness probe, for
    /// operations whose remainder cannot block once `ready` is true.
    fn pollable(
        comm: &Comm,
        ready: impl Fn(&Comm) -> bool + Send + 'static,
        run: impl FnOnce(&Comm) -> Result<R, CommError> + Send + 'static,
    ) -> Request<R> {
        Request {
            comm: comm.clone(),
            run: Some(Box::new(run)),
            ready: Some(Box::new(ready)),
            done: None,
        }
    }

    /// Blocks until the operation completes and returns its result —
    /// `MPI_Wait`. Deferred legs execute here, under the same deadline,
    /// retry, and fault machinery as the blocking collectives.
    pub fn wait(mut self) -> Result<R, CommError> {
        if let Some(done) = self.done.take() {
            return done;
        }
        match self.run.take() {
            Some(run) => run(&self.comm),
            // Unreachable through the public API (wait consumes self,
            // test only completes by taking run/done), but be total.
            None => panic!("request already completed"),
        }
    }

    /// Nonblocking completion attempt — `MPI_Test`. Returns
    /// `Some(result)` if the operation is complete (claiming it: a later
    /// drop is a no-op), `None` if it cannot yet complete without
    /// blocking.
    ///
    /// Conservative by design: operations that finished at post time
    /// complete immediately; `irecv` (and a non-root `ibcast`) completes
    /// once its inbound message is observable, and `ireduce_scatter`
    /// once every peer's contribution is — which also surfaces
    /// revocation and dead-peer errors without blocking. The remaining
    /// multi-step collectives never complete via `test` — use
    /// [`Request::wait`].
    pub fn test(&mut self) -> Option<Result<R, CommError>> {
        if let Some(done) = self.done.take() {
            return Some(done);
        }
        if !self.ready.as_ref().is_some_and(|probe| probe(&self.comm)) {
            return None;
        }
        self.run.take().map(|run| run(&self.comm))
    }
}

impl<R> Drop for Request<R> {
    fn drop(&mut self) {
        if let Some(run) = self.run.take() {
            // Drain rather than leak: run the deferred legs so the
            // fabric mailboxes are left empty and peers' matching sends
            // stay paired. Errors are deliberately swallowed — the
            // caller chose not to observe this operation. A panicking
            // rank skips the drain (its peers see PeerClosed instead).
            if !std::thread::panicking() {
                let _ = run(&self.comm);
            }
        }
    }
}

impl Comm {
    /// Nonblocking point-to-point send to communicator rank `dst` —
    /// `MPI_Isend`. Links are unbounded, so the send executes (and its
    /// traffic is charged) entirely at post time; `wait` only reports
    /// the outcome.
    pub fn isend<T: Elem>(&self, dst: usize, data: Vec<T>) -> Request<()> {
        let result = self.send_k(dst, data, CollectiveKind::PointToPoint);
        Request::completed(self, result)
    }

    /// Nonblocking point-to-point receive from communicator rank `src`
    /// — `MPI_Irecv`. Completes via `wait`, or via `test` once the
    /// message has arrived.
    pub fn irecv<T: Elem>(&self, src: usize) -> Request<Vec<T>> {
        let (src_w, dst_w) = (self.group[src], self.group[self.rank]);
        Request::pollable(
            self,
            move |c: &Comm| c.fabric.has_message(src_w, dst_w),
            move |c: &Comm| c.recv_k(src, CollectiveKind::PointToPoint),
        )
    }

    /// Split-phase binomial broadcast (see [`Comm::try_bcast`]). The
    /// root's sends all execute at post time; a non-root rank defers its
    /// receive-and-forward, and its `test` succeeds once the parent's
    /// message has arrived (forwarding to children never blocks).
    pub fn ibcast<T: Elem>(&self, root: usize, data: Vec<T>) -> Request<Vec<T>> {
        let p = self.size();
        let vrank = (self.rank + p - root) % p;
        if p == 1 || vrank == 0 {
            let result = self.bcast_k(root, data, CollectiveKind::Bcast);
            return Request::completed(self, result);
        }
        // Parent in the binomial tree: clear my lowest set virtual bit.
        let lowest = vrank & vrank.wrapping_neg();
        let parent = ((vrank & !lowest) + root) % p;
        let (src_w, dst_w) = (self.group[parent], self.group[self.rank]);
        Request::pollable(
            self,
            move |c: &Comm| c.fabric.has_message(src_w, dst_w),
            move |c: &Comm| c.bcast_k(root, data, CollectiveKind::Bcast),
        )
    }

    /// Split-phase allreduce (see [`Comm::try_allreduce`]). An odd rank's
    /// reduce leg is a single send, posted eagerly; even ranks (whose
    /// first action is a receive) defer the whole operation. Complete
    /// with [`Request::wait`].
    pub fn iallreduce<T: Elem>(
        &self,
        data: Vec<T>,
        op: impl Fn(&mut [T], &[T]) + Copy + Send + 'static,
    ) -> Request<Vec<T>> {
        let p = self.size();
        if p == 1 {
            return Request::completed(self, Ok(data));
        }
        // An allreduce's output length always equals its input length;
        // the broadcast leg otherwise accepts any payload, so a channel
        // desynced by a dropped message would surface downstream as an
        // untyped shape panic instead of a typed, recoverable error.
        let expected = data.len();
        let check = move |c: &Comm, out: Vec<T>| {
            if out.len() != expected {
                return Err(CommError::SizeMismatch {
                    src: c.group[0],
                    dst: c.group[c.rank],
                    expected,
                    got: out.len(),
                });
            }
            Ok(out)
        };
        if self.rank % 2 == 1 {
            // Entire reduce leg (root 0 ⇒ vrank == rank): one send to
            // the even partner, charged at post time.
            if let Err(e) = self.send_k(self.rank & !1, data, CollectiveKind::Allreduce) {
                return Request::completed(self, Err(e));
            }
            return Request::deferred(self, move |c: &Comm| {
                let out = c.bcast_k(0, Vec::new(), CollectiveKind::Allreduce)?;
                check(c, out)
            });
        }
        Request::deferred(self, move |c: &Comm| {
            let reduced = c.reduce_k(0, data, op, CollectiveKind::Allreduce)?;
            let out = c.bcast_k(0, reduced.unwrap_or_default(), CollectiveKind::Allreduce)?;
            check(c, out)
        })
    }

    /// Split-phase ring allgatherv (see [`Comm::try_allgatherv`]). The
    /// step-0 send of this rank's own block is posted eagerly; the
    /// remaining ring steps run at `wait` time in the blocking
    /// algorithm's exact per-link order.
    pub fn iallgatherv<T: Elem>(&self, data: Vec<T>) -> Request<Vec<Vec<T>>> {
        let p = self.size();
        if p == 1 {
            return Request::completed(self, Ok(vec![data]));
        }
        let right = (self.rank + 1) % p;
        let left = (self.rank + p - 1) % p;
        let mut blocks: Vec<Option<Vec<T>>> = (0..p).map(|_| None).collect();
        if let Err(e) = self.send_k(right, data.clone(), CollectiveKind::Allgatherv) {
            return Request::completed(self, Err(e));
        }
        blocks[self.rank] = Some(data);
        let rank = self.rank;
        Request::deferred(self, move |c: &Comm| {
            let mut blocks = blocks;
            for step in 0..p - 1 {
                let recv_idx = (rank + p - step - 1) % p;
                blocks[recv_idx] = Some(c.recv_k(left, CollectiveKind::Allgatherv)?);
                if step + 1 < p - 1 {
                    // Forward the block that just arrived (what the
                    // blocking loop sends at the top of step + 1).
                    let fwd = blocks[recv_idx].clone().expect("just stored");
                    c.send_k(right, fwd, CollectiveKind::Allgatherv)?;
                }
            }
            Ok(blocks
                .into_iter()
                .map(|b| b.expect("ring allgather gap"))
                .collect())
        })
    }

    /// Split-phase reduce-scatter, result bit-identical to
    /// [`Comm::try_reduce_scatter`]. Unlike the blocking ring — whose
    /// every hop depends on the previous one, so nothing could execute
    /// before `wait` — the split-phase form is a *pairwise exchange*:
    /// all `p − 1` contribution sends are posted (and charged) eagerly
    /// at post time, so the traffic is genuinely in flight while the
    /// caller computes, and `wait` only receives and combines. The
    /// combine replays the ring's exact accumulation order for chunk
    /// `r` — contributions folded in source order
    /// `r−1, r−2, …, r+1, r` (mod `p`) with the accumulator always the
    /// first `op` operand — which is what keeps the pipelined TTM
    /// bit-identical to the blocking path. `test` completes once every
    /// peer's contribution is observable.
    pub fn ireduce_scatter<T: Elem>(
        &self,
        mut data: Vec<T>,
        counts: &[usize],
        op: impl Fn(&mut [T], &[T]) + Copy + Send + 'static,
    ) -> Request<Vec<T>> {
        let p = self.size();
        assert_eq!(counts.len(), p, "reduce_scatter needs one count per rank");
        let total: usize = counts.iter().sum();
        assert_eq!(
            total,
            data.len(),
            "reduce_scatter counts must cover the buffer"
        );
        // Chunk the contiguous buffer back-to-front (split_off keeps
        // each chunk a cheap tail move) and run the block-owning form.
        let mut blocks: Vec<Vec<T>> = Vec::with_capacity(p);
        for q in (0..p).rev() {
            blocks.push(data.split_off(data.len() - counts[q]));
        }
        blocks.reverse();
        self.ireduce_scatter_blocks(blocks, op)
    }

    /// The zero-copy form of [`Comm::ireduce_scatter`]: the caller hands
    /// over one owned block per destination rank (`blocks[q]` is this
    /// rank's contribution to rank `q`'s chunk), and each block is moved
    /// straight into the fabric — no contiguous staging buffer, no chunk
    /// copies. This is the form the pipelined kernels use: producing
    /// per-destination blocks directly is free for them, and it deletes
    /// the full-buffer copy the MPI-style contiguous interface forces.
    /// Result and accumulation order are identical to
    /// [`Comm::ireduce_scatter`].
    pub fn ireduce_scatter_blocks<T: Elem>(
        &self,
        mut blocks: Vec<Vec<T>>,
        op: impl Fn(&mut [T], &[T]) + Copy + Send + 'static,
    ) -> Request<Vec<T>> {
        let p = self.size();
        assert_eq!(blocks.len(), p, "reduce_scatter needs one block per rank");
        if p == 1 {
            let only = blocks.pop().expect("one block");
            return Request::completed(self, Ok(only));
        }
        let rank = self.rank;
        // Eager leg: my contribution to every other rank's chunk, in
        // ascending ring distance (deterministic send order). Blocks are
        // moved, not copied; the slot left behind is an empty Vec.
        for d in 1..p {
            let dst = (rank + d) % p;
            let chunk = std::mem::take(&mut blocks[dst]);
            if let Err(e) = self.send_k(dst, chunk, CollectiveKind::ReduceScatter) {
                return Request::completed(self, Err(e));
            }
        }
        let mine = std::mem::take(&mut blocks[rank]);
        let expected = mine.len();
        let my_group = self.group.clone();
        let probe = move |c: &Comm| {
            (1..p).all(|d| {
                let src = (rank + p - d) % p;
                c.fabric.has_message(my_group[src], my_group[rank])
            })
        };
        Request::pollable(self, probe, move |c: &Comm| {
            let mut acc: Option<Vec<T>> = None;
            for d in 1..p {
                let src = (rank + p - d) % p;
                let incoming: Vec<T> = c.recv_k(src, CollectiveKind::ReduceScatter)?;
                if incoming.len() != expected {
                    return Err(CommError::SizeMismatch {
                        src: c.group[src],
                        dst: c.group[rank],
                        expected,
                        got: incoming.len(),
                    });
                }
                match &mut acc {
                    // The ring's chunk-r partial starts life as rank
                    // r−1's raw contribution…
                    None => acc = Some(incoming),
                    // …and accumulates each farther rank's contribution
                    // with the running partial as the first operand.
                    Some(acc) => op(acc, &incoming),
                }
            }
            let mut acc = acc.expect("p > 1: at least one contribution");
            // The ring's final hop: my own contribution folds in last.
            op(&mut acc, &mine);
            Ok(acc)
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::comm::{max_op, sum_op};
    use crate::fabric::CollectiveKind;
    use crate::universe::Universe;

    #[test]
    fn isend_irecv_roundtrip_and_test_polling() {
        let out = Universe::launch(2, |c| {
            if c.rank() == 0 {
                let req = c.isend(1, vec![3.5f64, -1.0]);
                req.wait().unwrap();
                c.recv::<f64>(1)
            } else {
                let mut req = c.irecv::<f64>(0);
                // Poll until the message lands; test() must complete it.
                let got = loop {
                    if let Some(res) = req.test() {
                        break res.unwrap();
                    }
                    std::thread::yield_now();
                };
                c.send(0, vec![got[0] * 2.0]);
                got
            }
        });
        assert_eq!(out[0], vec![7.0]);
        assert_eq!(out[1], vec![3.5, -1.0]);
    }

    #[test]
    fn split_phase_collectives_match_blocking_bitwise() {
        for p in [1, 2, 3, 4, 8] {
            let split = Universe::launch(p, |c| {
                let b = c.ibcast(
                    0,
                    if c.rank() == 0 {
                        vec![2.5f64, 7.0]
                    } else {
                        vec![]
                    },
                );
                let b = b.wait().unwrap();
                let ar = c.iallreduce(vec![c.rank() as f64 + 0.5; 3], sum_op);
                let ar = ar.wait().unwrap();
                let ag = c.iallgatherv(vec![c.rank() as u64; c.rank() + 1]);
                let ag = ag.wait().unwrap();
                let data: Vec<f64> = (0..2 * p).map(|i| (c.rank() * i) as f64).collect();
                let rs = c.ireduce_scatter(data, &vec![2usize; p], max_op);
                let rs = rs.wait().unwrap();
                (b, ar, ag, rs)
            });
            let blocking = Universe::launch(p, |c| {
                let b = c.bcast(
                    0,
                    if c.rank() == 0 {
                        vec![2.5f64, 7.0]
                    } else {
                        vec![]
                    },
                );
                let ar = c.allreduce(vec![c.rank() as f64 + 0.5; 3], sum_op);
                let ag = c.allgatherv(vec![c.rank() as u64; c.rank() + 1]);
                let data: Vec<f64> = (0..2 * p).map(|i| (c.rank() * i) as f64).collect();
                let rs = c.reduce_scatter(data, &vec![2usize; p], max_op);
                (b, ar, ag, rs)
            });
            for (rank, (s, b)) in split.iter().zip(&blocking).enumerate() {
                assert!(
                    s.0.iter()
                        .zip(&b.0)
                        .all(|(x, y)| x.to_bits() == y.to_bits())
                        && s.1
                            .iter()
                            .zip(&b.1)
                            .all(|(x, y)| x.to_bits() == y.to_bits())
                        && s.2 == b.2
                        && s.3
                            .iter()
                            .zip(&b.3)
                            .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "p={p} rank {rank}: split-phase diverged from blocking"
                );
            }
        }
    }

    #[test]
    fn eager_leg_traffic_is_charged_at_post_time() {
        let u = Universe::new(2);
        u.run(|c| {
            if c.rank() == 0 {
                let scope = c.traffic_scope();
                let req = c.isend(1, vec![0.0f64; 100]);
                // Charged before wait: the full 800 bytes are on the
                // ledger while the request is still in flight.
                let delta = scope.delta();
                assert_eq!(delta.bytes_of(CollectiveKind::PointToPoint), 800);
                assert_eq!(delta.messages_of(CollectiveKind::PointToPoint), 1);
                req.wait().unwrap();
            } else {
                c.irecv::<f64>(0).wait().unwrap();
            }
        });
        u.traffic().check_kind_partition().unwrap();
        u.traffic()
            .check_invariant()
            .unwrap_or_else(|(a, d, x)| panic!("attempted {a} != delivered {d} + dropped {x}"));
    }

    #[test]
    fn dropped_request_does_not_leak_mailbox_slots() {
        // Modeled on `clear_fault_plan_disarms_before_next_run`: without
        // the drop guard, the un-received message would sit in the 0→1
        // mailbox and the follow-up collective on the same link would
        // pop it instead of its own traffic (a type-mismatch / wrong
        // answer), and the per-kind ledger would stay unbalanced.
        let u = Universe::new(2);
        let out = u.run(|c| {
            if c.rank() == 0 {
                c.isend(1, vec![123.0f64; 7]).wait().unwrap();
            } else {
                let req = c.irecv::<f64>(0);
                drop(req); // early-return path: never waited
            }
            // A dropped collective request drains too (all ranks drop).
            let rs = c.ireduce_scatter(vec![1.0f64; 2], &[1, 1], sum_op);
            drop(rs);
            // The links are clean: this must see its own traffic only.
            c.allreduce(vec![c.rank() as u64 + 1], sum_op)
        });
        assert_eq!(out, vec![vec![3], vec![3]]);
        u.traffic().check_kind_partition().unwrap();
        u.traffic()
            .check_invariant()
            .unwrap_or_else(|(a, d, x)| panic!("attempted {a} != delivered {d} + dropped {x}"));
    }

    #[test]
    fn partition_invariant_holds_with_requests_in_flight() {
        let u = Universe::new(4);
        u.run(|c| {
            let data: Vec<f64> = (0..4).map(|i| (c.rank() + i) as f64).collect();
            let rs = c.ireduce_scatter(data, &[1, 1, 1, 1], sum_op);
            // In flight: every rank's eager contribution sends are
            // posted. Every charged byte must already be attributed to
            // a kind.
            c.traffic().check_kind_partition().unwrap();
            rs.wait().unwrap();
        });
        u.traffic().check_kind_partition().unwrap();
    }

    #[test]
    fn in_flight_request_surfaces_peer_death_as_typed_error() {
        use crate::fault::{CommError, FaultPlan};
        let u = Universe::with_fault_plan(2, FaultPlan::quiet(17).with_crash(0, 3));
        u.set_recv_timeout(std::time::Duration::from_secs(10));
        let out = u.try_run(|c| {
            if c.rank() == 1 {
                let req = c.irecv::<f64>(0);
                match req.wait() {
                    Err(CommError::PeerClosed { .. }) => "typed peer-closed",
                    Err(_) => "other error",
                    Ok(_) => "unexpected data",
                }
            } else {
                // Burn fabric ops (self-sends, so rank 1's mailbox from
                // us stays empty) until the injected crash fires.
                loop {
                    c.try_send(0, vec![0u8]).unwrap();
                }
            }
        });
        assert!(out[0].is_err(), "rank 0 must crash");
        assert_eq!(*out[1].as_ref().unwrap(), "typed peer-closed");
    }
}
