//! The in-memory interconnect: one unbounded FIFO link per ordered rank
//! pair, plus traffic accounting, liveness tracking, and fault hooks.
//!
//! Messages are type-erased (`Box<dyn Any + Send>`) so a single fabric can
//! carry `f32`, `f64`, `usize`, … payloads; the typed [`crate::comm::Comm`]
//! API downcasts on receipt and surfaces a [`CommError::TypeMismatch`]
//! (which indicates mismatched collective calls — the moral equivalent of
//! an MPI datatype error).
//!
//! The fallible API is [`Fabric::try_send`] / [`Fabric::try_recv`]; the
//! legacy [`Fabric::send`] / [`Fabric::recv`] wrappers panic with the
//! error's `Display` text, preserving the original messages.
//!
//! Links are hand-rolled `Mutex<VecDeque> + Condvar` queues rather than a
//! channel crate: the build environment is offline, and owning the queue
//! lets the fabric wake blocked receivers when a peer rank retires
//! (crashes), turning would-be 120 s hangs into immediate
//! [`CommError::PeerClosed`] results.

use crate::fault::{CommError, CorruptMode, FaultPlan};
use std::any::Any;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Default bound on how long a blocked receive waits before declaring
/// deadlock. Generous enough for debug-mode collective trees; short
/// enough that a mismatched collective fails a test instead of hanging
/// it. Overridable per fabric ([`Fabric::set_recv_timeout`]) or globally
/// via the `MPISIM_RECV_TIMEOUT_SECS` environment variable.
pub const RECV_TIMEOUT: Duration = Duration::from_secs(120);

/// Environment variable overriding the default receive timeout (seconds,
/// fractional values allowed).
pub const RECV_TIMEOUT_ENV: &str = "MPISIM_RECV_TIMEOUT_SECS";

/// Upper bound accepted from the env override (~31 years). Values above
/// this would push `Duration::from_secs_f64` toward its panic threshold,
/// and no test deliberately waits that long.
const MAX_TIMEOUT_SECS: f64 = 1e9;

/// Parses an `MPISIM_RECV_TIMEOUT_SECS` value: a positive, finite number
/// of seconds (fractional allowed), at most [`MAX_TIMEOUT_SECS`].
fn parse_recv_timeout(raw: &str) -> Result<Duration, String> {
    match raw.trim().parse::<f64>() {
        Ok(secs) if secs > 0.0 && secs <= MAX_TIMEOUT_SECS => Ok(Duration::from_secs_f64(secs)),
        Ok(secs) => Err(format!("{secs} is not in (0, {MAX_TIMEOUT_SECS}] seconds")),
        Err(err) => Err(format!("not a number: {err}")),
    }
}

/// Converts a `Duration` to whole microseconds, saturating at `u64::MAX`
/// (~584 000 years) instead of wrapping. `as_micros() as u64` silently
/// truncates the `u128` for absurd-but-parseable timeouts near the
/// [`MAX_TIMEOUT_SECS`] boundary, which would turn a "wait forever"
/// request into a near-zero timeout.
fn duration_to_us_saturating(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

fn default_recv_timeout() -> Duration {
    match std::env::var(RECV_TIMEOUT_ENV) {
        Ok(v) => parse_recv_timeout(&v).unwrap_or_else(|why| {
            // Warn exactly once per process: a malformed override used to
            // be swallowed silently, leaving CI runs on the 120 s default
            // with no clue why their tightened timeout never applied.
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| {
                eprintln!(
                    "mpisim: ignoring malformed {RECV_TIMEOUT_ENV}={v:?} ({why}); \
                     using the default {}s",
                    RECV_TIMEOUT.as_secs()
                );
            });
            RECV_TIMEOUT
        }),
        Err(_) => RECV_TIMEOUT,
    }
}

type Payload = Box<dyn Any + Send>;

/// Number of [`CollectiveKind`] variants (sizes the per-kind counter
/// tables).
pub const KIND_COUNT: usize = 9;

/// The collective operation a fabric message belongs to, for
/// phase-attributed traffic accounting.
///
/// Every delivered message is charged to exactly one kind:
/// [`CollectiveKind::PointToPoint`] for bare `try_send`/`try_recv`
/// traffic, and the matching collective kind for messages sent inside a
/// collective algorithm (an allreduce's internal reduce *and* broadcast
/// legs are both charged to `Allreduce` — attribution follows the
/// user-facing operation, not its implementation tree).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum CollectiveKind {
    /// Bare point-to-point sends outside any collective.
    PointToPoint = 0,
    /// Dissemination barrier rounds.
    Barrier = 1,
    /// Binomial-tree broadcast.
    Bcast = 2,
    /// Binomial-tree reduce.
    Reduce = 3,
    /// Allreduce (its reduce and broadcast legs both land here).
    Allreduce = 4,
    /// Ring allgather of variable blocks (includes `Comm::split`'s
    /// membership exchange).
    Allgatherv = 5,
    /// Ring reduce-scatter.
    ReduceScatter = 6,
    /// Direct pairwise all-to-all of variable blocks.
    Alltoallv = 7,
    /// Gather of variable blocks to a root.
    Gatherv = 8,
}

impl CollectiveKind {
    /// Every kind, in counter-table order.
    pub const ALL: [CollectiveKind; KIND_COUNT] = [
        CollectiveKind::PointToPoint,
        CollectiveKind::Barrier,
        CollectiveKind::Bcast,
        CollectiveKind::Reduce,
        CollectiveKind::Allreduce,
        CollectiveKind::Allgatherv,
        CollectiveKind::ReduceScatter,
        CollectiveKind::Alltoallv,
        CollectiveKind::Gatherv,
    ];

    /// Counter-table index of this kind.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name (used as JSON keys in trace files).
    pub fn name(self) -> &'static str {
        match self {
            CollectiveKind::PointToPoint => "p2p",
            CollectiveKind::Barrier => "barrier",
            CollectiveKind::Bcast => "bcast",
            CollectiveKind::Reduce => "reduce",
            CollectiveKind::Allreduce => "allreduce",
            CollectiveKind::Allgatherv => "allgatherv",
            CollectiveKind::ReduceScatter => "reduce_scatter",
            CollectiveKind::Alltoallv => "alltoallv",
            CollectiveKind::Gatherv => "gatherv",
        }
    }

    /// Inverse of [`CollectiveKind::name`].
    pub fn from_name(name: &str) -> Option<CollectiveKind> {
        CollectiveKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// A plain-integer snapshot of per-kind delivered traffic: `bytes[k]` /
/// `messages[k]` indexed by [`CollectiveKind::index`]. Doubles as a
/// *delta* (see [`TrafficScope::delta`]) and as an accumulator — the
/// counters are monotone, so differences and sums stay exact.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KindSnapshot {
    /// Delivered bytes per collective kind.
    pub bytes: [u64; KIND_COUNT],
    /// Delivered messages per collective kind.
    pub messages: [u64; KIND_COUNT],
}

impl KindSnapshot {
    /// Total bytes across all kinds.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Total messages across all kinds.
    pub fn total_messages(&self) -> u64 {
        self.messages.iter().sum()
    }

    /// Bytes charged to `kind`.
    #[inline]
    pub fn bytes_of(&self, kind: CollectiveKind) -> u64 {
        self.bytes[kind.index()]
    }

    /// Messages charged to `kind`.
    #[inline]
    pub fn messages_of(&self, kind: CollectiveKind) -> u64 {
        self.messages[kind.index()]
    }

    /// The counter movement since `earlier` (which must be an older
    /// snapshot of the same counters; monotonicity makes this exact).
    pub fn since(&self, earlier: &KindSnapshot) -> KindSnapshot {
        let mut out = KindSnapshot::default();
        for k in 0..KIND_COUNT {
            out.bytes[k] = self.bytes[k] - earlier.bytes[k];
            out.messages[k] = self.messages[k] - earlier.messages[k];
        }
        out
    }

    /// Accumulates `other` into `self` (for merging deltas).
    pub fn merge(&mut self, other: &KindSnapshot) {
        for k in 0..KIND_COUNT {
            self.bytes[k] += other.bytes[k];
            self.messages[k] += other.messages[k];
        }
    }

    /// `self - other` where every component of `other` is ≤ the matching
    /// component of `self` (used to carve a child span's traffic out of
    /// its parent's). Saturates rather than panicking so a racy reader
    /// can never underflow.
    pub fn saturating_sub(&self, other: &KindSnapshot) -> KindSnapshot {
        let mut out = KindSnapshot::default();
        for k in 0..KIND_COUNT {
            out.bytes[k] = self.bytes[k].saturating_sub(other.bytes[k]);
            out.messages[k] = self.messages[k].saturating_sub(other.messages[k]);
        }
        out
    }
}

/// A scoped delta guard over one rank's per-kind traffic counters.
///
/// Created by `Comm::traffic_scope()` (or [`TrafficStats::scope`]), it
/// snapshots the bytes/messages **sent by that rank** at construction;
/// [`TrafficScope::delta`] returns how much the rank has sent since.
/// Because the snapshot covers only the owning rank's source-side
/// counters, concurrent traffic from other ranks never leaks into the
/// delta — summing disjoint scopes across all ranks partitions the
/// universe-global totals exactly, which is what lets spans attribute
/// communication to phases without double counting.
#[derive(Clone, Copy, Debug)]
pub struct TrafficScope<'a> {
    stats: &'a TrafficStats,
    rank: usize,
    start: KindSnapshot,
}

impl TrafficScope<'_> {
    /// The world rank whose sends this scope observes.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Per-kind traffic this rank has sent since the scope was created.
    /// Non-consuming: call repeatedly for running totals.
    pub fn delta(&self) -> KindSnapshot {
        self.stats.kind_snapshot_for(self.rank).since(&self.start)
    }
}

/// Per-universe traffic counters (shared by every communicator derived
/// from the universe).
///
/// Counter semantics (the *accounting invariant*, enforced by a
/// regression test): a `try_send` that passes the liveness check counts
/// as one **attempted** message; it then counts as exactly one of
/// **delivered** (`messages`/`bytes`, payload enqueued on the link) or
/// **dropped** (a fault plan consumed it on the wire). Therefore
/// `attempted == messages + dropped` holds at every instant, even while
/// a collective is aborting mid-fanout — nothing is double-counted and
/// nothing leaks.
#[derive(Debug, Default)]
pub struct TrafficStats {
    /// Total bytes moved through point-to-point sends (delivered only).
    pub bytes: AtomicU64,
    /// Total messages delivered to a link queue.
    pub messages: AtomicU64,
    /// Total messages put on the wire (delivered + dropped).
    pub attempted: AtomicU64,
    /// Messages consumed by an injected drop fault.
    pub dropped: AtomicU64,
    /// Per-source-rank byte counts (load-imbalance analysis).
    pub bytes_by_rank: Vec<AtomicU64>,
    /// Send-side retransmissions issued by the [`RetryPolicy`] after an
    /// injected drop (each also counts on `attempted`, and then on
    /// exactly one of `messages` or `dropped`).
    pub send_retries: AtomicU64,
    /// Receive-side deadline-budget re-arms issued by the [`RetryPolicy`]
    /// after a [`DeadlinePolicy`] budget expired.
    pub recv_retries: AtomicU64,
    /// Messages eventually delivered after one or more injected drops —
    /// the retry layer's healing score.
    pub drops_healed: AtomicU64,
    /// Per-*sender*-rank induced blocked-wait microseconds: time
    /// receivers spent blocked in `try_recv` waiting for a message from
    /// this rank. Under blocking collectives this is the online
    /// straggler signal — a persistently slow rank makes everyone else
    /// wait on *it*, so its column grows a multiple faster than the rest.
    wait_us_by_src: Vec<AtomicU64>,
    /// Per-source-rank, per-kind delivered bytes
    /// (`rank * KIND_COUNT + kind.index()`).
    kind_bytes: Vec<AtomicU64>,
    /// Per-source-rank, per-kind delivered messages (same layout).
    kind_messages: Vec<AtomicU64>,
}

impl TrafficStats {
    fn new(p: usize) -> Self {
        TrafficStats {
            bytes: AtomicU64::new(0),
            messages: AtomicU64::new(0),
            attempted: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            bytes_by_rank: (0..p).map(|_| AtomicU64::new(0)).collect(),
            send_retries: AtomicU64::new(0),
            recv_retries: AtomicU64::new(0),
            drops_healed: AtomicU64::new(0),
            wait_us_by_src: (0..p).map(|_| AtomicU64::new(0)).collect(),
            kind_bytes: (0..p * KIND_COUNT).map(|_| AtomicU64::new(0)).collect(),
            kind_messages: (0..p * KIND_COUNT).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Per-sender induced blocked-wait microseconds (see
    /// `wait_us_by_src`): entry `r` is how long receivers have spent
    /// blocked waiting for messages *from* rank `r`, cumulatively.
    pub fn induced_wait_us(&self) -> Vec<u64> {
        self.wait_us_by_src
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect()
    }

    /// Charges `us` microseconds of blocked receive wait to sender `src`.
    fn charge_wait(&self, src: usize, us: u64) {
        if us > 0 {
            self.wait_us_by_src[src].fetch_add(us, Ordering::Relaxed);
        }
    }

    /// Snapshot of `(bytes, messages)`.
    pub fn snapshot(&self) -> (u64, u64) {
        (
            self.bytes.load(Ordering::Relaxed),
            self.messages.load(Ordering::Relaxed),
        )
    }

    /// Checks the accounting invariant `attempted == delivered + dropped`;
    /// returns the three counters on violation.
    pub fn check_invariant(&self) -> Result<(), (u64, u64, u64)> {
        let attempted = self.attempted.load(Ordering::Relaxed);
        let delivered = self.messages.load(Ordering::Relaxed);
        let dropped = self.dropped.load(Ordering::Relaxed);
        if attempted == delivered + dropped {
            Ok(())
        } else {
            Err((attempted, delivered, dropped))
        }
    }

    /// Largest per-rank byte count (the paper's cost model charges the
    /// critical path, i.e. the busiest rank).
    pub fn max_bytes_per_rank(&self) -> u64 {
        self.bytes_by_rank
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0)
    }

    /// Per-kind delivered traffic sent by world rank `rank`.
    pub fn kind_snapshot_for(&self, rank: usize) -> KindSnapshot {
        let mut snap = KindSnapshot::default();
        let base = rank * KIND_COUNT;
        for k in 0..KIND_COUNT {
            snap.bytes[k] = self.kind_bytes[base + k].load(Ordering::Relaxed);
            snap.messages[k] = self.kind_messages[base + k].load(Ordering::Relaxed);
        }
        snap
    }

    /// Per-kind delivered traffic summed over every source rank.
    pub fn kind_totals(&self) -> KindSnapshot {
        let p = self.bytes_by_rank.len();
        let mut snap = KindSnapshot::default();
        for r in 0..p {
            snap.merge(&self.kind_snapshot_for(r));
        }
        snap
    }

    /// A [`TrafficScope`] delta guard over `world_rank`'s send counters.
    pub fn scope(&self, world_rank: usize) -> TrafficScope<'_> {
        TrafficScope {
            stats: self,
            rank: world_rank,
            start: self.kind_snapshot_for(world_rank),
        }
    }

    /// Checks the *partition invariant*: summed over ranks, the per-kind
    /// byte/message counters must equal the global `bytes`/`messages`
    /// exactly — every delivered message is charged to one kind on one
    /// source rank, nothing double-counted, nothing orphaned. Returns
    /// `(kind_total, global_total)` pairs for bytes and messages on
    /// violation.
    ///
    /// Only meaningful while the fabric is quiescent (a send increments
    /// the kind counter and the global counter non-atomically).
    #[allow(clippy::type_complexity)]
    pub fn check_kind_partition(&self) -> Result<(), ((u64, u64), (u64, u64))> {
        let totals = self.kind_totals();
        let (bytes, msgs) = self.snapshot();
        if totals.total_bytes() == bytes && totals.total_messages() == msgs {
            Ok(())
        } else {
            Err((
                (totals.total_bytes(), bytes),
                (totals.total_messages(), msgs),
            ))
        }
    }
}

/// Per-collective-kind receive deadline budgets, layered *under* the
/// global recv timeout ([`Fabric::recv_timeout`]).
///
/// The global timeout is the fabric's coarse deadlock detector (120 s by
/// default); a deadline budget is the gray-failure detector: a receive
/// inside a collective of kind `k` that blocks longer than `budget(k)`
/// fails fast with [`CommError::DeadlineExceeded`], naming the suspected
/// straggler, long before the global timeout would fire. A kind with no
/// budget falls back to the global timeout alone.
///
/// With a [`RetryPolicy`] installed, an expired budget is retried with
/// backoff before the error surfaces (the peer may be slow, not gone).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeadlinePolicy {
    budgets: [Option<Duration>; KIND_COUNT],
}

impl DeadlinePolicy {
    /// No budgets at all: every kind uses the global timeout alone.
    pub fn none() -> DeadlinePolicy {
        DeadlinePolicy {
            budgets: [None; KIND_COUNT],
        }
    }

    /// The same budget for every collective kind.
    pub fn uniform(budget: Duration) -> DeadlinePolicy {
        DeadlinePolicy {
            budgets: [Some(budget); KIND_COUNT],
        }
    }

    /// Overrides the budget for one kind.
    pub fn with_kind(mut self, kind: CollectiveKind, budget: Duration) -> DeadlinePolicy {
        self.budgets[kind.index()] = Some(budget);
        self
    }

    /// The budget for `kind`, if one is set.
    pub fn budget(&self, kind: CollectiveKind) -> Option<Duration> {
        self.budgets[kind.index()]
    }

    /// The `strict` profile: 250 ms per collective — tight enough that a
    /// dead-slow peer is blamed within a sweep, loose enough that debug
    /// builds of the tier-1 problem sizes never trip it.
    pub fn strict() -> DeadlinePolicy {
        DeadlinePolicy::uniform(Duration::from_millis(250))
    }

    /// The `lenient` profile: 2 s per collective — catches only gross
    /// stalls, suitable for heavily loaded CI machines.
    pub fn lenient() -> DeadlinePolicy {
        DeadlinePolicy::uniform(Duration::from_secs(2))
    }

    /// Parses a named profile for the CLI `--deadline-profile` knob:
    /// `"off"` → no policy, `"strict"` / `"lenient"` → the matching
    /// preset. Unknown names return `None`.
    #[allow(clippy::option_option)]
    pub fn profile(name: &str) -> Option<Option<DeadlinePolicy>> {
        match name.to_ascii_lowercase().as_str() {
            "off" => Some(None),
            "strict" => Some(Some(DeadlinePolicy::strict())),
            "lenient" => Some(Some(DeadlinePolicy::lenient())),
            _ => None,
        }
    }
}

/// Bounded retry-with-exponential-backoff for transient point-to-point
/// failures: send-side retransmission of injected drops (flaky links)
/// and receive-side re-arming of expired [`DeadlinePolicy`] budgets.
///
/// Backoff for attempt *n* (1-based) is `base · 2^(n-1)`, capped at
/// `max_backoff`. Every retry is counted on [`TrafficStats`]
/// (`send_retries` / `recv_retries` / `drops_healed`), and each send
/// attempt moves the `attempted` ledger, so the accounting invariant
/// `attempted == delivered + dropped` holds through the retry loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of retries after the initial attempt.
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Backoff cap.
    pub max_backoff: Duration,
}

impl RetryPolicy {
    /// A policy with `max_retries` retries, 50 µs base backoff, 5 ms cap.
    pub fn new(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            base_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_millis(5),
        }
    }

    /// The backoff before retry `attempt` (1-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        (self.base_backoff * factor).min(self.max_backoff)
    }
}

/// One ordered-pair FIFO queue. Each entry carries the fabric *epoch* at
/// which it was sent; receivers discard entries from earlier epochs, so
/// in-flight data from before a fault recovery cannot poison the retried
/// collective (see [`Fabric::bump_epoch`]).
struct Link {
    queue: Mutex<VecDeque<(u64, Payload)>>,
    ready: Condvar,
}

impl Link {
    fn new() -> Link {
        Link {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, VecDeque<(u64, Payload)>> {
        // A panicking rank never holds a link lock (all fault panics
        // happen outside the critical section), but be robust anyway.
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Runtime state of an attached [`FaultPlan`]: the plan plus the
/// per-link and per-rank operation counters its decisions key on.
struct FaultState {
    plan: FaultPlan,
    /// Message index per ordered link (`dst * p + src`).
    link_ops: Vec<AtomicU64>,
    /// Fabric-operation count per rank (sends + receives).
    rank_ops: Vec<AtomicU64>,
}

impl FaultState {
    fn new(plan: FaultPlan, p: usize) -> FaultState {
        FaultState {
            plan,
            link_ops: (0..p * p).map(|_| AtomicU64::new(0)).collect(),
            rank_ops: (0..p).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Counts one fabric operation for `rank`; panics if the plan says
    /// this is the operation at which the rank crashes. The panic models
    /// process death: it is deliberately not a `CommError`, because a
    /// crashed rank cannot handle errors — [`crate::Universe::try_run`]
    /// catches it as a [`crate::RankFailure`].
    fn step_rank(&self, rank: usize) {
        let op = self.rank_ops[rank].fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(at) = self.plan.crash_op(rank) {
            if op == at {
                panic!("injected crash: rank {rank} died at fabric operation {op}");
            }
        }
        // Memory-pressure injection: `step_rank` always runs on the
        // rank's own OS thread, so shrinking the thread-local ledger
        // budget here lands on exactly the targeted rank, at a
        // program-order (hence schedule-independent) onset.
        if let Some(budget) = self.plan.mem_budget_at(rank, op) {
            ratucker_mem::set_budget(Some(budget));
        }
    }

    /// The persistent-slowness delay for `rank` at its *current*
    /// operation count (respects any scheduled onset).
    fn slow_delay_now(&self, rank: usize) -> Option<Duration> {
        self.plan
            .slow_delay_at(rank, self.rank_ops[rank].load(Ordering::Relaxed))
    }
}

/// How the fabric perturbs operation timing to explore alternative
/// thread interleavings (see DESIGN.md §12 and [`crate::Universe::explore`]).
///
/// Perturbation never violates per-link FIFO order or per-rank program
/// order — it only shifts *when* a send publishes its payload and when a
/// receive drains its queue, which is exactly the freedom a real network
/// has. The collectives' reduction trees are fixed by rank arithmetic,
/// so any observable divergence under a perturbed schedule is a genuine
/// schedule-dependent bug, not floating-point reassociation.
///
/// All delays are deterministic functions of `(policy, src, dst,
/// per-link operation index)`: the same policy replays the same nominal
/// delay pattern every run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// No perturbation: deliveries land whenever the OS thread scheduler
    /// gets there. The default; incurs no overhead beyond a per-op
    /// `Mutex` lookup that the fault path already pays.
    Os,
    /// Hash-derived micro-delays (0–45 µs) on every send, receive, and
    /// Condvar wakeup, keyed by `seed` — each seed is a distinct
    /// deterministic schedule.
    SeededRandom {
        /// Seed selecting the delay pattern.
        seed: u64,
    },
    /// A targeted worst-case strategy.
    Adversarial(Adversary),
}

/// Targeted adversarial scheduling strategies (see [`SchedulePolicy`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Adversary {
    /// Every fabric operation of one rank is delayed, so it arrives last
    /// at every rendezvous — a consistently slow straggler, the shape
    /// that flushes out barrier/agreement races.
    StarveRank {
        /// The rank to starve.
        rank: usize,
    },
    /// Deprioritizes old traffic: within each window of operations on a
    /// link, the earliest get the longest delays — approximating LIFO
    /// observation order at the receivers without violating per-link
    /// FIFO delivery (which pipelined collectives rely on for
    /// correctness; see DESIGN.md §12).
    Lifo,
    /// Maximum delay on "crossing" messages (`src > dst`) while downward
    /// traffic flows freely — skewing every symmetric exchange so the
    /// two directions of a ring or butterfly never proceed in lockstep.
    CrossDelay,
    /// The overlap adversary: every *receive-side* operation is delayed
    /// by an index-varying amount (sends publish on time), so in-flight
    /// split-phase requests complete in a different order than they were
    /// posted and every `Request::wait` is starved behind freshly-posted
    /// traffic. Receivers also always yield after a Condvar wakeup. This
    /// is the schedule shape that flushes out pipelined-collective bugs:
    /// compute/communication overlap windows stretch to their maximum
    /// while per-link FIFO delivery stays intact.
    StarveWaits,
}

/// Runtime state of an installed [`SchedulePolicy`]: the policy plus the
/// per-link operation counters its delay decisions key on (send, receive,
/// and Condvar-wakeup counters are kept separately so each perturbation
/// point sees a dense index sequence).
struct ScheduleState {
    policy: SchedulePolicy,
    p: usize,
    /// Send index per ordered link (`dst * p + src`).
    send_ops: Vec<AtomicU64>,
    /// Receive index per ordered link (same layout).
    recv_ops: Vec<AtomicU64>,
    /// Condvar-wakeup index per ordered link (same layout).
    wake_ops: Vec<AtomicU64>,
}

/// SplitMix64-style mix of a schedule seed and an operation coordinate.
/// Local rather than shared with `fault.rs` so the two subsystems'
/// decision streams can never alias.
fn sched_hash(seed: u64, src: u64, dst: u64, idx: u64) -> u64 {
    let mut z = seed
        .wrapping_add(src.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(dst.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(idx.wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ScheduleState {
    /// Base delay quantum. Long enough to reliably shift which thread
    /// wins a lock race; short enough that thousands of perturbed ops
    /// stay well under a second per run.
    const UNIT_US: u64 = 15;

    /// Salt decorrelating send-side delay decisions (see [`Self::op_delay`]).
    const SEND_SALT: u64 = 0x5E4D_5A17;
    /// Salt decorrelating receive-side delay decisions. `StarveWaits`
    /// keys on this to target only the waiting side of a rendezvous.
    const RECV_SALT: u64 = 0x2EC5_5A17;
    /// Salt decorrelating Condvar-wakeup yield decisions.
    const WAKE_SALT: u64 = 0x3A4E_5A17;

    fn new(policy: SchedulePolicy, p: usize) -> ScheduleState {
        ScheduleState {
            policy,
            p,
            send_ops: (0..p * p).map(|_| AtomicU64::new(0)).collect(),
            recv_ops: (0..p * p).map(|_| AtomicU64::new(0)).collect(),
            wake_ops: (0..p * p).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn reset(&self) {
        for c in self
            .send_ops
            .iter()
            .chain(self.recv_ops.iter())
            .chain(self.wake_ops.iter())
        {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Delay for one fabric operation. `actor` is the rank executing the
    /// op (`src` for sends, `dst` for receives); `salt` decorrelates the
    /// send-side and receive-side delay streams under `SeededRandom`.
    fn op_delay(
        &self,
        actor: usize,
        src: usize,
        dst: usize,
        idx: u64,
        salt: u64,
    ) -> Option<Duration> {
        match self.policy {
            SchedulePolicy::Os => None,
            SchedulePolicy::SeededRandom { seed } => {
                let steps = sched_hash(seed ^ salt, src as u64, dst as u64, idx) % 4;
                (steps > 0).then(|| Duration::from_micros(Self::UNIT_US * steps))
            }
            SchedulePolicy::Adversarial(Adversary::StarveRank { rank }) => {
                (actor == rank).then(|| Duration::from_micros(8 * Self::UNIT_US))
            }
            SchedulePolicy::Adversarial(Adversary::Lifo) => {
                let pos = idx % 4;
                (pos < 3).then(|| Duration::from_micros(2 * Self::UNIT_US * (3 - pos)))
            }
            SchedulePolicy::Adversarial(Adversary::CrossDelay) => {
                (src > dst).then(|| Duration::from_micros(6 * Self::UNIT_US))
            }
            SchedulePolicy::Adversarial(Adversary::StarveWaits) => {
                // Receive-side only: an index-varying delay (2, 5, or 8
                // quanta) reorders which of several in-flight requests a
                // waiting rank observes first, while sends publish
                // undelayed so overlap windows stretch to their maximum.
                (salt == Self::RECV_SALT)
                    .then(|| Duration::from_micros(Self::UNIT_US * (2 + (idx % 3) * 3)))
            }
        }
    }

    fn send_delay(&self, src: usize, dst: usize) -> Option<Duration> {
        let idx = self.send_ops[dst * self.p + src].fetch_add(1, Ordering::Relaxed);
        self.op_delay(src, src, dst, idx, Self::SEND_SALT)
    }

    fn recv_delay(&self, src: usize, dst: usize) -> Option<Duration> {
        let idx = self.recv_ops[dst * self.p + src].fetch_add(1, Ordering::Relaxed);
        self.op_delay(dst, src, dst, idx, Self::RECV_SALT)
    }

    /// Should a receiver that just woke from its Condvar briefly release
    /// the link lock and yield, letting another contender win the race?
    /// This perturbs *which* waiter observes a freshly-enqueued message
    /// first — the wakeup-choice dimension of the schedule space.
    fn yield_after_wakeup(&self, src: usize, dst: usize) -> bool {
        let idx = self.wake_ops[dst * self.p + src].fetch_add(1, Ordering::Relaxed);
        match self.policy {
            SchedulePolicy::Os => false,
            SchedulePolicy::SeededRandom { seed } => {
                sched_hash(seed ^ Self::WAKE_SALT, src as u64, dst as u64, idx) & 1 == 1
            }
            SchedulePolicy::Adversarial(Adversary::StarveRank { rank }) => dst == rank,
            SchedulePolicy::Adversarial(Adversary::Lifo) => idx.is_multiple_of(2),
            SchedulePolicy::Adversarial(Adversary::CrossDelay) => src > dst,
            // Waiters always lose the post-wakeup race: another
            // contender (or a fresh poster) gets the lock first.
            SchedulePolicy::Adversarial(Adversary::StarveWaits) => true,
        }
    }
}

/// Resets a `blocked_on` cell to "not blocked" when the receive that
/// set it returns, on every exit path.
struct ClearOnDrop<'a>(&'a AtomicUsize);

impl Drop for ClearOnDrop<'_> {
    fn drop(&mut self) {
        self.0.store(usize::MAX, Ordering::Relaxed);
    }
}

/// The link matrix connecting `p` ranks.
pub struct Fabric {
    p: usize,
    /// `links[dst * p + src]`: FIFO from `src` to `dst` (data plane).
    links: Vec<Link>,
    /// Control-plane links (`ctrl[dst * p + src]`). These model ULFM's
    /// reliable out-of-band failure-detector network: they bypass fault
    /// injection, revocation, epoch filtering, and traffic accounting,
    /// but still honor liveness and timeouts. Agreement/recovery traffic
    /// rides here so the recovery protocol itself cannot be poisoned by
    /// the faults it is recovering from.
    ctrl: Vec<Link>,
    /// Liveness flags; a retired (crashed) rank wakes its blocked peers.
    alive: Vec<AtomicBool>,
    /// `blocked_on[r]`: the world rank that rank `r` is currently
    /// blocked waiting on in a data-plane receive (`usize::MAX` when
    /// not blocked). Feeds [`Fabric::resolve_blame`], the wait-for
    /// chain walk that distinguishes a true straggler from the healthy
    /// ranks queued up behind it.
    blocked_on: Vec<AtomicUsize>,
    /// Revocation flag: once any rank revokes the fabric, pending and
    /// future data-plane operations fail fast with
    /// [`CommError::Revoked`] until the recovery protocol clears it.
    revoked: AtomicBool,
    /// Message epoch; bumped on recovery so stale in-flight data from an
    /// aborted collective is discarded at the receiver.
    epoch: AtomicU64,
    stats: TrafficStats,
    /// Receive timeout in microseconds (atomic so tests can tighten it).
    recv_timeout_us: AtomicU64,
    /// Optional per-collective deadline budgets (gray-failure detector).
    deadline: Mutex<Option<DeadlinePolicy>>,
    /// Optional bounded retry-with-backoff for transient p2p failures.
    retry: Mutex<Option<RetryPolicy>>,
    /// Optional fault-injection state.
    fault: Mutex<Option<Arc<FaultState>>>,
    /// Optional schedule-perturbation state (`None` ⇔ [`SchedulePolicy::Os`]).
    schedule: Mutex<Option<Arc<ScheduleState>>>,
}

impl Fabric {
    /// Builds a fully-connected fabric for `p` ranks.
    pub fn new(p: usize) -> Arc<Fabric> {
        assert!(p > 0, "fabric needs at least one rank");
        Arc::new(Fabric {
            p,
            links: (0..p * p).map(|_| Link::new()).collect(),
            ctrl: (0..p * p).map(|_| Link::new()).collect(),
            alive: (0..p).map(|_| AtomicBool::new(true)).collect(),
            blocked_on: (0..p).map(|_| AtomicUsize::new(usize::MAX)).collect(),
            revoked: AtomicBool::new(false),
            epoch: AtomicU64::new(0),
            stats: TrafficStats::new(p),
            recv_timeout_us: AtomicU64::new(duration_to_us_saturating(default_recv_timeout())),
            deadline: Mutex::new(None),
            retry: Mutex::new(None),
            fault: Mutex::new(None),
            schedule: Mutex::new(None),
        })
    }

    /// Number of ranks in the universe.
    pub fn size(&self) -> usize {
        self.p
    }

    /// Traffic counters for this universe.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// The current receive timeout.
    pub fn recv_timeout(&self) -> Duration {
        Duration::from_micros(self.recv_timeout_us.load(Ordering::Relaxed))
    }

    /// Overrides the receive timeout for this fabric. Durations beyond
    /// `u64::MAX` microseconds (~584 000 years) saturate instead of
    /// silently wrapping to a near-zero timeout.
    pub fn set_recv_timeout(&self, timeout: Duration) {
        self.recv_timeout_us
            .store(duration_to_us_saturating(timeout), Ordering::Relaxed);
    }

    /// Installs (or clears, with `None`) the per-collective deadline
    /// budgets.
    pub fn set_deadline_policy(&self, policy: Option<DeadlinePolicy>) {
        *self.deadline.lock().unwrap_or_else(|e| e.into_inner()) = policy;
    }

    /// The currently installed deadline policy, if any.
    pub fn deadline_policy(&self) -> Option<DeadlinePolicy> {
        *self.deadline.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Installs (or clears, with `None`) the retry-with-backoff policy.
    pub fn set_retry_policy(&self, policy: Option<RetryPolicy>) {
        *self.retry.lock().unwrap_or_else(|e| e.into_inner()) = policy;
    }

    /// The currently installed retry policy, if any.
    pub fn retry_policy(&self) -> Option<RetryPolicy> {
        *self.retry.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attaches a fault-injection plan (replacing any previous one) and
    /// resets its operation counters.
    pub fn attach_fault_plan(&self, plan: FaultPlan) {
        let state = Arc::new(FaultState::new(plan, self.p));
        *self.fault.lock().unwrap_or_else(|e| e.into_inner()) = Some(state);
    }

    /// Removes the attached fault plan.
    pub fn clear_fault_plan(&self) {
        *self.fault.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }

    fn fault_state(&self) -> Option<Arc<FaultState>> {
        self.fault.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Installs a schedule-perturbation policy (replacing any previous
    /// one) with fresh operation counters. [`SchedulePolicy::Os`] clears
    /// the state entirely, restoring zero-perturbation behavior.
    pub fn set_schedule_policy(&self, policy: SchedulePolicy) {
        let state = match policy {
            SchedulePolicy::Os => None,
            _ => Some(Arc::new(ScheduleState::new(policy, self.p))),
        };
        *self.schedule.lock().unwrap_or_else(|e| e.into_inner()) = state;
    }

    /// The currently installed schedule policy.
    pub fn schedule_policy(&self) -> SchedulePolicy {
        self.schedule_state()
            .map_or(SchedulePolicy::Os, |s| s.policy)
    }

    fn schedule_state(&self) -> Option<Arc<ScheduleState>> {
        self.schedule
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Is `rank` still alive (not retired)?
    pub fn is_alive(&self, rank: usize) -> bool {
        self.alive[rank].load(Ordering::SeqCst)
    }

    /// Marks `rank` as dead and wakes every receiver blocked on a
    /// message from it, so peers observe [`CommError::PeerClosed`]
    /// instead of waiting out the timeout. The retired rank's *own*
    /// blocked receives are woken too: a rank demoted by its peers (the
    /// straggler-eviction verdict) observes [`CommError::Demoted`]
    /// promptly instead of stalling to the global timeout.
    pub fn retire(&self, rank: usize) {
        self.alive[rank].store(false, Ordering::SeqCst);
        for other in 0..self.p {
            for lane in [&self.links, &self.ctrl] {
                for link_idx in [other * self.p + rank, rank * self.p + other] {
                    let link = &lane[link_idx];
                    let _guard = link.lock();
                    link.ready.notify_all();
                }
            }
        }
    }

    /// Resolves a deadline blame raised by `dst` against `src` to the
    /// most likely straggler by walking the fabric's wait-for chain.
    ///
    /// The proximate peer of an expired budget is often innocent: a
    /// rank stuck in a blocking receive behind the real straggler has
    /// not issued its *own* sends yet, so lateness chains through the
    /// topology (rank 0 times out on rank 3, which is blocked on
    /// rank 2, which is blocked on the degraded rank 1). Each blocked
    /// receive publishes who it waits on; the walk follows that
    /// relation from `src` until it reaches a rank that is *not*
    /// blocked — the one actually failing to make progress. The walk
    /// stops early if it loops back to `dst` or exceeds `p` hops
    /// (a genuine wait cycle), returning the last rank reached.
    ///
    /// The cells are read racily, but a rank slow enough to trip a
    /// deadline budget leaves the chain quiesced for the whole budget,
    /// so every blamer resolves to the same culprit in practice.
    pub fn resolve_blame(&self, dst: usize, src: usize) -> usize {
        let mut cur = src;
        for _ in 0..self.p {
            let next = self.blocked_on[cur].load(Ordering::Relaxed);
            if next == usize::MAX || next == dst || next == cur {
                break;
            }
            cur = next;
        }
        cur
    }

    /// The world ranks currently alive, ascending. This is the failure
    /// detector's view: in the simulator liveness is ground truth (a
    /// retired thread really is gone), which models a perfect detector —
    /// the paper's target systems approximate this with heartbeats.
    pub fn alive_ranks(&self) -> Vec<usize> {
        (0..self.p).filter(|&r| self.is_alive(r)).collect()
    }

    /// Has the fabric been revoked (a rank observed a failure and called
    /// [`Fabric::revoke`])?
    pub fn is_revoked(&self) -> bool {
        self.revoked.load(Ordering::SeqCst)
    }

    /// Revokes the data plane: every pending and future data-plane send
    /// or receive fails fast with [`CommError::Revoked`], flushing all
    /// live ranks out of whatever collective they were blocked in so
    /// they can enter the agreement protocol. Control-plane traffic is
    /// unaffected. Idempotent.
    pub fn revoke(&self) {
        self.revoked.store(true, Ordering::SeqCst);
        for link in &self.links {
            let _guard = link.lock();
            link.ready.notify_all();
        }
    }

    /// Clears the revocation flag after recovery completes. Call only
    /// from the agreement protocol, after [`Fabric::bump_epoch`].
    pub fn clear_revocation(&self) {
        self.revoked.store(false, Ordering::SeqCst);
    }

    /// The current message epoch.
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Advances the message epoch. Data messages already in flight (sent
    /// under an older epoch) are silently discarded at the receiver, so
    /// a collective retried after recovery cannot consume stale payloads
    /// from its aborted predecessor.
    pub fn bump_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Restores all ranks to alive, clears stale in-flight messages, and
    /// resets fault-plan counters, revocation, and the message epoch.
    /// Called at the start of each [`crate::Universe`] run so a universe
    /// remains usable after a failed run.
    pub fn reset_for_run(&self) {
        for a in &self.alive {
            a.store(true, Ordering::SeqCst);
        }
        for b in &self.blocked_on {
            b.store(usize::MAX, Ordering::Relaxed);
        }
        for link in self.links.iter().chain(self.ctrl.iter()) {
            link.lock().clear();
        }
        self.revoked.store(false, Ordering::SeqCst);
        self.epoch.store(0, Ordering::SeqCst);
        if let Some(state) = self.fault_state() {
            for c in state.link_ops.iter().chain(state.rank_ops.iter()) {
                c.store(0, Ordering::Relaxed);
            }
        }
        if let Some(state) = self.schedule_state() {
            state.reset();
        }
    }

    #[inline]
    fn link(&self, src: usize, dst: usize) -> &Link {
        &self.links[dst * self.p + src]
    }

    /// Fallible send of a typed vector from `src` to `dst`, recording
    /// traffic and applying any injected faults.
    ///
    /// Accounting order matters (see [`TrafficStats`]): the message
    /// counts as *attempted* once it passes the liveness check, and then
    /// as exactly one of *delivered* or *dropped* — a collective that
    /// aborts mid-fanout neither double-counts nor leaks.
    pub fn try_send<T: Send + 'static>(
        &self,
        src: usize,
        dst: usize,
        data: Vec<T>,
    ) -> Result<(), CommError> {
        self.try_send_kind(src, dst, data, CollectiveKind::PointToPoint)
    }

    /// [`Fabric::try_send`] with an explicit [`CollectiveKind`] charged
    /// for the traffic — the collectives in [`crate::comm::Comm`] use
    /// this so every delivered byte is attributed to the user-facing
    /// operation that moved it.
    pub fn try_send_kind<T: Send + 'static>(
        &self,
        src: usize,
        dst: usize,
        mut data: Vec<T>,
        kind: CollectiveKind,
    ) -> Result<(), CommError> {
        let fault = self.fault_state();
        if let Some(state) = &fault {
            state.step_rank(src);
        }
        if !self.is_alive(src) {
            // This rank was demoted (retired) by the failure detector
            // while still running: fail fast instead of feeding a
            // communicator its peers have already shrunk away from.
            return Err(CommError::Demoted { rank: src });
        }
        if self.is_revoked() {
            return Err(CommError::Revoked { rank: src });
        }
        if !self.is_alive(dst) {
            return Err(CommError::PeerClosed { peer: dst, me: src });
        }

        let bytes = std::mem::size_of_val(data.as_slice()) as u64;
        self.stats.attempted.fetch_add(1, Ordering::Relaxed);

        if let Some(state) = &fault {
            if let Some(delay) = state.slow_delay_now(src) {
                // Persistent slow rank: every rendezvous it initiates is
                // late, modeling a degraded-but-alive node.
                std::thread::sleep(delay);
            }
            let idx = state.link_ops[dst * self.p + src].fetch_add(1, Ordering::Relaxed);
            if let Some(delay) = state.plan.delay_for(src, dst, idx) {
                std::thread::sleep(delay);
            }
            if let Some((mode, h)) = state.plan.corrupt_for(src, dst, idx) {
                corrupt_payload(&mut data, mode, h);
            }
            if state.plan.lost_for(src, dst, idx) {
                // The message vanishes on the wire. It was attempted but
                // not delivered, so only the `dropped` counter moves —
                // unless a retry policy retransmits it. The retry loop
                // runs inside this call (same thread, same link), so
                // per-link FIFO order is preserved and a healed run is
                // bit-identical to a fault-free one. Loss decisions are
                // pure functions of the per-link message index, so each
                // retransmission draws a fresh, deterministic decision.
                self.stats.dropped.fetch_add(1, Ordering::Relaxed);
                let mut healed = false;
                if let Some(retry) = self.retry_policy() {
                    for attempt in 1..=retry.max_retries {
                        std::thread::sleep(retry.backoff(attempt));
                        self.stats.send_retries.fetch_add(1, Ordering::Relaxed);
                        self.stats.attempted.fetch_add(1, Ordering::Relaxed);
                        let idx =
                            state.link_ops[dst * self.p + src].fetch_add(1, Ordering::Relaxed);
                        if !state.plan.lost_for(src, dst, idx) {
                            self.stats.drops_healed.fetch_add(1, Ordering::Relaxed);
                            healed = true;
                            break;
                        }
                        self.stats.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                }
                if !healed {
                    // Exhausted (or no policy): the receiver will surface
                    // this as a Timeout / DeadlineExceeded.
                    return Ok(());
                }
            }
        }

        // Schedule perturbation: deterministically shift *when* this send
        // publishes its payload. FIFO order on the link is untouched.
        if let Some(sched) = self.schedule_state() {
            if let Some(delay) = sched.send_delay(src, dst) {
                std::thread::sleep(delay);
            }
        }

        self.stats.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.stats.messages.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_by_rank[src].fetch_add(bytes, Ordering::Relaxed);
        let cell = src * KIND_COUNT + kind.index();
        self.stats.kind_bytes[cell].fetch_add(bytes, Ordering::Relaxed);
        self.stats.kind_messages[cell].fetch_add(1, Ordering::Relaxed);

        let epoch = self.current_epoch();
        let link = self.link(src, dst);
        link.lock().push_back((epoch, Box::new(data)));
        link.ready.notify_all();
        Ok(())
    }

    /// Nonblocking readiness poll for the `src → dst` link: would a
    /// receive complete without waiting? True when an epoch-current
    /// message is queued — and also when the fabric is revoked or either
    /// endpoint is dead, so a poller that then calls `try_recv` observes
    /// the typed error immediately instead of blocking. This is the
    /// progress probe behind [`crate::request::Request::test`].
    pub fn has_message(&self, src: usize, dst: usize) -> bool {
        if self.is_revoked() || !self.is_alive(src) || !self.is_alive(dst) {
            return true;
        }
        let current = self.current_epoch();
        let queue = self.link(src, dst).lock();
        queue.iter().any(|(epoch, _)| *epoch >= current)
    }

    /// Fallible receive of the next message sent from `src` to `dst`,
    /// downcasting to the expected element type. Messages sent under an
    /// earlier fabric epoch are silently discarded (stale traffic from a
    /// collective aborted by fault recovery).
    pub fn try_recv<T: Send + 'static>(&self, src: usize, dst: usize) -> Result<Vec<T>, CommError> {
        self.try_recv_kind(src, dst, CollectiveKind::PointToPoint)
    }

    /// [`Fabric::try_recv`] with an explicit [`CollectiveKind`]: the kind
    /// selects which [`DeadlinePolicy`] budget (if any) this receive runs
    /// under, layered *under* the global timeout. When a budget expires
    /// with a [`RetryPolicy`] installed, the wait is re-armed with
    /// backoff (counted on `TrafficStats::recv_retries`) before
    /// [`CommError::DeadlineExceeded`] surfaces.
    ///
    /// Blocked-wait time is charged to the *sender* on
    /// [`TrafficStats::induced_wait_us`] — the per-rank signal the
    /// straggler detector consumes.
    pub fn try_recv_kind<T: Send + 'static>(
        &self,
        src: usize,
        dst: usize,
        kind: CollectiveKind,
    ) -> Result<Vec<T>, CommError> {
        if let Some(state) = self.fault_state() {
            state.step_rank(dst);
            if let Some(delay) = state.slow_delay_now(dst) {
                // Persistent slow rank: its receives are as late as its
                // sends — the whole node is degraded, not one link.
                std::thread::sleep(delay);
            }
        }
        // Schedule perturbation: shift when this receiver starts draining
        // its queue (lock not yet held, so nothing else is blocked).
        let sched = self.schedule_state();
        if let Some(state) = &sched {
            if let Some(delay) = state.recv_delay(src, dst) {
                std::thread::sleep(delay);
            }
        }
        let timeout = self.recv_timeout();
        let overall = Instant::now() + timeout;
        let budget = self.deadline_policy().and_then(|d| d.budget(kind));
        let retry = budget.and(self.retry_policy());
        let mut attempt = 0u32;
        let mut op_deadline = budget.map(|b| Instant::now() + b);
        let wait_start = Instant::now();
        let charge = || {
            self.stats
                .charge_wait(src, duration_to_us_saturating(wait_start.elapsed()));
        };
        // Publish who we are blocked on for the duration of the wait so
        // deadline blame can be resolved along the wait-for chain (the
        // guard clears the cell on every exit path).
        self.blocked_on[dst].store(src, Ordering::Relaxed);
        let _blocked = ClearOnDrop(&self.blocked_on[dst]);
        let link = self.link(src, dst);
        let mut queue = link.lock();
        let payload = loop {
            if self.is_revoked() {
                charge();
                return Err(CommError::Revoked { rank: dst });
            }
            if !self.is_alive(dst) {
                // Demoted by the failure detector while blocked (or about
                // to block): fail fast instead of waiting out a timeout
                // on a membership that no longer includes us.
                charge();
                return Err(CommError::Demoted { rank: dst });
            }
            let current = self.current_epoch();
            match queue.pop_front() {
                Some((epoch, payload)) if epoch >= current => break payload,
                Some(_) => continue, // stale epoch: discard, keep looking
                None => {}
            }
            if !self.is_alive(src) {
                charge();
                return Err(CommError::PeerClosed { peer: src, me: dst });
            }
            let now = Instant::now();
            if now >= overall {
                charge();
                return Err(CommError::Timeout {
                    src,
                    dst,
                    waited: timeout,
                });
            }
            if let (Some(d), Some(b)) = (op_deadline, budget) {
                if now >= d {
                    match retry {
                        Some(r) if attempt < r.max_retries => {
                            // Re-arm the budget with backoff: the peer
                            // may be slow, not gone. Release the link
                            // lock while sleeping so the sender can
                            // deliver in the meantime.
                            attempt += 1;
                            self.stats.recv_retries.fetch_add(1, Ordering::Relaxed);
                            drop(queue);
                            std::thread::sleep(r.backoff(attempt));
                            op_deadline = Some(Instant::now() + b);
                            queue = link.lock();
                            continue;
                        }
                        _ => {
                            charge();
                            return Err(CommError::DeadlineExceeded {
                                src,
                                dst,
                                kind: kind.name(),
                                budget: b,
                            });
                        }
                    }
                }
            }
            let until = op_deadline.map_or(overall, |d| d.min(overall));
            let (guard, _res) = link
                .ready
                .wait_timeout(queue, until - now)
                .unwrap_or_else(|e| e.into_inner());
            queue = guard;
            // Schedule perturbation of the wakeup choice: briefly release
            // the lock and yield so a different contender can win it.
            if let Some(state) = &sched {
                if state.yield_after_wakeup(src, dst) {
                    drop(queue);
                    std::thread::yield_now();
                    queue = link.lock();
                }
            }
        };
        drop(queue);
        charge();
        payload
            .downcast::<Vec<T>>()
            .map(|b| *b)
            .map_err(|_| CommError::TypeMismatch {
                src,
                dst,
                expected: std::any::type_name::<T>(),
            })
    }

    /// Control-plane send (failure detection / agreement traffic).
    ///
    /// Bypasses fault injection, revocation, epoch filtering, and the
    /// traffic counters — modeling ULFM's assumption of a reliable
    /// out-of-band detector network — but still refuses to target a dead
    /// rank.
    pub fn ctrl_send<T: Send + 'static>(
        &self,
        src: usize,
        dst: usize,
        data: Vec<T>,
    ) -> Result<(), CommError> {
        if !self.is_alive(src) {
            // A demoted rank must not litter the control plane: stale
            // votes from an evicted member could poison a later
            // agreement round (ctrl messages carry no epoch).
            return Err(CommError::Demoted { rank: src });
        }
        if !self.is_alive(dst) {
            return Err(CommError::PeerClosed { peer: dst, me: src });
        }
        // Schedule perturbation covers the control plane too (agreement
        // and failure-detection races are prime exploration targets);
        // the counters are shared with the data plane, which is fine —
        // a rank issues its sends in program order, so the combined
        // index stream is still deterministic.
        if let Some(sched) = self.schedule_state() {
            if let Some(delay) = sched.send_delay(src, dst) {
                std::thread::sleep(delay);
            }
        }
        let link = &self.ctrl[dst * self.p + src];
        link.lock().push_back((0, Box::new(data)));
        link.ready.notify_all();
        Ok(())
    }

    /// Control-plane receive (see [`Fabric::ctrl_send`]). Honors
    /// liveness and the receive timeout; ignores revocation and epochs.
    pub fn ctrl_recv<T: Send + 'static>(
        &self,
        src: usize,
        dst: usize,
    ) -> Result<Vec<T>, CommError> {
        if let Some(sched) = self.schedule_state() {
            if let Some(delay) = sched.recv_delay(src, dst) {
                std::thread::sleep(delay);
            }
        }
        let timeout = self.recv_timeout();
        let deadline = Instant::now() + timeout;
        let link = &self.ctrl[dst * self.p + src];
        let mut queue = link.lock();
        let payload = loop {
            if !self.is_alive(dst) {
                // Demoted while waiting for agreement traffic: wake up
                // and leave instead of stalling to the timeout.
                return Err(CommError::Demoted { rank: dst });
            }
            if let Some((_, payload)) = queue.pop_front() {
                break payload;
            }
            if !self.is_alive(src) {
                return Err(CommError::PeerClosed { peer: src, me: dst });
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(CommError::Timeout {
                    src,
                    dst,
                    waited: timeout,
                });
            }
            let (guard, _res) = link
                .ready
                .wait_timeout(queue, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            queue = guard;
        };
        drop(queue);
        payload
            .downcast::<Vec<T>>()
            .map(|b| *b)
            .map_err(|_| CommError::TypeMismatch {
                src,
                dst,
                expected: std::any::type_name::<T>(),
            })
    }

    /// Sends a typed vector from `src` to `dst`, recording traffic.
    ///
    /// # Panics
    /// Panics (with the [`CommError`] display text) if the destination
    /// rank has retired.
    pub fn send<T: Send + 'static>(&self, src: usize, dst: usize, data: Vec<T>) {
        self.try_send(src, dst, data)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Receives the next message sent from `src` to `dst`, downcasting to
    /// the expected element type.
    ///
    /// # Panics
    /// Panics on element-type mismatch, retired peer, or after the
    /// receive timeout (deadlock: mismatched send/recv pattern).
    pub fn recv<T: Send + 'static>(&self, src: usize, dst: usize) -> Vec<T> {
        self.try_recv(src, dst).unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Applies an injected corruption to an `f64` or `f32` payload in place.
/// Non-float payloads (control traffic, index exchanges) are left alone:
/// the model is silent data corruption in bulk numeric transfers.
// `&mut Vec<T>` (not `&mut [T]`) is required: the `Any` downcast must see
// the concrete `Vec<f64>` / `Vec<f32>` type to identify float payloads.
#[allow(clippy::ptr_arg)]
fn corrupt_payload<T: Send + 'static>(data: &mut Vec<T>, mode: CorruptMode, h: u64) {
    let any: &mut dyn Any = data;
    if let Some(v) = any.downcast_mut::<Vec<f64>>() {
        if v.is_empty() {
            return;
        }
        let i = (h as usize) % v.len();
        match mode {
            CorruptMode::NanInject => v[i] = f64::NAN,
            CorruptMode::BitFlip => {
                let bit = (h >> 32) % 52; // mantissa bits: silent, plausible
                v[i] = f64::from_bits(v[i].to_bits() ^ (1u64 << bit));
            }
            CorruptMode::ExponentFlip => v[i] = exponent_flip_f64(v[i], h),
        }
    } else if let Some(v) = any.downcast_mut::<Vec<f32>>() {
        if v.is_empty() {
            return;
        }
        let i = (h as usize) % v.len();
        match mode {
            CorruptMode::NanInject => v[i] = f32::NAN,
            CorruptMode::BitFlip => {
                let bit = ((h >> 32) % 23) as u32;
                v[i] = f32::from_bits(v[i].to_bits() ^ (1u32 << bit));
            }
            CorruptMode::ExponentFlip => v[i] = exponent_flip_f32(v[i], h),
        }
    }
}

/// Flips one exponent bit of `x`, choosing the first candidate (in a
/// hash-derived order) whose result is still finite. For any finite
/// input at least one of the 11 exponent bits yields a finite value, so
/// the corruption is *guaranteed finite*: a large-magnitude but
/// perfectly plausible number that NaN/Inf screens provably cannot
/// catch — exactly the class of silent error ABFT checksums exist for.
fn exponent_flip_f64(x: f64, h: u64) -> f64 {
    let start = ((h >> 32) % 11) as usize;
    for t in 0..11u64 {
        let bit = 52 + ((start as u64 + t) % 11);
        let cand = f64::from_bits(x.to_bits() ^ (1u64 << bit));
        if cand.is_finite() && cand != x {
            return cand;
        }
    }
    x
}

/// `f32` analog of [`exponent_flip_f64`] (8 exponent bits, 23..=30).
fn exponent_flip_f32(x: f32, h: u64) -> f32 {
    let start = ((h >> 32) % 8) as u32;
    for t in 0..8u32 {
        let bit = 23 + ((start + t) % 8);
        let cand = f32::from_bits(x.to_bits() ^ (1u32 << bit));
        if cand.is_finite() && cand != x {
            return cand;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_roundtrip() {
        let f = Fabric::new(2);
        f.send(0, 1, vec![1.0f64, 2.0, 3.0]);
        let got: Vec<f64> = f.recv(0, 1);
        assert_eq!(got, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn traffic_is_counted() {
        let f = Fabric::new(2);
        f.send(0, 1, vec![0u64; 10]);
        let _: Vec<u64> = f.recv(0, 1);
        let (bytes, msgs) = f.stats().snapshot();
        assert_eq!(bytes, 80);
        assert_eq!(msgs, 1);
        assert_eq!(f.stats().max_bytes_per_rank(), 80);
    }

    #[test]
    fn messages_from_same_source_are_fifo() {
        let f = Fabric::new(2);
        f.send(0, 1, vec![1i64]);
        f.send(0, 1, vec![2i64]);
        assert_eq!(f.recv::<i64>(0, 1), vec![1]);
        assert_eq!(f.recv::<i64>(0, 1), vec![2]);
    }

    #[test]
    #[should_panic(expected = "unexpected element type")]
    fn type_mismatch_panics() {
        let f = Fabric::new(2);
        f.send(0, 1, vec![1.0f32]);
        let _: Vec<f64> = f.recv(0, 1);
    }

    #[test]
    fn type_mismatch_is_a_typed_error() {
        let f = Fabric::new(2);
        f.send(0, 1, vec![1.0f32]);
        match f.try_recv::<f64>(0, 1) {
            Err(CommError::TypeMismatch {
                src: 0,
                dst: 1,
                expected,
            }) => {
                assert!(expected.contains("f64"));
            }
            other => panic!("expected TypeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn self_send_works() {
        let f = Fabric::new(1);
        f.send(0, 0, vec![7u8]);
        assert_eq!(f.recv::<u8>(0, 0), vec![7]);
    }

    #[test]
    fn recv_times_out_with_typed_error() {
        let f = Fabric::new(2);
        f.set_recv_timeout(Duration::from_millis(20));
        let start = Instant::now();
        match f.try_recv::<f64>(0, 1) {
            Err(CommError::Timeout { src: 0, dst: 1, .. }) => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn retired_peer_surfaces_peer_closed() {
        let f = Fabric::new(2);
        f.retire(0);
        match f.try_recv::<f64>(0, 1) {
            Err(CommError::PeerClosed { peer: 0, me: 1 }) => {}
            other => panic!("expected PeerClosed, got {other:?}"),
        }
        match f.try_send(1, 0, vec![1.0f64]) {
            Err(CommError::PeerClosed { peer: 0, me: 1 }) => {}
            other => panic!("expected PeerClosed, got {other:?}"),
        }
        f.reset_for_run();
        assert!(f.is_alive(0));
    }

    #[test]
    fn retire_wakes_blocked_receiver() {
        let f = Fabric::new(2);
        f.set_recv_timeout(Duration::from_secs(30));
        let f2 = Arc::clone(&f);
        let start = Instant::now();
        let h = std::thread::spawn(move || f2.try_recv::<f64>(0, 1));
        std::thread::sleep(Duration::from_millis(30));
        f.retire(0);
        let res = h.join().unwrap();
        assert!(matches!(res, Err(CommError::PeerClosed { peer: 0, me: 1 })));
        assert!(start.elapsed() < Duration::from_secs(5), "receiver hung");
    }

    #[test]
    fn dropped_message_times_out() {
        let f = Fabric::new(2);
        f.set_recv_timeout(Duration::from_millis(20));
        f.attach_fault_plan(FaultPlan::quiet(0).with_drops(1.0));
        f.send(0, 1, vec![1.0f64]);
        assert!(matches!(
            f.try_recv::<f64>(0, 1),
            Err(CommError::Timeout { .. })
        ));
        f.clear_fault_plan();
    }

    #[test]
    fn nan_corruption_hits_f64_payloads() {
        let f = Fabric::new(2);
        f.attach_fault_plan(FaultPlan::quiet(0).with_corruption(1.0, CorruptMode::NanInject));
        f.send(0, 1, vec![1.0f64, 2.0, 3.0]);
        let got: Vec<f64> = f.recv(0, 1);
        assert_eq!(got.iter().filter(|x| x.is_nan()).count(), 1);
        // Non-float payloads pass through untouched.
        f.send(0, 1, vec![5usize, 6]);
        assert_eq!(f.recv::<usize>(0, 1), vec![5, 6]);
    }

    #[test]
    fn bitflip_corruption_changes_one_value() {
        let f = Fabric::new(2);
        f.attach_fault_plan(FaultPlan::quiet(9).with_corruption(1.0, CorruptMode::BitFlip));
        let orig = vec![1.0f64, 2.0, 3.0, 4.0];
        f.send(0, 1, orig.clone());
        let got: Vec<f64> = f.recv(0, 1);
        let changed = got.iter().zip(&orig).filter(|(a, b)| a != b).count();
        assert_eq!(changed, 1);
        assert!(
            got.iter().all(|x| x.is_finite()),
            "mantissa flips stay finite"
        );
    }

    #[test]
    fn exponent_flip_is_finite_and_changes_one_value() {
        let f = Fabric::new(2);
        f.attach_fault_plan(FaultPlan::quiet(41).with_corruption(1.0, CorruptMode::ExponentFlip));
        let orig = vec![1.5f64, -2.25, 3.75, 4.125];
        f.send(0, 1, orig.clone());
        let got: Vec<f64> = f.recv(0, 1);
        let changed = got.iter().zip(&orig).filter(|(a, b)| a != b).count();
        assert_eq!(changed, 1, "exactly one element corrupted");
        assert!(
            got.iter().all(|x| x.is_finite()),
            "exponent flips must stay finite (so NaN screens miss them): {got:?}"
        );
        f.clear_fault_plan();
    }

    #[test]
    fn exponent_flip_helper_is_total() {
        // Every finite input (including zero and subnormals) must have a
        // finite, different flip result.
        for &x in &[0.0f64, -0.0, 1.0, -1.0, f64::MIN_POSITIVE, 1e308, -1e-300] {
            for h in 0..11u64 {
                let y = exponent_flip_f64(x, h << 32);
                assert!(y.is_finite(), "x={x}, h={h} -> {y}");
                assert!(y != x, "x={x}, h={h} did not change");
            }
        }
        for &x in &[0.0f32, 1.0, -3.5, f32::MIN_POSITIVE, 1e38] {
            for h in 0..8u64 {
                let y = exponent_flip_f32(x, h << 32);
                assert!(y.is_finite(), "x={x}, h={h} -> {y}");
                assert!(y != x, "x={x}, h={h} did not change");
            }
        }
    }

    #[test]
    fn dropped_messages_keep_counters_consistent() {
        let f = Fabric::new(2);
        f.attach_fault_plan(FaultPlan::quiet(3).with_drops(1.0));
        for _ in 0..5 {
            f.send(0, 1, vec![1.0f64; 8]);
        }
        let stats = f.stats();
        assert_eq!(stats.attempted.load(Ordering::Relaxed), 5);
        assert_eq!(stats.dropped.load(Ordering::Relaxed), 5);
        let (bytes, msgs) = stats.snapshot();
        assert_eq!(msgs, 0, "dropped messages are not 'delivered'");
        assert_eq!(bytes, 0, "dropped bytes are not counted as moved");
        stats.check_invariant().expect("invariant under total drop");
        f.clear_fault_plan();
        f.send(0, 1, vec![1.0f64; 8]);
        assert_eq!(stats.attempted.load(Ordering::Relaxed), 6);
        assert_eq!(stats.messages.load(Ordering::Relaxed), 1);
        stats
            .check_invariant()
            .expect("invariant after mixed traffic");
    }

    #[test]
    fn revoke_fails_pending_and_future_data_ops() {
        let f = Fabric::new(2);
        f.set_recv_timeout(Duration::from_secs(30));
        let f2 = Arc::clone(&f);
        let start = Instant::now();
        let h = std::thread::spawn(move || f2.try_recv::<f64>(0, 1));
        std::thread::sleep(Duration::from_millis(30));
        f.revoke();
        let res = h.join().unwrap();
        assert!(
            matches!(res, Err(CommError::Revoked { rank: 1 })),
            "{res:?}"
        );
        assert!(start.elapsed() < Duration::from_secs(5), "receiver hung");
        assert!(matches!(
            f.try_send(0, 1, vec![1.0f64]),
            Err(CommError::Revoked { rank: 0 })
        ));
        // Control plane keeps working while revoked.
        f.ctrl_send(0, 1, vec![7u64]).unwrap();
        assert_eq!(f.ctrl_recv::<u64>(0, 1).unwrap(), vec![7]);
        f.clear_revocation();
        f.send(0, 1, vec![2.0f64]);
        assert_eq!(f.recv::<f64>(0, 1), vec![2.0]);
    }

    #[test]
    fn epoch_bump_discards_stale_messages() {
        let f = Fabric::new(2);
        f.set_recv_timeout(Duration::from_millis(20));
        f.send(0, 1, vec![1.0f64]); // epoch 0
        f.bump_epoch();
        // The stale epoch-0 message must not satisfy this receive.
        assert!(matches!(
            f.try_recv::<f64>(0, 1),
            Err(CommError::Timeout { .. })
        ));
        f.send(0, 1, vec![2.0f64]); // epoch 1
        assert_eq!(f.recv::<f64>(0, 1), vec![2.0]);
    }

    #[test]
    fn injected_crash_panics_at_op_n() {
        let f = Fabric::new(2);
        f.attach_fault_plan(FaultPlan::quiet(0).with_crash(0, 3));
        f.send(0, 1, vec![1u8]); // op 1
        f.send(0, 1, vec![2u8]); // op 2
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            f.send(0, 1, vec![3u8]); // op 3 → crash
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("injected crash"), "got: {msg}");
    }

    #[test]
    fn kind_counters_partition_the_global_totals() {
        let f = Fabric::new(2);
        f.try_send_kind(0, 1, vec![1.0f64; 4], CollectiveKind::Allreduce)
            .unwrap();
        f.try_send_kind(1, 0, vec![1.0f64; 2], CollectiveKind::ReduceScatter)
            .unwrap();
        f.send(0, 1, vec![7u8]); // bare p2p
        let stats = f.stats();
        let totals = stats.kind_totals();
        assert_eq!(totals.bytes_of(CollectiveKind::Allreduce), 32);
        assert_eq!(totals.bytes_of(CollectiveKind::ReduceScatter), 16);
        assert_eq!(totals.bytes_of(CollectiveKind::PointToPoint), 1);
        assert_eq!(totals.messages_of(CollectiveKind::Allreduce), 1);
        assert_eq!(totals.total_bytes(), stats.snapshot().0);
        assert_eq!(totals.total_messages(), stats.snapshot().1);
        stats.check_kind_partition().expect("partition invariant");
        // Per-rank attribution: rank 0 sent the allreduce + p2p bytes.
        let r0 = stats.kind_snapshot_for(0);
        assert_eq!(r0.bytes_of(CollectiveKind::Allreduce), 32);
        assert_eq!(r0.bytes_of(CollectiveKind::ReduceScatter), 0);
    }

    #[test]
    fn dropped_sends_are_not_charged_to_any_kind() {
        let f = Fabric::new(2);
        f.attach_fault_plan(FaultPlan::quiet(3).with_drops(1.0));
        f.try_send_kind(0, 1, vec![1.0f64; 8], CollectiveKind::Bcast)
            .unwrap();
        let totals = f.stats().kind_totals();
        assert_eq!(totals.total_bytes(), 0, "dropped bytes never delivered");
        assert_eq!(totals.total_messages(), 0);
        f.stats().check_kind_partition().expect("partition on drop");
        f.clear_fault_plan();
    }

    #[test]
    fn traffic_scope_sees_only_its_own_rank() {
        let f = Fabric::new(2);
        let scope0 = f.stats().scope(0);
        let scope1 = f.stats().scope(1);
        f.try_send_kind(0, 1, vec![1.0f64; 3], CollectiveKind::Gatherv)
            .unwrap();
        let d0 = scope0.delta();
        let d1 = scope1.delta();
        assert_eq!(d0.total_bytes(), 24);
        assert_eq!(d0.bytes_of(CollectiveKind::Gatherv), 24);
        assert_eq!(d1.total_bytes(), 0, "rank 1 sent nothing");
        // Scopes are non-consuming and deltas are cumulative.
        f.try_send_kind(0, 1, vec![1.0f64], CollectiveKind::Gatherv)
            .unwrap();
        assert_eq!(scope0.delta().total_bytes(), 32);
    }

    #[test]
    fn kind_name_round_trips() {
        for kind in CollectiveKind::ALL {
            assert_eq!(CollectiveKind::from_name(kind.name()), Some(kind));
            assert_eq!(CollectiveKind::ALL[kind.index()], kind);
        }
        assert_eq!(CollectiveKind::from_name("warp_drive"), None);
    }

    #[test]
    fn env_var_overrides_default_timeout() {
        // Can't mutate the environment of already-built fabrics, but the
        // parser itself must accept fractional seconds and reject junk.
        assert_eq!(RECV_TIMEOUT, Duration::from_secs(120));
        let f = Fabric::new(1);
        f.set_recv_timeout(Duration::from_millis(1500));
        assert_eq!(f.recv_timeout(), Duration::from_millis(1500));
    }

    #[test]
    fn recv_timeout_parser_accepts_positive_seconds() {
        assert_eq!(parse_recv_timeout("120"), Ok(Duration::from_secs(120)));
        assert_eq!(parse_recv_timeout("1.5"), Ok(Duration::from_millis(1500)));
        assert_eq!(parse_recv_timeout("  2 "), Ok(Duration::from_secs(2)));
        assert_eq!(parse_recv_timeout("0.25"), Ok(Duration::from_millis(250)));
    }

    #[test]
    fn recv_timeout_parser_rejects_malformed_values() {
        // Every rejection carries a reason (surfaced in the one-time
        // warning) instead of being silently swallowed.
        for bad in ["0", "-3", "nan", "inf", "-inf", "1e300", "", "abc", "12s"] {
            let err = parse_recv_timeout(bad).unwrap_err();
            assert!(!err.is_empty(), "{bad:?} should explain its rejection");
        }
    }

    #[test]
    fn schedule_policy_installs_and_clears() {
        let f = Fabric::new(2);
        assert_eq!(f.schedule_policy(), SchedulePolicy::Os);
        f.set_schedule_policy(SchedulePolicy::SeededRandom { seed: 7 });
        assert_eq!(
            f.schedule_policy(),
            SchedulePolicy::SeededRandom { seed: 7 }
        );
        f.set_schedule_policy(SchedulePolicy::Adversarial(Adversary::StarveRank {
            rank: 1,
        }));
        assert_eq!(
            f.schedule_policy(),
            SchedulePolicy::Adversarial(Adversary::StarveRank { rank: 1 })
        );
        f.set_schedule_policy(SchedulePolicy::Os);
        assert_eq!(f.schedule_policy(), SchedulePolicy::Os);
    }

    #[test]
    fn fifo_order_survives_every_schedule_policy() {
        // The determinism guarantee: perturbation shifts timing only,
        // never the order in which one link delivers its messages.
        let policies = [
            SchedulePolicy::SeededRandom { seed: 99 },
            SchedulePolicy::Adversarial(Adversary::StarveRank { rank: 0 }),
            SchedulePolicy::Adversarial(Adversary::Lifo),
            SchedulePolicy::Adversarial(Adversary::CrossDelay),
            SchedulePolicy::Adversarial(Adversary::StarveWaits),
        ];
        for policy in policies {
            let f = Fabric::new(2);
            f.set_schedule_policy(policy);
            for i in 0..10i64 {
                f.send(1, 0, vec![i]);
            }
            for i in 0..10i64 {
                assert_eq!(f.recv::<i64>(1, 0), vec![i], "under {policy:?}");
            }
        }
    }

    #[test]
    fn schedule_delays_are_deterministic_and_targeted() {
        let starve = ScheduleState::new(
            SchedulePolicy::Adversarial(Adversary::StarveRank { rank: 1 }),
            4,
        );
        // Only ops executed *by* the starved rank are delayed.
        assert!(starve.op_delay(1, 1, 0, 0, 0).is_some());
        assert!(starve.op_delay(0, 0, 1, 0, 0).is_none());

        let cross = ScheduleState::new(SchedulePolicy::Adversarial(Adversary::CrossDelay), 4);
        assert!(cross.op_delay(2, 2, 0, 0, 0).is_some(), "upward is delayed");
        assert!(cross.op_delay(0, 0, 2, 0, 0).is_none(), "downward flows");

        let lifo = ScheduleState::new(SchedulePolicy::Adversarial(Adversary::Lifo), 2);
        let d0 = lifo.op_delay(0, 0, 1, 0, 0).unwrap();
        let d2 = lifo.op_delay(0, 0, 1, 2, 0).unwrap();
        assert!(d0 > d2, "older ops wait longer: {d0:?} vs {d2:?}");
        assert!(lifo.op_delay(0, 0, 1, 3, 0).is_none(), "newest goes first");

        let waits = ScheduleState::new(SchedulePolicy::Adversarial(Adversary::StarveWaits), 2);
        assert!(
            waits
                .op_delay(1, 0, 1, 0, ScheduleState::RECV_SALT)
                .is_some(),
            "receive side is starved"
        );
        assert!(
            waits
                .op_delay(0, 0, 1, 0, ScheduleState::SEND_SALT)
                .is_none(),
            "sends publish undelayed"
        );
        let w0 = waits.op_delay(1, 0, 1, 0, ScheduleState::RECV_SALT);
        let w1 = waits.op_delay(1, 0, 1, 1, ScheduleState::RECV_SALT);
        assert_ne!(w0, w1, "index-varying delays reorder completions");
        assert!(waits.yield_after_wakeup(0, 1), "waiters always yield");

        let a = ScheduleState::new(SchedulePolicy::SeededRandom { seed: 5 }, 2);
        let b = ScheduleState::new(SchedulePolicy::SeededRandom { seed: 5 }, 2);
        for idx in 0..32 {
            assert_eq!(
                a.op_delay(0, 0, 1, idx, 7),
                b.op_delay(0, 0, 1, idx, 7),
                "same seed must replay the same delay pattern"
            );
        }
        let c = ScheduleState::new(SchedulePolicy::SeededRandom { seed: 6 }, 2);
        let differs = (0..32).any(|idx| a.op_delay(0, 0, 1, idx, 7) != c.op_delay(0, 0, 1, idx, 7));
        assert!(differs, "different seeds should differ somewhere");
    }

    #[test]
    fn recv_timeout_parser_accepts_the_max_boundary() {
        // The documented ceiling itself must parse…
        assert_eq!(parse_recv_timeout("1e9"), Ok(Duration::from_secs_f64(1e9)));
        // …and convert to microseconds without truncation (1e15 µs fits
        // comfortably in u64; the old `as_micros() as u64` cast only
        // wrapped beyond ~5.8e5 years, which saturation now absorbs).
        assert_eq!(
            duration_to_us_saturating(Duration::from_secs_f64(1e9)),
            1_000_000_000_000_000
        );
        assert!(parse_recv_timeout("1.000001e9").is_err(), "above the cap");
    }

    #[test]
    fn set_recv_timeout_saturates_instead_of_wrapping() {
        let f = Fabric::new(1);
        // Duration::MAX is ~5.8e11 years: `as_micros() as u64` would wrap
        // this to a near-zero timeout. Saturation keeps it "forever".
        f.set_recv_timeout(Duration::MAX);
        assert_eq!(f.recv_timeout(), Duration::from_micros(u64::MAX));
        // In-range values are exact.
        f.set_recv_timeout(Duration::from_millis(1500));
        assert_eq!(f.recv_timeout(), Duration::from_millis(1500));
    }

    #[test]
    fn deadline_budget_fires_before_the_global_timeout() {
        let f = Fabric::new(2);
        f.set_recv_timeout(Duration::from_secs(30));
        f.set_deadline_policy(Some(DeadlinePolicy::uniform(Duration::from_millis(25))));
        let start = Instant::now();
        match f.try_recv_kind::<f64>(0, 1, CollectiveKind::Allreduce) {
            Err(CommError::DeadlineExceeded {
                src: 0,
                dst: 1,
                kind,
                budget,
            }) => {
                assert_eq!(kind, "allreduce");
                assert_eq!(budget, Duration::from_millis(25));
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(start.elapsed() < Duration::from_secs(5), "budget ignored");
        // A kind with no budget still waits out the global timeout.
        f.set_deadline_policy(Some(
            DeadlinePolicy::none().with_kind(CollectiveKind::Bcast, Duration::from_millis(25)),
        ));
        f.set_recv_timeout(Duration::from_millis(80));
        assert!(matches!(
            f.try_recv_kind::<f64>(0, 1, CollectiveKind::Allreduce),
            Err(CommError::Timeout { .. })
        ));
    }

    #[test]
    fn recv_retries_rearm_the_budget_then_surface_deadline_exceeded() {
        let f = Fabric::new(2);
        f.set_recv_timeout(Duration::from_secs(30));
        f.set_deadline_policy(Some(DeadlinePolicy::uniform(Duration::from_millis(10))));
        f.set_retry_policy(Some(RetryPolicy::new(2)));
        let start = Instant::now();
        assert!(matches!(
            f.try_recv_kind::<f64>(0, 1, CollectiveKind::Gatherv),
            Err(CommError::DeadlineExceeded { .. })
        ));
        // Two re-armed budgets before giving up: ≥ 3 × 10 ms of waiting.
        assert!(start.elapsed() >= Duration::from_millis(30));
        assert_eq!(f.stats().recv_retries.load(Ordering::Relaxed), 2);
        // A message arriving during a retry window is delivered normally.
        f.send(0, 1, vec![9.0f64]);
        assert_eq!(
            f.try_recv_kind::<f64>(0, 1, CollectiveKind::Gatherv)
                .unwrap(),
            vec![9.0]
        );
    }

    #[test]
    fn retry_policy_heals_flaky_link_drops() {
        let f = Fabric::new(2);
        f.attach_fault_plan(FaultPlan::quiet(21).with_flaky_link(0, 1, 0.4));
        f.set_retry_policy(Some(RetryPolicy::new(8)));
        for i in 0..20i64 {
            f.send(0, 1, vec![i]);
        }
        // Every message is eventually delivered, in order.
        for i in 0..20i64 {
            assert_eq!(f.recv::<i64>(0, 1), vec![i]);
        }
        let stats = f.stats();
        assert!(
            stats.drops_healed.load(Ordering::Relaxed) > 0,
            "seed 21 at p=0.4 must drop at least once in 20 sends"
        );
        assert!(stats.send_retries.load(Ordering::Relaxed) > 0);
        // Every attempt (first tries + retries) is on the ledger.
        stats.check_invariant().expect("invariant through retries");
        assert_eq!(stats.messages.load(Ordering::Relaxed), 20);
        f.clear_fault_plan();
    }

    #[test]
    fn retry_exhaustion_still_keeps_the_ledger_consistent() {
        let f = Fabric::new(2);
        f.set_recv_timeout(Duration::from_millis(20));
        f.attach_fault_plan(FaultPlan::quiet(0).with_drops(1.0));
        f.set_retry_policy(Some(RetryPolicy::new(3)));
        f.send(0, 1, vec![1.0f64]);
        let stats = f.stats();
        // 1 first attempt + 3 retries, all dropped, none delivered.
        assert_eq!(stats.attempted.load(Ordering::Relaxed), 4);
        assert_eq!(stats.dropped.load(Ordering::Relaxed), 4);
        assert_eq!(stats.send_retries.load(Ordering::Relaxed), 3);
        assert_eq!(stats.drops_healed.load(Ordering::Relaxed), 0);
        stats.check_invariant().expect("invariant after exhaustion");
        assert!(matches!(
            f.try_recv::<f64>(0, 1),
            Err(CommError::Timeout { .. })
        ));
        f.clear_fault_plan();
    }

    #[test]
    fn slow_rank_delays_its_own_rendezvous() {
        let f = Fabric::new(2);
        f.attach_fault_plan(FaultPlan::quiet(0).with_slow_rank(0, Duration::from_millis(30)));
        let t0 = Instant::now();
        f.send(0, 1, vec![1u8]);
        assert!(t0.elapsed() >= Duration::from_millis(30), "send not slowed");
        // The fast rank's operations are unaffected (its recv pops an
        // already-delivered message instantly).
        let t1 = Instant::now();
        assert_eq!(f.recv::<u8>(0, 1), vec![1]);
        assert!(t1.elapsed() < Duration::from_millis(25));
        f.clear_fault_plan();
    }

    #[test]
    fn demoted_rank_fails_fast_on_every_plane() {
        let f = Fabric::new(2);
        f.set_recv_timeout(Duration::from_secs(30));
        f.retire(1);
        assert!(matches!(
            f.try_send(1, 0, vec![1.0f64]),
            Err(CommError::Demoted { rank: 1 })
        ));
        assert!(matches!(
            f.try_recv::<f64>(0, 1),
            Err(CommError::Demoted { rank: 1 })
        ));
        assert!(matches!(
            f.ctrl_send(1, 0, vec![1u64]),
            Err(CommError::Demoted { rank: 1 })
        ));
        assert!(matches!(
            f.ctrl_recv::<u64>(0, 1),
            Err(CommError::Demoted { rank: 1 })
        ));
        f.reset_for_run();
    }

    #[test]
    fn retire_wakes_the_retired_ranks_own_blocked_recv() {
        let f = Fabric::new(2);
        f.set_recv_timeout(Duration::from_secs(30));
        let f2 = Arc::clone(&f);
        let start = Instant::now();
        // Rank 1 blocks waiting on rank 0; its *own* demotion must wake it.
        let h = std::thread::spawn(move || f2.try_recv::<f64>(0, 1));
        std::thread::sleep(Duration::from_millis(30));
        f.retire(1);
        let res = h.join().unwrap();
        assert!(
            matches!(res, Err(CommError::Demoted { rank: 1 })),
            "{res:?}"
        );
        assert!(start.elapsed() < Duration::from_secs(5), "zombie hung");
    }

    #[test]
    fn resolve_blame_walks_the_wait_for_chain_to_the_stalled_rank() {
        // Rank 0 waits on rank 1, which waits on rank 2, which is doing
        // nothing (the stalled culprit). The blame raised by rank 0
        // against its proximate peer must resolve to rank 2.
        let f = Fabric::new(3);
        let f1 = Arc::clone(&f);
        let h1 = std::thread::spawn(move || f1.try_recv::<f64>(2, 1));
        let f0 = Arc::clone(&f);
        let h0 = std::thread::spawn(move || f0.try_recv::<f64>(1, 0));
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(f.resolve_blame(0, 1), 2);
        // A blame against a rank that is not blocked stays where it is.
        assert_eq!(f.resolve_blame(0, 2), 2);
        // Unwind the chain: rank 2 answers, then rank 1 can answer.
        f.send(2, 1, vec![7.0f64]);
        assert_eq!(h1.join().unwrap().unwrap(), vec![7.0]);
        f.send(1, 0, vec![8.0f64]);
        assert_eq!(h0.join().unwrap().unwrap(), vec![8.0]);
        // All cells cleared once nobody is blocked.
        assert_eq!(f.resolve_blame(0, 1), 1);
    }

    #[test]
    fn blocked_waits_are_charged_to_the_sender() {
        let f = Fabric::new(2);
        let f2 = Arc::clone(&f);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            f2.send(0, 1, vec![1.0f64]);
        });
        assert_eq!(f.recv::<f64>(0, 1), vec![1.0]);
        h.join().unwrap();
        let waits = f.stats().induced_wait_us();
        assert!(
            waits[0] >= 30_000,
            "rank 0 made the receiver wait ~40 ms, charged {} µs",
            waits[0]
        );
        assert_eq!(waits[1], 0, "rank 1 sent nothing");
    }

    #[test]
    fn deadline_profiles_parse() {
        assert_eq!(DeadlinePolicy::profile("off"), Some(None));
        assert_eq!(
            DeadlinePolicy::profile("strict"),
            Some(Some(DeadlinePolicy::strict()))
        );
        assert_eq!(
            DeadlinePolicy::profile("LENIENT"),
            Some(Some(DeadlinePolicy::lenient()))
        );
        assert_eq!(DeadlinePolicy::profile("brutal"), None);
        assert!(
            DeadlinePolicy::strict()
                .budget(CollectiveKind::Allreduce)
                .unwrap()
                < DeadlinePolicy::lenient()
                    .budget(CollectiveKind::Allreduce)
                    .unwrap()
        );
        assert_eq!(
            DeadlinePolicy::none().budget(CollectiveKind::Allreduce),
            None
        );
    }

    #[test]
    fn retry_backoff_is_exponential_and_capped() {
        let r = RetryPolicy::new(10);
        assert_eq!(r.backoff(1), Duration::from_micros(50));
        assert_eq!(r.backoff(2), Duration::from_micros(100));
        assert_eq!(r.backoff(3), Duration::from_micros(200));
        assert_eq!(r.backoff(30), Duration::from_millis(5), "capped");
    }

    #[test]
    fn schedule_counters_reset_with_the_run() {
        let f = Fabric::new(2);
        f.set_schedule_policy(SchedulePolicy::Adversarial(Adversary::Lifo));
        let state = f.schedule_state().unwrap();
        f.send(0, 1, vec![1u8]);
        // Link index dst * p + src = 2.
        assert_eq!(state.send_ops[2].load(Ordering::Relaxed), 1);
        f.reset_for_run();
        assert_eq!(state.send_ops[2].load(Ordering::Relaxed), 0);
    }
}
