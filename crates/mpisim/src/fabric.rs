//! The in-memory interconnect: one unbounded channel per ordered rank
//! pair, plus traffic accounting.
//!
//! Messages are type-erased (`Box<dyn Any + Send>`) so a single fabric can
//! carry `f32`, `f64`, `usize`, … payloads; the typed [`crate::comm::Comm`]
//! API downcasts on receipt and panics with a clear message on a type
//! mismatch (which indicates mismatched collective calls — the moral
//! equivalent of an MPI datatype error).

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long a blocked receive waits before declaring deadlock. Generous
/// enough for debug-mode collective trees; short enough that a mismatched
/// collective fails a test instead of hanging it.
pub const RECV_TIMEOUT: Duration = Duration::from_secs(120);

type Payload = Box<dyn Any + Send>;

/// Per-universe traffic counters (shared by every communicator derived
/// from the universe).
#[derive(Debug, Default)]
pub struct TrafficStats {
    /// Total bytes moved through point-to-point sends.
    pub bytes: AtomicU64,
    /// Total messages sent.
    pub messages: AtomicU64,
    /// Per-source-rank byte counts (load-imbalance analysis).
    pub bytes_by_rank: Vec<AtomicU64>,
}

impl TrafficStats {
    fn new(p: usize) -> Self {
        TrafficStats {
            bytes: AtomicU64::new(0),
            messages: AtomicU64::new(0),
            bytes_by_rank: (0..p).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Snapshot of `(bytes, messages)`.
    pub fn snapshot(&self) -> (u64, u64) {
        (
            self.bytes.load(Ordering::Relaxed),
            self.messages.load(Ordering::Relaxed),
        )
    }

    /// Largest per-rank byte count (the paper's cost model charges the
    /// critical path, i.e. the busiest rank).
    pub fn max_bytes_per_rank(&self) -> u64 {
        self.bytes_by_rank
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0)
    }
}

/// The channel matrix connecting `p` ranks.
pub struct Fabric {
    p: usize,
    /// `txs[dst][src]`: sender used by `src` to reach `dst`.
    txs: Vec<Vec<Sender<Payload>>>,
    /// `rxs[dst][src]`: receiver drained by `dst` for messages from `src`.
    rxs: Vec<Vec<Receiver<Payload>>>,
    stats: TrafficStats,
}

impl Fabric {
    /// Builds a fully-connected fabric for `p` ranks.
    pub fn new(p: usize) -> Arc<Fabric> {
        assert!(p > 0, "fabric needs at least one rank");
        let mut txs = Vec::with_capacity(p);
        let mut rxs = Vec::with_capacity(p);
        for _dst in 0..p {
            let mut tx_row = Vec::with_capacity(p);
            let mut rx_row = Vec::with_capacity(p);
            for _src in 0..p {
                let (tx, rx) = unbounded();
                tx_row.push(tx);
                rx_row.push(rx);
            }
            txs.push(tx_row);
            rxs.push(rx_row);
        }
        Arc::new(Fabric {
            p,
            txs,
            rxs,
            stats: TrafficStats::new(p),
        })
    }

    /// Number of ranks in the universe.
    pub fn size(&self) -> usize {
        self.p
    }

    /// Traffic counters for this universe.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Sends a typed vector from `src` to `dst`, recording traffic.
    pub fn send<T: Send + 'static>(&self, src: usize, dst: usize, data: Vec<T>) {
        let bytes = std::mem::size_of_val(data.as_slice()) as u64;
        self.stats.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.stats.messages.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_by_rank[src].fetch_add(bytes, Ordering::Relaxed);
        self.txs[dst][src]
            .send(Box::new(data))
            .expect("fabric channel closed: a rank panicked");
    }

    /// Receives the next message sent from `src` to `dst`, downcasting to
    /// the expected element type.
    ///
    /// # Panics
    /// Panics on element-type mismatch or after [`RECV_TIMEOUT`] (deadlock:
    /// mismatched send/recv pattern).
    pub fn recv<T: Send + 'static>(&self, src: usize, dst: usize) -> Vec<T> {
        let payload = self.rxs[dst][src]
            .recv_timeout(RECV_TIMEOUT)
            .unwrap_or_else(|_| {
                panic!("rank {dst} timed out waiting for a message from rank {src} (mismatched collective?)")
            });
        *payload.downcast::<Vec<T>>().unwrap_or_else(|_| {
            panic!(
                "rank {dst} received a message from rank {src} with unexpected element type {}",
                std::any::type_name::<T>()
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_roundtrip() {
        let f = Fabric::new(2);
        f.send(0, 1, vec![1.0f64, 2.0, 3.0]);
        let got: Vec<f64> = f.recv(0, 1);
        assert_eq!(got, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn traffic_is_counted() {
        let f = Fabric::new(2);
        f.send(0, 1, vec![0u64; 10]);
        let _: Vec<u64> = f.recv(0, 1);
        let (bytes, msgs) = f.stats().snapshot();
        assert_eq!(bytes, 80);
        assert_eq!(msgs, 1);
        assert_eq!(f.stats().max_bytes_per_rank(), 80);
    }

    #[test]
    fn messages_from_same_source_are_fifo() {
        let f = Fabric::new(2);
        f.send(0, 1, vec![1i64]);
        f.send(0, 1, vec![2i64]);
        assert_eq!(f.recv::<i64>(0, 1), vec![1]);
        assert_eq!(f.recv::<i64>(0, 1), vec![2]);
    }

    #[test]
    #[should_panic(expected = "unexpected element type")]
    fn type_mismatch_panics() {
        let f = Fabric::new(2);
        f.send(0, 1, vec![1.0f32]);
        let _: Vec<f64> = f.recv(0, 1);
    }

    #[test]
    fn self_send_works() {
        let f = Fabric::new(1);
        f.send(0, 0, vec![7u8]);
        assert_eq!(f.recv::<u8>(0, 0), vec![7]);
    }
}
