//! Cartesian processor grids.
//!
//! TuckerMPI distributes a `d`-way tensor over a `P_1 × … × P_d` processor
//! grid; per-mode collectives (the TTM reduce-scatter, the Gram allgather)
//! run on "fiber" sub-communicators in which only one grid coordinate
//! varies. This module builds those from a world communicator, mirroring
//! `MPI_Cart_create` + `MPI_Cart_sub`.
//!
//! Coordinate order matches the tensor layout: coordinate 0 varies fastest
//! with rank, so rank ↔ coords is the same mode-0-fastest mapping used for
//! tensor entries.

use crate::comm::Comm;
use crate::fault::CommError;

impl std::fmt::Debug for CartGrid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CartGrid")
            .field("dims", &self.dims)
            .field("coords", &self.coords)
            .field("rank", &self.comm.rank())
            .finish_non_exhaustive()
    }
}

/// A Cartesian view of a communicator.
#[derive(Clone)]
pub struct CartGrid {
    /// The full-grid communicator.
    pub comm: Comm,
    dims: Vec<usize>,
    coords: Vec<usize>,
    /// `mode_comms[k]`: the sub-communicator of ranks sharing all
    /// coordinates except `k`; its rank equals `coords[k]`.
    mode_comms: Vec<Comm>,
}

impl CartGrid {
    /// Builds a grid of the given dimensions over `comm`.
    ///
    /// # Panics
    /// Panics if `Π dims != comm.size()` or on a communication error
    /// while building the fiber communicators (see [`CartGrid::try_new`]
    /// for the fallible variant).
    pub fn new(comm: Comm, dims: &[usize]) -> CartGrid {
        Self::try_new(comm, dims).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`CartGrid::new`]: communication failures
    /// while splitting into fiber communicators — and a grid volume that
    /// does not match the communicator size — surface as a typed
    /// [`CommError`] instead of a panic. The size check matters on the
    /// recovery path: after a shrink, a caller-supplied grid shape can
    /// legitimately disagree with the survivor count, and the solver
    /// wants to classify that like any other sizing fault rather than
    /// die inside grid construction.
    pub fn try_new(comm: Comm, dims: &[usize]) -> Result<CartGrid, CommError> {
        let p: usize = dims.iter().product();
        if p != comm.size() {
            // Self-referential src/dst: the mismatch is between this
            // rank's configuration and its communicator, not a peer.
            let me = comm.world_rank_of(comm.rank());
            return Err(CommError::SizeMismatch {
                src: me,
                dst: me,
                expected: p,
                got: comm.size(),
            });
        }
        let coords = Self::rank_to_coords(comm.rank(), dims);
        // Build one fiber communicator per mode. All ranks perform the
        // same sequence of splits, as the collective contract requires.
        let mut mode_comms = Vec::with_capacity(dims.len());
        for k in 0..dims.len() {
            // Color = flattened coordinates with mode k removed.
            let mut color = 0usize;
            let mut stride = 1usize;
            for (m, (&c, &d)) in coords.iter().zip(dims).enumerate() {
                if m == k {
                    continue;
                }
                color += c * stride;
                stride *= d;
            }
            mode_comms.push(comm.try_split(color, coords[k])?);
        }
        Ok(CartGrid {
            comm,
            dims: dims.to_vec(),
            coords,
            mode_comms,
        })
    }

    /// Grid dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of modes.
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// This rank's grid coordinates.
    pub fn coords(&self) -> &[usize] {
        &self.coords
    }

    /// Grid coordinate of this rank in mode `k`.
    pub fn coord(&self, k: usize) -> usize {
        self.coords[k]
    }

    /// The fiber sub-communicator of mode `k` (rank within it equals
    /// `coords[k]`).
    pub fn mode_comm(&self, k: usize) -> &Comm {
        &self.mode_comms[k]
    }

    /// Converts a grid rank to coordinates (coordinate 0 fastest).
    pub fn rank_to_coords(mut rank: usize, dims: &[usize]) -> Vec<usize> {
        let mut coords = Vec::with_capacity(dims.len());
        for &d in dims {
            coords.push(rank % d);
            rank /= d;
        }
        coords
    }

    /// Converts coordinates to a grid rank.
    pub fn coords_to_rank(coords: &[usize], dims: &[usize]) -> usize {
        let mut rank = 0;
        let mut stride = 1;
        for (&c, &d) in coords.iter().zip(dims) {
            debug_assert!(c < d);
            rank += c * stride;
            stride *= d;
        }
        rank
    }
}

/// Result of rebuilding a Cartesian grid over a shrunken communicator
/// (see [`try_rebuild_grid`]). When the survivor count does not factor
/// into a grid elementwise ≤ the original one, the excess survivors
/// become **spares**: they hold no tensor block and sit out the
/// computation, but keep their replicas warm for future failures.
pub enum ShrinkOutcome {
    /// This rank is part of the shrunken grid.
    Active(Box<CartGrid>),
    /// This rank is a spare; the communicator groups all spares.
    Spare(Comm),
}

/// Chooses the dimensions of the shrunken grid: the elementwise-largest
/// grid with `dims[k] <= orig[k]` for every mode and `Π dims <=
/// survivors`, maximizing the rank count used; ties prefer shrinking
/// the *last* modes first (lexicographically largest dims vector), so
/// mode-0 data layout is disturbed least.
///
/// The elementwise bound is what lets recovery match the fault-free
/// run: truncation ranks are floored at the *original* grid dimensions,
/// and any grid ≤ the original keeps those floors valid, so the
/// rank-adaptation trajectory is unchanged by the shrink.
pub fn choose_shrunk_dims(orig: &[usize], survivors: usize) -> Vec<usize> {
    assert!(survivors > 0, "no survivors to build a grid from");
    let mut best: Vec<usize> = vec![1; orig.len()];
    let mut best_product = 1usize;
    let mut cur = vec![1usize; orig.len()];
    fn rec(
        orig: &[usize],
        survivors: usize,
        mode: usize,
        product: usize,
        cur: &mut Vec<usize>,
        best: &mut Vec<usize>,
        best_product: &mut usize,
    ) {
        if mode == orig.len() {
            if product > *best_product || (product == *best_product && cur[..] > best[..]) {
                *best_product = product;
                best.copy_from_slice(cur);
            }
            return;
        }
        for d in 1..=orig[mode] {
            if product * d > survivors {
                break;
            }
            cur[mode] = d;
            rec(
                orig,
                survivors,
                mode + 1,
                product * d,
                cur,
                best,
                best_product,
            );
        }
        cur[mode] = 1;
    }
    rec(
        orig,
        survivors,
        0,
        1,
        &mut cur,
        &mut best,
        &mut best_product,
    );
    best
}

/// Rebuilds the Cartesian grid over a shrunken communicator: picks the
/// shrunken dimensions via [`choose_shrunk_dims`], splits `comm` into an
/// active part (the first `Π dims` ranks, which form the new grid with
/// remapped per-mode sub-communicators) and a spare part (the rest).
/// Collective over `comm` — every survivor must call it.
pub fn try_rebuild_grid(comm: Comm, orig_dims: &[usize]) -> Result<ShrinkOutcome, CommError> {
    let dims = choose_shrunk_dims(orig_dims, comm.size());
    let q: usize = dims.iter().product();
    let active = comm.rank() < q;
    let part = comm.try_split(usize::from(!active), comm.rank())?;
    if active {
        Ok(ShrinkOutcome::Active(Box::new(CartGrid::try_new(
            part, &dims,
        )?)))
    } else {
        Ok(ShrinkOutcome::Spare(part))
    }
}

/// Enumerates every factorization of `p` into `d` grid dimensions
/// (used by the experiment harness to search over grids, as the paper
/// "test[s] all algorithms on a variety of grids … and report[s] the
/// fastest observed running times").
pub fn enumerate_grids(p: usize, d: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = vec![1usize; d];
    fn rec(p: usize, mode: usize, d: usize, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if mode == d - 1 {
            current[mode] = p;
            out.push(current.clone());
            return;
        }
        let mut f = 1;
        while f <= p {
            if p.is_multiple_of(f) {
                current[mode] = f;
                rec(p / f, mode + 1, d, current, out);
            }
            f += 1;
        }
    }
    rec(p, 0, d, &mut current, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn coords_roundtrip() {
        let dims = [3, 2, 4];
        for r in 0..24 {
            let c = CartGrid::rank_to_coords(r, &dims);
            assert_eq!(CartGrid::coords_to_rank(&c, &dims), r);
        }
        assert_eq!(CartGrid::rank_to_coords(0, &dims), vec![0, 0, 0]);
        assert_eq!(CartGrid::rank_to_coords(1, &dims), vec![1, 0, 0]);
        assert_eq!(CartGrid::rank_to_coords(3, &dims), vec![0, 1, 0]);
    }

    #[test]
    fn fiber_comms_have_right_shape() {
        let results = Universe::launch(12, |c| {
            let grid = CartGrid::new(c, &[3, 2, 2]);
            let sizes: Vec<usize> = (0..3).map(|k| grid.mode_comm(k).size()).collect();
            let ranks: Vec<usize> = (0..3).map(|k| grid.mode_comm(k).rank()).collect();
            (grid.coords().to_vec(), sizes, ranks)
        });
        for (coords, sizes, ranks) in results {
            assert_eq!(sizes, vec![3, 2, 2]);
            assert_eq!(ranks, coords);
        }
    }

    #[test]
    fn fiber_allreduce_sums_along_one_mode_only() {
        // Sum of coord-0 along the mode-0 fiber = 0+1+2 = 3 everywhere.
        let results = Universe::launch(12, |c| {
            let grid = CartGrid::new(c, &[3, 2, 2]);
            let v = vec![grid.coord(0) as u64];
            let s = grid.mode_comm(0).allreduce(v, crate::comm::sum_op);
            s[0]
        });
        assert!(results.iter().all(|&s| s == 3));
    }

    #[test]
    fn enumerate_grids_is_complete() {
        let grids = enumerate_grids(8, 3);
        // Factorizations of 8 into 3 ordered factors: (1,1,8),(1,2,4),
        // (1,4,2),(1,8,1),(2,1,4),(2,2,2),(2,4,1),(4,1,2),(4,2,1),(8,1,1).
        assert_eq!(grids.len(), 10);
        for g in &grids {
            assert_eq!(g.iter().product::<usize>(), 8);
        }
        assert!(grids.contains(&vec![2, 2, 2]));
    }

    #[test]
    fn shrunk_dims_prefer_late_modes_and_respect_bounds() {
        // 7 survivors of [2,2,2]: best product ≤ 7 with dims ≤ [2,2,2]
        // is 4; ties resolved toward keeping early modes intact.
        assert_eq!(choose_shrunk_dims(&[2, 2, 2], 7), vec![2, 2, 1]);
        assert_eq!(choose_shrunk_dims(&[2, 2, 2], 8), vec![2, 2, 2]);
        assert_eq!(choose_shrunk_dims(&[2, 2, 2], 6), vec![2, 2, 1]);
        assert_eq!(choose_shrunk_dims(&[2, 2, 2], 3), vec![2, 1, 1]);
        assert_eq!(choose_shrunk_dims(&[4, 2], 6), vec![3, 2]);
        assert_eq!(choose_shrunk_dims(&[4, 2], 7), vec![3, 2]);
        assert_eq!(choose_shrunk_dims(&[3], 2), vec![2]);
        assert_eq!(choose_shrunk_dims(&[2, 2], 1), vec![1, 1]);
        // Survivors beyond the original grid never grow a mode.
        assert_eq!(choose_shrunk_dims(&[2, 2], 100), vec![2, 2]);
    }

    #[test]
    fn rebuild_grid_splits_active_and_spares() {
        // 7 ranks rebuilding an original [2,2,2] grid: 4 active on
        // [2,2,1], 3 spares.
        let out = Universe::launch(7, |c| {
            match crate::grid::try_rebuild_grid(c, &[2, 2, 2]).unwrap() {
                ShrinkOutcome::Active(g) => {
                    // The active grid must be fully functional: fiber
                    // communicators remapped, collectives working.
                    let s = g.mode_comm(0).allreduce(vec![1u64], crate::comm::sum_op)[0];
                    (true, g.dims().to_vec(), g.comm.size(), s)
                }
                ShrinkOutcome::Spare(s) => (false, Vec::new(), s.size(), 0),
            }
        });
        let active: Vec<_> = out.iter().filter(|t| t.0).collect();
        let spares: Vec<_> = out.iter().filter(|t| !t.0).collect();
        assert_eq!(active.len(), 4);
        assert_eq!(spares.len(), 3);
        for t in &active {
            assert_eq!(t.1, vec![2, 2, 1]);
            assert_eq!(t.2, 4);
            assert_eq!(t.3, 2, "mode-0 fiber has 2 ranks");
        }
        for t in &spares {
            assert_eq!(t.2, 3, "spares share a communicator");
        }
    }

    #[test]
    #[should_panic(expected = "rank 0 panicked")]
    fn grid_size_must_match() {
        Universe::launch(4, |c| {
            CartGrid::new(c, &[3, 2]);
        });
    }

    #[test]
    fn grid_size_mismatch_is_a_typed_error() {
        use crate::fault::CommError;
        let results = Universe::launch(4, |c| match CartGrid::try_new(c, &[3, 2]) {
            Err(CommError::SizeMismatch { expected, got, .. }) => (expected, got),
            Err(other) => panic!("expected SizeMismatch, got {other:?}"),
            Ok(_) => panic!("grid construction should have failed"),
        });
        // No communication happens before the size check, so every rank
        // observes the mismatch locally and identically.
        assert!(results.into_iter().all(|r| r == (6, 4)));
    }
}
