//! Communicators and collective operations.
//!
//! A [`Comm`] is a view of an ordered subset of a universe's ranks, in the
//! sense of an MPI communicator: rank `r` of the communicator maps to a
//! world rank through the group table. Sub-communicators are created with
//! [`Comm::split`], exactly like `MPI_Comm_split`.
//!
//! Collective algorithms:
//! - barrier — dissemination;
//! - broadcast / reduce — binomial trees;
//! - allreduce — reduce + broadcast;
//! - allgatherv — ring (bandwidth-optimal, `(p-1)/p · total` per link);
//! - reduce-scatter — ring with accumulate;
//! - all-to-all — direct pairwise exchange (channels are unbounded, so
//!   posting all sends before any receive cannot deadlock).
//!
//! Every collective assumes all ranks of the communicator call it in the
//! same program order — the usual MPI contract.
//!
//! Each collective comes in two flavors: the fallible `try_*` form
//! returning `Result<_, CommError>` (lost messages, crashed peers, and
//! type mismatches surface as typed errors), and the legacy panicking
//! form, a thin wrapper that panics with the error's display text.

use crate::fabric::{CollectiveKind, Fabric, TrafficScope};
use crate::fault::CommError;
use std::sync::Arc;

/// Element types that can travel through the fabric.
pub trait Elem: Clone + Send + 'static {}
impl<T: Clone + Send + 'static> Elem for T {}

/// A communicator: an ordered group of ranks over a shared fabric.
#[derive(Clone)]
pub struct Comm {
    pub(crate) fabric: Arc<Fabric>,
    /// World ranks of the group members, in communicator order.
    pub(crate) group: Arc<Vec<usize>>,
    /// This rank's index within `group`.
    pub(crate) rank: usize,
}

impl Comm {
    /// The world communicator for `world_rank` over `fabric`.
    pub fn world(fabric: Arc<Fabric>, world_rank: usize) -> Comm {
        let p = fabric.size();
        assert!(world_rank < p);
        Comm {
            fabric,
            group: Arc::new((0..p).collect()),
            rank: world_rank,
        }
    }

    /// This rank's index within the communicator.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// The world rank backing communicator rank `r`.
    #[inline]
    pub fn world_rank_of(&self, r: usize) -> usize {
        self.group[r]
    }

    /// The universe-wide traffic statistics.
    pub fn traffic(&self) -> &crate::fabric::TrafficStats {
        self.fabric.stats()
    }

    /// A [`TrafficScope`] delta guard over **this rank's** send
    /// counters: everything this rank sends between the call and a later
    /// [`TrafficScope::delta`] is captured, per collective kind, without
    /// picking up concurrent traffic from other ranks. The observability
    /// layer uses disjoint scopes to attribute communication to phases;
    /// summed across ranks the deltas partition the universe totals.
    pub fn traffic_scope(&self) -> TrafficScope<'_> {
        self.fabric.stats().scope(self.group[self.rank])
    }

    /// The fabric this communicator runs over.
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    // ---------------------------------------------------------------
    // Fallible API
    // ---------------------------------------------------------------

    /// Fallible point-to-point send to communicator rank `dst`.
    pub fn try_send<T: Elem>(&self, dst: usize, data: Vec<T>) -> Result<(), CommError> {
        self.fabric
            .try_send(self.group[self.rank], self.group[dst], data)
    }

    /// Internal send charging the traffic to a specific collective kind.
    #[inline]
    pub(crate) fn send_k<T: Elem>(
        &self,
        dst: usize,
        data: Vec<T>,
        kind: CollectiveKind,
    ) -> Result<(), CommError> {
        self.fabric
            .try_send_kind(self.group[self.rank], self.group[dst], data, kind)
    }

    /// Fallible point-to-point receive from communicator rank `src`.
    pub fn try_recv<T: Elem>(&self, src: usize) -> Result<Vec<T>, CommError> {
        self.fabric.try_recv(self.group[src], self.group[self.rank])
    }

    /// Internal receive running under a specific collective kind's
    /// deadline budget (see [`crate::DeadlinePolicy`]). Collectives use
    /// this so a slow peer is blamed with the operation it stalled.
    #[inline]
    pub(crate) fn recv_k<T: Elem>(
        &self,
        src: usize,
        kind: CollectiveKind,
    ) -> Result<Vec<T>, CommError> {
        self.fabric
            .try_recv_kind(self.group[src], self.group[self.rank], kind)
    }

    /// Fallible dissemination barrier.
    pub fn try_barrier(&self) -> Result<(), CommError> {
        let p = self.size();
        let mut k = 1;
        while k < p {
            let dst = (self.rank + k) % p;
            let src = (self.rank + p - k) % p;
            self.send_k::<u8>(dst, Vec::new(), CollectiveKind::Barrier)?;
            let _ = self.recv_k::<u8>(src, CollectiveKind::Barrier)?;
            k <<= 1;
        }
        Ok(())
    }

    /// Fallible binomial-tree broadcast. The root passes the payload;
    /// other ranks' argument is ignored (pass `Vec::new()`).
    pub fn try_bcast<T: Elem>(&self, root: usize, data: Vec<T>) -> Result<Vec<T>, CommError> {
        self.bcast_k(root, data, CollectiveKind::Bcast)
    }

    /// Broadcast with the traffic charged to `kind` (an allreduce's
    /// broadcast leg is an `Allreduce` for accounting purposes).
    pub(crate) fn bcast_k<T: Elem>(
        &self,
        root: usize,
        data: Vec<T>,
        kind: CollectiveKind,
    ) -> Result<Vec<T>, CommError> {
        let p = self.size();
        if p == 1 {
            return Ok(data);
        }
        let vrank = (self.rank + p - root) % p; // virtual rank, root = 0
        let mut have: Option<Vec<T>> = if vrank == 0 { Some(data) } else { None };
        // Receive from parent.
        if vrank != 0 {
            let mut mask = 1;
            while mask < p {
                if vrank & mask != 0 {
                    let vsrc = vrank & !mask;
                    let src = (vsrc + root) % p;
                    have = Some(self.recv_k(src, kind)?);
                    break;
                }
                mask <<= 1;
            }
        }
        let buf = have.expect("bcast tree logic error");
        // Forward to children: all set bits above my lowest set bit.
        let lowest = if vrank == 0 {
            p.next_power_of_two()
        } else {
            vrank & vrank.wrapping_neg()
        };
        let mut mask = lowest >> 1;
        while mask > 0 {
            let vdst = vrank | mask;
            if vdst < p && vdst != vrank {
                let dst = (vdst + root) % p;
                self.send_k(dst, buf.clone(), kind)?;
            }
            mask >>= 1;
        }
        Ok(buf)
    }

    /// Fallible binomial-tree reduce with an elementwise combiner
    /// `op(acc, incoming)`. Returns `Some(result)` on the root.
    pub fn try_reduce<T: Elem>(
        &self,
        root: usize,
        data: Vec<T>,
        op: impl Fn(&mut [T], &[T]) + Copy,
    ) -> Result<Option<Vec<T>>, CommError> {
        self.reduce_k(root, data, op, CollectiveKind::Reduce)
    }

    /// Reduce with the traffic charged to `kind`.
    pub(crate) fn reduce_k<T: Elem>(
        &self,
        root: usize,
        data: Vec<T>,
        op: impl Fn(&mut [T], &[T]) + Copy,
        kind: CollectiveKind,
    ) -> Result<Option<Vec<T>>, CommError> {
        let p = self.size();
        if p == 1 {
            return Ok(Some(data));
        }
        let vrank = (self.rank + p - root) % p;
        let mut acc = data;
        let mut mask = 1;
        while mask < p {
            if vrank & mask == 0 {
                let vsrc = vrank | mask;
                if vsrc < p {
                    let src = (vsrc + root) % p;
                    let incoming: Vec<T> = self.recv_k(src, kind)?;
                    if incoming.len() != acc.len() {
                        // A dropped message desynchronized the channel;
                        // typed and failure-class (see `SizeMismatch`).
                        return Err(CommError::SizeMismatch {
                            src: self.group[src],
                            dst: self.group[self.rank],
                            expected: acc.len(),
                            got: incoming.len(),
                        });
                    }
                    op(&mut acc, &incoming);
                }
            } else {
                let vdst = vrank & !mask;
                let dst = (vdst + root) % p;
                self.send_k(dst, acc, kind)?;
                return Ok(None);
            }
            mask <<= 1;
        }
        Ok(Some(acc))
    }

    /// Fallible allreduce = reduce to rank 0 + broadcast. Both legs are
    /// charged to [`CollectiveKind::Allreduce`].
    pub fn try_allreduce<T: Elem>(
        &self,
        data: Vec<T>,
        op: impl Fn(&mut [T], &[T]) + Copy,
    ) -> Result<Vec<T>, CommError> {
        let reduced = self.reduce_k(0, data, op, CollectiveKind::Allreduce)?;
        self.bcast_k(0, reduced.unwrap_or_default(), CollectiveKind::Allreduce)
    }

    /// Fallible ring allgather of variable-size blocks: returns every
    /// rank's block, indexed by communicator rank.
    pub fn try_allgatherv<T: Elem>(&self, data: Vec<T>) -> Result<Vec<Vec<T>>, CommError> {
        let p = self.size();
        let mut blocks: Vec<Option<Vec<T>>> = (0..p).map(|_| None).collect();
        blocks[self.rank] = Some(data);
        let right = (self.rank + 1) % p;
        let left = (self.rank + p - 1) % p;
        for step in 0..p.saturating_sub(1) {
            // Send the block that arrived `step` hops ago (own block first).
            let send_idx = (self.rank + p - step) % p;
            let block = blocks[send_idx].clone().expect("ring allgather gap");
            self.send_k(right, block, CollectiveKind::Allgatherv)?;
            let recv_idx = (self.rank + p - step - 1) % p;
            blocks[recv_idx] = Some(self.recv_k(left, CollectiveKind::Allgatherv)?);
        }
        Ok(blocks
            .into_iter()
            .map(|b| b.expect("missing block"))
            .collect())
    }

    /// Fallible ring reduce-scatter: the input is partitioned into `p`
    /// contiguous blocks of the given lengths (`counts.len() == p`,
    /// `Σ counts == data.len()`); on return each rank holds the
    /// elementwise reduction of its own block across all ranks.
    pub fn try_reduce_scatter<T: Elem>(
        &self,
        data: Vec<T>,
        counts: &[usize],
        op: impl Fn(&mut [T], &[T]) + Copy,
    ) -> Result<Vec<T>, CommError> {
        let p = self.size();
        assert_eq!(counts.len(), p, "reduce_scatter needs one count per rank");
        let total: usize = counts.iter().sum();
        assert_eq!(
            total,
            data.len(),
            "reduce_scatter counts must cover the buffer"
        );
        if p == 1 {
            return Ok(data);
        }
        let offsets: Vec<usize> = counts
            .iter()
            .scan(0usize, |acc, &c| {
                let o = *acc;
                *acc += c;
                Some(o)
            })
            .collect();
        let block = |buf: &[T], i: usize| buf[offsets[i]..offsets[i] + counts[i]].to_vec();

        let right = (self.rank + 1) % p;
        let left = (self.rank + p - 1) % p;
        // Step 0 sends the block belonging to my left neighbor-chain end;
        // after p-1 steps the fully-reduced own block remains.
        let mut carry = block(&data, (self.rank + 1) % p);
        for step in 0..p - 1 {
            self.send_k(left, carry, CollectiveKind::ReduceScatter)?;
            let incoming: Vec<T> = self.recv_k(right, CollectiveKind::ReduceScatter)?;
            // The incoming partial sum corresponds to block
            // (rank + step + 2) mod p … except on the final step, where it
            // is my own block: accumulate my contribution and continue.
            let idx = (self.rank + step + 2) % p;
            let mut acc = incoming;
            let mine = block(&data, idx);
            if acc.len() != mine.len() {
                return Err(CommError::SizeMismatch {
                    src: self.group[right],
                    dst: self.group[self.rank],
                    expected: mine.len(),
                    got: acc.len(),
                });
            }
            op(&mut acc, &mine);
            carry = acc;
        }
        Ok(carry)
    }

    /// Fallible direct all-to-all of variable blocks: `blocks[r]` goes to
    /// rank `r`; returns the blocks received, indexed by source rank.
    pub fn try_alltoallv<T: Elem>(&self, blocks: Vec<Vec<T>>) -> Result<Vec<Vec<T>>, CommError> {
        let p = self.size();
        assert_eq!(blocks.len(), p, "alltoallv needs one block per rank");
        let mut out: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
        for (dst, block) in blocks.into_iter().enumerate() {
            if dst == self.rank {
                out[self.rank] = block;
            } else {
                self.send_k(dst, block, CollectiveKind::Alltoallv)?;
            }
        }
        for (src, slot) in out.iter_mut().enumerate() {
            if src != self.rank {
                *slot = self.recv_k(src, CollectiveKind::Alltoallv)?;
            }
        }
        Ok(out)
    }

    /// Fallible gather of variable blocks to `root`; returns
    /// `Some(blocks)` there.
    pub fn try_gatherv<T: Elem>(
        &self,
        root: usize,
        data: Vec<T>,
    ) -> Result<Option<Vec<Vec<T>>>, CommError> {
        if self.rank == root {
            let mut out: Vec<Vec<T>> = (0..self.size()).map(|_| Vec::new()).collect();
            out[root] = data;
            for (src, slot) in out.iter_mut().enumerate() {
                if src != root {
                    *slot = self.recv_k(src, CollectiveKind::Gatherv)?;
                }
            }
            Ok(Some(out))
        } else {
            self.send_k(root, data, CollectiveKind::Gatherv)?;
            Ok(None)
        }
    }

    /// Fallible communicator split: ranks sharing `color` form a new
    /// communicator, ordered by `(key, old rank)` — `MPI_Comm_split`.
    pub fn try_split(&self, color: usize, key: usize) -> Result<Comm, CommError> {
        let triple = vec![color, key, self.rank];
        let all = self.try_allgatherv(triple)?;
        let mut members: Vec<(usize, usize)> = all
            .iter()
            .filter(|t| t[0] == color)
            .map(|t| (t[1], t[2]))
            .collect();
        members.sort_unstable();
        let group: Vec<usize> = members.iter().map(|&(_, r)| self.group[r]).collect();
        let rank = members
            .iter()
            .position(|&(_, r)| r == self.rank)
            .expect("split: caller missing from its own color group");
        Ok(Comm {
            fabric: Arc::clone(&self.fabric),
            group: Arc::new(group),
            rank,
        })
    }

    // ---------------------------------------------------------------
    // Resilience primitives (ULFM-style revoke / agree / shrink)
    // ---------------------------------------------------------------

    /// World ranks of this communicator's members that the failure
    /// detector currently believes alive, in communicator order.
    pub fn live_members(&self) -> Vec<usize> {
        self.group
            .iter()
            .copied()
            .filter(|&r| self.fabric.is_alive(r))
            .collect()
    }

    /// Revokes the fabric's data plane (`MPI_Comm_revoke`): every rank
    /// blocked in — or about to enter — a data-plane operation fails
    /// fast with [`CommError::Revoked`], flushing all survivors out of
    /// whatever collective they were in so they can join
    /// [`Comm::try_agree`]. Idempotent; typically called by the first
    /// rank that observes a `PeerClosed`/`Timeout`.
    pub fn revoke(&self) {
        self.fabric.revoke();
    }

    /// Has the fabric been revoked?
    pub fn is_revoked(&self) -> bool {
        self.fabric.is_revoked()
    }

    /// Fault-tolerant agreement (`MPIX_Comm_agree`): returns the sorted
    /// **world ranks** of this communicator's surviving members,
    /// consistently on every live rank.
    ///
    /// Leader-based protocol over the reliable control plane:
    /// the lowest live member acts as leader, collects one vote from
    /// every other live member, intersects voters with the detector's
    /// live set, then (a) advances the fabric epoch so stale in-flight
    /// data from the aborted collective is discarded, (b) clears the
    /// revocation, and (c) distributes the survivor list. If the leader
    /// itself dies mid-protocol, voters observe `PeerClosed` on the
    /// control plane, re-elect the next-lowest live rank, and retry —
    /// so agreement tolerates failures *during* agreement.
    ///
    /// Contract: every surviving member must call `try_agree` after a
    /// failure is detected (the usual collective contract); ranks that
    /// die before voting are excluded from the result.
    pub fn try_agree(&self) -> Result<Vec<usize>, CommError> {
        let me = self.group[self.rank];
        loop {
            let live = self.live_members();
            let leader = *live.iter().min().expect("caller is alive, group nonempty");
            if leader == me {
                // Collect one vote from every member currently live.
                let mut voted = vec![me];
                for &r in live.iter().filter(|&&r| r != me) {
                    match self.fabric.ctrl_recv::<u64>(r, me) {
                        Ok(v) => voted.push(v[0] as usize),
                        // Died before voting: excluded from survivors.
                        Err(CommError::PeerClosed { .. }) => {}
                        Err(e) => return Err(e),
                    }
                }
                let mut survivors: Vec<usize> = voted
                    .into_iter()
                    .filter(|&r| self.fabric.is_alive(r))
                    .collect();
                survivors.sort_unstable();
                // Quarantine stale traffic, then re-open the data plane,
                // strictly in this order: once a survivor learns the
                // outcome it may immediately resume data-plane sends,
                // which must land in the new epoch on an open fabric.
                self.fabric.bump_epoch();
                self.fabric.clear_revocation();
                let payload: Vec<u64> = survivors.iter().map(|&r| r as u64).collect();
                for &r in &survivors {
                    if r != me {
                        // A rank dying between the decision and this send
                        // stays in the agreed list (matching ULFM: agree
                        // guarantees consistency, not freshness); the next
                        // data-plane error triggers a fresh agreement.
                        let _ = self.fabric.ctrl_send(me, r, payload.clone());
                    }
                }
                return Ok(survivors);
            } else {
                // Vote, then wait for the leader's verdict.
                if self.fabric.ctrl_send(me, leader, vec![me as u64]).is_err() {
                    continue; // leader already dead: re-elect
                }
                match self.fabric.ctrl_recv::<u64>(leader, me) {
                    Ok(payload) => {
                        return Ok(payload.into_iter().map(|r| r as usize).collect());
                    }
                    Err(CommError::PeerClosed { .. }) => continue, // leader died: retry
                    Err(e) => return Err(e),
                }
            }
        }
    }

    /// Collective max-agreement of a scalar verdict over the reliable
    /// *control plane* (star through the lowest rank): every member
    /// learns the maximum of all members' values. The ABFT layer uses
    /// this so the corruption verdict itself cannot be corrupted by the
    /// faulty data plane — all ranks of a checked kernel reach the same
    /// accept/reject decision and stay collectively aligned when the
    /// solver retries a poisoned contraction. A member dying
    /// mid-verdict surfaces as [`CommError::PeerClosed`], handing
    /// control to the failure-recovery path.
    pub fn try_verdict_max(&self, value: f64) -> Result<f64, CommError> {
        if self.size() == 1 {
            return Ok(value);
        }
        let me = self.group[self.rank];
        let root = self.group[0];
        if me == root {
            let mut acc = value;
            for &r in self.group.iter().skip(1) {
                let v = self.fabric.ctrl_recv::<f64>(r, me)?;
                acc = acc.max(v[0]);
            }
            for &r in self.group.iter().skip(1) {
                self.fabric.ctrl_send(me, r, vec![acc])?;
            }
            Ok(acc)
        } else {
            self.fabric.ctrl_send(me, root, vec![value])?;
            Ok(self.fabric.ctrl_recv::<f64>(root, me)?[0])
        }
    }

    /// Shrinks the communicator to the agreed survivor set
    /// (`MPIX_Comm_shrink`): builds a dense communicator whose group is
    /// this communicator's members restricted to `survivors` (world
    /// ranks, any order), preserving relative order. Communication-free —
    /// every rank derives the same group from the same agreed list.
    /// Returns `None` if the calling rank is not among the survivors.
    pub fn shrink(&self, survivors: &[usize]) -> Option<Comm> {
        let me = self.group[self.rank];
        let group: Vec<usize> = self
            .group
            .iter()
            .copied()
            .filter(|r| survivors.contains(r))
            .collect();
        let rank = group.iter().position(|&r| r == me)?;
        Some(Comm {
            fabric: Arc::clone(&self.fabric),
            group: Arc::new(group),
            rank,
        })
    }

    // ---------------------------------------------------------------
    // Legacy panicking wrappers
    // ---------------------------------------------------------------

    /// Point-to-point send to communicator rank `dst`.
    pub fn send<T: Elem>(&self, dst: usize, data: Vec<T>) {
        self.try_send(dst, data).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Point-to-point receive from communicator rank `src`.
    pub fn recv<T: Elem>(&self, src: usize) -> Vec<T> {
        self.try_recv(src).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Dissemination barrier.
    pub fn barrier(&self) {
        self.try_barrier().unwrap_or_else(|e| panic!("{e}"));
    }

    /// Binomial-tree broadcast. The root passes the payload; other ranks'
    /// argument is ignored (pass `Vec::new()`).
    pub fn bcast<T: Elem>(&self, root: usize, data: Vec<T>) -> Vec<T> {
        self.try_bcast(root, data).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Binomial-tree reduce with an elementwise combiner
    /// `op(acc, incoming)`. Returns `Some(result)` on the root.
    pub fn reduce<T: Elem>(
        &self,
        root: usize,
        data: Vec<T>,
        op: impl Fn(&mut [T], &[T]) + Copy,
    ) -> Option<Vec<T>> {
        self.try_reduce(root, data, op)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Allreduce = reduce to rank 0 + broadcast.
    pub fn allreduce<T: Elem>(&self, data: Vec<T>, op: impl Fn(&mut [T], &[T]) + Copy) -> Vec<T> {
        self.try_allreduce(data, op)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Ring allgather of variable-size blocks: returns every rank's block,
    /// indexed by communicator rank.
    pub fn allgatherv<T: Elem>(&self, data: Vec<T>) -> Vec<Vec<T>> {
        self.try_allgatherv(data).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Ring reduce-scatter: the input is partitioned into `p` contiguous
    /// blocks of the given lengths (`counts.len() == p`,
    /// `Σ counts == data.len()`); on return each rank holds the elementwise
    /// reduction of its own block across all ranks.
    pub fn reduce_scatter<T: Elem>(
        &self,
        data: Vec<T>,
        counts: &[usize],
        op: impl Fn(&mut [T], &[T]) + Copy,
    ) -> Vec<T> {
        self.try_reduce_scatter(data, counts, op)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Direct all-to-all of variable blocks: `blocks[r]` goes to rank `r`;
    /// returns the blocks received, indexed by source rank.
    pub fn alltoallv<T: Elem>(&self, blocks: Vec<Vec<T>>) -> Vec<Vec<T>> {
        self.try_alltoallv(blocks).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Gather of variable blocks to `root`; returns `Some(blocks)` there.
    pub fn gatherv<T: Elem>(&self, root: usize, data: Vec<T>) -> Option<Vec<Vec<T>>> {
        self.try_gatherv(root, data)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Splits the communicator: ranks sharing `color` form a new
    /// communicator, ordered by `(key, old rank)` — `MPI_Comm_split`.
    pub fn split(&self, color: usize, key: usize) -> Comm {
        self.try_split(color, key).unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Elementwise sum combiner for numeric payloads.
pub fn sum_op<T: Copy + std::ops::AddAssign + Send + 'static>(acc: &mut [T], inc: &[T]) {
    for (a, &b) in acc.iter_mut().zip(inc) {
        *a += b;
    }
}

/// Elementwise max combiner.
pub fn max_op<T: Copy + PartialOrd + Send + 'static>(acc: &mut [T], inc: &[T]) {
    for (a, &b) in acc.iter_mut().zip(inc) {
        if b > *a {
            *a = b;
        }
    }
}
