//! Communicators and collective operations.
//!
//! A [`Comm`] is a view of an ordered subset of a universe's ranks, in the
//! sense of an MPI communicator: rank `r` of the communicator maps to a
//! world rank through the group table. Sub-communicators are created with
//! [`Comm::split`], exactly like `MPI_Comm_split`.
//!
//! Collective algorithms:
//! - barrier — dissemination;
//! - broadcast / reduce — binomial trees;
//! - allreduce — reduce + broadcast;
//! - allgatherv — ring (bandwidth-optimal, `(p-1)/p · total` per link);
//! - reduce-scatter — ring with accumulate;
//! - all-to-all — direct pairwise exchange (channels are unbounded, so
//!   posting all sends before any receive cannot deadlock).
//!
//! Every collective assumes all ranks of the communicator call it in the
//! same program order — the usual MPI contract.

use crate::fabric::Fabric;
use std::sync::Arc;

/// Element types that can travel through the fabric.
pub trait Elem: Clone + Send + 'static {}
impl<T: Clone + Send + 'static> Elem for T {}

/// A communicator: an ordered group of ranks over a shared fabric.
#[derive(Clone)]
pub struct Comm {
    fabric: Arc<Fabric>,
    /// World ranks of the group members, in communicator order.
    group: Arc<Vec<usize>>,
    /// This rank's index within `group`.
    rank: usize,
}

impl Comm {
    /// The world communicator for `world_rank` over `fabric`.
    pub fn world(fabric: Arc<Fabric>, world_rank: usize) -> Comm {
        let p = fabric.size();
        assert!(world_rank < p);
        Comm {
            fabric,
            group: Arc::new((0..p).collect()),
            rank: world_rank,
        }
    }

    /// This rank's index within the communicator.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// The world rank backing communicator rank `r`.
    #[inline]
    pub fn world_rank_of(&self, r: usize) -> usize {
        self.group[r]
    }

    /// The universe-wide traffic statistics.
    pub fn traffic(&self) -> &crate::fabric::TrafficStats {
        self.fabric.stats()
    }

    /// Point-to-point send to communicator rank `dst`.
    pub fn send<T: Elem>(&self, dst: usize, data: Vec<T>) {
        self.fabric
            .send(self.group[self.rank], self.group[dst], data);
    }

    /// Point-to-point receive from communicator rank `src`.
    pub fn recv<T: Elem>(&self, src: usize) -> Vec<T> {
        self.fabric.recv(self.group[src], self.group[self.rank])
    }

    /// Dissemination barrier.
    pub fn barrier(&self) {
        let p = self.size();
        let mut k = 1;
        while k < p {
            let dst = (self.rank + k) % p;
            let src = (self.rank + p - k) % p;
            self.send::<u8>(dst, Vec::new());
            let _ = self.recv::<u8>(src);
            k <<= 1;
        }
    }

    /// Binomial-tree broadcast. The root passes the payload; other ranks'
    /// argument is ignored (pass `Vec::new()`).
    pub fn bcast<T: Elem>(&self, root: usize, data: Vec<T>) -> Vec<T> {
        let p = self.size();
        if p == 1 {
            return data;
        }
        let vrank = (self.rank + p - root) % p; // virtual rank, root = 0
        let mut have: Option<Vec<T>> = if vrank == 0 { Some(data) } else { None };
        // Receive from parent.
        if vrank != 0 {
            let mut mask = 1;
            while mask < p {
                if vrank & mask != 0 {
                    let vsrc = vrank & !mask;
                    let src = (vsrc + root) % p;
                    have = Some(self.recv(src));
                    break;
                }
                mask <<= 1;
            }
        }
        let buf = have.expect("bcast tree logic error");
        // Forward to children: all set bits above my lowest set bit.
        let lowest = if vrank == 0 { p.next_power_of_two() } else { vrank & vrank.wrapping_neg() };
        let mut mask = lowest >> 1;
        while mask > 0 {
            let vdst = vrank | mask;
            if vdst < p && vdst != vrank {
                let dst = (vdst + root) % p;
                self.send(dst, buf.clone());
            }
            mask >>= 1;
        }
        buf
    }

    /// Binomial-tree reduce with an elementwise combiner
    /// `op(acc, incoming)`. Returns `Some(result)` on the root.
    pub fn reduce<T: Elem>(
        &self,
        root: usize,
        data: Vec<T>,
        op: impl Fn(&mut [T], &[T]) + Copy,
    ) -> Option<Vec<T>> {
        let p = self.size();
        if p == 1 {
            return Some(data);
        }
        let vrank = (self.rank + p - root) % p;
        let mut acc = data;
        let mut mask = 1;
        while mask < p {
            if vrank & mask == 0 {
                let vsrc = vrank | mask;
                if vsrc < p {
                    let src = (vsrc + root) % p;
                    let incoming: Vec<T> = self.recv(src);
                    assert_eq!(incoming.len(), acc.len(), "reduce length mismatch");
                    op(&mut acc, &incoming);
                }
            } else {
                let vdst = vrank & !mask;
                let dst = (vdst + root) % p;
                self.send(dst, acc);
                return None;
            }
            mask <<= 1;
        }
        Some(acc)
    }

    /// Allreduce = reduce to rank 0 + broadcast.
    pub fn allreduce<T: Elem>(&self, data: Vec<T>, op: impl Fn(&mut [T], &[T]) + Copy) -> Vec<T> {
        let reduced = self.reduce(0, data, op);
        self.bcast(0, reduced.unwrap_or_default())
    }

    /// Ring allgather of variable-size blocks: returns every rank's block,
    /// indexed by communicator rank.
    pub fn allgatherv<T: Elem>(&self, data: Vec<T>) -> Vec<Vec<T>> {
        let p = self.size();
        let mut blocks: Vec<Option<Vec<T>>> = (0..p).map(|_| None).collect();
        blocks[self.rank] = Some(data);
        let right = (self.rank + 1) % p;
        let left = (self.rank + p - 1) % p;
        for step in 0..p.saturating_sub(1) {
            // Send the block that arrived `step` hops ago (own block first).
            let send_idx = (self.rank + p - step) % p;
            let block = blocks[send_idx].clone().expect("ring allgather gap");
            self.send(right, block);
            let recv_idx = (self.rank + p - step - 1) % p;
            blocks[recv_idx] = Some(self.recv(left));
        }
        blocks.into_iter().map(|b| b.expect("missing block")).collect()
    }

    /// Ring reduce-scatter: the input is partitioned into `p` contiguous
    /// blocks of the given lengths (`counts.len() == p`,
    /// `Σ counts == data.len()`); on return each rank holds the elementwise
    /// reduction of its own block across all ranks.
    pub fn reduce_scatter<T: Elem>(
        &self,
        data: Vec<T>,
        counts: &[usize],
        op: impl Fn(&mut [T], &[T]) + Copy,
    ) -> Vec<T> {
        let p = self.size();
        assert_eq!(counts.len(), p, "reduce_scatter needs one count per rank");
        let total: usize = counts.iter().sum();
        assert_eq!(total, data.len(), "reduce_scatter counts must cover the buffer");
        if p == 1 {
            return data;
        }
        let offsets: Vec<usize> = counts
            .iter()
            .scan(0usize, |acc, &c| {
                let o = *acc;
                *acc += c;
                Some(o)
            })
            .collect();
        let block = |buf: &[T], i: usize| buf[offsets[i]..offsets[i] + counts[i]].to_vec();

        let right = (self.rank + 1) % p;
        let left = (self.rank + p - 1) % p;
        // Step 0 sends the block belonging to my left neighbor-chain end;
        // after p-1 steps the fully-reduced own block remains.
        let mut carry = block(&data, (self.rank + 1) % p);
        for step in 0..p - 1 {
            self.send(left, carry);
            let incoming: Vec<T> = self.recv(right);
            // The incoming partial sum corresponds to block
            // (rank + step + 2) mod p … except on the final step, where it
            // is my own block: accumulate my contribution and continue.
            let idx = (self.rank + step + 2) % p;
            let mut acc = incoming;
            let mine = block(&data, idx);
            assert_eq!(acc.len(), mine.len(), "reduce_scatter length mismatch");
            op(&mut acc, &mine);
            carry = acc;
        }
        carry
    }

    /// Direct all-to-all of variable blocks: `blocks[r]` goes to rank `r`;
    /// returns the blocks received, indexed by source rank.
    pub fn alltoallv<T: Elem>(&self, blocks: Vec<Vec<T>>) -> Vec<Vec<T>> {
        let p = self.size();
        assert_eq!(blocks.len(), p, "alltoallv needs one block per rank");
        let mut out: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
        for (dst, block) in blocks.into_iter().enumerate() {
            if dst == self.rank {
                out[self.rank] = block;
            } else {
                self.send(dst, block);
            }
        }
        for (src, slot) in out.iter_mut().enumerate() {
            if src != self.rank {
                *slot = self.recv(src);
            }
        }
        out
    }

    /// Gather of variable blocks to `root`; returns `Some(blocks)` there.
    pub fn gatherv<T: Elem>(&self, root: usize, data: Vec<T>) -> Option<Vec<Vec<T>>> {
        if self.rank == root {
            let mut out: Vec<Vec<T>> = (0..self.size()).map(|_| Vec::new()).collect();
            out[root] = data;
            for (src, slot) in out.iter_mut().enumerate() {
                if src != root {
                    *slot = self.recv(src);
                }
            }
            Some(out)
        } else {
            self.send(root, data);
            None
        }
    }

    /// Splits the communicator: ranks sharing `color` form a new
    /// communicator, ordered by `(key, old rank)` — `MPI_Comm_split`.
    pub fn split(&self, color: usize, key: usize) -> Comm {
        let triple = vec![color, key, self.rank];
        let all = self.allgatherv(triple);
        let mut members: Vec<(usize, usize)> = all
            .iter()
            .filter(|t| t[0] == color)
            .map(|t| (t[1], t[2]))
            .collect();
        members.sort_unstable();
        let group: Vec<usize> = members.iter().map(|&(_, r)| self.group[r]).collect();
        let rank = members
            .iter()
            .position(|&(_, r)| r == self.rank)
            .expect("split: caller missing from its own color group");
        Comm {
            fabric: Arc::clone(&self.fabric),
            group: Arc::new(group),
            rank,
        }
    }
}

/// Elementwise sum combiner for numeric payloads.
pub fn sum_op<T: Copy + std::ops::AddAssign + Send + 'static>(acc: &mut [T], inc: &[T]) {
    for (a, &b) in acc.iter_mut().zip(inc) {
        *a += b;
    }
}

/// Elementwise max combiner.
pub fn max_op<T: Copy + PartialOrd + Send + 'static>(acc: &mut [T], inc: &[T]) {
    for (a, &b) in acc.iter_mut().zip(inc) {
        if b > *a {
            *a = b;
        }
    }
}
