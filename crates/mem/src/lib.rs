//! Per-rank memory-budget accounting: the [`AllocLedger`].
//!
//! Every rank in the simulated universe is an OS thread, so the ledger
//! is thread-local: charges made while a rank closure runs are that
//! rank's working set. The ledger tracks live bytes, cumulative
//! charges/releases, and per-[`MemPhase`] live bytes and high-water
//! marks, and (optionally) enforces a hard byte budget — a charge that
//! would push the live total past the budget fails with a typed
//! [`BudgetExceeded`] instead of aborting the process.
//!
//! Invariants the ledger maintains exactly (see `tests/ledger_prop.rs`):
//!
//! - `charged − released == live` at every instant;
//! - `Σ_phase live_by_phase[p] == live` (the phase partition);
//! - `hwm` and every `hwm_by_phase[p]` are monotone non-decreasing
//!   between [`reset_hwm`] calls, and `hwm ≤ Σ_p hwm_by_phase[p]`.
//!
//! Releases are *clamped*: a [`Charge`] dropped on a different thread
//! than the one that created it (rare — tensors handed across the
//! launcher boundary) releases at most what its phase currently holds,
//! so counters never underflow and the partition invariant survives
//! cross-thread moves.
//!
//! The ledger also carries the rank's **degradation rung** (0..=3), the
//! position on the graceful-degradation ladder the resilient solver
//! agrees collectively when a budget trips (see `tucker::recover` and
//! DESIGN.md §14). Kernels read it with [`rung`]; only the recovery
//! loop and [`install_rank`] write it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::fmt;

/// The allocation phases the ledger attributes charges to. Kernels
/// scope themselves with [`with_phase`]; charges made outside any scope
/// land in [`MemPhase::Other`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemPhase {
    /// Dense tensor blocks (the distributed tensor's local data).
    Dense,
    /// TTM scratch: local multiply output and packed reduce staging.
    Ttm,
    /// Gram scratch: packed exchange blocks and the assembled unfolding.
    Gram,
    /// Redistribute staging (piece routing and assembly).
    Redistribute,
    /// Buddy-replica storage and refresh staging.
    Replica,
    /// ABFT checksum rows/columns.
    Abft,
    /// Factor matrices and their temporaries.
    Factors,
    /// Checkpoint serialization buffers.
    Checkpoint,
    /// Anything not otherwise attributed.
    Other,
}

impl MemPhase {
    /// Number of phases (length of [`MemPhase::ALL`]).
    pub const COUNT: usize = 9;

    /// Every phase, in index order.
    pub const ALL: [MemPhase; MemPhase::COUNT] = [
        MemPhase::Dense,
        MemPhase::Ttm,
        MemPhase::Gram,
        MemPhase::Redistribute,
        MemPhase::Replica,
        MemPhase::Abft,
        MemPhase::Factors,
        MemPhase::Checkpoint,
        MemPhase::Other,
    ];

    /// Dense index of the phase (position in [`MemPhase::ALL`]).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            MemPhase::Dense => 0,
            MemPhase::Ttm => 1,
            MemPhase::Gram => 2,
            MemPhase::Redistribute => 3,
            MemPhase::Replica => 4,
            MemPhase::Abft => 5,
            MemPhase::Factors => 6,
            MemPhase::Checkpoint => 7,
            MemPhase::Other => 8,
        }
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            MemPhase::Dense => "dense",
            MemPhase::Ttm => "ttm",
            MemPhase::Gram => "gram",
            MemPhase::Redistribute => "redistribute",
            MemPhase::Replica => "replica",
            MemPhase::Abft => "abft",
            MemPhase::Factors => "factors",
            MemPhase::Checkpoint => "checkpoint",
            MemPhase::Other => "other",
        }
    }
}

impl fmt::Display for MemPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A charge was refused because it would exceed the rank's budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// Phase the refused charge was attributed to.
    pub phase: MemPhase,
    /// Bytes the charge asked for.
    pub requested: u64,
    /// Live bytes at the time of the refusal.
    pub live: u64,
    /// The budget in force.
    pub budget: u64,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memory budget exceeded in phase {}: requested {} B with {} B live against a {} B budget",
            self.phase, self.requested, self.live, self.budget
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// The per-thread ledger state.
struct Ledger {
    live: u64,
    hwm: u64,
    charged: u64,
    released: u64,
    live_by_phase: [u64; MemPhase::COUNT],
    hwm_by_phase: [u64; MemPhase::COUNT],
    budget: Option<u64>,
    phase: MemPhase,
    rung: u8,
}

impl Ledger {
    const fn fresh() -> Ledger {
        Ledger {
            live: 0,
            hwm: 0,
            charged: 0,
            released: 0,
            live_by_phase: [0; MemPhase::COUNT],
            hwm_by_phase: [0; MemPhase::COUNT],
            budget: None,
            phase: MemPhase::Other,
            rung: 0,
        }
    }

    fn charge(&mut self, bytes: u64, phase: MemPhase) {
        let p = phase.index();
        self.live += bytes;
        self.charged += bytes;
        self.live_by_phase[p] += bytes;
        self.hwm = self.hwm.max(self.live);
        self.hwm_by_phase[p] = self.hwm_by_phase[p].max(self.live_by_phase[p]);
    }

    fn release(&mut self, bytes: u64, phase: MemPhase) {
        // Clamp to what the phase actually holds: a charge dropped on a
        // foreign thread must never underflow this thread's counters.
        let p = phase.index();
        let rel = bytes.min(self.live_by_phase[p]);
        self.live_by_phase[p] -= rel;
        self.live -= rel;
        self.released += rel;
    }

    fn headroom_check(&self, bytes: u64, phase: MemPhase) -> Result<(), BudgetExceeded> {
        match self.budget {
            Some(budget) if self.live.saturating_add(bytes) > budget => Err(BudgetExceeded {
                phase,
                requested: bytes,
                live: self.live,
                budget,
            }),
            _ => Ok(()),
        }
    }
}

thread_local! {
    static LEDGER: RefCell<Ledger> = const { RefCell::new(Ledger::fresh()) };
}

/// A snapshot of the calling thread's ledger counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LedgerStats {
    /// Currently live (charged, not yet released) bytes.
    pub live: u64,
    /// High-water mark of `live` since install/[`reset_hwm`].
    pub hwm: u64,
    /// Cumulative bytes charged.
    pub charged: u64,
    /// Cumulative bytes released.
    pub released: u64,
    /// Live bytes per phase (indexed by [`MemPhase::index`]).
    pub live_by_phase: [u64; MemPhase::COUNT],
    /// Per-phase high-water marks.
    pub hwm_by_phase: [u64; MemPhase::COUNT],
    /// The budget in force, if any.
    pub budget: Option<u64>,
}

impl LedgerStats {
    /// Bytes left under the budget (`u64::MAX` when unbudgeted).
    pub fn headroom(&self) -> u64 {
        match self.budget {
            Some(b) => b.saturating_sub(self.live),
            None => u64::MAX,
        }
    }
}

/// (Re)initializes the calling rank thread's ledger: clears every
/// counter, installs `budget`, and sets the degradation rung. Called by
/// the universe launcher at rank spawn so replayed schedules start from
/// identical ledger state.
pub fn install_rank(budget: Option<u64>, rung: u8) {
    LEDGER.with(|l| {
        let mut l = l.borrow_mut();
        *l = Ledger::fresh();
        l.budget = budget;
        l.rung = rung;
    });
}

/// Replaces the calling thread's budget (used by deterministic pressure
/// injection: `FaultPlan::with_mem_pressure` arms this at its onset op).
pub fn set_budget(budget: Option<u64>) {
    LEDGER.with(|l| l.borrow_mut().budget = budget);
}

/// The budget currently in force on this thread.
pub fn budget() -> Option<u64> {
    LEDGER.with(|l| l.borrow().budget)
}

/// The calling rank's degradation rung (0 = unconstrained).
pub fn rung() -> u8 {
    LEDGER.with(|l| l.borrow().rung)
}

/// Sets the degradation rung. Only the recovery loop should call this,
/// after a collective verdict, so every rank moves in lockstep.
pub fn set_rung(rung: u8) {
    LEDGER.with(|l| l.borrow_mut().rung = rung);
}

/// Snapshot of the calling thread's counters.
pub fn stats() -> LedgerStats {
    LEDGER.with(|l| {
        let l = l.borrow();
        LedgerStats {
            live: l.live,
            hwm: l.hwm,
            charged: l.charged,
            released: l.released,
            live_by_phase: l.live_by_phase,
            hwm_by_phase: l.hwm_by_phase,
            budget: l.budget,
        }
    })
}

/// Folds a finished worker thread's ledger counters into the calling
/// thread's ledger (harvest-on-join for the intra-rank kernel pool).
///
/// Cumulative `charged`/`released` add up; any bytes the worker left
/// live transfer to the caller (normally zero — kernel workers release
/// everything before joining); and the worker's high-water mark is
/// stacked on the caller's *current* live level, the conservative
/// reading of "the worker's peak existed alongside whatever the rank
/// held at join time". With this, per-rank accounting (and the
/// `tests/mem_band.rs` prediction band) is independent of how many pool
/// workers the kernels used.
pub fn absorb_worker(w: &LedgerStats) {
    LEDGER.with(|l| {
        let mut l = l.borrow_mut();
        l.charged += w.charged;
        l.released += w.released;
        l.hwm = l.hwm.max(l.live + w.hwm);
        l.live += w.live;
        for p in 0..MemPhase::COUNT {
            l.hwm_by_phase[p] = l.hwm_by_phase[p].max(l.live_by_phase[p] + w.hwm_by_phase[p]);
            l.live_by_phase[p] += w.live_by_phase[p];
        }
    });
}

/// Resets the high-water marks to the current live level. Used after
/// setup (e.g. materializing a test tensor) so the marks measure the
/// solver's working set, not the harness's.
pub fn reset_hwm() {
    LEDGER.with(|l| {
        let mut l = l.borrow_mut();
        l.hwm = l.live;
        l.hwm_by_phase = l.live_by_phase;
    });
}

/// Checks — without charging — that `bytes` more would fit under the
/// budget. The gate for infallible constructors on fallible paths.
pub fn ensure_headroom(bytes: u64) -> Result<(), BudgetExceeded> {
    LEDGER.with(|l| {
        let l = l.borrow();
        l.headroom_check(bytes, l.phase)
    })
}

/// The ambient phase charges are currently attributed to.
pub fn current_phase() -> MemPhase {
    LEDGER.with(|l| l.borrow().phase)
}

/// RAII guard restoring the previous ambient phase on drop.
pub struct PhaseGuard {
    prev: MemPhase,
}

/// Sets the ambient allocation phase for the current scope. Charges
/// made while the guard lives are attributed to `phase`.
pub fn with_phase(phase: MemPhase) -> PhaseGuard {
    let prev = LEDGER.with(|l| {
        let mut l = l.borrow_mut();
        std::mem::replace(&mut l.phase, phase)
    });
    PhaseGuard { prev }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        LEDGER.with(|l| l.borrow_mut().phase = self.prev);
    }
}

/// A live claim of `bytes` against the calling rank's ledger, released
/// on drop. Embedded in buffers ([`TrackedBuf`]) and tensor types so
/// their lifetimes drive the accounting.
///
/// `Clone` re-charges the same bytes (in the charge's phase, on the
/// cloning thread) — a cloned buffer is a second live buffer. Equality
/// always holds: the charge is bookkeeping, not data, so deriving
/// `PartialEq` on a carrying type still compares only the payload.
pub struct Charge {
    bytes: u64,
    phase: MemPhase,
}

impl Charge {
    /// A zero-byte charge (no ledger interaction).
    pub const fn none() -> Charge {
        Charge {
            bytes: 0,
            phase: MemPhase::Other,
        }
    }

    /// Charges `bytes` unconditionally (tracking without enforcement),
    /// attributed to the ambient phase. Used by infallible constructors.
    pub fn force(bytes: u64) -> Charge {
        let phase = LEDGER.with(|l| {
            let mut l = l.borrow_mut();
            let phase = l.phase;
            l.charge(bytes, phase);
            phase
        });
        Charge { bytes, phase }
    }

    /// Charges `bytes` against the budget, refusing with
    /// [`BudgetExceeded`] (and charging nothing) if it would not fit.
    pub fn try_new(bytes: u64) -> Result<Charge, BudgetExceeded> {
        LEDGER.with(|l| {
            let mut l = l.borrow_mut();
            let phase = l.phase;
            l.headroom_check(bytes, phase)?;
            l.charge(bytes, phase);
            Ok(Charge { bytes, phase })
        })
    }

    /// The charged byte count.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The phase the charge is attributed to.
    #[inline]
    pub fn phase(&self) -> MemPhase {
        self.phase
    }
}

impl Drop for Charge {
    fn drop(&mut self) {
        if self.bytes > 0 {
            LEDGER.with(|l| l.borrow_mut().release(self.bytes, self.phase));
        }
    }
}

impl Clone for Charge {
    fn clone(&self) -> Charge {
        if self.bytes > 0 {
            LEDGER.with(|l| l.borrow_mut().charge(self.bytes, self.phase));
        }
        Charge {
            bytes: self.bytes,
            phase: self.phase,
        }
    }
}

impl PartialEq for Charge {
    fn eq(&self, _other: &Charge) -> bool {
        true
    }
}

impl Eq for Charge {}

impl Default for Charge {
    fn default() -> Charge {
        Charge::none()
    }
}

impl fmt::Debug for Charge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Charge({} B, {})", self.bytes, self.phase)
    }
}

/// Convenience: the ledger cost of `len` elements of `T`.
#[inline]
pub fn bytes_of<T>(len: usize) -> u64 {
    (len as u64).saturating_mul(std::mem::size_of::<T>() as u64)
}

/// Parses a byte size with an optional binary suffix: `"1048576"`,
/// `"64K"`, `"256M"`, `"2G"` (case-insensitive; `KB`/`KiB` spellings
/// accepted). This is the one shared parser behind every byte-count
/// flag in the workspace (`--mem-budget`, the serve daemon's ingest
/// limit, parameter-file `Mem budget` keys).
///
/// Semantics:
/// - `None` on malformed input (non-numeric digits, unknown suffix,
///   negative values) and on zero — a zero budget is always a
///   configuration mistake, not a request for an empty ledger;
/// - values that overflow `u64` after the suffix shift **saturate** to
///   `u64::MAX` rather than failing: "more bytes than addressable" is
///   an unbudgeted run, and refusing it would make generous inputs
///   behave worse than absent ones.
pub fn parse_size(s: &str) -> Option<u64> {
    let upper = s.trim().to_ascii_uppercase();
    let (digits, shift) = if let Some(d) = upper
        .strip_suffix("KIB")
        .or(upper.strip_suffix("KB"))
        .or(upper.strip_suffix('K'))
    {
        (d, 10)
    } else if let Some(d) = upper
        .strip_suffix("MIB")
        .or(upper.strip_suffix("MB"))
        .or(upper.strip_suffix('M'))
    {
        (d, 20)
    } else if let Some(d) = upper
        .strip_suffix("GIB")
        .or(upper.strip_suffix("GB"))
        .or(upper.strip_suffix('G'))
    {
        (d, 30)
    } else if let Some(d) = upper.strip_suffix('B') {
        (d, 0)
    } else {
        (upper.as_str(), 0)
    };
    // Parse into u128 so an over-u64 digit string saturates instead of
    // erroring; the suffix shift then saturates the same way.
    let n: u128 = digits.trim().parse().ok()?;
    let bytes = n.saturating_mul(1u128 << shift);
    match bytes {
        0 => None,
        b => Some(u64::try_from(b).unwrap_or(u64::MAX)),
    }
}

/// Per-job high-water-mark scope: brackets one unit of work on a
/// long-lived thread so its peak ledger usage can be attributed to that
/// job alone (the serve daemon's query workers process many jobs per
/// thread; without rebasing, every job would inherit the largest peak
/// seen since the thread started).
///
/// `begin` rebases the thread's high-water marks to the current live
/// level; [`JobScope::peak`] reports how far above that level the job
/// pushed them. Dropping the scope is a no-op — the next `begin`
/// rebases again.
pub struct JobScope {
    base_live: u64,
}

impl JobScope {
    /// Starts a job scope: rebases the high-water marks to `live`.
    pub fn begin() -> JobScope {
        reset_hwm();
        JobScope {
            base_live: stats().live,
        }
    }

    /// Peak bytes this job added above the live level at `begin`.
    pub fn peak(&self) -> u64 {
        stats().hwm.saturating_sub(self.base_live)
    }
}

/// A `Vec<T>` whose capacity is charged to the ledger for its lifetime.
/// The workhorse for staging buffers at communication boundaries.
///
/// The charge covers the capacity requested at construction; growing
/// past it is not re-charged (staging buffers here are sized up front).
/// [`TrackedBuf::into_vec`] releases the charge — use it only when
/// handing the buffer to a consumer that finishes with it promptly
/// (e.g. a collective that sends and drops it).
pub struct TrackedBuf<T> {
    data: Vec<T>,
    _charge: Charge,
}

impl<T> TrackedBuf<T> {
    /// An empty buffer with `cap` elements of charged capacity.
    pub fn try_with_capacity(cap: usize) -> Result<TrackedBuf<T>, BudgetExceeded> {
        let charge = Charge::try_new(bytes_of::<T>(cap))?;
        Ok(TrackedBuf {
            data: Vec::with_capacity(cap),
            _charge: charge,
        })
    }

    /// A length-`len` buffer of `value` clones, charged.
    pub fn try_filled(len: usize, value: T) -> Result<TrackedBuf<T>, BudgetExceeded>
    where
        T: Clone,
    {
        let charge = Charge::try_new(bytes_of::<T>(len))?;
        Ok(TrackedBuf {
            data: vec![value; len],
            _charge: charge,
        })
    }

    /// Wraps an already-built vector, charging its capacity.
    pub fn try_adopt(data: Vec<T>) -> Result<TrackedBuf<T>, BudgetExceeded> {
        let charge = Charge::try_new(bytes_of::<T>(data.capacity()))?;
        Ok(TrackedBuf {
            data,
            _charge: charge,
        })
    }

    /// Unwraps the vector, releasing the charge.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }
}

impl<T> std::ops::Deref for TrackedBuf<T> {
    type Target = Vec<T>;
    fn deref(&self) -> &Vec<T> {
        &self.data
    }
}

impl<T> std::ops::DerefMut for TrackedBuf<T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_release_roundtrip() {
        install_rank(None, 0);
        let c = Charge::force(100);
        assert_eq!(stats().live, 100);
        assert_eq!(c.bytes(), 100);
        drop(c);
        let s = stats();
        assert_eq!(s.live, 0);
        assert_eq!(s.charged, 100);
        assert_eq!(s.released, 100);
        assert_eq!(s.hwm, 100);
    }

    #[test]
    fn budget_is_enforced() {
        install_rank(Some(150), 0);
        let a = Charge::try_new(100).expect("fits");
        let err = Charge::try_new(100).expect_err("must not fit");
        assert_eq!(err.requested, 100);
        assert_eq!(err.live, 100);
        assert_eq!(err.budget, 150);
        // The refused charge left no trace.
        assert_eq!(stats().live, 100);
        drop(a);
        assert!(Charge::try_new(150).is_ok());
        install_rank(None, 0);
    }

    #[test]
    fn phases_partition_live() {
        install_rank(None, 0);
        let _d;
        {
            let _g = with_phase(MemPhase::Dense);
            _d = Charge::force(10);
        }
        let g = with_phase(MemPhase::Gram);
        let _c = Charge::force(5);
        drop(g);
        let s = stats();
        assert_eq!(s.live, 15);
        assert_eq!(s.live_by_phase[MemPhase::Dense.index()], 10);
        assert_eq!(s.live_by_phase[MemPhase::Gram.index()], 5);
        assert_eq!(s.live_by_phase.iter().sum::<u64>(), s.live);
        assert_eq!(current_phase(), MemPhase::Other);
    }

    #[test]
    fn clone_recharges_in_original_phase() {
        install_rank(None, 0);
        let orig;
        {
            let _g = with_phase(MemPhase::Ttm);
            orig = Charge::force(8);
        }
        let copy = orig.clone(); // ambient is Other, charge stays Ttm
        assert_eq!(copy.phase(), MemPhase::Ttm);
        assert_eq!(stats().live_by_phase[MemPhase::Ttm.index()], 16);
        drop(copy);
        drop(orig);
        assert_eq!(stats().live, 0);
    }

    #[test]
    fn absorb_worker_folds_counters_and_stacks_hwm() {
        install_rank(None, 0);
        let held = Charge::force(100); // rank holds 100 B at join time
        let worker = std::thread::spawn(|| {
            let _g = with_phase(MemPhase::Ttm);
            let c = Charge::force(40);
            drop(c);
            stats()
        })
        .join()
        .unwrap();
        absorb_worker(&worker);
        let s = stats();
        assert_eq!(s.charged, 140);
        assert_eq!(s.released, 40);
        assert_eq!(s.live, 100);
        // Worker peak (40) stacked on the rank's live at join (100).
        assert_eq!(s.hwm, 140);
        assert_eq!(s.hwm_by_phase[MemPhase::Ttm.index()], 40);
        drop(held);
        assert_eq!(stats().live, 0);
        install_rank(None, 0);
    }

    #[test]
    fn reset_hwm_rebases_to_live() {
        install_rank(None, 0);
        let big = Charge::force(1000);
        drop(big);
        let small = Charge::force(10);
        assert_eq!(stats().hwm, 1000);
        reset_hwm();
        assert_eq!(stats().hwm, 10);
        drop(small);
        install_rank(None, 0);
    }

    #[test]
    fn tracked_buf_charges_capacity() {
        install_rank(Some(1024), 0);
        let mut buf = TrackedBuf::<f64>::try_with_capacity(16).expect("fits");
        buf.extend_from_slice(&[1.0; 16]);
        assert_eq!(stats().live, 128);
        assert!(
            TrackedBuf::<f64>::try_filled(1024, 0.0).is_err(),
            "8 KiB cannot fit a 1 KiB budget"
        );
        let v = buf.into_vec();
        assert_eq!(v.len(), 16);
        assert_eq!(stats().live, 0, "into_vec releases the charge");
        install_rank(None, 0);
    }

    #[test]
    fn ensure_headroom_checks_without_charging() {
        install_rank(Some(100), 0);
        assert!(ensure_headroom(100).is_ok());
        assert!(ensure_headroom(101).is_err());
        assert_eq!(stats().live, 0);
        install_rank(None, 0);
    }

    #[test]
    fn parse_size_suffixes_zero_overflow_and_garbage() {
        // Plain counts and every suffix spelling.
        assert_eq!(parse_size("1048576"), Some(1 << 20));
        assert_eq!(parse_size("64K"), Some(64 << 10));
        assert_eq!(parse_size("64k"), Some(64 << 10));
        assert_eq!(parse_size(" 256 MiB "), Some(256 << 20));
        assert_eq!(parse_size("2GB"), Some(2 << 30));
        assert_eq!(parse_size("512b"), Some(512));
        // Zero is a configuration mistake, whatever the suffix.
        assert_eq!(parse_size("0"), None);
        assert_eq!(parse_size("0G"), None);
        // Overflow saturates: a beyond-addressable budget is "unbounded",
        // both from oversized digits and from the suffix shift.
        assert_eq!(parse_size("999999999999999999999G"), Some(u64::MAX));
        assert_eq!(parse_size("18446744073709551615K"), Some(u64::MAX));
        assert_eq!(parse_size(&u64::MAX.to_string()), Some(u64::MAX));
        // Malformed suffixes and digits are typed away as None.
        assert_eq!(parse_size("lots"), None);
        assert_eq!(parse_size("-3M"), None);
        assert_eq!(parse_size("3T"), None);
        assert_eq!(parse_size("1.5G"), None);
        assert_eq!(parse_size(""), None);
        assert_eq!(parse_size("K"), None);
    }

    #[test]
    fn job_scope_isolates_per_job_peaks() {
        install_rank(None, 0);
        // A big job followed by a small one on the same thread: the
        // small job's scope must not inherit the big peak.
        let big = JobScope::begin();
        let c = Charge::force(1000);
        drop(c);
        assert_eq!(big.peak(), 1000);
        let resident = Charge::force(64); // live across the next job
        let small = JobScope::begin();
        let c = Charge::force(10);
        assert_eq!(small.peak(), 10, "peak is relative to live at begin");
        drop(c);
        drop(resident);
        install_rank(None, 0);
    }

    #[test]
    fn install_rank_resets_everything() {
        install_rank(Some(50), 2);
        let _c = Charge::force(40);
        assert_eq!(rung(), 2);
        install_rank(None, 0);
        let s = stats();
        assert_eq!((s.live, s.hwm, s.charged, s.released), (0, 0, 0, 0));
        assert_eq!(s.budget, None);
        assert_eq!(rung(), 0);
    }
}
