//! Property tests for the allocation ledger's accounting invariants:
//! charges − releases == live at every step, per-phase live bytes
//! partition the rank total, and high-water marks are monotone within
//! a phase (absent an explicit `reset_hwm`).

use proptest::prelude::*;
use ratucker_mem::{install_rank, stats, with_phase, Charge, MemPhase};

/// Interprets a random op sequence against the ledger, checking the
/// invariants after every step. Ops: (action, bytes, phase-index).
///   action 0 => force-charge, 1 => try-charge, 2 => drop oldest charge
fn run_script(budget: Option<u64>, script: &[(u8, u64, usize)]) {
    install_rank(budget, 0);
    let mut held: Vec<Charge> = Vec::new();
    let mut prev_hwm_by_phase = [0u64; MemPhase::COUNT];
    let mut prev_hwm = 0u64;
    for &(action, bytes, phase_idx) in script {
        let phase = MemPhase::ALL[phase_idx % MemPhase::COUNT];
        {
            let _g = with_phase(phase);
            match action % 3 {
                0 => held.push(Charge::force(bytes)),
                1 => {
                    if let Ok(c) = Charge::try_new(bytes) {
                        held.push(c);
                    }
                }
                _ => {
                    if !held.is_empty() {
                        held.remove(0);
                    }
                }
            }
        }
        let s = stats();
        // charges − releases == live, exactly.
        prop_assert_eq!(s.charged - s.released, s.live);
        // Per-phase live bytes partition the rank total.
        prop_assert_eq!(s.live_by_phase.iter().sum::<u64>(), s.live);
        // The budget, when set, is a hard ceiling for the live total
        // (force-charges may pierce it; they model pre-existing state,
        // so only check when the script used try-charges exclusively).
        // High-water marks are monotone within the run...
        prop_assert!(s.hwm >= prev_hwm, "global hwm regressed");
        for (p, &prev) in prev_hwm_by_phase.iter().enumerate() {
            prop_assert!(s.hwm_by_phase[p] >= prev, "phase hwm regressed");
            // ...and each phase's mark dominates its live level.
            prop_assert!(s.hwm_by_phase[p] >= s.live_by_phase[p]);
        }
        // The global mark is bracketed by the per-phase marks: at least
        // the largest single phase, at most their sum.
        let max_p = *s.hwm_by_phase.iter().max().unwrap();
        let sum_p: u64 = s.hwm_by_phase.iter().sum();
        prop_assert!(s.hwm >= max_p && s.hwm <= sum_p);
        prev_hwm = s.hwm;
        prev_hwm_by_phase = s.hwm_by_phase;
    }
    drop(held);
    let s = stats();
    prop_assert_eq!(s.live, 0, "all charges dropped => zero live bytes");
    prop_assert_eq!(s.charged, s.released);
    prop_assert_eq!(s.live_by_phase.iter().sum::<u64>(), 0);
    install_rank(None, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn unbudgeted_ledger_invariants(
        script in prop::collection::vec((0u8..3, 0u64..10_000, 0usize..MemPhase::COUNT), 1..60)
    ) {
        run_script(None, &script);
    }

    #[test]
    fn budgeted_ledger_invariants(
        budget in 1u64..20_000,
        script in prop::collection::vec((1u8..3, 0u64..10_000, 0usize..MemPhase::COUNT), 1..60)
    ) {
        // Try-charges only (actions 1..3): live must never pierce budget.
        install_rank(Some(budget), 0);
        let mut held: Vec<Charge> = Vec::new();
        for &(action, bytes, phase_idx) in &script {
            let phase = MemPhase::ALL[phase_idx % MemPhase::COUNT];
            let _g = with_phase(phase);
            match action % 3 {
                1 => {
                    let before = stats().live;
                    match Charge::try_new(bytes) {
                        Ok(c) => held.push(c),
                        Err(e) => {
                            prop_assert_eq!(e.budget, budget);
                            prop_assert_eq!(e.requested, bytes);
                            prop_assert_eq!(e.live, before);
                            prop_assert!(before + bytes > budget, "spurious refusal");
                            prop_assert_eq!(stats().live, before, "refusal must not charge");
                        }
                    }
                }
                _ => {
                    if !held.is_empty() {
                        held.remove(0);
                    }
                }
            }
            prop_assert!(stats().live <= budget, "budget pierced");
            prop_assert_eq!(stats().charged - stats().released, stats().live);
        }
        drop(held);
        prop_assert_eq!(stats().live, 0);
        install_rank(None, 0);
    }

    #[test]
    fn clone_doubles_and_releases_cleanly(
        sizes in prop::collection::vec(1u64..5_000, 1..12)
    ) {
        install_rank(None, 0);
        let originals: Vec<Charge> = sizes.iter().map(|&b| Charge::force(b)).collect();
        let total: u64 = sizes.iter().sum();
        prop_assert_eq!(stats().live, total);
        let copies: Vec<Charge> = originals.iter().map(Charge::clone).collect();
        prop_assert_eq!(stats().live, 2 * total);
        drop(copies);
        prop_assert_eq!(stats().live, total);
        drop(originals);
        prop_assert_eq!(stats().live, 0);
        install_rank(None, 0);
    }
}
