//! Minimal ASCII charts for the figure harnesses.
//!
//! Terminal-rendered log-log line charts: enough to see the *shape* of a
//! strong-scaling curve (plateaus, crossovers) directly in the harness
//! output without leaving the terminal. CSV remains the machine-readable
//! product; these are the human-readable one.

/// One named series of (x, y) points.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points (x strictly positive for log axes).
    pub points: Vec<(f64, f64)>,
}

/// Marker characters assigned to series in order.
const MARKS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

/// Renders a log-log scatter/line chart of the series into a string.
///
/// Width/height are the plot-area dimensions in characters; axes and the
/// legend are added around it.
pub fn loglog_chart(title: &str, series: &[Series], width: usize, height: usize) -> String {
    assert!(width >= 10 && height >= 5, "chart too small");
    let finite_points: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|&(x, y)| x > 0.0 && y > 0.0 && x.is_finite() && y.is_finite())
        .collect();
    if finite_points.is_empty() {
        return format!("== {title} ==\n(no positive data)\n");
    }
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &finite_points {
        x0 = x0.min(x.log10());
        x1 = x1.max(x.log10());
        y0 = y0.min(y.log10());
        y1 = y1.max(y.log10());
    }
    if (x1 - x0).abs() < 1e-12 {
        x1 = x0 + 1.0;
    }
    if (y1 - y0).abs() < 1e-12 {
        y1 = y0 + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for &(x, y) in &s.points {
            if !(x > 0.0 && y > 0.0) {
                continue;
            }
            let cx = ((x.log10() - x0) / (x1 - x0) * (width - 1) as f64).round() as usize;
            let cy = ((y.log10() - y0) / (y1 - y0) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            let col = cx.min(width - 1);
            // Later series overwrite; collisions show the last marker.
            grid[row][col] = mark;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("== {title} (log-log) ==\n"));
    for (i, row) in grid.iter().enumerate() {
        let y_here = y1 - (y1 - y0) * i as f64 / (height - 1) as f64;
        let label = if i == 0 || i == height - 1 || i == height / 2 {
            format!("{:>9.2e} |", 10f64.powf(y_here))
        } else {
            format!("{:>9} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>10}+{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>10} {:<12.3e}{:>w$.3e}\n",
        "",
        10f64.powf(x0),
        10f64.powf(x1),
        w = width.saturating_sub(12)
    ));
    out.push_str("legend: ");
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("{}={} ", MARKS[si % MARKS.len()], s.label));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_series() -> Vec<Series> {
        vec![
            Series {
                label: "ideal".into(),
                points: (0..8)
                    .map(|k| (2f64.powi(k), 100.0 / 2f64.powi(k)))
                    .collect(),
            },
            Series {
                label: "plateau".into(),
                points: (0..8)
                    .map(|k| (2f64.powi(k), (100.0 / 2f64.powi(k)).max(10.0)))
                    .collect(),
            },
        ]
    }

    #[test]
    fn renders_title_legend_and_marks() {
        let s = loglog_chart("demo", &demo_series(), 40, 10);
        assert!(s.contains("== demo"));
        assert!(s.contains("*=ideal"));
        assert!(s.contains("o=plateau"));
        assert!(s.contains('*'));
        assert!(s.contains('o'));
    }

    #[test]
    fn monotone_series_descends_across_rows() {
        let s = loglog_chart("mono", &demo_series()[..1], 30, 8);
        // The ideal-scaling series' marker must appear in both the top
        // and bottom plot rows (strictly decreasing over 2 decades).
        let rows: Vec<&str> = s.lines().filter(|l| l.contains('|')).collect();
        assert!(rows.first().unwrap().contains('*'));
        assert!(rows.last().unwrap().contains('*'));
    }

    #[test]
    fn empty_and_degenerate_input_are_safe() {
        let s = loglog_chart("empty", &[], 20, 6);
        assert!(s.contains("no positive data"));
        let one = vec![Series {
            label: "pt".into(),
            points: vec![(1.0, 1.0)],
        }];
        let s = loglog_chart("one", &one, 20, 6);
        assert!(s.contains('*'));
    }

    #[test]
    #[should_panic(expected = "chart too small")]
    fn rejects_tiny_canvas() {
        loglog_chart("x", &[], 2, 2);
    }
}
