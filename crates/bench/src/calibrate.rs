//! Machine calibration: measure this host's kernel rates with the
//! repository's own GEMM and EVD implementations, and build a
//! [`ratucker_perfmodel::Machine`] from them.

use ratucker_perfmodel::Machine;
use ratucker_tensor::matrix::Matrix;
use std::time::Instant;

/// Measures the effective GEMM rate (flops/s) of the workspace kernels.
pub fn measure_gemm_rate() -> f64 {
    let n = 192;
    let a = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 7) as f32).sin());
    let b = Matrix::from_fn(n, n, |i, j| ((i + j * 13) as f32).cos());
    // Warm up.
    let _ = a.matmul(&b);
    let reps = 5;
    let t0 = Instant::now();
    let mut sink = 0.0f32;
    for _ in 0..reps {
        let c = a.matmul(&b);
        sink += c[(0, 0)];
    }
    let secs = t0.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    (reps as f64) * 2.0 * (n as f64).powi(3) / secs
}

/// Measures the sequential symmetric-EVD rate (flops/s, counting 4n³).
pub fn measure_evd_rate() -> f64 {
    let n = 128;
    let a = Matrix::from_fn(n, n, |i, j| {
        let v = ((i * 13 + j * 29) as f64).sin();
        let w = ((j * 13 + i * 29) as f64).sin();
        0.5 * (v + w) + if i == j { 2.0 } else { 0.0 }
    });
    let _ = ratucker_linalg::sym_evd(&a);
    let t0 = Instant::now();
    let e = ratucker_linalg::sym_evd(&a);
    let secs = t0.elapsed().as_secs_f64();
    std::hint::black_box(e.values[0]);
    4.0 * (n as f64).powi(3) / secs
}

/// A performance-model machine calibrated against this host.
pub fn calibrated_machine() -> Machine {
    let gemm = measure_gemm_rate();
    let evd = measure_evd_rate();
    println!(
        "[calibrate] gemm rate = {:.2e} flop/s, seq EVD rate = {:.2e} flop/s",
        gemm, evd
    );
    Machine::calibrated(gemm, evd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_positive_and_sane() {
        let g = measure_gemm_rate();
        let e = measure_evd_rate();
        assert!(g > 1e6, "gemm rate {g}");
        assert!(e > 1e5, "evd rate {e}");
    }
}
