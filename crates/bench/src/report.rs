//! Plain-text table rendering and CSV output.

use std::fmt::Display;
use std::fs;
use std::path::Path;

/// A simple column-aligned text table that doubles as a CSV writer.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column names.
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.header.len(), "row/header mismatch");
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Appends a row of pre-rendered strings.
    pub fn row_strings(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row/header mismatch");
        self.rows.push(cells);
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Writes the table as CSV under `results/<name>.csv`.
    pub fn save_csv(&self, name: &str) {
        let csv = std::iter::once(self.header.join(","))
            .chain(self.rows.iter().map(|r| r.join(",")))
            .collect::<Vec<_>>()
            .join("\n");
        write_csv(name, &csv);
    }
}

/// Writes raw CSV text to `results/<name>.csv` (relative to the workspace
/// root when run via `cargo run`, else the current directory).
pub fn write_csv(name: &str, contents: &str) {
    let dir = Path::new("results");
    if fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.csv"));
        if let Err(e) = fs::write(&path, contents) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("[csv] wrote {}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["alg", "time"]);
        t.row(&[&"STHOSVD", &1.25]);
        t.row(&[&"HOSI-DT", &0.5]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("STHOSVD"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row/header mismatch")]
    fn row_length_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&[&1]);
    }
}
