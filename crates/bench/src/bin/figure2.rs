//! Figure 2 reproduction: strong scaling of STHOSVD and the four HOOI
//! variants on the 3-way (3750³, ranks 30) and 4-way (560⁴, ranks 10)
//! synthetic tensors.
//!
//! Two parts (DESIGN.md §6 substitution — this host has one core):
//! 1. **Functional runs** on the threaded message-passing runtime at
//!    P ∈ {1,2,4,8} with scaled-down tensors: validates that every
//!    algorithm runs the real distributed code path on real grids and
//!    reports the measured communication volume per P.
//! 2. **Model curves** at the paper's dimensions out to P = 8192 using
//!    the calibrated cost model: this regenerates the *shape* of Fig. 2
//!    (STHOSVD's sequential-EVD plateau on the 3-way tensor, HOSI-DT
//!    scaling through 4096, the 4-way regime where STHOSVD scales far).
//!
//! Run: `cargo run --release -p ratucker-bench --bin figure2`

use ratucker::dist::{dist_hooi, dist_sthosvd};
use ratucker::prelude::*;
use ratucker_bench::{calibrated_machine, loglog_chart, problems, Series, Table};
use ratucker_dist::DistTensor;
use ratucker_mpi::{enumerate_grids, CartGrid, Universe};
use ratucker_perfmodel::{strong_scaling, AlgKind, Problem};
use std::time::Instant;

/// Best-over-grids functional wall time at one core count.
fn functional_point(
    spec: &SyntheticSpec,
    ranks: &[usize],
    p: usize,
    alg: AlgKind,
) -> (f64, Vec<usize>, u64) {
    let d = spec.dims.len();
    let mut best: Option<(f64, Vec<usize>, u64)> = None;
    for grid_dims in enumerate_grids(p, d) {
        // Skip grids that would oversubscribe a mode (rank < grid dim).
        if grid_dims.iter().zip(ranks).any(|(&g, &r)| g > r) {
            continue;
        }
        let u = Universe::new(p);
        let gd = grid_dims.clone();
        let t0 = Instant::now();
        // Per-rank source-side traffic scopes opened after the scatter:
        // `comm_bytes` counts the algorithm only, not tensor construction.
        let per_rank = u.run(|c| {
            let grid = CartGrid::new(c, &gd);
            let x_full = spec.build::<f32>();
            let x = DistTensor::scatter_from_replicated(&grid, &x_full);
            let scope = grid.comm.traffic_scope();
            match alg {
                AlgKind::Sthosvd => {
                    let _ = dist_sthosvd(&grid, &x, &SthosvdTruncation::Ranks(ranks.to_vec()));
                }
                _ => {
                    let cfg = match alg {
                        AlgKind::Hooi => HooiConfig::hooi(),
                        AlgKind::HooiDt => HooiConfig::hooi_dt(),
                        AlgKind::Hosi => HooiConfig::hosi(),
                        AlgKind::HosiDt => HooiConfig::hosi_dt(),
                        AlgKind::Sthosvd => unreachable!(),
                    }
                    .with_max_iters(2)
                    .with_seed(5);
                    let _ = dist_hooi(&grid, &x, ranks, &cfg);
                }
            }
            scope.delta().total_bytes()
        });
        let secs = t0.elapsed().as_secs_f64();
        let bytes: u64 = per_rank.into_iter().sum();
        if best.as_ref().is_none_or(|(b, _, _)| secs < *b) {
            best = Some((secs, grid_dims, bytes));
        }
    }
    best.expect("at least the all-ones grid must be admissible")
}

fn main() {
    println!("Reproducing paper Figure 2: strong scaling of Tucker algorithms.\n");

    // ---------- Part 1: functional runs (threaded runtime) ----------
    println!("Part 1 - functional distributed runs (threaded ranks, 1 physical core;");
    println!("wall times do not speed up here, but code paths, grids, and traffic are real).\n");

    let specs: [(&str, SyntheticSpec, Vec<usize>); 2] = [
        (
            "3-way",
            SyntheticSpec::new(
                &problems::THREE_WAY_DIMS,
                &[problems::THREE_WAY_RANK; 3],
                problems::NOISE,
                11,
            ),
            vec![problems::THREE_WAY_RANK; 3],
        ),
        (
            "4-way",
            SyntheticSpec::new(
                &problems::FOUR_WAY_DIMS,
                &[problems::FOUR_WAY_RANK; 4],
                problems::NOISE,
                13,
            ),
            vec![problems::FOUR_WAY_RANK; 4],
        ),
    ];

    for (name, spec, ranks) in &specs {
        let mut t = Table::new(
            &format!(
                "Figure 2 functional runs: {name} {:?} ranks {ranks:?}",
                spec.dims
            ),
            &["algorithm", "P", "best_grid", "seconds", "comm_bytes"],
        );
        for alg in AlgKind::ALL {
            for p in [1usize, 2, 4, 8] {
                let (secs, grid, bytes) = functional_point(spec, ranks, p, alg);
                t.row_strings(vec![
                    alg.name().into(),
                    p.to_string(),
                    format!("{grid:?}"),
                    format!("{secs:.3}"),
                    bytes.to_string(),
                ]);
            }
        }
        t.print();
        t.save_csv(&format!("figure2_functional_{name}"));
    }

    // ---------- Part 2: model curves at paper scale ----------
    println!("Part 2 - calibrated model curves at the paper's problem sizes.\n");
    let machine = calibrated_machine();
    let core_counts: Vec<usize> = (0..14).map(|k| 1usize << k).collect();

    for (name, prob) in [
        ("3way_3750_r30", Problem::new(3750, 30, 3, 2)),
        ("4way_560_r10", Problem::new(560, 10, 4, 2)),
    ] {
        let mut t = Table::new(
            &format!("Figure 2 model curves: {name} (seconds, best grid per P)"),
            &["P", "STHOSVD", "HOOI", "HOOI-DT", "HOSI", "HOSI-DT"],
        );
        let series: Vec<Vec<f64>> = AlgKind::ALL
            .iter()
            .map(|&alg| {
                strong_scaling(&machine, alg, &prob, &core_counts)
                    .into_iter()
                    .map(|s| s.seconds)
                    .collect()
            })
            .collect();
        for (i, &p) in core_counts.iter().enumerate() {
            t.row_strings(vec![
                p.to_string(),
                format!("{:.3}", series[0][i]),
                format!("{:.3}", series[1][i]),
                format!("{:.3}", series[2][i]),
                format!("{:.3}", series[3][i]),
                format!("{:.3}", series[4][i]),
            ]);
        }
        t.print();
        t.save_csv(&format!("figure2_model_{name}"));

        // The Fig. 2 curves, rendered in the terminal.
        let chart_series: Vec<Series> = AlgKind::ALL
            .iter()
            .zip(&series)
            .map(|(&alg, ys)| Series {
                label: alg.name().to_string(),
                points: core_counts
                    .iter()
                    .zip(ys)
                    .map(|(&p, &y)| (p as f64, y))
                    .collect(),
            })
            .collect();
        println!(
            "{}",
            loglog_chart(
                &format!("Figure 2: {name}, seconds vs cores"),
                &chart_series,
                64,
                18
            )
        );

        // Headline shape checks, printed for EXPERIMENTS.md.
        let idx = |p: usize| core_counts.iter().position(|&q| q == p).unwrap();
        if name.starts_with("3way") {
            let st64 = series[0][idx(64)];
            let st2048 = series[0][idx(2048)];
            let hosi4096 = series[4][idx(4096)];
            let st4096 = series[0][idx(4096)];
            let hooidt4096 = series[2][idx(4096)];
            println!("3-way shape checks:");
            println!(
                "  STHOSVD 64->2048 speedup:   {:.2}x (paper: 1.3x)",
                st64 / st2048
            );
            println!(
                "  HOSI-DT vs STHOSVD @4096:   {:.0}x (paper: 259x)",
                st4096 / hosi4096
            );
            println!(
                "  HOSI-DT vs HOOI-DT @4096:   {:.0}x (paper: 515x)",
                hooidt4096 / hosi4096
            );
            println!();
        } else {
            let st1 = series[0][idx(1)];
            let st8192 = series[0][idx(8192)];
            let best = |s: &Vec<f64>| s.iter().cloned().fold(f64::INFINITY, f64::min);
            println!("4-way shape checks:");
            println!(
                "  STHOSVD 1->8192 speedup:    {:.0}x (paper: 937x)",
                st1 / st8192
            );
            println!(
                "  best HOSI-DT vs best STHOSVD: {:.2}x (paper: 1.5x)",
                best(&series[0]) / best(&series[4])
            );
            println!(
                "  best HOSI-DT vs best HOOI-DT: {:.2}x (paper: 2.9x)",
                best(&series[2]) / best(&series[4])
            );
            println!();
        }
    }
}
