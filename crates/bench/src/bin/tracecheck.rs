//! Trace-pipeline smoke check + perf-model validation, for `ci.sh`.
//!
//! Runs small HOOI-DT and HOSI-DT decompositions under span-tracing
//! sessions, then checks the whole observability pipeline end to end:
//!
//! 1. the merged Chrome trace JSON round-trips through the parser and
//!    passes structural validation (≥ 1 span per rank, no ring
//!    evictions, per-phase self bytes summing to the session totals);
//! 2. the per-phase measured communication volume (Gram allreduce bytes
//!    for HOOI-DT; TTM reduce-scatter and SI-contraction bytes for both)
//!    matches the analytic [`ratucker_perfmodel`] predictions within the
//!    documented tolerance band, via [`ratucker_obs::validate_against_model`].
//!
//! Exits nonzero on any failure, so CI catches both broken exporters and
//! perf-model drift. Pass a path argument to keep the HOSI-DT trace file.
//!
//! Run: `cargo run --release -p ratucker-bench --bin tracecheck [trace.json]`

use ratucker::dist::dist_hooi;
use ratucker::prelude::*;
use ratucker_dist::DistTensor;
use ratucker_mpi::{CartGrid, Universe};
use ratucker_obs::{validate_against_model, PhaseBreakdown, Trace, TraceSession, ValidationConfig};
use ratucker_perfmodel::{AlgKind, Problem};

/// Runs one HOOI variant on the grid under a tracing session.
fn traced_run(
    x_full: &ratucker_tensor::dense::DenseTensor<f32>,
    grid_dims: &[usize],
    cfg: &HooiConfig,
    ranks: &[usize],
) -> Trace {
    let p: usize = grid_dims.iter().product();
    let session = TraceSession::start();
    let u = Universe::new(p);
    u.run(|c| {
        let grid = CartGrid::new(c, grid_dims);
        // Root span *after* grid construction (CartGrid consumes the
        // Comm); everything below is self-attributed to inner spans.
        let _root = ratucker_obs::span(&grid.comm, "run");
        let x = DistTensor::scatter_from_replicated(&grid, x_full);
        let _ = dist_hooi(&grid, &x, ranks, cfg);
    });
    session.finish()
}

/// Validates one trace against the cost model; exits on deviation.
fn validate(trace: &Trace, alg: AlgKind, prob: &Problem, grid_dims: &[usize]) {
    let breakdown = PhaseBreakdown::from_trace(trace);
    println!("--- {} ---", alg.name());
    println!("{breakdown}");
    let cfg = ValidationConfig::new(std::mem::size_of::<f32>());
    let report = validate_against_model(&breakdown, alg, prob, grid_dims, &cfg);
    println!("{report}");
    if let Err(dev) = report.check() {
        eprintln!("tracecheck FAIL ({}): {dev}", alg.name());
        std::process::exit(1);
    }
}

fn main() {
    let trace_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/tracecheck.json".to_string());

    // Small cubic problem on a [1,2,2] grid: big enough that Gram, TTM
    // and the SI contraction all clear the latency floor, small enough
    // to run in well under a second.
    let dims = vec![24usize, 24, 24];
    let (n, d, r) = (dims[0], dims.len(), 4usize);
    let iters = 2usize;
    let grid_dims = vec![1usize, 2, 2];
    let p: usize = grid_dims.iter().product();
    let spec = SyntheticSpec::new(&dims, &vec![r; d], 1e-4, 7);
    let x_full = spec.build::<f32>();
    let ranks = vec![r; d];
    let prob = Problem::new(n, r, d, iters);

    // --- HOOI-DT: exercises the Gram-allreduce + EVD path. -----------
    let cfg = HooiConfig::hooi_dt().with_max_iters(iters).with_seed(1);
    let trace = traced_run(&x_full, &grid_dims, &cfg, &ranks);
    validate(&trace, AlgKind::HooiDt, &prob, &grid_dims);

    // --- HOSI-DT: exercises the TTM + SI-contraction path. -----------
    let cfg = HooiConfig::hosi_dt().with_max_iters(iters).with_seed(1);
    let trace = traced_run(&x_full, &grid_dims, &cfg, &ranks);
    validate(&trace, AlgKind::HosiDt, &prob, &grid_dims);

    // --- Chrome trace round-trip + structural validation. ------------
    let path = std::path::Path::new(&trace_path);
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    ratucker_obs::write_trace(path, &trace).expect("write trace file");
    let text = std::fs::read_to_string(path).expect("read trace back");
    let parsed = ratucker_obs::parse(&text).expect("trace JSON must parse");
    if let Err(e) = ratucker_obs::validate_parsed(&parsed) {
        eprintln!("tracecheck FAIL: trace file invalid: {e}");
        std::process::exit(1);
    }
    assert_eq!(parsed.ranks, p, "footer rank count");
    println!(
        "trace ok: {} spans over {} ranks, {} self bytes -> {trace_path}",
        parsed.spans.len(),
        parsed.ranks,
        parsed.total_bytes
    );
    println!("tracecheck OK: measured comm volume within model tolerance");
}
