//! Figure 9 reproduction: running-time breakdown for the SP-like dataset
//! under high/mid/low compression.
//!
//! Run: `cargo run --release -p ratucker-bench --bin figure9`

use ratucker_bench::datasets_experiment::run_dataset_experiment;
use ratucker_datasets::sp_like;

fn main() {
    println!("Reproducing paper Figure 9 (SP breakdown).\n");
    let spec = sp_like(4);
    let report = run_dataset_experiment::<f64>(&spec);
    println!();
    report.breakdown_table().print();
    report.breakdown_table().save_csv("figure9_sp_breakdown");
    println!("Paper observation: at mid compression with perfect starting ranks,");
    println!("HOSI-DT reaches the tolerance at the same compression ratio in less");
    println!("time than STHOSVD (paper: 1.4x).");
}
