//! Figure 1 reproduction: the dimension-tree structure for an order-6
//! tensor — which TTMs are performed on which branch, where each factor
//! matrix is updated, and where the core is computed.
//!
//! Run: `cargo run -p ratucker-bench --bin figure1`

use ratucker::{dimtree_schedule, DimTreeEvent};

fn fmt_modes(modes: &[usize]) -> String {
    // The paper numbers modes 1..d.
    let strs: Vec<String> = modes.iter().map(|m| (m + 1).to_string()).collect();
    format!("{{{}}}", strs.join(","))
}

fn main() {
    let d = 6;
    println!("Reproducing paper Figure 1: dimension-tree traversal for an order-{d} tensor.");
    println!("Each node is labeled by the set of modes NOT yet multiplied; each TTM");
    println!("is a notch on an edge; each leaf updates one factor matrix, and the");
    println!("mode-{d} leaf (the last) also updates the core.\n");

    let schedule = dimtree_schedule(d);
    let mut depth = 0usize;
    for event in &schedule {
        match event {
            DimTreeEvent::Ttm { mode, remaining } => {
                depth = d - remaining.len() - 1;
                println!(
                    "{:indent$}TTM in mode {}  ->  node {}",
                    "",
                    mode + 1,
                    fmt_modes(remaining),
                    indent = depth * 2
                );
                depth = d - remaining.len();
            }
            DimTreeEvent::Leaf {
                mode,
                computes_core,
            } => {
                println!(
                    "{:indent$}LEAF: update U_{}{}",
                    "",
                    mode + 1,
                    if *computes_core {
                        "  and compute core G = X x_6 U_6^T"
                    } else {
                        ""
                    },
                    indent = depth * 2
                );
            }
        }
    }

    let ttms = schedule
        .iter()
        .filter(|e| matches!(e, DimTreeEvent::Ttm { .. }))
        .count();
    println!("\nTotal TTMs per sweep with the tree: {ttms}");
    println!("Without memoization (Alg. 2): d*(d-1) = {}", d * (d - 1));
    println!(
        "Leading-order flop saving: the two root branches each start with one\n\
         full-size TTM, so the sweep costs ~4*r*n^d instead of ~2*d*r*n^d (factor d/2 = {}).",
        d / 2
    );
}
