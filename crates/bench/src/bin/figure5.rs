//! Figure 5 reproduction: running-time breakdown for the Miranda-like
//! dataset under high/mid/low compression — STHOSVD vs rank-adaptive
//! HOSI-DT from the three starting-rank policies.
//!
//! Run: `cargo run --release -p ratucker-bench --bin figure5`

use ratucker_bench::datasets_experiment::run_dataset_experiment;
use ratucker_datasets::miranda_like;

fn main() {
    println!("Reproducing paper Figure 5 (Miranda breakdown).\n");
    let spec = miranda_like(12);
    let report = run_dataset_experiment::<f32>(&spec);
    println!();
    report.breakdown_table().print();
    report
        .breakdown_table()
        .save_csv("figure5_miranda_breakdown");
    println!("Paper observation: STHOSVD is Gram/EVD-dominated; HOSI-DT spends its");
    println!("time in TTM + SI; the core-analysis cost only becomes visible at the");
    println!("low-compression tolerance (eps = 0.01), where ranks - and r^d - are");
    println!("largest.");
}
