//! Figure 4 reproduction: progression of time, error, and relative size
//! over 3 iterations of rank-adaptive HOSI-DT on the Miranda-like 3-way
//! dataset, against STHOSVD, at ε ∈ {0.1, 0.05, 0.01} from perfect /
//! overshot / undershot starting ranks.
//!
//! (Miranda itself is 3072³/115 GB; see DESIGN.md §6 for the stand-in.)
//!
//! Run: `cargo run --release -p ratucker-bench --bin figure4`

use ratucker_bench::datasets_experiment::run_dataset_experiment;
use ratucker_bench::{calibrated_machine, Table};
use ratucker_datasets::miranda_like;
use ratucker_perfmodel::{best_grid_time, AlgKind, Problem};

fn main() {
    println!("Reproducing paper Figure 4 (Miranda, 3-way, single precision).\n");
    let spec = miranda_like(12); // 192^3 stand-in
    let report = run_dataset_experiment::<f32>(&spec);
    println!();
    report.progression_table().print();
    report
        .progression_table()
        .save_csv("figure4_miranda_progression");
    report.speedup_table().print();
    report.speedup_table().save_csv("figure4_miranda_speedup");

    // The paper's 82x-156x Miranda speedups arise at 1024 cores, where
    // STHOSVD's sequential EVD of an n = 3072 Gram dominates. The
    // measured stand-in above is sequential; the calibrated cost model
    // bridges to the paper's setting (3072^3, ranks ~10, P = 1024).
    let machine = calibrated_machine();
    let mut t = Table::new(
        "Figure 4 companion: model at paper scale (Miranda 3072^3, r=10, P=1024)",
        &["algorithm", "iterations", "seconds", "speedup_vs_sthosvd"],
    );
    let st = best_grid_time(
        &machine,
        AlgKind::Sthosvd,
        &Problem::new(3072, 10, 3, 1),
        1024,
    );
    t.row_strings(vec![
        "STHOSVD".into(),
        "-".into(),
        format!("{:.2}", st.seconds),
        "1.0x".into(),
    ]);
    for iters in 1..=3usize {
        let ra = best_grid_time(
            &machine,
            AlgKind::HosiDt,
            &Problem::new(3072, 10, 3, iters),
            1024,
        );
        t.row_strings(vec![
            "RA-HOSI-DT".into(),
            iters.to_string(),
            format!("{:.2}", ra.seconds),
            format!("{:.0}x", st.seconds / ra.seconds),
        ]);
    }
    t.print();
    t.save_csv("figure4_miranda_model_scale");
    println!("Paper headline (§4.2.1): perfect ranks 82x (high) / 25x (mid);");
    println!("under 91x / 35x; over 156x / 47x; best compression-ratio gain 69% at");
    println!("high compression. Expect the same ordering and regime structure here");
    println!("(largest wins at high compression), with host-specific magnitudes.");
}
