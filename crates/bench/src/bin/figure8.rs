//! Figure 8 reproduction: progression of time, error, and relative size
//! for rank-adaptive HOSI-DT vs STHOSVD on the SP-like 5-way dataset
//! (500×500×500×11×400 / 4.4 TB in the paper; scaled stand-in per
//! DESIGN.md §6).
//!
//! Run: `cargo run --release -p ratucker-bench --bin figure8`

use ratucker_bench::datasets_experiment::run_dataset_experiment;
use ratucker_datasets::sp_like;

fn main() {
    println!("Reproducing paper Figure 8 (SP, 5-way, double precision).\n");
    let spec = sp_like(4); // 32x32x32x11x24 stand-in
    let report = run_dataset_experiment::<f64>(&spec);
    println!();
    report.progression_table().print();
    report
        .progression_table()
        .save_csv("figure8_sp_progression");
    report.speedup_table().print();
    report.speedup_table().save_csv("figure8_sp_speedup");
    println!("Paper headline: 3 iterations usually yield better compression than");
    println!("STHOSVD (27%/8% smaller at high compression from perfect/under starts)");
    println!("at 2x+ the time; overshooting at low compression gives ~1.1x speedup");
    println!("after one iteration without a compression win.");
}
