//! Figure 7 reproduction: running-time breakdown for the HCCI-like
//! dataset under high/mid/low compression.
//!
//! Run: `cargo run --release -p ratucker-bench --bin figure7`

use ratucker_bench::datasets_experiment::run_dataset_experiment;
use ratucker_datasets::hcci_like;

fn main() {
    println!("Reproducing paper Figure 7 (HCCI breakdown).\n");
    let spec = hcci_like(8);
    let report = run_dataset_experiment::<f64>(&spec);
    println!();
    report.breakdown_table().print();
    report.breakdown_table().save_csv("figure7_hcci_breakdown");
    println!("Paper observation: with a large time mode and moderate compression,");
    println!("both algorithms are TTM-heavy, so the HOSI-DT advantage narrows to");
    println!("the dimension-tree factor rather than the EVD elimination.");
}
