//! Ablations of the paper's design choices:
//!
//! 1. **Rank growth factor α** (§3.2: "trades off how many iterations are
//!    required … with how large the overestimate is once the error is
//!    achieved; we typically use 1.5 or 2") — sweeps α from an undershot
//!    start and reports iterations-to-tolerance, time, and final size.
//! 2. **Subspace-iteration steps** (§3.4: "we choose to do only a single
//!    subspace iteration … in principle, the computations could be
//!    repeated") — compares per-sweep error trajectories for 1–3 steps.
//! 3. **QRCP vs unpivoted QR column ordering** — QRCP's column ordering
//!    is what justifies the leading-subtensor core analysis; this
//!    measures how much truncated mass ordering saves.
//!
//! Run: `cargo run --release -p ratucker-bench --bin ablations`

use ratucker::prelude::*;
use ratucker_bench::Table;
use std::time::Instant;

fn alpha_ablation() {
    println!("Ablation 1: rank growth factor alpha (undershot start, eps = 0.05)\n");
    let x = SyntheticSpec::new(&[48, 48, 48], &[8, 8, 8], 0.02, 601).build::<f32>();
    let mut t = Table::new(
        "alpha ablation: RA-HOSI-DT from ranks [2,2,2]",
        &[
            "alpha",
            "iters_to_eps",
            "seconds",
            "final_ranks",
            "rel_size",
            "rel_error",
        ],
    );
    for alpha in [1.25, 1.5, 2.0, 3.0] {
        let cfg = RaConfig::ra_hosi_dt(0.05, &[2, 2, 2])
            .with_alpha(alpha)
            .with_seed(5)
            .with_max_iters(8)
            .stopping_on_threshold();
        let t0 = Instant::now();
        let res = ra_hooi(&x, &cfg);
        let secs = t0.elapsed().as_secs_f64();
        t.row_strings(vec![
            format!("{alpha}"),
            res.met_at
                .map(|k| (k + 1).to_string())
                .unwrap_or("never".into()),
            format!("{secs:.3}"),
            format!("{:?}", res.tucker.ranks()),
            format!("{:.5}", res.tucker.relative_size()),
            format!("{:.4}", res.rel_error),
        ]);
    }
    t.print();
    t.save_csv("ablation_alpha");
    println!("Small alpha needs more growth sweeps; large alpha overshoots harder");
    println!("per sweep but converges in fewer — the §3.2 trade-off.\n");
}

fn si_steps_ablation() {
    println!("Ablation 2: subspace-iteration steps per subiteration\n");
    let x = SyntheticSpec::new(&[40, 40, 40], &[6, 6, 6], 0.05, 603).build::<f64>();
    let mut t = Table::new(
        "SI-steps ablation: HOSI-DT error after each sweep",
        &["si_steps", "sweep1_err", "sweep2_err", "seconds"],
    );
    // Reference: the Gram+EVD route (exact subiterations).
    let t0 = Instant::now();
    let exact = hooi(
        &x,
        &[6, 6, 6],
        &HooiConfig::hooi_dt().with_seed(7).with_max_iters(2),
    );
    let exact_secs = t0.elapsed().as_secs_f64();
    t.row_strings(vec![
        "exact (Gram+EVD)".into(),
        format!("{:.5}", exact.sweeps[0].rel_error),
        format!("{:.5}", exact.sweeps[1].rel_error),
        format!("{exact_secs:.3}"),
    ]);
    for steps in [1usize, 2, 3] {
        let cfg = HooiConfig::hosi_dt()
            .with_seed(7)
            .with_max_iters(2)
            .with_si_steps(steps);
        let t0 = Instant::now();
        let res = hooi(&x, &[6, 6, 6], &cfg);
        let secs = t0.elapsed().as_secs_f64();
        t.row_strings(vec![
            steps.to_string(),
            format!("{:.5}", res.sweeps[0].rel_error),
            format!("{:.5}", res.sweeps[1].rel_error),
            format!("{secs:.3}"),
        ]);
    }
    t.print();
    t.save_csv("ablation_si_steps");
    println!("The paper's claim: one step per subiteration suffices for full-sweep");
    println!("accuracy — extra steps improve the *first* sweep but converge to the");
    println!("same error by sweep two at higher cost.\n");
}

fn qrcp_ordering_ablation() {
    println!("Ablation 3: QRCP column ordering and the core analysis\n");
    // Measure how much of the core's mass the leading subtensor captures
    // with (QRCP, the implementation) vs a column-shuffled control.
    let x = SyntheticSpec::new(&[36, 36, 36], &[9, 9, 9], 0.02, 605).build::<f64>();
    let cfg = HooiConfig::hosi_dt().with_seed(11).with_max_iters(2);
    let res = hooi(&x, &[9, 9, 9], &cfg);
    let core = &res.tucker.core;
    let total = core.squared_norm_f64();
    let mut t = Table::new(
        "leading-subtensor mass capture (fraction of ||G||^2)",
        &["leading ranks", "QRCP ordering", "reversed ordering"],
    );
    for keep in [3usize, 5, 7] {
        let lead = core.leading_subtensor(&[keep; 3]).squared_norm_f64() / total;
        // Control: reverse every mode (worst case for a "leading" search).
        let rev = {
            let dims = core.shape().dims().to_vec();
            let flipped = ratucker_tensor::DenseTensor::from_fn(core.shape().clone(), |idx| {
                let src: Vec<usize> = idx.iter().zip(&dims).map(|(&i, &n)| n - 1 - i).collect();
                core.get(&src)
            });
            flipped.leading_subtensor(&[keep; 3]).squared_norm_f64() / total
        };
        t.row_strings(vec![
            format!("[{keep},{keep},{keep}]"),
            format!("{lead:.4}"),
            format!("{rev:.4}"),
        ]);
    }
    t.print();
    t.save_csv("ablation_qrcp_ordering");
    println!("QRCP concentrates core mass toward low indices (left column near 1),");
    println!("which is what makes the eq.-(3) leading-subtensor search sound.");
}

fn core_analysis_ablation() {
    println!("Ablation 4: exhaustive eq.-(3) search vs greedy mode-wise truncation\n");
    // Unbalanced outer dims + unbalanced spectra: the regime where
    // shifting rank across modes (which greedy cannot do) pays off —
    // the §5 conclusion about beating STHOSVD's greedy per-mode choices.
    let mut spec = ratucker_datasets::miranda_like(4);
    spec.dims = vec![256, 64, 32];
    spec.core_ranks = vec![24, 20, 16];
    spec.decay = vec![0.35, 0.3, 0.25];
    let x = spec.build::<f64>();
    let xns = x.squared_norm_f64();
    let cfg = HooiConfig::hosi_dt().with_seed(3).with_max_iters(2);
    let res = hooi(&x, &[16, 14, 12], &cfg);
    let core = &res.tucker.core;
    let dims = x.shape().dims().to_vec();

    let mut t = Table::new(
        "core-analysis ablation: storage of the chosen truncation",
        &[
            "eps",
            "exhaustive_ranks",
            "exhaustive_storage",
            "greedy_ranks",
            "greedy_storage",
            "greedy_overhead",
        ],
    );
    for eps in [0.05, 0.1, 0.2] {
        let ex = ratucker::analyze_core(core, &dims, xns, eps);
        let gr = ratucker::analyze_core_greedy(core, &dims, xns, eps);
        match (ex, gr) {
            (Some(e), Some(g)) => {
                t.row_strings(vec![
                    format!("{eps}"),
                    format!("{:?}", e.ranks),
                    e.storage.to_string(),
                    format!("{:?}", g.ranks),
                    g.storage.to_string(),
                    format!(
                        "{:+.1}%",
                        100.0 * (g.storage as f64 / e.storage as f64 - 1.0)
                    ),
                ]);
            }
            _ => {
                t.row_strings(vec![
                    format!("{eps}"),
                    "infeasible".into(),
                    "-".into(),
                    "infeasible".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    t.print();
    t.save_csv("ablation_core_analysis");
    println!("The exhaustive search is never worse and wins when modes have very");
    println!("different outer dimensions — the flexibility §5 credits for beating");
    println!("STHOSVD's compression ratios.");
}

fn main() {
    println!("Design-choice ablations (DESIGN.md experiment extensions).\n");
    alpha_ablation();
    si_steps_ablation();
    qrcp_ordering_ablation();
    core_analysis_ablation();
}
