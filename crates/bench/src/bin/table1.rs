//! Table 1 reproduction: leading-order *flop* costs of LLSV (Gram+EVD vs
//! subspace iteration), multi-TTM (direct vs dimension tree), and core
//! analysis — validated by comparing the analytic expressions against the
//! flop counters measured inside this repository's kernels.
//!
//! Run: `cargo run --release -p ratucker-bench --bin table1`

use ratucker::prelude::*;
use ratucker::Phase;
use ratucker_bench::Table;
use ratucker_perfmodel::{algorithm_cost, AlgKind, Problem};

fn measured_phases(
    x: &ratucker_tensor::DenseTensor<f32>,
    ranks: &[usize],
    cfg: &HooiConfig,
) -> ratucker::Timings {
    let res = ratucker::hooi(x, ranks, &cfg.clone().with_max_iters(1).with_seed(1));
    res.timings
}

fn main() {
    println!("Reproducing paper Table 1: leading-order flop costs per algorithm phase.\n");
    println!("Formulas (perfmodel::costs) vs. flops measured by the kernel counters.");
    println!("Agreement within a small constant factor validates the table; the");
    println!("formulas keep only leading-order terms, so ratios near 1 are expected");
    println!("for n >> r and drift for small problems.\n");

    let mut table = Table::new(
        "Table 1: analytic vs measured flops (one HOOI sweep / one STHOSVD)",
        &[
            "problem",
            "algorithm",
            "phase",
            "analytic",
            "measured",
            "ratio",
        ],
    );

    for (dims, r) in [(vec![64usize, 64, 64], 8usize), (vec![24, 24, 24, 24], 4)] {
        let d = dims.len();
        let n = dims[0];
        let spec = SyntheticSpec::new(&dims, &vec![r; d], 1e-4, 2);
        let x = spec.build::<f32>();
        let prob = Problem::new(n, r, d, 1);
        let grid = vec![1usize; d];
        let label = format!("{}-way n={n} r={r}", d);

        // STHOSVD.
        let st = sthosvd(&x, &SthosvdTruncation::Ranks(vec![r; d]));
        let model = algorithm_cost(AlgKind::Sthosvd, &prob, &grid);
        for (phase, mlabel) in [
            (Phase::Gram, "Gram"),
            (Phase::Evd, "EVD"),
            (Phase::Ttm, "TTM"),
        ] {
            let analytic = model
                .phases
                .iter()
                .find(|p| p.label == mlabel)
                .map(|p| p.parallel_flops + p.sequential_flops)
                .unwrap_or(0.0);
            let measured = st.timings.flops(phase) as f64;
            table.row_strings(vec![
                label.clone(),
                "STHOSVD".into(),
                mlabel.into(),
                format!("{analytic:.3e}"),
                format!("{measured:.3e}"),
                format!("{:.2}", measured / analytic.max(1.0)),
            ]);
        }

        // HOOI variants (one sweep).
        for (alg, cfg) in [
            (AlgKind::Hooi, HooiConfig::hooi()),
            (AlgKind::HooiDt, HooiConfig::hooi_dt()),
            (AlgKind::Hosi, HooiConfig::hosi()),
            (AlgKind::HosiDt, HooiConfig::hosi_dt()),
        ] {
            let t = measured_phases(&x, &vec![r; d], &cfg);
            let model = algorithm_cost(alg, &Problem::new(n, r, d, 1), &grid);
            let pairs: Vec<(Phase, &str)> = if alg.uses_subspace_iter() {
                vec![
                    (Phase::Ttm, "TTM"),
                    (Phase::Contract, "SI"),
                    (Phase::Qr, "QR"),
                ]
            } else {
                vec![
                    (Phase::Ttm, "TTM"),
                    (Phase::Gram, "Gram"),
                    (Phase::Evd, "EVD"),
                ]
            };
            for (phase, mlabel) in pairs {
                let analytic = model
                    .phases
                    .iter()
                    .find(|p| p.label == mlabel)
                    .map(|p| p.parallel_flops + p.sequential_flops)
                    .unwrap_or(0.0);
                let mut measured = t.flops(phase) as f64;
                // The model folds the SI TTM (G = UᵀY) into the "SI" row
                // like the paper; the measured counter splits it across
                // Ttm/Contract. Report the sum against "SI" for SI
                // variants, and subtract nothing otherwise.
                if alg.uses_subspace_iter() && phase == Phase::Contract {
                    measured = (t.flops(Phase::Contract)) as f64;
                }
                table.row_strings(vec![
                    label.clone(),
                    cfg.variant_name().into(),
                    mlabel.into(),
                    format!("{analytic:.3e}"),
                    format!("{measured:.3e}"),
                    format!("{:.2}", measured / analytic.max(1.0)),
                ]);
            }
        }

        // Core analysis flops (RA overhead): measured vs d·r^d.
        let ra_cfg = RaConfig::ra_hosi_dt(0.1, &vec![r; d])
            .with_max_iters(1)
            .with_seed(1);
        let ra = ra_hooi(&x, &ra_cfg);
        let analytic = (d as f64 + 2.0) * (ra.tucker.ranks().iter().product::<usize>() as f64);
        table.row_strings(vec![
            label.clone(),
            "RA-HOSI-DT".into(),
            "CoreAnalysis".into(),
            format!("{analytic:.3e}"),
            format!("{:.3e}", ra.timings.flops(Phase::CoreAnalysis)),
            format!(
                "{:.2}",
                ra.timings.flops(Phase::CoreAnalysis) as f64 / analytic.max(1.0)
            ),
        ]);
    }

    table.print();
    table.save_csv("table1_flops");

    println!("Reading the table:");
    println!("- STHOSVD Gram ≈ n^(d+1)/P dominates its TTM (factor ~n/r).");
    println!("- HOOI-DT TTM ≈ direct TTM / (d/2)  — the dimension-tree saving.");
    println!("- HOSI variants: no Gram/EVD flops at all; SI ≈ 4d·n·r^d, QR = O(d·n·r²).");
    println!("- Core analysis is O(d·r^d), negligible next to everything else.");
}
