//! Figure 6 reproduction: progression of time, error, and relative size
//! for rank-adaptive HOSI-DT vs STHOSVD on the HCCI-like 4-way dataset
//! (672×672×33×626 in the paper; scaled stand-in per DESIGN.md §6).
//!
//! Run: `cargo run --release -p ratucker-bench --bin figure6`

use ratucker_bench::datasets_experiment::run_dataset_experiment;
use ratucker_datasets::hcci_like;

fn main() {
    println!("Reproducing paper Figure 6 (HCCI, 4-way, double precision).\n");
    let spec = hcci_like(8); // 96x96x33x64 stand-in
    let report = run_dataset_experiment::<f64>(&spec);
    println!();
    report.progression_table().print();
    report
        .progression_table()
        .save_csv("figure6_hcci_progression");
    report.speedup_table().print();
    report.speedup_table().save_csv("figure6_hcci_speedup");
    println!("Paper headline (§4.2.2): TTM-dominated regime, so wins are modest -");
    println!("overshooting gives 1.9x (high) and 1.4x; at low compression STHOSVD");
    println!("is faster; perfect/under starts achieve better compression but need");
    println!("all 3 iterations.");
}
