//! Figure 3 reproduction: running-time breakdown of each algorithm on the
//! synthetic 3-way and 4-way tensors, at one core and at scale.
//!
//! - Sequential breakdowns are *measured* with the per-phase timers on the
//!   scaled-down problems (these correspond to the single-core bars).
//! - Large-P breakdowns come from the calibrated cost model at the paper's
//!   dimensions (4096 cores), reproducing the structural story: at 4096
//!   cores the 3-way Gram-based variants are EVD-dominated while HOSI-DT
//!   has no serial term left.
//!
//! Run: `cargo run --release -p ratucker-bench --bin figure3`

use ratucker::prelude::*;
use ratucker::ALL_PHASES;
use ratucker_bench::{calibrated_machine, problems, Table};
use ratucker_perfmodel::{algorithm_cost, best_grid_time, AlgKind, Problem};

fn main() {
    println!("Reproducing paper Figure 3: per-phase running-time breakdowns.\n");

    // ---------- measured single-core breakdowns ----------
    // Larger than the figure2 functional stand-ins so every phase is
    // visible on the wall clock.
    let _ = (problems::THREE_WAY_DIMS, problems::FOUR_WAY_DIMS);
    for (name, dims, r) in [
        ("3-way", vec![192usize, 192, 192], 12usize),
        ("4-way", vec![48usize, 48, 48, 48], 6),
    ] {
        let d = dims.len();
        let spec = SyntheticSpec::new(&dims, &vec![r; d], problems::NOISE, 17);
        let x = spec.build::<f32>();

        let mut header: Vec<String> = vec!["algorithm".into(), "total_s".into()];
        header.extend(ALL_PHASES.iter().map(|p| p.label().to_string()));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(
            &format!("Figure 3 measured breakdown (P=1): {name} {dims:?} r={r}"),
            &header_refs,
        );

        let st = sthosvd(&x, &SthosvdTruncation::Ranks(vec![r; d]));
        let mut row = vec![
            "STHOSVD".to_string(),
            format!("{:.3}", st.timings.total_secs()),
        ];
        row.extend(
            ALL_PHASES
                .iter()
                .map(|&p| format!("{:.3}", st.timings.secs(p))),
        );
        t.row_strings(row);

        for cfg in [
            HooiConfig::hooi(),
            HooiConfig::hooi_dt(),
            HooiConfig::hosi(),
            HooiConfig::hosi_dt(),
        ] {
            let cfg = cfg.with_max_iters(2).with_seed(5);
            let res = hooi(&x, &vec![r; d], &cfg);
            let mut row = vec![
                cfg.variant_name().to_string(),
                format!("{:.3}", res.timings.total_secs()),
            ];
            row.extend(
                ALL_PHASES
                    .iter()
                    .map(|&p| format!("{:.3}", res.timings.secs(p))),
            );
            t.row_strings(row);
        }
        t.print();
        t.save_csv(&format!("figure3_measured_{name}"));
    }

    // ---------- model breakdowns at the paper's scale ----------
    let machine = calibrated_machine();
    for (name, prob) in [
        ("3way_3750_r30", Problem::new(3750, 30, 3, 2)),
        ("4way_560_r10", Problem::new(560, 10, 4, 2)),
    ] {
        for p in [1usize, 4096] {
            let mut t = Table::new(
                &format!("Figure 3 model breakdown: {name} at P={p} (seconds)"),
                &["algorithm", "grid", "phase", "seconds", "share"],
            );
            for alg in AlgKind::ALL {
                let pt = best_grid_time(&machine, alg, &prob, p);
                let costs = algorithm_cost(alg, &prob, &pt.grid);
                let total: f64 = machine.total_time(&costs, p);
                for (label, secs) in machine.phase_times(&costs, p) {
                    t.row_strings(vec![
                        alg.name().into(),
                        format!("{:?}", pt.grid),
                        label.into(),
                        format!("{secs:.3}"),
                        format!("{:.1}%", 100.0 * secs / total),
                    ]);
                }
            }
            t.print();
            t.save_csv(&format!("figure3_model_{name}_p{p}"));
        }
    }

    println!("Reading the figures:");
    println!("- P=1: TTM dominates direct HOOI; the tree variants cut it by ~d/2;");
    println!("  Gram dominates STHOSVD (factor ~n/r over its TTM).");
    println!("- P=4096, 3-way: the sequential EVD is nearly 100% of STHOSVD and");
    println!("  the HOOI/HOOI-DT bars (twice as tall: 2 iterations); HOSI-DT's bar");
    println!("  is tiny and EVD-free - the source of its 259x win.");
}
