//! `benchdiff` — compares fresh bench JSON against committed baselines.
//!
//! Reads pairs of bench report files (the line-oriented JSON the vendored
//! criterion stub writes via `BENCH_JSON`) and prints per-benchmark
//! deltas in ns and percent, so each PR's `BENCH_*.json` refresh carries
//! a visible before/after trajectory. Regressions above the soft
//! threshold produce a loud warning but never a failing exit: bench
//! noise on shared hardware must not gate CI (ROADMAP item 1 asks for a
//! measured trajectory, not a flaky gate).
//!
//! ```sh
//! cargo run -p ratucker-bench --bin benchdiff -- \
//!     BENCH_kernels.json target/BENCH_kernels.json
//! ```
//!
//! With one argument pair per suite; `--soft-threshold <pct>` overrides
//! the default 25% warning bar.

use std::fmt::Write as _;

/// A benchmark's slowdown past this percentage gets a WARN line.
const DEFAULT_SOFT_THRESHOLD_PCT: f64 = 25.0;

/// One `{"name": …, "per_iter_ns": …, "iters": …}` record.
struct Entry {
    name: String,
    per_iter_ns: f64,
}

/// Extracts a string field from a single-line JSON object. The input is
/// machine-written by our own criterion stub (one benchmark per line),
/// so a tiny field scanner is enough — no JSON dependency.
fn string_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts a numeric field from a single-line JSON object.
fn number_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn parse_report(text: &str) -> Vec<Entry> {
    text.lines()
        .filter_map(|line| {
            Some(Entry {
                name: string_field(line, "name")?,
                per_iter_ns: number_field(line, "per_iter_ns")?,
            })
        })
        .collect()
}

fn human_ns(ns: f64) -> String {
    if ns.abs() >= 1e6 {
        format!("{:+.2} ms", ns / 1e6)
    } else if ns.abs() >= 1e3 {
        format!("{:+.2} µs", ns / 1e3)
    } else {
        format!("{ns:+.0} ns")
    }
}

fn diff_suite(baseline_path: &str, fresh_path: &str, soft_threshold_pct: f64) -> usize {
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(t) => parse_report(&t),
        Err(e) => {
            println!("benchdiff: no baseline {baseline_path} ({e}); nothing to compare");
            return 0;
        }
    };
    let fresh = match std::fs::read_to_string(fresh_path) {
        Ok(t) => parse_report(&t),
        Err(e) => {
            println!("benchdiff: no fresh report {fresh_path} ({e}); run the benches first");
            return 0;
        }
    };
    println!("benchdiff: {baseline_path} -> {fresh_path}");
    let mut regressions = 0;
    for f in &fresh {
        let Some(b) = baseline.iter().find(|b| b.name == f.name) else {
            println!("  {:<44} NEW      {:>12.0} ns", f.name, f.per_iter_ns);
            continue;
        };
        let delta = f.per_iter_ns - b.per_iter_ns;
        let pct = if b.per_iter_ns > 0.0 {
            100.0 * delta / b.per_iter_ns
        } else {
            0.0
        };
        let mut line = String::new();
        let _ = write!(
            line,
            "  {:<44} {:>12.0} -> {:>12.0} ns  {:>12} ({pct:+.1}%)",
            f.name,
            b.per_iter_ns,
            f.per_iter_ns,
            human_ns(delta)
        );
        if pct > soft_threshold_pct {
            regressions += 1;
            let _ = write!(line, "  WARN: regression above {soft_threshold_pct:.0}%");
        }
        println!("{line}");
    }
    for b in &baseline {
        if !fresh.iter().any(|f| f.name == b.name) {
            println!("  {:<44} GONE (was {:.0} ns)", b.name, b.per_iter_ns);
        }
    }
    regressions
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut soft_threshold_pct = DEFAULT_SOFT_THRESHOLD_PCT;
    let mut paths: Vec<String> = Vec::new();
    let mut it = argv.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--soft-threshold" {
            let v = it.next().unwrap_or_default();
            match v.parse::<f64>() {
                Ok(p) if p > 0.0 => soft_threshold_pct = p,
                _ => {
                    eprintln!("benchdiff: bad --soft-threshold {v:?}");
                    std::process::exit(2);
                }
            }
        } else {
            paths.push(arg);
        }
    }
    if paths.is_empty() || !paths.len().is_multiple_of(2) {
        eprintln!(
            "usage: benchdiff [--soft-threshold <pct>] <baseline.json> <fresh.json> \
             [<baseline2.json> <fresh2.json> …]"
        );
        std::process::exit(2);
    }
    let mut regressions = 0;
    for pair in paths.chunks(2) {
        regressions += diff_suite(&pair[0], &pair[1], soft_threshold_pct);
    }
    if regressions > 0 {
        // Soft failure by design: warn loudly, exit clean.
        println!(
            "benchdiff: WARNING — {regressions} benchmark(s) regressed more than \
             {soft_threshold_pct:.0}% (soft: not failing the build)"
        );
    } else {
        println!("benchdiff: no regressions above {soft_threshold_pct:.0}%");
    }
}
