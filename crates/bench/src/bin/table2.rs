//! Table 2 reproduction: leading-order *communication* (bandwidth) costs,
//! validated by running the distributed algorithms on the threaded
//! message-passing runtime and comparing the *measured* bytes on the wire
//! against the analytic Table 2 expressions.
//!
//! Run: `cargo run --release -p ratucker-bench --bin table2`

use ratucker::dist::{dist_hooi, dist_sthosvd};
use ratucker::prelude::*;
use ratucker_bench::Table;
use ratucker_dist::DistTensor;
use ratucker_mpi::{CartGrid, Universe};
use ratucker_perfmodel::{algorithm_cost, AlgKind, Problem};

/// Measured total bytes for one collective algorithm run on a grid.
///
/// Each rank opens a [`ratucker_mpi::TrafficScope`] *after* the tensor is
/// scattered, so construction traffic is excluded by design (no barriers
/// or global-snapshot arithmetic needed); the per-rank source-side deltas
/// sum to exactly the algorithm's bytes on the wire.
fn measured_bytes(
    spec: &SyntheticSpec,
    grid_dims: &[usize],
    run: impl Fn(&CartGrid, &DistTensor<f32>) + Sync,
) -> u64 {
    let p: usize = grid_dims.iter().product();
    let u = Universe::new(p);
    let per_rank = u.run(|c| {
        let grid = CartGrid::new(c, grid_dims);
        let x_full = spec.build::<f32>();
        let x = DistTensor::scatter_from_replicated(&grid, &x_full);
        let scope = grid.comm.traffic_scope();
        run(&grid, &x);
        scope.delta().total_bytes()
    });
    per_rank.into_iter().sum()
}

fn main() {
    println!("Reproducing paper Table 2: leading-order communication costs.\n");
    println!("Analytic words (Table 2 expressions x 4 bytes/word, f32) vs. bytes");
    println!("measured on the message-passing fabric. The analytic side keeps only");
    println!("the leading terms and ignores collective-tree constant factors, so");
    println!("agreement within a small factor validates the scaling.\n");

    let dims = vec![24usize, 24, 24];
    let r = 4usize;
    let n = dims[0];
    let d = dims.len();
    let spec = SyntheticSpec::new(&dims, &vec![r; d], 1e-4, 3);

    let mut table = Table::new(
        "Table 2: analytic vs measured communication volume (bytes)",
        &[
            "grid",
            "algorithm",
            "analytic_bytes",
            "measured_bytes",
            "ratio",
        ],
    );

    for grid_dims in [vec![1usize, 2, 2], vec![2, 2, 2], vec![1, 1, 4]] {
        let prob = Problem::new(n, r, d, 1);

        // STHOSVD.
        {
            let bytes = measured_bytes(&spec, &grid_dims, |grid, x| {
                let _ = dist_sthosvd(grid, x, &SthosvdTruncation::Ranks(vec![r; d]));
            });
            let words = algorithm_cost(AlgKind::Sthosvd, &prob, &grid_dims).words();
            let p: f64 = grid_dims.iter().map(|&g| g as f64).product();
            // The model charges critical-path words per rank; the fabric
            // counts every byte sent by every rank.
            let analytic = words * 4.0 * p;
            table.row_strings(vec![
                format!("{grid_dims:?}"),
                "STHOSVD".into(),
                format!("{analytic:.3e}"),
                format!("{bytes:.3e}"),
                format!("{:.2}", bytes as f64 / analytic.max(1.0)),
            ]);
        }

        // One sweep of each HOOI variant.
        for (alg, cfg) in [
            (AlgKind::Hooi, HooiConfig::hooi()),
            (AlgKind::HooiDt, HooiConfig::hooi_dt()),
            (AlgKind::Hosi, HooiConfig::hosi()),
            (AlgKind::HosiDt, HooiConfig::hosi_dt()),
        ] {
            let cfg = cfg.with_max_iters(1).with_seed(1);
            let cfg2 = cfg.clone();
            let bytes = measured_bytes(&spec, &grid_dims, move |grid, x| {
                let _ = dist_hooi(grid, x, &vec![r; d], &cfg2);
            });
            let words = algorithm_cost(alg, &prob, &grid_dims).words();
            let p: f64 = grid_dims.iter().map(|&g| g as f64).product();
            let analytic = words * 4.0 * p;
            table.row_strings(vec![
                format!("{grid_dims:?}"),
                cfg.variant_name().into(),
                format!("{analytic:.3e}"),
                format!("{bytes:.3e}"),
                format!("{:.2}", bytes as f64 / analytic.max(1.0)),
            ]);
        }
    }

    table.print();
    table.save_csv("table2_comm");

    println!("Reading the table:");
    println!("- On P1=1 grids STHOSVD avoids the mode-1 redistribution entirely.");
    println!("- HOOI-DT's TTM traffic depends only on P_1 and P_d (reduce-scatters");
    println!("  on the two root branches); direct HOOI pays (d-1)x the P_1 term.");
    println!("- HOSI variants replace the n² Gram allreduces with n·r iterate");
    println!("  reductions plus an r^d core gather.");
}
