//! The shared §4.2 experiment: error-specified compression of a
//! simulation dataset, STHOSVD vs rank-adaptive HOSI-DT from three kinds
//! of starting ranks, at three tolerances.
//!
//! Figures 4/6/8 are the progression (time, error, relative size per
//! iteration); Figures 5/7/9 are the per-phase breakdowns. One run of
//! [`run_dataset_experiment`] produces the data for both.

use crate::report::Table;
use ratucker::prelude::*;
use ratucker::timings::ALL_PHASES;
use ratucker::RaResult;
use ratucker_datasets::{DatasetSpec, TOLERANCES, TOLERANCE_LABELS};
use ratucker_tensor::dense::DenseTensor;
use ratucker_tensor::scalar::Scalar;
use std::time::Instant;

/// The three starting-rank policies of §4.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StartKind {
    /// STHOSVD's final ranks for the same tolerance.
    Perfect,
    /// 25% above perfect.
    Over,
    /// 25% below perfect.
    Under,
}

impl StartKind {
    /// All policies in the paper's order.
    pub const ALL: [StartKind; 3] = [StartKind::Perfect, StartKind::Over, StartKind::Under];

    /// Label used in the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            StartKind::Perfect => "perfect",
            StartKind::Over => "over",
            StartKind::Under => "under",
        }
    }

    /// Applies the policy to STHOSVD's ranks (clamped to the dims).
    pub fn ranks(self, perfect: &[usize], dims: &[usize]) -> Vec<usize> {
        perfect
            .iter()
            .zip(dims)
            .map(|(&r, &n)| {
                let v = match self {
                    StartKind::Perfect => r as f64,
                    StartKind::Over => (r as f64 * 1.25).ceil(),
                    StartKind::Under => (r as f64 * 0.75).floor(),
                };
                (v as usize).clamp(1, n)
            })
            .collect()
    }
}

/// One recorded iteration of a rank-adaptive run.
#[derive(Clone, Debug)]
pub struct IterRecord {
    /// Cumulative wall seconds through this iteration.
    pub cum_seconds: f64,
    /// Relative error after the iteration's truncation/growth action.
    pub rel_error: f64,
    /// Relative size of the decomposition.
    pub rel_size: f64,
    /// Whether the error threshold held at this iteration.
    pub met: bool,
}

/// One RA configuration's progression.
#[derive(Clone, Debug)]
pub struct RaSeries {
    /// Tolerance ε.
    pub eps: f64,
    /// Starting-rank policy.
    pub start: StartKind,
    /// Starting ranks used.
    pub start_ranks: Vec<usize>,
    /// Per-iteration records.
    pub iters: Vec<IterRecord>,
    /// Index of the first iteration meeting the tolerance.
    pub met_at: Option<usize>,
    /// The full result (for breakdowns).
    pub result_timings: ratucker::Timings,
    /// Final ranks.
    pub final_ranks: Vec<usize>,
}

/// The STHOSVD reference at one tolerance.
#[derive(Clone, Debug)]
pub struct SthosvdSeries {
    /// Tolerance ε.
    pub eps: f64,
    /// Wall seconds.
    pub seconds: f64,
    /// Achieved relative error.
    pub rel_error: f64,
    /// Relative size.
    pub rel_size: f64,
    /// Final ranks (the "perfect" starting ranks).
    pub ranks: Vec<usize>,
    /// Phase breakdown.
    pub timings: ratucker::Timings,
}

/// Full experiment output for one dataset.
#[derive(Clone, Debug)]
pub struct DatasetReport {
    /// Dataset name.
    pub name: String,
    /// Tensor dims.
    pub dims: Vec<usize>,
    /// STHOSVD reference per tolerance.
    pub sthosvd: Vec<SthosvdSeries>,
    /// RA series per (tolerance × start policy).
    pub ra: Vec<RaSeries>,
}

/// Runs the full §4.2 experiment for one dataset at the given precision.
pub fn run_dataset_experiment<T: Scalar>(spec: &DatasetSpec) -> DatasetReport {
    println!("[dataset] generating {} …", spec.name);
    let x: DenseTensor<T> = spec.build();
    let dims = x.shape().dims().to_vec();

    let mut sthosvd_series = Vec::new();
    let mut ra_series = Vec::new();

    for &eps in &TOLERANCES {
        // STHOSVD reference (also defines the "perfect" starting ranks).
        let t0 = Instant::now();
        let st = sthosvd(&x, &SthosvdTruncation::RelError(eps));
        let st_secs = t0.elapsed().as_secs_f64();
        println!(
            "[sthosvd] eps={eps}: {:.3}s err={:.4} ranks={:?}",
            st_secs,
            st.rel_error,
            st.tucker.ranks()
        );
        let perfect = st.tucker.ranks();
        sthosvd_series.push(SthosvdSeries {
            eps,
            seconds: st_secs,
            rel_error: st.rel_error,
            rel_size: st.tucker.relative_size(),
            ranks: perfect.clone(),
            timings: st.timings.clone(),
        });

        for start in StartKind::ALL {
            let start_ranks = start.ranks(&perfect, &dims);
            let cfg = RaConfig::ra_hosi_dt(eps, &start_ranks)
                .with_seed(7)
                .with_max_iters(3);
            let t0 = Instant::now();
            let res: RaResult<T> = ra_hooi(&x, &cfg);
            let _total = t0.elapsed().as_secs_f64();
            let mut cum = 0.0;
            let iters: Vec<IterRecord> = res
                .iterations
                .iter()
                .map(|it| {
                    cum += it.timings.total_secs();
                    IterRecord {
                        cum_seconds: cum,
                        rel_error: it.rel_error,
                        rel_size: it.relative_size,
                        met: it.met_threshold,
                    }
                })
                .collect();
            println!(
                "[ra-hosi-dt] eps={eps} start={}: met_at={:?} err={:.4} ranks={:?}",
                start.label(),
                res.met_at,
                res.rel_error,
                res.tucker.ranks()
            );
            ra_series.push(RaSeries {
                eps,
                start,
                start_ranks,
                iters,
                met_at: res.met_at,
                result_timings: res.timings.clone(),
                final_ranks: res.tucker.ranks(),
            });
        }
    }

    DatasetReport {
        name: spec.name.clone(),
        dims,
        sthosvd: sthosvd_series,
        ra: ra_series,
    }
}

impl DatasetReport {
    /// The progression table (Figs. 4/6/8).
    pub fn progression_table(&self) -> Table {
        let mut t = Table::new(
            &format!(
                "{}: error/time/size progression (RA-HOSI-DT vs STHOSVD)",
                self.name
            ),
            &[
                "eps",
                "series",
                "iter",
                "cum_seconds",
                "rel_error",
                "rel_size",
                "met",
            ],
        );
        for st in &self.sthosvd {
            t.row_strings(vec![
                format!("{}", st.eps),
                "STHOSVD".into(),
                "-".into(),
                format!("{:.4}", st.seconds),
                format!("{:.5}", st.rel_error),
                format!("{:.5}", st.rel_size),
                "yes".into(),
            ]);
        }
        for ra in &self.ra {
            for (i, it) in ra.iters.iter().enumerate() {
                t.row_strings(vec![
                    format!("{}", ra.eps),
                    format!("RA({})", ra.start.label()),
                    format!("{}", i + 1),
                    format!("{:.4}", it.cum_seconds),
                    format!("{:.5}", it.rel_error),
                    format!("{:.5}", it.rel_size),
                    if it.met { "yes".into() } else { "no".into() },
                ]);
            }
        }
        t
    }

    /// Speedup-at-threshold summary (the headline numbers of §4.2).
    pub fn speedup_table(&self) -> Table {
        let mut t = Table::new(
            &format!("{}: time-to-tolerance speedup over STHOSVD", self.name),
            &[
                "eps",
                "start",
                "iters_needed",
                "ra_seconds",
                "sthosvd_seconds",
                "speedup",
                "size_vs_sthosvd",
            ],
        );
        for ra in &self.ra {
            let st = self
                .sthosvd
                .iter()
                .find(|s| s.eps == ra.eps)
                .expect("matching tolerance");
            match ra.met_at {
                Some(k) => {
                    let ra_secs = ra.iters[k].cum_seconds;
                    let size_ratio = ra.iters[k].rel_size / st.rel_size;
                    t.row_strings(vec![
                        format!("{}", ra.eps),
                        ra.start.label().into(),
                        format!("{}", k + 1),
                        format!("{:.4}", ra_secs),
                        format!("{:.4}", st.seconds),
                        format!("{:.2}x", st.seconds / ra_secs),
                        format!("{:.3}", size_ratio),
                    ]);
                }
                None => {
                    t.row_strings(vec![
                        format!("{}", ra.eps),
                        ra.start.label().into(),
                        "never".into(),
                        "-".into(),
                        format!("{:.4}", st.seconds),
                        "-".into(),
                        "-".into(),
                    ]);
                }
            }
        }
        t
    }

    /// The per-phase breakdown table (Figs. 5/7/9).
    pub fn breakdown_table(&self) -> Table {
        let mut header: Vec<String> = vec!["eps".into(), "series".into(), "total_s".into()];
        for p in ALL_PHASES {
            header.push(p.label().to_string());
        }
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(
            &format!("{}: running-time breakdown by phase (seconds)", self.name),
            &header_refs,
        );
        let phase_cells = |tm: &ratucker::Timings| -> Vec<String> {
            ALL_PHASES
                .iter()
                .map(|&p| format!("{:.4}", tm.secs(p)))
                .collect()
        };
        for st in &self.sthosvd {
            let mut row = vec![
                format!("{}", st.eps),
                "STHOSVD".to_string(),
                format!("{:.4}", st.timings.total_secs()),
            ];
            row.extend(phase_cells(&st.timings));
            t.row_strings(row);
        }
        for ra in &self.ra {
            let mut row = vec![
                format!("{}", ra.eps),
                format!("RA({})", ra.start.label()),
                format!("{:.4}", ra.result_timings.total_secs()),
            ];
            row.extend(phase_cells(&ra.result_timings));
            t.row_strings(row);
        }
        t
    }

    /// The labels of the tolerance ladder, for captions.
    pub fn tolerance_labels() -> &'static [&'static str] {
        &TOLERANCE_LABELS
    }
}
