//! Shared harness utilities for the table/figure reproduction binaries.
//!
//! Each paper element has one binary (`table1`, `table2`, `figure1` …
//! `figure9`); they print human-readable reports to stdout and write CSV
//! series to `results/` so the numbers land in EXPERIMENTS.md unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod datasets_experiment;
pub mod plot;
pub mod report;

pub use calibrate::calibrated_machine;
pub use plot::{loglog_chart, Series};
pub use report::{write_csv, Table};

/// Scaled-down stand-ins for the paper's synthetic problems, sized to run
/// the *functional* (threaded) pipeline in seconds on one host.
pub mod problems {
    /// 3-way synthetic: paper uses 3750³ rank 30; functional runs use this.
    pub const THREE_WAY_DIMS: [usize; 3] = [96, 96, 96];
    /// Rank of the 3-way synthetic stand-in.
    pub const THREE_WAY_RANK: usize = 8;
    /// 4-way synthetic: paper uses 560⁴ rank 10; functional runs use this.
    pub const FOUR_WAY_DIMS: [usize; 4] = [28, 28, 28, 28];
    /// Rank of the 4-way synthetic stand-in.
    pub const FOUR_WAY_RANK: usize = 4;
    /// Noise level of the paper's synthetic experiments.
    pub const NOISE: f64 = 1e-4;
}
