//! Criterion microbenchmarks of the message-passing runtime: collective
//! latency/throughput over the thread fabric at small rank counts.
//! These calibrate expectations for the functional distributed runs
//! (thread scheduling dominates at this scale — which is exactly why the
//! paper-scale curves come from the α–β model instead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ratucker_mpi::{sum_op, Universe};
use std::hint::black_box;
use std::time::Duration;

fn bench_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("allreduce_f64");
    g.measurement_time(Duration::from_secs(2)).sample_size(10);
    for p in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("ranks", p), &p, |b, &p| {
            let u = Universe::new(p);
            b.iter(|| {
                let out = u.run(|comm| comm.allreduce(vec![1.0f64; 1024], sum_op));
                black_box(out[0][0])
            });
        });
    }
    g.finish();
}

fn bench_reduce_scatter(c: &mut Criterion) {
    let mut g = c.benchmark_group("reduce_scatter_f32");
    g.measurement_time(Duration::from_secs(2)).sample_size(10);
    for p in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("ranks", p), &p, |b, &p| {
            let u = Universe::new(p);
            let counts = vec![512usize; p];
            b.iter(|| {
                let out = u.run(|comm| comm.reduce_scatter(vec![1.0f32; 512 * p], &counts, sum_op));
                black_box(out[0][0])
            });
        });
    }
    g.finish();
}

fn bench_alltoallv(c: &mut Criterion) {
    let mut g = c.benchmark_group("alltoallv_f32");
    g.measurement_time(Duration::from_secs(2)).sample_size(10);
    for p in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("ranks", p), &p, |b, &p| {
            let u = Universe::new(p);
            b.iter(|| {
                let out = u.run(|comm| {
                    let blocks: Vec<Vec<f32>> = (0..p).map(|_| vec![1.0f32; 256]).collect();
                    comm.alltoallv(blocks)
                });
                black_box(out[0][0][0])
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_allreduce,
    bench_reduce_scatter,
    bench_alltoallv
);
criterion_main!(benches);
