//! Ablation benches for the paper's two optimizations (Table 1 rows):
//!
//! - dimension-tree memoization: one HOOI sweep with direct multi-TTMs vs
//!   the tree (expected ≈ d/2 TTM saving for d = 4);
//! - subspace-iteration LLSV: a Gram+EVD sweep vs an SI sweep (removes
//!   the O(n³) eigensolve);
//! - the rank-adaptive core analysis in isolation (expected negligible).

use criterion::{criterion_group, criterion_main, Criterion};
use ratucker::prelude::*;
use ratucker::{analyze_core, hooi_with_init};
use ratucker_tensor::dense::DenseTensor;
use std::hint::black_box;
use std::time::Duration;

fn synthetic(dims: &[usize], r: usize, seed: u64) -> DenseTensor<f32> {
    let d = dims.len();
    SyntheticSpec::new(dims, &vec![r; d], 1e-4, seed).build()
}

fn sweep_time(c: &mut Criterion, name: &str, x: &DenseTensor<f32>, r: usize, cfg: HooiConfig) {
    let d = x.order();
    let ranks = vec![r; d];
    let init = ratucker::hooi::random_init::<f32>(x.shape().dims(), &ranks, 9);
    c.bench_function(name, |b| {
        b.iter(|| {
            let res = hooi_with_init(x, &ranks, init.clone(), &cfg.clone().with_max_iters(1));
            black_box(res.rel_error())
        })
    });
}

fn bench_dim_tree_ablation(c: &mut Criterion) {
    let x = synthetic(&[20, 20, 20, 20], 4, 21);
    sweep_time(c, "sweep_4way/direct_ttm", &x, 4, HooiConfig::hooi());
    sweep_time(c, "sweep_4way/dim_tree", &x, 4, HooiConfig::hooi_dt());
}

fn bench_subspace_ablation(c: &mut Criterion) {
    let x = synthetic(&[72, 72, 72], 6, 23);
    sweep_time(c, "sweep_3way/gram_evd", &x, 6, HooiConfig::hooi_dt());
    sweep_time(c, "sweep_3way/subspace_iter", &x, 6, HooiConfig::hosi_dt());
}

fn bench_core_analysis(c: &mut Criterion) {
    let mut g = c.benchmark_group("core_analysis");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    for r in [8usize, 16] {
        let core = DenseTensor::from_fn([r, r, r], |idx| {
            (-0.4 * idx.iter().sum::<usize>() as f64).exp()
        });
        let xns = core.squared_norm_f64() * 1.0001;
        g.bench_function(format!("r{r}^3"), |b| {
            b.iter(|| black_box(analyze_core(&core, &[512, 512, 512], xns, 0.05)))
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(Duration::from_secs(3))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_dim_tree_ablation, bench_subspace_ablation, bench_core_analysis
}
criterion_main!(benches);
