//! End-to-end algorithm benches: STHOSVD vs the four HOOI variants (the
//! Fig. 2 single-core comparison at bench scale) and the rank-adaptive
//! driver, in the high-compression regime where the paper's wins live.

use criterion::{criterion_group, criterion_main, Criterion};
use ratucker::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn bench_rank_specified(c: &mut Criterion) {
    // High compression: n/r = 8 — the regime boundary of §3.1.
    let dims = [64usize, 64, 64];
    let r = 8;
    let x = SyntheticSpec::new(&dims, &[r; 3], 1e-4, 31).build::<f32>();

    let mut g = c.benchmark_group("rank_specified_3way_64_r8");
    g.measurement_time(Duration::from_secs(4)).sample_size(10);
    g.bench_function("STHOSVD", |b| {
        b.iter(|| black_box(sthosvd(&x, &SthosvdTruncation::Ranks(vec![r; 3])).rel_error))
    });
    for cfg in [
        HooiConfig::hooi(),
        HooiConfig::hooi_dt(),
        HooiConfig::hosi(),
        HooiConfig::hosi_dt(),
    ] {
        let cfg = cfg.with_max_iters(2).with_seed(5);
        g.bench_function(cfg.variant_name(), |b| {
            b.iter(|| black_box(hooi(&x, &[r; 3], &cfg).rel_error()))
        });
    }
    g.finish();
}

fn bench_error_specified(c: &mut Criterion) {
    let dims = [48usize, 48, 48];
    let x = SyntheticSpec::new(&dims, &[6; 3], 5e-3, 37).build::<f32>();

    let mut g = c.benchmark_group("error_specified_3way_48");
    g.measurement_time(Duration::from_secs(4)).sample_size(10);
    g.bench_function("STHOSVD_eps0.05", |b| {
        b.iter(|| black_box(sthosvd(&x, &SthosvdTruncation::RelError(0.05)).rel_error))
    });
    g.bench_function("RA-HOSI-DT_eps0.05_perfect", |b| {
        let cfg = RaConfig::ra_hosi_dt(0.05, &[6, 6, 6])
            .with_seed(5)
            .stopping_on_threshold();
        b.iter(|| black_box(ra_hooi(&x, &cfg).rel_error))
    });
    g.bench_function("RA-HOSI-DT_eps0.05_over", |b| {
        let cfg = RaConfig::ra_hosi_dt(0.05, &[8, 8, 8])
            .with_seed(5)
            .stopping_on_threshold();
        b.iter(|| black_box(ra_hooi(&x, &cfg).rel_error))
    });
    g.finish();
}

criterion_group!(benches, bench_rank_specified, bench_error_specified);
criterion_main!(benches);
