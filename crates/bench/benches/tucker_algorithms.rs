//! End-to-end algorithm benches: STHOSVD vs the four HOOI variants (the
//! Fig. 2 single-core comparison at bench scale) and the rank-adaptive
//! driver, in the high-compression regime where the paper's wins live.

use criterion::{criterion_group, criterion_main, Criterion};
use ratucker::prelude::*;
use std::hint::black_box;
use std::time::Duration;

fn bench_rank_specified(c: &mut Criterion) {
    // High compression: n/r = 8 — the regime boundary of §3.1.
    let dims = [64usize, 64, 64];
    let r = 8;
    let x = SyntheticSpec::new(&dims, &[r; 3], 1e-4, 31).build::<f32>();

    let mut g = c.benchmark_group("rank_specified_3way_64_r8");
    g.measurement_time(Duration::from_secs(4)).sample_size(10);
    g.bench_function("STHOSVD", |b| {
        b.iter(|| black_box(sthosvd(&x, &SthosvdTruncation::Ranks(vec![r; 3])).rel_error))
    });
    for cfg in [
        HooiConfig::hooi(),
        HooiConfig::hooi_dt(),
        HooiConfig::hosi(),
        HooiConfig::hosi_dt(),
    ] {
        let cfg = cfg.with_max_iters(2).with_seed(5);
        g.bench_function(cfg.variant_name(), |b| {
            b.iter(|| black_box(hooi(&x, &[r; 3], &cfg).rel_error()))
        });
    }
    g.finish();
}

fn bench_error_specified(c: &mut Criterion) {
    let dims = [48usize, 48, 48];
    let x = SyntheticSpec::new(&dims, &[6; 3], 5e-3, 37).build::<f32>();

    let mut g = c.benchmark_group("error_specified_3way_48");
    g.measurement_time(Duration::from_secs(4)).sample_size(10);
    g.bench_function("STHOSVD_eps0.05", |b| {
        b.iter(|| black_box(sthosvd(&x, &SthosvdTruncation::RelError(0.05)).rel_error))
    });
    g.bench_function("RA-HOSI-DT_eps0.05_perfect", |b| {
        let cfg = RaConfig::ra_hosi_dt(0.05, &[6, 6, 6])
            .with_seed(5)
            .stopping_on_threshold();
        b.iter(|| black_box(ra_hooi(&x, &cfg).rel_error))
    });
    g.bench_function("RA-HOSI-DT_eps0.05_over", |b| {
        let cfg = RaConfig::ra_hosi_dt(0.05, &[8, 8, 8])
            .with_seed(5)
            .stopping_on_threshold();
        b.iter(|| black_box(ra_hooi(&x, &cfg).rel_error))
    });
    g.finish();
}

fn bench_ttm_overlap(c: &mut Criterion) {
    use rand::SeedableRng;
    use ratucker_dist::{set_overlap, DistTensor, OverlapMode};
    use ratucker_mpi::{CartGrid, SchedulePolicy, Universe};
    use ratucker_tensor::matrix::Matrix;
    use ratucker_tensor::random::normal_matrix;
    use ratucker_tensor::ttm::Transpose;

    // P = 4 along mode 1: the TTM reduce-scatters over a 4-rank fiber,
    // the shape where `Overlap on` pipelines slab GEMMs behind the ring.
    let dims = [64usize, 64, 64];
    let r = 32;
    let x = SyntheticSpec::new(&dims, &[8; 3], 1e-4, 41).build::<f32>();
    let mut rng = rand::rngs::StdRng::seed_from_u64(41);
    let m: Matrix<f32> = normal_matrix(dims[1], r, &mut rng);
    let grid_dims = [1usize, 4, 1];
    let u = Universe::new(4);

    // Two fabric conditions: an unperturbed schedule (`Os`), and the
    // deterministic jitter schedule (`SeededRandom`) whose hash-derived
    // micro-delays model per-operation network latency. Overlap's win
    // lives in the jitter series: the pipelined path has the next
    // slab's GEMM queued behind every delayed fabric op, while the
    // blocking ring serializes the same delays into rendezvous stalls.
    for (cond, policy) in [
        ("", SchedulePolicy::Os),
        ("_jitter", SchedulePolicy::SeededRandom { seed: 17 }),
    ] {
        let mut g = c.benchmark_group(format!("ttm_overlap_p4_64_r32{cond}"));
        g.measurement_time(Duration::from_secs(4)).sample_size(10);
        for (label, mode) in [
            ("blocking", OverlapMode::Off),
            ("pipelined", OverlapMode::On),
        ] {
            g.bench_function(label, |b| {
                u.set_schedule_policy(policy);
                b.iter(|| {
                    let out = u.run(|comm| {
                        set_overlap(mode);
                        let grid = CartGrid::new(comm, &grid_dims);
                        let xd = DistTensor::scatter_from_replicated(&grid, &x);
                        // Several TTMs per universe run so the kernel under
                        // test dominates the scatter and thread-spawn cost.
                        let mut acc = 0.0f32;
                        for _ in 0..6 {
                            let y = ratucker_dist::dist_ttm(&grid, &xd, 1, &m, Transpose::Yes);
                            acc += y.local().data()[0];
                        }
                        acc
                    });
                    black_box(out[0])
                })
            });
        }
        g.finish();
        u.set_schedule_policy(SchedulePolicy::Os);
    }
}

criterion_group!(
    benches,
    bench_rank_specified,
    bench_error_specified,
    bench_ttm_overlap
);
criterion_main!(benches);
