//! Criterion microbenchmarks of the computational kernels: GEMM, TTM per
//! mode, unfolding Gram, the subspace-iteration contraction, symmetric
//! EVD, and QRCP. These are the building blocks whose relative costs
//! drive every Table 1 row.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ratucker_linalg::{qrcp, sym_evd};
use ratucker_tensor::prelude::*;
use ratucker_tensor::{contract_all_but, gram};
use std::hint::black_box;
use std::time::Duration;

fn tensor_3way(n: usize) -> DenseTensor<f32> {
    DenseTensor::from_fn([n, n, n], |idx| {
        ((idx[0] * 31 + idx[1] * 7 + idx[2] + 1) as f32 * 0.01).sin()
    })
}

fn factor(n: usize, r: usize) -> Matrix<f32> {
    Matrix::from_fn(n, r, |i, j| ((i * 13 + j * 5 + 1) as f32 * 0.01).cos())
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    for n in [64usize, 128] {
        let a = factor(n, n);
        let b = factor(n, n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)));
        });
    }
    g.finish();
}

fn bench_ttm_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("ttm_mode");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    let n = 64;
    let r = 8;
    let x = tensor_3way(n);
    for mode in 0..3 {
        let u = factor(n, r);
        g.bench_with_input(BenchmarkId::from_parameter(mode), &mode, |bench, &m| {
            bench.iter(|| black_box(ttm(&x, m, &u, Transpose::Yes)));
        });
    }
    g.finish();
}

fn bench_gram_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("gram_mode");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    let x = tensor_3way(48);
    for mode in 0..3 {
        g.bench_with_input(BenchmarkId::from_parameter(mode), &mode, |bench, &m| {
            bench.iter(|| black_box(gram(&x, m)));
        });
    }
    g.finish();
}

fn bench_contract(c: &mut Criterion) {
    let mut g = c.benchmark_group("si_contract");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    let n = 64;
    let r = 8;
    // Y has dims (n, r, r) — the all-but-one product shape for mode 0.
    let y = DenseTensor::from_fn([n, r, r], |idx| {
        ((idx[0] + idx[1] * 3 + idx[2]) as f32).sin()
    });
    let core = DenseTensor::from_fn([r, r, r], |idx| {
        ((idx[0] * 2 + idx[1] + idx[2]) as f32).cos()
    });
    g.bench_function("mode0_n64_r8", |bench| {
        bench.iter(|| black_box(contract_all_but(&y, &core, 0)));
    });
    g.finish();
}

fn bench_evd_vs_qrcp(c: &mut Criterion) {
    // The §3.4 trade: EVD of an n×n Gram vs QRCP of an n×r iterate.
    let mut g = c.benchmark_group("llsv_factorizations");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    for n in [96usize, 192] {
        let r = 12;
        let gram_m = {
            let b = factor(n, n);
            b.matmul(&b.transpose())
        };
        let z = factor(n, r);
        g.bench_with_input(BenchmarkId::new("sym_evd_nxn", n), &n, |bench, _| {
            bench.iter(|| black_box(sym_evd(&gram_m)));
        });
        g.bench_with_input(BenchmarkId::new("qrcp_nxr", n), &n, |bench, _| {
            bench.iter(|| black_box(qrcp(&z)));
        });
    }
    g.finish();
}

fn bench_multithread(c: &mut Criterion) {
    // Thread-sweep series for the intra-rank worker pool: the same
    // kernels as `gemm`/`ttm_mode`/`gram_mode` but with 2 workers.
    // Results are bit-identical to the serial series by construction
    // (see crates/tensor/src/par.rs); these series track wall-clock
    // scaling, which only materializes on hosts with >1 core — on a
    // single-core runner they sit at the serial numbers plus a small
    // spawn overhead.
    ratucker_tensor::par::set_num_threads(2);

    let mut g = c.benchmark_group("gemm_t2");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    let n = 128usize;
    let a = factor(n, n);
    let b = factor(n, n);
    g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
        bench.iter(|| black_box(a.matmul(&b)));
    });
    g.finish();

    let mut g = c.benchmark_group("ttm_mode_t2");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    let x = tensor_3way(64);
    for mode in 0..3 {
        let u = factor(64, 8);
        g.bench_with_input(BenchmarkId::from_parameter(mode), &mode, |bench, &m| {
            bench.iter(|| black_box(ttm(&x, m, &u, Transpose::Yes)));
        });
    }
    g.finish();

    let mut g = c.benchmark_group("gram_mode_t2");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    let x = tensor_3way(48);
    for mode in 0..3 {
        g.bench_with_input(BenchmarkId::from_parameter(mode), &mode, |bench, &m| {
            bench.iter(|| black_box(gram(&x, m)));
        });
    }
    g.finish();

    ratucker_tensor::par::set_num_threads(1);
}

criterion_group!(
    benches,
    bench_gemm,
    bench_ttm_modes,
    bench_gram_modes,
    bench_multithread,
    bench_contract,
    bench_evd_vs_qrcp
);
criterion_main!(benches);
