//! The comm/compute overlap knob (`Overlap on|off`, `--overlap`).
//!
//! When **on** (the default), the distributed TTM and the SI contraction
//! pipeline their collectives: slab `k`'s reduce-scatter (or allreduce)
//! is in flight while slab `k+1`'s local GEMM and packing run, using the
//! split-phase requests of `ratucker_mpi::request`. When **off**, the
//! kernels run their original fully-blocking paths.
//!
//! The setting is **thread-local**: each simulated rank is an OS thread,
//! so a rank closure (or the CLI's rank launcher) sets the mode for
//! itself at the start of a run and concurrently-running tests cannot
//! interfere with each other. Rank threads are freshly spawned per
//! `Universe` run, so the default (`On`) applies unless the closure
//! overrides it — all ranks of one job must agree, the usual collective
//! contract.
//!
//! # Determinism contract
//!
//! The pipelined paths are **bit-identical** to the blocking paths (see
//! DESIGN.md §17): slab-local GEMMs are column/right-slab restrictions
//! of the blocking GEMM (bit-equal per the §16 kernel contract), the
//! split-phase collectives reproduce the blocking algorithms' exact
//! floating-point accumulation order, and slabs are waited and
//! assembled in canonical ascending order before any combine. The knob
//! therefore changes wall-clock only — never results.

use std::cell::Cell;

/// Whether the distributed TTM/SI kernels pipeline communication behind
/// the next slab's local compute (see the module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OverlapMode {
    /// Pipelined split-phase collectives (the default).
    #[default]
    On,
    /// Original blocking collectives.
    Off,
}

impl OverlapMode {
    /// Is the pipelined path selected?
    pub fn is_on(&self) -> bool {
        matches!(self, OverlapMode::On)
    }

    /// Parses `on` / `off` (the CLI flag values).
    pub fn parse(s: &str) -> Option<OverlapMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "on" => Some(OverlapMode::On),
            "off" => Some(OverlapMode::Off),
            _ => None,
        }
    }
}

thread_local! {
    static OVERLAP: Cell<OverlapMode> = const { Cell::new(OverlapMode::On) };
}

/// Sets this rank thread's overlap mode for subsequent kernels.
pub fn set_overlap(mode: OverlapMode) {
    OVERLAP.with(|m| m.set(mode));
}

/// This rank thread's current overlap mode.
pub fn overlap() -> OverlapMode {
    OVERLAP.with(|m| m.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_defaults_on_parses_and_is_thread_local() {
        assert_eq!(OverlapMode::parse("on"), Some(OverlapMode::On));
        assert_eq!(OverlapMode::parse(" Off "), Some(OverlapMode::Off));
        assert_eq!(OverlapMode::parse("auto"), None);
        assert!(OverlapMode::On.is_on());
        set_overlap(OverlapMode::Off);
        // Another thread still sees the default.
        let other = std::thread::spawn(overlap).join().unwrap();
        assert_eq!(other, OverlapMode::On);
        assert_eq!(overlap(), OverlapMode::Off);
        set_overlap(OverlapMode::On);
    }
}
