//! Block distributions of tensor modes over a processor grid.
//!
//! Mode `k` of global extent `n_k` is split into `P_k` contiguous blocks;
//! the first `n_k mod P_k` blocks get one extra element (TuckerMPI's
//! near-even division — the paper notes the resulting load imbalance for
//! small modes in §4). A rank at grid coordinate `q` in mode `k` owns the
//! `q`-th block.

use ratucker_tensor::shape::Shape;

/// The contiguous index range a coordinate owns in one mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockRange {
    /// First global index owned.
    pub offset: usize,
    /// Number of indices owned.
    pub len: usize,
}

/// Size of block `q` when `n` indices split over `p` blocks.
pub fn block_len(n: usize, p: usize, q: usize) -> usize {
    debug_assert!(q < p);
    n / p + usize::from(q < n % p)
}

/// Offset of block `q`.
pub fn block_offset(n: usize, p: usize, q: usize) -> usize {
    debug_assert!(q < p);
    let base = n / p;
    let rem = n % p;
    q * base + q.min(rem)
}

/// The block range of coordinate `q`.
pub fn block_range(n: usize, p: usize, q: usize) -> BlockRange {
    BlockRange {
        offset: block_offset(n, p, q),
        len: block_len(n, p, q),
    }
}

/// The coordinate owning global index `i`.
pub fn owner_of(n: usize, p: usize, i: usize) -> usize {
    debug_assert!(i < n);
    let base = n / p;
    let rem = n % p;
    let boundary = rem * (base + 1);
    if i < boundary {
        i / (base + 1)
    } else {
        rem + (i - boundary) / base.max(1)
    }
}

/// A full tensor distribution: global shape × grid dimensions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TensorDist {
    global: Shape,
    grid_dims: Vec<usize>,
}

impl TensorDist {
    /// Creates a distribution; every mode must have at least one index per
    /// grid slice (`n_k ≥ P_k`) so local tensors are never empty.
    pub fn new(global: Shape, grid_dims: &[usize]) -> TensorDist {
        assert_eq!(
            global.order(),
            grid_dims.len(),
            "grid order must match tensor order"
        );
        for (k, (&n, &p)) in global.dims().iter().zip(grid_dims).enumerate() {
            assert!(p >= 1, "grid dims must be positive");
            assert!(
                n >= p,
                "mode {k}: extent {n} smaller than grid dimension {p} would leave empty ranks"
            );
        }
        TensorDist {
            global,
            grid_dims: grid_dims.to_vec(),
        }
    }

    /// The global shape.
    pub fn global(&self) -> &Shape {
        &self.global
    }

    /// The grid dimensions.
    pub fn grid_dims(&self) -> &[usize] {
        &self.grid_dims
    }

    /// The index range owned in mode `k` at grid coordinate `q`.
    pub fn range(&self, mode: usize, q: usize) -> BlockRange {
        block_range(self.global.dim(mode), self.grid_dims[mode], q)
    }

    /// The local shape at the given grid coordinates.
    pub fn local_shape(&self, coords: &[usize]) -> Shape {
        let dims: Vec<usize> = (0..self.global.order())
            .map(|k| self.range(k, coords[k]).len)
            .collect();
        Shape::new(&dims)
    }

    /// Replaces mode `k`'s global extent (the TTM output distribution).
    pub fn with_dim(&self, mode: usize, new_dim: usize) -> TensorDist {
        TensorDist::new(self.global.with_dim(mode, new_dim), &self.grid_dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_partition_exactly() {
        for (n, p) in [(10, 3), (7, 7), (16, 4), (5, 2), (100, 7)] {
            let mut covered = 0;
            for q in 0..p {
                let r = block_range(n, p, q);
                assert_eq!(r.offset, covered, "n={n} p={p} q={q}");
                covered += r.len;
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn near_even_division() {
        // 10 over 3 → 4, 3, 3.
        assert_eq!(block_len(10, 3, 0), 4);
        assert_eq!(block_len(10, 3, 1), 3);
        assert_eq!(block_len(10, 3, 2), 3);
    }

    #[test]
    fn owner_matches_ranges() {
        for (n, p) in [(10, 3), (7, 2), (12, 5)] {
            for i in 0..n {
                let q = owner_of(n, p, i);
                let r = block_range(n, p, q);
                assert!(i >= r.offset && i < r.offset + r.len, "n={n} p={p} i={i}");
            }
        }
    }

    #[test]
    fn local_shapes_cover_global() {
        let dist = TensorDist::new(Shape::new(&[10, 7, 5]), &[3, 2, 1]);
        let mut total = 0usize;
        for c0 in 0..3 {
            for c1 in 0..2 {
                let ls = dist.local_shape(&[c0, c1, 0]);
                total += ls.num_entries();
            }
        }
        assert_eq!(total, 350);
    }

    #[test]
    #[should_panic(expected = "empty ranks")]
    fn rejects_oversubscribed_mode() {
        TensorDist::new(Shape::new(&[2, 8]), &[4, 1]);
    }

    #[test]
    fn with_dim_redistributes_mode() {
        let dist = TensorDist::new(Shape::new(&[10, 8]), &[2, 2]);
        let t = dist.with_dim(1, 4);
        assert_eq!(t.global().dims(), &[10, 4]);
        assert_eq!(t.range(1, 0).len, 2);
    }
}
