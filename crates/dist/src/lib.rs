//! Block-distributed dense tensors — the TuckerMPI-equivalent substrate.
//!
//! A global `d`-way tensor is distributed over a `P_1 × … × P_d` Cartesian
//! processor grid with near-even contiguous blocks per mode; factor
//! matrices are replicated on every rank (TuckerMPI's convention). On top
//! of the distribution this crate implements the three parallel kernels
//! the Tucker algorithms need:
//!
//! - [`ops::dist_ttm`] — TTM with reduce-scatter along the mode fiber;
//! - [`ops::dist_gram`] — unfolding Gram via fiber all-to-all
//!   redistribution + local rank-k update + allreduce;
//! - [`ops::dist_contract`] — the paper's new all-but-one contraction for
//!   subspace iteration (§3.4), with sum-reduce + broadcast so each rank
//!   runs the subsequent QR redundantly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distribution;
pub mod dtensor;
pub mod ops;
pub mod overlap;
pub mod redistribute;
pub mod replica;

pub use distribution::{block_len, block_offset, block_range, owner_of, BlockRange, TensorDist};
pub use dtensor::DistTensor;
pub use ops::{
    dist_contract, dist_gram, dist_multi_ttm_all_but, dist_ttm, try_dist_contract, try_dist_gram,
    try_dist_gram_checked, try_dist_multi_ttm_all_but, try_dist_ttm, try_dist_ttm_checked,
    AbftMode,
};
pub use overlap::{overlap, set_overlap, OverlapMode};
pub use redistribute::{try_redistribute, BlockPiece};
pub use replica::{restorer_for, try_refresh_buddies, BuddyStore, Replica};
