//! The distributed dense tensor.
//!
//! A [`DistTensor`] is one rank's view of a block-distributed tensor: the
//! distribution metadata plus the local block stored as an ordinary
//! [`DenseTensor`]. Collective constructors/gathers take the
//! [`CartGrid`] explicitly; every rank of the grid must call them together.

use crate::distribution::TensorDist;
use ratucker_mpi::{CartGrid, CommError};
use ratucker_tensor::dense::DenseTensor;
use ratucker_tensor::scalar::Scalar;
use ratucker_tensor::shape::Shape;

/// One rank's block of a distributed tensor.
#[derive(Clone, Debug)]
pub struct DistTensor<T: Scalar> {
    dist: TensorDist,
    coords: Vec<usize>,
    local: DenseTensor<T>,
}

impl<T: Scalar> DistTensor<T> {
    /// Wraps an already-extracted local block.
    pub fn from_parts(dist: TensorDist, coords: Vec<usize>, local: DenseTensor<T>) -> Self {
        assert_eq!(
            dist.local_shape(&coords),
            *local.shape(),
            "local block shape does not match the distribution"
        );
        DistTensor {
            dist,
            coords,
            local,
        }
    }

    /// Builds the distributed tensor from a global index function; each
    /// rank evaluates only its own block. Collective.
    pub fn from_fn(grid: &CartGrid, global: Shape, mut f: impl FnMut(&[usize]) -> T) -> Self {
        let dist = TensorDist::new(global, grid.dims());
        let coords = grid.coords().to_vec();
        let ranges: Vec<_> = (0..dist.global().order())
            .map(|k| dist.range(k, coords[k]))
            .collect();
        let local_shape = dist.local_shape(&coords);
        let mut gidx = vec![0usize; local_shape.order()];
        let local = DenseTensor::from_fn(local_shape, |lidx| {
            for (k, (&li, r)) in lidx.iter().zip(&ranges).enumerate() {
                gidx[k] = r.offset + li;
            }
            f(&gidx)
        });
        DistTensor {
            dist,
            coords,
            local,
        }
    }

    /// Extracts this rank's block from a replicated global tensor.
    pub fn scatter_from_replicated(grid: &CartGrid, global: &DenseTensor<T>) -> Self {
        let g = global.clone();
        let shape = g.shape().clone();
        Self::from_fn(grid, shape, |idx| g.get(idx))
    }

    /// The distribution metadata.
    pub fn dist(&self) -> &TensorDist {
        &self.dist
    }

    /// The global shape.
    pub fn global_shape(&self) -> &Shape {
        self.dist.global()
    }

    /// This rank's grid coordinates.
    pub fn coords(&self) -> &[usize] {
        &self.coords
    }

    /// The local block.
    pub fn local(&self) -> &DenseTensor<T> {
        &self.local
    }

    /// Mutable access to the local block.
    pub fn local_mut(&mut self) -> &mut DenseTensor<T> {
        &mut self.local
    }

    /// Consumes into the local block.
    pub fn into_local(self) -> DenseTensor<T> {
        self.local
    }

    /// Global squared norm: sum of local squared norms, allreduced.
    /// Collective.
    pub fn squared_norm(&self, grid: &CartGrid) -> f64 {
        self.try_squared_norm(grid)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`DistTensor::squared_norm`].
    pub fn try_squared_norm(&self, grid: &CartGrid) -> Result<f64, CommError> {
        let local = self.local.squared_norm_f64();
        let summed = grid.comm.try_allreduce(vec![local], ratucker_mpi::sum_op)?;
        Ok(summed[0])
    }

    /// Assembles the full tensor on every rank (allgather of all blocks).
    /// Collective; cost `O(N)` words per rank — used for the (small) core
    /// tensor in the rank-adaptive core analysis and in tests.
    pub fn gather_replicated(&self, grid: &CartGrid) -> DenseTensor<T> {
        self.try_gather_replicated(grid)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`DistTensor::gather_replicated`].
    pub fn try_gather_replicated(&self, grid: &CartGrid) -> Result<DenseTensor<T>, CommError> {
        let payload = self.local.data().to_vec();
        let blocks = grid.comm.try_allgatherv(payload)?;
        let mut out = DenseTensor::zeros(self.dist.global().clone());
        let d = self.dist.global().order();
        for (rank, block) in blocks.into_iter().enumerate() {
            let coords = CartGrid::rank_to_coords(rank, grid.dims());
            let ranges: Vec<_> = (0..d).map(|k| self.dist.range(k, coords[k])).collect();
            let local_dims: Vec<usize> = ranges.iter().map(|r| r.len).collect();
            let local_shape = Shape::new(&local_dims);
            if block.len() != local_shape.num_entries() {
                // Channel desync from a dropped message: typed and
                // failure-class rather than an untyped panic.
                return Err(CommError::SizeMismatch {
                    src: grid.comm.world_rank_of(rank),
                    dst: grid.comm.world_rank_of(grid.comm.rank()),
                    expected: local_shape.num_entries(),
                    got: block.len(),
                });
            }
            let mut gidx = vec![0usize; d];
            for (off, lidx) in local_shape.indices().enumerate() {
                for k in 0..d {
                    gidx[k] = ranges[k].offset + lidx[k];
                }
                out.set(&gidx, block[off]);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratucker_mpi::Universe;

    fn global_value(idx: &[usize]) -> f64 {
        idx.iter()
            .enumerate()
            .map(|(k, &i)| ((k + 1) * 100 + i) as f64)
            .sum::<f64>()
            .sin()
    }

    #[test]
    fn scatter_gather_roundtrip() {
        for grid_dims in [vec![1, 1, 1], vec![2, 1, 2], vec![4, 1, 1], vec![2, 2, 2]] {
            let p: usize = grid_dims.iter().product();
            let gd = grid_dims.clone();
            let results = Universe::launch(p, move |c| {
                let grid = CartGrid::new(c, &gd);
                let x = DistTensor::from_fn(&grid, Shape::new(&[6, 5, 4]), global_value);
                x.gather_replicated(&grid)
            });
            let reference = DenseTensor::from_fn([6, 5, 4], global_value);
            for r in results {
                assert_eq!(r.max_abs_diff(&reference), 0.0, "grid {grid_dims:?}");
            }
        }
    }

    #[test]
    fn local_blocks_tile_global_norm() {
        let results = Universe::launch(4, |c| {
            let grid = CartGrid::new(c, &[2, 2]);
            let x = DistTensor::from_fn(&grid, Shape::new(&[7, 5]), global_value);
            x.squared_norm(&grid)
        });
        let reference = DenseTensor::from_fn([7, 5], global_value).squared_norm_f64();
        for r in results {
            assert!((r - reference).abs() < 1e-9);
        }
    }

    #[test]
    fn scatter_from_replicated_matches_from_fn() {
        let results = Universe::launch(2, |c| {
            let grid = CartGrid::new(c, &[2, 1]);
            let reference = DenseTensor::from_fn([4, 3], global_value);
            let a = DistTensor::scatter_from_replicated(&grid, &reference);
            let b = DistTensor::from_fn(&grid, Shape::new(&[4, 3]), global_value);
            a.local().max_abs_diff(b.local())
        });
        for r in results {
            assert_eq!(r, 0.0);
        }
    }
}
