//! Diskless buddy replication of local tensor blocks.
//!
//! Checkpoint-free fault tolerance in the style of diskless
//! checkpointing: at every sweep boundary each grid rank pushes a copy
//! of its local tensor block to its `k` ring successors on the grid
//! communicator (`k` = the replication degree), so when rank `r` dies,
//! ranks `r+1 … r+k (mod P)` each hold a warm replica of its block and
//! the survivors can rebuild the global tensor **in memory** — no disk
//! restart (see [`crate::redistribute::try_redistribute`]).
//!
//! Only the local block needs replication: factor matrices are already
//! replicated on every rank (TuckerMPI's convention, which this code
//! follows), and the sweep-local RNG state is re-derived from
//! `(seed, sweep)` — so the block is the one piece of rank-private
//! state a failure can destroy.
//!
//! Degree-`k` replication survives any failure pattern in which no run
//! of `k+1` ring-consecutive ranks dies between two refreshes; the
//! memory cost is `k` extra blocks per rank. `k = 1` (the default)
//! covers the single-failure model of the paper's scale analysis.

use crate::dtensor::DistTensor;
use crate::ops::budget_error;
use crate::redistribute::BlockPiece;
use ratucker_mem::{self as mem, MemPhase};
use ratucker_mpi::{CartGrid, CommError};
use ratucker_tensor::dense::DenseTensor;
use ratucker_tensor::scalar::Scalar;

/// A replica of another rank's local block.
#[derive(Clone, Debug)]
pub struct Replica<T: Scalar> {
    /// Grid-communicator rank of the block's owner.
    owner: usize,
    /// The owner's grid coordinates.
    coords: Vec<usize>,
    /// Copy of the owner's local block.
    block: DenseTensor<T>,
}

impl<T: Scalar> Replica<T> {
    /// The grid rank whose block this replicates.
    pub fn owner(&self) -> usize {
        self.owner
    }

    /// The owner's grid coordinates.
    pub fn coords(&self) -> &[usize] {
        &self.coords
    }

    /// The replicated block.
    pub fn block(&self) -> &DenseTensor<T> {
        &self.block
    }

    /// Converts the replica into a redistribution piece (the dead
    /// owner's block, re-injected by its buddy).
    pub fn to_piece(&self, x: &DistTensor<T>) -> BlockPiece<T> {
        BlockPiece::from_block(x.dist(), &self.coords, &self.block)
    }
}

/// The replicas one rank holds: blocks of its `degree` ring
/// predecessors on the grid communicator, refreshed at sweep
/// boundaries by [`try_refresh_buddies`].
#[derive(Clone, Debug)]
pub struct BuddyStore<T: Scalar> {
    degree: usize,
    replicas: Vec<Replica<T>>,
}

impl<T: Scalar> BuddyStore<T> {
    /// An empty store (replication disabled).
    pub fn disabled() -> Self {
        BuddyStore {
            degree: 0,
            replicas: Vec::new(),
        }
    }

    /// The effective replication degree.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The replica of grid rank `owner`'s block, if this rank holds it.
    pub fn replica_for(&self, owner: usize) -> Option<&Replica<T>> {
        self.replicas.iter().find(|r| r.owner == owner)
    }

    /// All held replicas.
    pub fn replicas(&self) -> &[Replica<T>] {
        &self.replicas
    }
}

/// The grid rank designated to restore dead rank `dead`'s block: the
/// first of its `degree` ring successors (the replica holders) that is
/// still alive according to `alive`. `None` means the rank *and* all
/// its buddies died — online recovery is impossible and the caller
/// must fall back to a disk checkpoint.
pub fn restorer_for(
    dead: usize,
    p: usize,
    degree: usize,
    alive: impl Fn(usize) -> bool,
) -> Option<usize> {
    (1..=degree.min(p.saturating_sub(1)))
        .map(|j| (dead + j) % p)
        .find(|&holder| alive(holder))
}

/// Refreshes buddy replicas at a sweep boundary: each rank sends its
/// local block to its `degree` ring successors on the grid communicator
/// and stores the blocks of its `degree` ring predecessors. Collective
/// over the grid. The degree is clamped to `P - 1` (a rank cannot buddy
/// itself).
pub fn try_refresh_buddies<T: Scalar>(
    grid: &CartGrid,
    x: &DistTensor<T>,
    degree: usize,
) -> Result<BuddyStore<T>, CommError> {
    let p = grid.comm.size();
    let k = degree.min(p.saturating_sub(1));
    if k == 0 {
        return Ok(BuddyStore::disabled());
    }
    let me = grid.comm.rank();
    let _mem = mem::with_phase(MemPhase::Replica);
    // The sends stage k copies of the local block in flight until the
    // successors drain them — real memory, so a budgeted rank refuses
    // typed here rather than silently growing by k extra blocks. The
    // received predecessor blocks carry their own per-buffer charges.
    let _stage = mem::Charge::try_new(mem::bytes_of::<T>(k * x.local().data().len()))
        .map_err(|e| budget_error(&grid.comm, e))?;
    // Queues are unbounded: post all sends, then receive.
    for j in 1..=k {
        let dst = (me + j) % p;
        grid.comm.try_send(dst, x.local().data().to_vec())?;
    }
    let mut replicas = Vec::with_capacity(k);
    for j in 1..=k {
        let src = (me + p - j) % p;
        let data = grid.comm.try_recv::<T>(src)?;
        let coords = CartGrid::rank_to_coords(src, grid.dims());
        let shape = x.dist().local_shape(&coords);
        mem::ensure_headroom(mem::bytes_of::<T>(shape.num_entries()))
            .map_err(|e| budget_error(&grid.comm, e))?;
        if data.len() != shape.num_entries() {
            // A dropped message desynchronized the channel: typed,
            // failure-class, so the recovery retry (whose agreement
            // bumps the epoch and quarantines the stale traffic) can
            // re-run the refresh cleanly.
            return Err(CommError::SizeMismatch {
                src: grid.comm.world_rank_of(src),
                dst: grid.comm.world_rank_of(me),
                expected: shape.num_entries(),
                got: data.len(),
            });
        }
        replicas.push(Replica {
            owner: src,
            coords,
            block: DenseTensor::from_vec(shape, data),
        });
    }
    Ok(BuddyStore {
        degree: k,
        replicas,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratucker_mpi::Universe;
    use ratucker_tensor::shape::Shape;

    fn val(idx: &[usize]) -> f64 {
        (idx[0] * 31 + idx[1] * 7 + 1) as f64
    }

    #[test]
    fn buddies_hold_exact_predecessor_blocks() {
        for degree in [1usize, 2, 3] {
            let results = Universe::launch(4, move |c| {
                let grid = CartGrid::new(c, &[2, 2]);
                let x = DistTensor::from_fn(&grid, Shape::new(&[5, 4]), val);
                let store = try_refresh_buddies(&grid, &x, degree).unwrap();
                let me = grid.comm.rank();
                let mut ok = store.degree() == degree.min(3);
                for j in 1..=store.degree() {
                    let owner = (me + 4 - j) % 4;
                    let rep = store.replica_for(owner).expect("replica present");
                    // Rebuild the owner's block independently and compare.
                    let coords = CartGrid::rank_to_coords(owner, grid.dims());
                    let ranges: Vec<_> = (0..2).map(|k| x.dist().range(k, coords[k])).collect();
                    for idx in rep.block().shape().clone().indices() {
                        let g = [ranges[0].offset + idx[0], ranges[1].offset + idx[1]];
                        ok &= rep.block().get(&idx) == val(&g);
                    }
                }
                ok
            });
            assert!(results.into_iter().all(|ok| ok), "degree {degree}");
        }
    }

    #[test]
    fn restorer_skips_dead_buddies() {
        // Rank 2 dead, degree 2, p = 8: first live successor restores.
        assert_eq!(restorer_for(2, 8, 2, |r| r != 2), Some(3));
        assert_eq!(restorer_for(2, 8, 2, |r| r != 2 && r != 3), Some(4));
        // Rank and every buddy dead → no online restore.
        assert_eq!(restorer_for(2, 8, 1, |r| r != 2 && r != 3), None);
        // Ring wraps.
        assert_eq!(restorer_for(7, 8, 1, |r| r != 7), Some(0));
    }

    #[test]
    fn degree_zero_disables_replication() {
        let results = Universe::launch(2, |c| {
            let grid = CartGrid::new(c, &[2, 1]);
            let x = DistTensor::from_fn(&grid, Shape::new(&[4, 3]), val);
            let store = try_refresh_buddies(&grid, &x, 0).unwrap();
            store.degree() == 0 && store.replicas().is_empty()
        });
        assert!(results.into_iter().all(|ok| ok));
    }
}
