//! Re-blocking a distributed tensor onto a new (shrunken) grid.
//!
//! After a rank failure the survivors hold the global tensor as a set of
//! *pieces* — their own original blocks plus in-memory buddy replicas of
//! the dead ranks' blocks (see [`crate::replica`]). [`try_redistribute`]
//! moves those pieces onto the block distribution of the shrunken grid
//! with two all-to-alls (metadata, then data) and a pure-copy assembly,
//! so redistribution preserves the global tensor **bit-exactly** — an
//! invariant checked by a proptest in `tests/redistribute_prop.rs`.
//!
//! The operation is collective over a communicator that may be *larger*
//! than the destination grid: spare ranks (survivors that do not fit the
//! shrunken grid, see [`ratucker_mpi::ShrinkOutcome`]) contribute their
//! pieces but receive no block and get `Ok(None)`.

use crate::distribution::{owner_of, BlockRange, TensorDist};
use crate::dtensor::DistTensor;
use crate::ops::budget_error;
use ratucker_mem::{self as mem, MemPhase};
use ratucker_mpi::{CartGrid, Comm, CommError};
use ratucker_tensor::dense::DenseTensor;
use ratucker_tensor::scalar::Scalar;
use ratucker_tensor::shape::Shape;

/// A contiguous axis-aligned brick of the global tensor: the per-mode
/// global index ranges it covers plus its entries in mode-0-fastest
/// layout. The unit of currency of [`try_redistribute`].
#[derive(Clone, Debug)]
pub struct BlockPiece<T: Scalar> {
    ranges: Vec<BlockRange>,
    data: Vec<T>,
}

impl<T: Scalar> BlockPiece<T> {
    /// Wraps per-mode ranges and matching dense data.
    pub fn new(ranges: Vec<BlockRange>, data: Vec<T>) -> Self {
        let n: usize = ranges.iter().map(|r| r.len).product();
        assert_eq!(n, data.len(), "piece data must exactly fill its ranges");
        BlockPiece { ranges, data }
    }

    /// The piece owned by grid coordinate `coords` under `dist`, taking
    /// the block contents from `block`.
    pub fn from_block(dist: &TensorDist, coords: &[usize], block: &DenseTensor<T>) -> Self {
        let ranges: Vec<BlockRange> = (0..dist.global().order())
            .map(|k| dist.range(k, coords[k]))
            .collect();
        Self::new(ranges, block.data().to_vec())
    }

    /// The per-mode global ranges this piece covers.
    pub fn ranges(&self) -> &[BlockRange] {
        &self.ranges
    }
}

/// Extracts the sub-brick of `piece` covering the (global) intersection
/// ranges `inter` (which must lie within the piece's ranges). Fallible:
/// the sub-brick is ledger-checked before it is allocated.
fn extract_sub<T: Scalar>(
    piece: &BlockPiece<T>,
    inter: &[BlockRange],
) -> Result<Vec<T>, mem::BudgetExceeded> {
    let piece_shape = Shape::new(&piece.ranges.iter().map(|r| r.len).collect::<Vec<_>>());
    let sub_shape = Shape::new(&inter.iter().map(|r| r.len).collect::<Vec<_>>());
    let d = inter.len();
    mem::ensure_headroom(mem::bytes_of::<T>(sub_shape.num_entries()))?;
    let mut out = Vec::with_capacity(sub_shape.num_entries());
    let mut lidx = vec![0usize; d];
    for idx in sub_shape.indices() {
        for k in 0..d {
            lidx[k] = inter[k].offset - piece.ranges[k].offset + idx[k];
        }
        out.push(piece.data[piece_shape.linear_index(&lidx)]);
    }
    Ok(out)
}

/// Redistributes block pieces onto the distribution `new_dist`, whose
/// grid occupies the first `Π new_dist.grid_dims()` ranks of `comm`
/// (the layout [`ratucker_mpi::try_rebuild_grid`] produces).
///
/// Collective over `comm`. Across all callers the pieces must tile the
/// global tensor exactly — every global entry covered once; gaps and
/// overlaps are protocol bugs and panic. Active ranks get
/// `Ok(Some(block))` with their new local block; spares get `Ok(None)`.
///
/// Assembly is a pure copy (no arithmetic), so the redistributed tensor
/// equals the original bit-for-bit.
pub fn try_redistribute<T: Scalar>(
    comm: &Comm,
    new_dist: &TensorDist,
    pieces: Vec<BlockPiece<T>>,
) -> Result<Option<DistTensor<T>>, CommError> {
    let _span = ratucker_obs::span(comm, "Redistribute");
    let _mem = mem::with_phase(MemPhase::Redistribute);
    let d = new_dist.global().order();
    let dims = new_dist.grid_dims();
    let q: usize = dims.iter().product();
    let p = comm.size();
    if q > p {
        // A destination grid bigger than the communicator is a sizing
        // fault the recovery driver should see as typed (it chose the
        // grid; it can choose again), not a panic inside the exchange.
        let me = comm.world_rank_of(comm.rank());
        return Err(CommError::SizeMismatch {
            src: me,
            dst: me,
            expected: q,
            got: p,
        });
    }

    // Route every piece: slice it against the destination blocks it
    // touches (per-mode owner ranges give the bounding box of
    // destination coordinates). The routed staging totals one copy of
    // this rank's pieces; charge it up front so a budgeted rank refuses
    // typed instead of aborting on OOM mid-exchange.
    let piece_entries: usize = pieces.iter().map(|pc| pc.data.len()).sum();
    let _stage = mem::Charge::try_new(mem::bytes_of::<T>(piece_entries))
        .map_err(|e| budget_error(comm, e))?;
    let mut meta: Vec<Vec<u64>> = (0..p).map(|_| Vec::new()).collect();
    let mut data: Vec<Vec<T>> = (0..p).map(|_| Vec::new()).collect();
    for piece in &pieces {
        let coord_lo_hi: Vec<(usize, usize)> = (0..d)
            .map(|k| {
                let r = piece.ranges[k];
                debug_assert!(r.len > 0, "empty piece range in mode {k}");
                let n = new_dist.global().dim(k);
                (
                    owner_of(n, dims[k], r.offset),
                    owner_of(n, dims[k], r.offset + r.len - 1),
                )
            })
            .collect();
        // Odometer over the destination-coordinate bounding box.
        let mut coords: Vec<usize> = coord_lo_hi.iter().map(|&(lo, _)| lo).collect();
        'dests: loop {
            let dest = CartGrid::coords_to_rank(&coords, dims);
            let inter: Vec<BlockRange> = (0..d)
                .map(|k| {
                    let a = piece.ranges[k];
                    let b = new_dist.range(k, coords[k]);
                    let offset = a.offset.max(b.offset);
                    let end = (a.offset + a.len).min(b.offset + b.len);
                    debug_assert!(end > offset, "bounding box produced empty intersection");
                    BlockRange {
                        offset,
                        len: end - offset,
                    }
                })
                .collect();
            for r in &inter {
                meta[dest].push(r.offset as u64);
                meta[dest].push(r.len as u64);
            }
            data[dest].extend(extract_sub(piece, &inter).map_err(|e| budget_error(comm, e))?);
            // Advance the odometer.
            for k in 0..d {
                if coords[k] < coord_lo_hi[k].1 {
                    coords[k] += 1;
                    break;
                }
                if k == d - 1 {
                    break 'dests;
                }
                coords[k] = coord_lo_hi[k].0;
            }
            if d == 0 {
                break;
            }
        }
    }

    let meta_in = comm.try_alltoallv(meta)?;
    let data_in = comm.try_alltoallv(data)?;

    if comm.rank() >= q {
        return Ok(None); // spare: contributed pieces, owns no block
    }

    // Assemble my block from the received sub-bricks, checking exact
    // single coverage.
    let my_coords = CartGrid::rank_to_coords(comm.rank(), dims);
    let my_ranges: Vec<BlockRange> = (0..d).map(|k| new_dist.range(k, my_coords[k])).collect();
    let local_shape = new_dist.local_shape(&my_coords);
    let mut local =
        DenseTensor::<T>::try_zeros(local_shape.clone()).map_err(|e| budget_error(comm, e))?;
    let mut written = mem::TrackedBuf::try_filled(local_shape.num_entries(), false)
        .map_err(|e| budget_error(comm, e))?;
    let header = 2 * d;
    let mut lidx = vec![0usize; d];
    for (src, (meta_s, data_s)) in meta_in.into_iter().zip(data_in).enumerate() {
        if !meta_s.len().is_multiple_of(header.max(1)) {
            // Truncated or misrouted metadata payload: typed, so the
            // caller can trigger recovery instead of unwinding.
            let h = header.max(1);
            return Err(CommError::SizeMismatch {
                src: comm.world_rank_of(src),
                dst: comm.world_rank_of(comm.rank()),
                expected: meta_s.len() / h * h,
                got: meta_s.len(),
            });
        }
        let mut cursor = 0usize;
        for chunk in meta_s.chunks(header.max(1)) {
            let inter: Vec<BlockRange> = chunk
                .chunks(2)
                .map(|pair| BlockRange {
                    offset: pair[0] as usize,
                    len: pair[1] as usize,
                })
                .collect();
            let sub_shape = Shape::new(&inter.iter().map(|r| r.len).collect::<Vec<_>>());
            let n = sub_shape.num_entries();
            if cursor + n > data_s.len() {
                return Err(CommError::SizeMismatch {
                    src: comm.world_rank_of(src),
                    dst: comm.world_rank_of(comm.rank()),
                    expected: cursor + n,
                    got: data_s.len(),
                });
            }
            let sub = &data_s[cursor..cursor + n];
            cursor += n;
            for (off, idx) in sub_shape.indices().enumerate() {
                for k in 0..d {
                    lidx[k] = inter[k].offset - my_ranges[k].offset + idx[k];
                }
                let li = local_shape.linear_index(&lidx);
                assert!(
                    !written[li],
                    "redistribute: overlapping pieces (entry written twice, src rank {src})"
                );
                written[li] = true;
                local.data_mut()[li] = sub[off];
            }
        }
        if cursor != data_s.len() {
            // The data payload disagrees with its own metadata — a
            // wrong-sized message from `src` in all but name.
            return Err(CommError::SizeMismatch {
                src: comm.world_rank_of(src),
                dst: comm.world_rank_of(comm.rank()),
                expected: cursor,
                got: data_s.len(),
            });
        }
    }
    assert!(
        written.iter().all(|&w| w),
        "redistribute: pieces do not cover the destination block"
    );
    Ok(Some(DistTensor::from_parts(
        new_dist.clone(),
        my_coords,
        local,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratucker_mpi::Universe;
    use ratucker_tensor::shape::Shape;

    fn val(idx: &[usize]) -> f64 {
        idx.iter()
            .enumerate()
            .map(|(k, &i)| ((k + 1) * 37 + i * 3) as f64)
            .sum::<f64>()
            .cos()
    }

    #[test]
    fn identity_redistribution_is_bit_exact() {
        // Same grid in and out: every rank keeps exactly its own block.
        let results = Universe::launch(4, |c| {
            let grid = CartGrid::new(c, &[2, 2]);
            let x = DistTensor::from_fn(&grid, Shape::new(&[6, 5]), val);
            let piece = BlockPiece::from_block(x.dist(), x.coords(), x.local());
            let y = try_redistribute(&grid.comm, x.dist(), vec![piece])
                .unwrap()
                .expect("all ranks active");
            x.local().max_abs_diff(y.local())
        });
        assert!(results.into_iter().all(|r| r == 0.0));
    }

    #[test]
    fn reblocking_to_smaller_grid_with_spares() {
        // 4 ranks holding a [2,2] layout re-block onto a [2,1] grid; the
        // last 2 ranks become spares. The reassembled global tensor must
        // match the original exactly.
        let results = Universe::launch(4, |c| {
            let grid = CartGrid::new(c, &[2, 2]);
            let x = DistTensor::from_fn(&grid, Shape::new(&[6, 5]), val);
            let piece = BlockPiece::from_block(x.dist(), x.coords(), x.local());
            let new_dist = TensorDist::new(Shape::new(&[6, 5]), &[2, 1]);
            let got = try_redistribute(&grid.comm, &new_dist, vec![piece]).unwrap();
            match got {
                Some(block) => {
                    // Rebuild a 2-rank view to gather: compare locally
                    // against the reference block instead.
                    let reference = DenseTensor::from_fn([6, 5], val);
                    let coords = block.coords().to_vec();
                    let ranges: Vec<_> = (0..2).map(|k| new_dist.range(k, coords[k])).collect();
                    let mut diff = 0.0f64;
                    for idx in block.local().shape().clone().indices() {
                        let gidx = [ranges[0].offset + idx[0], ranges[1].offset + idx[1]];
                        diff = diff.max((block.local().get(&idx) - reference.get(&gidx)).abs());
                    }
                    Some(diff)
                }
                None => None,
            }
        });
        let active: Vec<_> = results.iter().filter(|r| r.is_some()).collect();
        assert_eq!(active.len(), 2, "2 active + 2 spares");
        assert!(results.into_iter().flatten().all(|r| r == 0.0));
    }

    #[test]
    fn oversized_destination_grid_is_a_typed_error() {
        // A [2,2] destination grid needs 4 ranks; the communicator has 2.
        // This used to be a bare assert — the recovery driver needs the
        // typed class so it can pick a feasible grid and retry.
        let results = Universe::launch(2, |c| {
            let grid = CartGrid::new(c, &[2, 1]);
            let x = DistTensor::from_fn(&grid, Shape::new(&[6, 5]), val);
            let piece = BlockPiece::from_block(x.dist(), x.coords(), x.local());
            let new_dist = TensorDist::new(Shape::new(&[6, 5]), &[2, 2]);
            match try_redistribute(&grid.comm, &new_dist, vec![piece]) {
                Err(CommError::SizeMismatch { expected, got, .. }) => (expected, got),
                Err(other) => panic!("expected SizeMismatch, got {other:?}"),
                Ok(_) => panic!("oversized grid should have failed"),
            }
        });
        assert!(results.into_iter().all(|r| r == (4, 2)));
    }
}
