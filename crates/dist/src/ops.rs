//! Distributed tensor kernels: TTM, unfolding Gram, and the
//! subspace-iteration contraction.
//!
//! These are the parallel kernels of TuckerMPI plus the new contraction
//! the paper adds (§3.4). Communication patterns follow the paper's cost
//! analysis:
//!
//! - **TTM** (`dist_ttm`): local multiply against the owned row/column
//!   block of the (replicated) matrix, then a *reduce-scatter* along the
//!   mode's fiber sub-communicator — cost `(local size)·(P_j − 1)` words,
//!   the Table 2 TTM term.
//! - **Gram** (`dist_gram`): *all-to-all* along the fiber to a 1D column
//!   layout (cost `(local size)·(P_j − 1)/P_j`), local rank-k update, then
//!   an allreduce of the `n_j × n_j` result — the Table 2 LLSV terms.
//! - **Contraction** (`dist_contract`): fully local against the matching
//!   block of the replicated core, then sum-reduction + broadcast of the
//!   `n_j × r_j` iterate so every rank can run the QR redundantly — §3.4's
//!   "sum reduction followed by a broadcast … local QR decompositions".

use crate::distribution::block_range;
use crate::dtensor::DistTensor;
use ratucker_mpi::{sum_op, CartGrid, CommError};
use ratucker_tensor::dense::DenseTensor;
use ratucker_tensor::matrix::Matrix;
use ratucker_tensor::scalar::Scalar;
use ratucker_tensor::ttm::{ttm, Transpose};

/// Fallible distributed TTM: `Y = X ×_mode op(M)` with `M` replicated on
/// every rank.
///
/// The output mode extent (`M`'s rows, or columns under [`Transpose::Yes`])
/// must be at least `P_mode` so every rank keeps a nonempty block.
/// Collective over `grid`. Communication failures (lost messages,
/// crashed peers) surface as [`CommError`].
pub fn try_dist_ttm<T: Scalar>(
    grid: &CartGrid,
    x: &DistTensor<T>,
    mode: usize,
    m: &Matrix<T>,
    trans: Transpose,
) -> Result<DistTensor<T>, CommError> {
    if !x.local().all_finite() {
        return Err(CommError::Corrupted {
            rank: grid.comm.rank(),
            what: format!("non-finite entry in local tensor block entering TTM (mode {mode})"),
        });
    }
    if !m.all_finite() {
        return Err(CommError::Corrupted {
            rank: grid.comm.rank(),
            what: format!("non-finite entry in TTM operand matrix (mode {mode})"),
        });
    }
    let n_j = x.global_shape().dim(mode);
    let out_dim = match trans {
        Transpose::No => m.rows(),
        Transpose::Yes => m.cols(),
    };
    let my_range = x.dist().range(mode, grid.coord(mode));

    // Restrict the operand to this rank's slice of the contracted mode.
    let m_sub = match trans {
        // M : out_dim × n_j, keep columns my_range.
        Transpose::No => Matrix::from_fn(out_dim, my_range.len, |i, j| m[(i, my_range.offset + j)]),
        // M : n_j × out_dim, keep rows my_range.
        Transpose::Yes => {
            Matrix::from_fn(my_range.len, out_dim, |i, j| m[(my_range.offset + i, j)])
        }
    };
    debug_assert_eq!(
        match trans {
            Transpose::No => m.cols(),
            Transpose::Yes => m.rows(),
        },
        n_j,
        "operand inner dimension must match the global mode extent"
    );

    // Local partial product: full `out_dim` in the contracted mode.
    let partial = ttm(x.local(), mode, &m_sub, trans);

    let out_dist = x.dist().with_dim(mode, out_dim);
    let coords = x.coords().to_vec();
    let fiber = grid.mode_comm(mode);
    let p_j = fiber.size();
    if p_j == 1 {
        return Ok(DistTensor::from_parts(out_dist, coords, partial));
    }

    // Pack the partial into P_j contiguous chunks along the output mode
    // (chunk q = the block of `out_dim` owned by fiber rank q), each chunk
    // in standard [left, block, right] layout, then reduce-scatter.
    let left: usize = partial.shape().left(mode);
    let right: usize = partial.shape().right(mode);
    let mut packed = Vec::with_capacity(partial.num_entries());
    let mut counts = Vec::with_capacity(p_j);
    for q in 0..p_j {
        let r_q = block_range(out_dim, p_j, q);
        counts.push(left * r_q.len * right);
        for r in 0..right {
            for i in 0..r_q.len {
                let src = (r * out_dim + r_q.offset + i) * left;
                packed.extend_from_slice(&partial.data()[src..src + left]);
            }
        }
    }
    let my_block = fiber.try_reduce_scatter(packed, &counts, sum_op)?;
    if my_block.iter().any(|v| !v.is_finite_s()) {
        return Err(CommError::Corrupted {
            rank: grid.comm.rank(),
            what: format!(
                "non-finite entry in TTM reduce-scatter result (mode {mode}); \
                 a peer contributed a corrupted partial product"
            ),
        });
    }
    let local_shape = out_dist.local_shape(&coords);
    let local = DenseTensor::from_vec(local_shape, my_block);
    Ok(DistTensor::from_parts(out_dist, coords, local))
}

/// Fallible distributed multi-TTM with every factor transposed, skipping
/// `skip_mode` (Alg. 2 line 5), applying modes in increasing order.
pub fn try_dist_multi_ttm_all_but<T: Scalar>(
    grid: &CartGrid,
    x: &DistTensor<T>,
    factors: &[Matrix<T>],
    skip_mode: usize,
) -> Result<DistTensor<T>, CommError> {
    let mut cur: Option<DistTensor<T>> = None;
    for (k, u) in factors.iter().enumerate() {
        if k == skip_mode {
            continue;
        }
        let next = match &cur {
            None => try_dist_ttm(grid, x, k, u, Transpose::Yes)?,
            Some(t) => try_dist_ttm(grid, t, k, u, Transpose::Yes)?,
        };
        cur = Some(next);
    }
    Ok(cur.unwrap_or_else(|| x.clone()))
}

/// Fallible distributed Gram of the mode-`mode` unfolding: returns the
/// replicated `n_mode × n_mode` matrix `X_(mode) X_(mode)ᵀ` on every rank.
/// Collective.
pub fn try_dist_gram<T: Scalar>(
    grid: &CartGrid,
    x: &DistTensor<T>,
    mode: usize,
) -> Result<Matrix<T>, CommError> {
    if !x.local().all_finite() {
        return Err(CommError::Corrupted {
            rank: grid.comm.rank(),
            what: format!("non-finite entry in local tensor block entering Gram (mode {mode})"),
        });
    }
    let n_j = x.global_shape().dim(mode);
    let fiber = grid.mode_comm(mode);
    let p_j = fiber.size();

    let mut g_partial = Matrix::zeros(n_j, n_j);
    if p_j == 1 {
        // Mode fully local: straight local Gram.
        ratucker_tensor::gram::gram_accumulate(x.local(), mode, &mut g_partial);
    } else {
        // Redistribute to a 1D column layout within the fiber: all fiber
        // members hold the same global columns (identical non-mode
        // coordinates) with distinct row blocks; each takes full rows of a
        // 1/P_j share of those columns.
        let local = x.local();
        let nj_loc = local.dim(mode);
        let left = local.shape().left(mode);
        let right = local.shape().right(mode);
        let total_cols = left * right;

        // Pack column fibers destined to each fiber rank.
        let mut blocks: Vec<Vec<T>> = Vec::with_capacity(p_j);
        for q in 0..p_j {
            let cr = block_range(total_cols, p_j, q);
            let mut buf = Vec::with_capacity(cr.len * nj_loc);
            for c in cr.offset..cr.offset + cr.len {
                let l = c % left;
                let r = c / left;
                let base = l + r * left * nj_loc;
                for i in 0..nj_loc {
                    buf.push(local.data()[base + i * left]);
                }
            }
            blocks.push(buf);
        }
        let received = fiber.try_alltoallv(blocks)?;

        // Assemble my column share with full rows: A is n_j × my_cols.
        let my_cols = block_range(total_cols, p_j, fiber.rank()).len;
        let mut a = Matrix::zeros(n_j, my_cols);
        for (s, block) in received.into_iter().enumerate() {
            let rows_s = x.dist().range(mode, s);
            debug_assert_eq!(block.len(), rows_s.len * my_cols);
            for c in 0..my_cols {
                let col = a.col_mut(c);
                col[rows_s.offset..rows_s.offset + rows_s.len]
                    .copy_from_slice(&block[c * rows_s.len..(c + 1) * rows_s.len]);
            }
        }
        // Local symmetric rank-k update G += A Aᵀ.
        ratucker_tensor::kernels::syrk_nt(
            n_j,
            my_cols,
            a.as_slice(),
            n_j,
            g_partial.as_mut_slice(),
            n_j,
        );
    }

    // Sum contributions across the whole grid; result replicated.
    let summed = grid.comm.try_allreduce(g_partial.into_vec(), sum_op)?;
    if summed.iter().any(|v| !v.is_finite_s()) {
        return Err(CommError::Corrupted {
            rank: grid.comm.rank(),
            what: format!(
                "non-finite entry in allreduced Gram matrix (mode {mode}); \
                 a peer contributed a corrupted partial sum"
            ),
        });
    }
    Ok(Matrix::from_vec(n_j, n_j, summed))
}

/// Fallible distributed all-but-one contraction (the new §3.4 kernel):
/// `Z = Y_(mode) G_(mode)ᵀ` with `core` the *replicated* current core
/// tensor. Returns the replicated `n_mode × r_mode` iterate. Collective.
pub fn try_dist_contract<T: Scalar>(
    grid: &CartGrid,
    y: &DistTensor<T>,
    core: &DenseTensor<T>,
    mode: usize,
) -> Result<Matrix<T>, CommError> {
    let d = y.global_shape().order();
    assert_eq!(core.order(), d);
    let n_j = y.global_shape().dim(mode);
    let r_j = core.dim(mode);
    for k in 0..d {
        if k != mode {
            assert_eq!(
                y.global_shape().dim(k),
                core.dim(k),
                "core/global dim mismatch in mode {k}"
            );
        }
    }

    // Extract the core block matching this rank's non-mode ranges.
    let ranges: Vec<_> = (0..d)
        .map(|k| {
            if k == mode {
                crate::distribution::BlockRange {
                    offset: 0,
                    len: r_j,
                }
            } else {
                y.dist().range(k, y.coords()[k])
            }
        })
        .collect();
    let sub_dims: Vec<usize> = ranges.iter().map(|r| r.len).collect();
    let mut gidx = vec![0usize; d];
    let g_sub = DenseTensor::from_fn(ratucker_tensor::shape::Shape::new(&sub_dims), |lidx| {
        for k in 0..d {
            gidx[k] = ranges[k].offset + lidx[k];
        }
        core.get(&gidx)
    });

    // Local contraction covers my row block and my column set.
    let z_local = ratucker_tensor::contract::contract_all_but(y.local(), &g_sub, mode);

    // Embed at my row offset and sum-reduce + broadcast (allreduce).
    let my_rows = y.dist().range(mode, grid.coord(mode));
    let mut z_full = Matrix::zeros(n_j, r_j);
    for c in 0..r_j {
        z_full.col_mut(c)[my_rows.offset..my_rows.offset + my_rows.len]
            .copy_from_slice(z_local.col(c));
    }
    let summed = grid.comm.try_allreduce(z_full.into_vec(), sum_op)?;
    Ok(Matrix::from_vec(n_j, r_j, summed))
}

// -------------------------------------------------------------------
// Legacy panicking wrappers
// -------------------------------------------------------------------

/// Distributed TTM: `Y = X ×_mode op(M)` with `M` replicated on every rank.
/// Panicking wrapper over [`try_dist_ttm`].
pub fn dist_ttm<T: Scalar>(
    grid: &CartGrid,
    x: &DistTensor<T>,
    mode: usize,
    m: &Matrix<T>,
    trans: Transpose,
) -> DistTensor<T> {
    try_dist_ttm(grid, x, mode, m, trans).unwrap_or_else(|e| panic!("{e}"))
}

/// Distributed multi-TTM with every factor transposed, skipping
/// `skip_mode` (Alg. 2 line 5), applying modes in increasing order.
/// Panicking wrapper over [`try_dist_multi_ttm_all_but`].
pub fn dist_multi_ttm_all_but<T: Scalar>(
    grid: &CartGrid,
    x: &DistTensor<T>,
    factors: &[Matrix<T>],
    skip_mode: usize,
) -> DistTensor<T> {
    try_dist_multi_ttm_all_but(grid, x, factors, skip_mode).unwrap_or_else(|e| panic!("{e}"))
}

/// Distributed Gram of the mode-`mode` unfolding: returns the replicated
/// `n_mode × n_mode` matrix `X_(mode) X_(mode)ᵀ` on every rank. Collective.
/// Panicking wrapper over [`try_dist_gram`].
pub fn dist_gram<T: Scalar>(grid: &CartGrid, x: &DistTensor<T>, mode: usize) -> Matrix<T> {
    try_dist_gram(grid, x, mode).unwrap_or_else(|e| panic!("{e}"))
}

/// Distributed all-but-one contraction (the new §3.4 kernel):
/// `Z = Y_(mode) G_(mode)ᵀ` with `core` the *replicated* current core
/// tensor. Returns the replicated `n_mode × r_mode` iterate. Collective.
/// Panicking wrapper over [`try_dist_contract`].
pub fn dist_contract<T: Scalar>(
    grid: &CartGrid,
    y: &DistTensor<T>,
    core: &DenseTensor<T>,
    mode: usize,
) -> Matrix<T> {
    try_dist_contract(grid, y, core, mode).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratucker_mpi::Universe;
    use ratucker_tensor::shape::Shape;

    fn global_value(idx: &[usize]) -> f64 {
        idx.iter()
            .enumerate()
            .map(|(k, &i)| ((k + 2) * (i + 1)) as f64 * 0.31)
            .sum::<f64>()
            .sin()
    }

    fn factor(n: usize, r: usize, seed: usize) -> Matrix<f64> {
        Matrix::from_fn(n, r, |i, j| {
            (((seed + 1) * (i + 2 * j + 1)) as f64 * 0.17).cos()
        })
    }

    #[test]
    fn dist_ttm_matches_sequential_all_modes_and_grids() {
        let dims = [6, 5, 4];
        let x_ref = DenseTensor::from_fn(dims, global_value);
        for grid_dims in [
            vec![1, 1, 1],
            vec![2, 1, 1],
            vec![1, 1, 2],
            vec![2, 1, 2],
            vec![3, 1, 2],
        ] {
            let p: usize = grid_dims.iter().product();
            for mode in 0..3 {
                let u = factor(dims[mode], 3, mode);
                let want = ttm(&x_ref, mode, &u, Transpose::Yes);
                let gd = grid_dims.clone();
                let uu = u.clone();
                let results = Universe::launch(p, move |c| {
                    let grid = CartGrid::new(c, &gd);
                    let x = DistTensor::from_fn(&grid, Shape::new(&dims), global_value);
                    let y = dist_ttm(&grid, &x, mode, &uu, Transpose::Yes);
                    y.gather_replicated(&grid)
                });
                for got in results {
                    assert!(
                        got.max_abs_diff(&want) < 1e-11,
                        "grid {grid_dims:?} mode {mode}"
                    );
                }
            }
        }
    }

    #[test]
    fn dist_ttm_distributed_output_mode_is_split() {
        // Grid splits the mode being multiplied: out_dim 4 over P_1 = 2.
        let dims = [6, 6];
        let results = Universe::launch(4, |c| {
            let grid = CartGrid::new(c, &[2, 2]);
            let x = DistTensor::from_fn(&grid, Shape::new(&dims), global_value);
            let u = factor(6, 4, 9);
            let y = dist_ttm(&grid, &x, 0, &u, Transpose::Yes);
            (
                y.local().shape().dims().to_vec(),
                y.gather_replicated(&grid),
            )
        });
        let x_ref = DenseTensor::from_fn(dims, global_value);
        let want = ttm(&x_ref, 0, &factor(6, 4, 9), Transpose::Yes);
        for (local_dims, got) in results {
            assert_eq!(local_dims, vec![2, 3]);
            assert!(got.max_abs_diff(&want) < 1e-11);
        }
    }

    #[test]
    fn dist_ttm_untransposed() {
        let dims = [5, 4];
        let x_ref = DenseTensor::from_fn(dims, global_value);
        let m = factor(4, 5, 3).transpose(); // 5x4? transpose gives 5 rows? factor(4,5) is 4x5; transpose 5x4... we need out x n_j for mode 1: n_1 = 4.
        let want = ttm(&x_ref, 1, &m, Transpose::No);
        let mm = m.clone();
        let results = Universe::launch(2, move |c| {
            let grid = CartGrid::new(c, &[1, 2]);
            let x = DistTensor::from_fn(&grid, Shape::new(&dims), global_value);
            dist_ttm(&grid, &x, 1, &mm, Transpose::No).gather_replicated(&grid)
        });
        for got in results {
            assert!(got.max_abs_diff(&want) < 1e-11);
        }
    }

    #[test]
    fn dist_multi_ttm_matches_sequential() {
        let dims = [5, 4, 6];
        let x_ref = DenseTensor::from_fn(dims, global_value);
        let factors: Vec<Matrix<f64>> = (0..3).map(|k| factor(dims[k], 2, k)).collect();
        for skip in 0..3 {
            let want = ratucker_tensor::ttm::multi_ttm_all_but(&x_ref, &factors, skip);
            let fs = factors.clone();
            let results = Universe::launch(4, move |c| {
                let grid = CartGrid::new(c, &[2, 1, 2]);
                let x = DistTensor::from_fn(&grid, Shape::new(&dims), global_value);
                dist_multi_ttm_all_but(&grid, &x, &fs, skip).gather_replicated(&grid)
            });
            for got in results {
                assert!(got.max_abs_diff(&want) < 1e-11, "skip {skip}");
            }
        }
    }

    #[test]
    fn dist_gram_matches_sequential_all_modes_and_grids() {
        let dims = [6, 5, 4];
        let x_ref = DenseTensor::from_fn(dims, global_value);
        for grid_dims in [
            vec![1, 1, 1],
            vec![2, 1, 1],
            vec![1, 2, 2],
            vec![2, 1, 2],
            vec![2, 2, 2],
        ] {
            let p: usize = grid_dims.iter().product();
            for mode in 0..3 {
                let want = ratucker_tensor::gram::gram(&x_ref, mode);
                let gd = grid_dims.clone();
                let results = Universe::launch(p, move |c| {
                    let grid = CartGrid::new(c, &gd);
                    let x = DistTensor::from_fn(&grid, Shape::new(&dims), global_value);
                    dist_gram(&grid, &x, mode)
                });
                for got in results {
                    assert!(
                        got.max_abs_diff(&want) < 1e-10,
                        "grid {grid_dims:?} mode {mode}"
                    );
                }
            }
        }
    }

    #[test]
    fn nan_input_block_is_a_corrupted_error() {
        // Single rank: the screen fires before any communication.
        let dims = [4, 3];
        let results = Universe::launch(1, move |c| {
            let grid = CartGrid::new(c, &[1, 1]);
            let x = DistTensor::from_fn(&grid, Shape::new(&dims), |idx| {
                if idx == [1, 2] {
                    f64::NAN
                } else {
                    global_value(idx)
                }
            });
            let u = factor(4, 2, 0);
            let ttm_err = try_dist_ttm(&grid, &x, 0, &u, Transpose::Yes).unwrap_err();
            let gram_err = try_dist_gram(&grid, &x, 0).unwrap_err();
            (ttm_err, gram_err)
        });
        for (ttm_err, gram_err) in results {
            assert!(matches!(ttm_err, CommError::Corrupted { .. }), "{ttm_err}");
            assert!(ttm_err.to_string().contains("detected corrupted data"));
            assert!(
                matches!(gram_err, CommError::Corrupted { .. }),
                "{gram_err}"
            );
        }
    }

    #[test]
    fn nan_operand_matrix_is_a_corrupted_error_on_every_rank() {
        // Replicated operand: every rank screens it out before the
        // collective starts, so no rank is left hanging in a reduce.
        let dims = [6, 4];
        let results = Universe::launch(2, move |c| {
            let grid = CartGrid::new(c, &[2, 1]);
            let x = DistTensor::from_fn(&grid, Shape::new(&dims), global_value);
            let mut u = factor(6, 3, 1);
            u[(2, 1)] = f64::INFINITY;
            try_dist_ttm(&grid, &x, 0, &u, Transpose::Yes).unwrap_err()
        });
        for err in results {
            assert!(matches!(err, CommError::Corrupted { .. }), "{err}");
            assert!(err.to_string().contains("operand matrix"));
        }
    }

    #[test]
    fn corrupted_collective_payload_is_detected() {
        // A fault plan NaN-injects every message; the post-allreduce
        // screen in the Gram kernel must catch the poisoned sum.
        use ratucker_mpi::{CorruptMode, FaultPlan};
        let dims = [6, 4];
        let plan = FaultPlan::quiet(11).with_corruption(1.0, CorruptMode::NanInject);
        let results = Universe::try_launch(2, plan, move |c| {
            let grid = CartGrid::new(c, &[2, 1]);
            let x = DistTensor::from_fn(&grid, Shape::new(&dims), global_value);
            try_dist_gram(&grid, &x, 0)
        });
        for r in results {
            let err = r
                .expect("screen returns an error, not a panic")
                .unwrap_err();
            assert!(matches!(err, CommError::Corrupted { .. }), "{err}");
        }
    }

    #[test]
    fn dist_contract_matches_sequential() {
        let dims = [6, 5, 4];
        let y_ref = DenseTensor::from_fn(dims, global_value);
        for mode in 0..3 {
            let mut core_dims = dims;
            core_dims[mode] = 2;
            let core = DenseTensor::from_fn(core_dims, |idx| global_value(idx).cos());
            let want = ratucker_tensor::contract::contract_all_but(&y_ref, &core, mode);
            let cc = core.clone();
            for grid_dims in [vec![1, 1, 1], vec![2, 2, 1], vec![2, 1, 2]] {
                let p: usize = grid_dims.iter().product();
                let gd = grid_dims.clone();
                let core2 = cc.clone();
                let results = Universe::launch(p, move |c| {
                    let grid = CartGrid::new(c, &gd);
                    let y = DistTensor::from_fn(&grid, Shape::new(&dims), global_value);
                    dist_contract(&grid, &y, &core2, mode)
                });
                for got in results {
                    assert!(
                        got.max_abs_diff(&want) < 1e-10,
                        "grid {grid_dims:?} mode {mode}"
                    );
                }
            }
        }
    }
}
