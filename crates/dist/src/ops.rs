//! Distributed tensor kernels: TTM, unfolding Gram, and the
//! subspace-iteration contraction.
//!
//! These are the parallel kernels of TuckerMPI plus the new contraction
//! the paper adds (§3.4). Communication patterns follow the paper's cost
//! analysis:
//!
//! - **TTM** (`dist_ttm`): local multiply against the owned row/column
//!   block of the (replicated) matrix, then a *reduce-scatter* along the
//!   mode's fiber sub-communicator — cost `(local size)·(P_j − 1)` words,
//!   the Table 2 TTM term.
//! - **Gram** (`dist_gram`): *all-to-all* along the fiber to a 1D column
//!   layout (cost `(local size)·(P_j − 1)/P_j`), local rank-k update, then
//!   an allreduce of the `n_j × n_j` result — the Table 2 LLSV terms.
//! - **Contraction** (`dist_contract`): fully local against the matching
//!   block of the replicated core, then sum-reduction + broadcast of the
//!   `n_j × r_j` iterate so every rank can run the QR redundantly — §3.4's
//!   "sum reduction followed by a broadcast … local QR decompositions".

use crate::distribution::block_range;
use crate::dtensor::DistTensor;
use ratucker_mem::{self as mem, MemPhase};
use ratucker_mpi::{sum_op, CartGrid, Comm, CommError, Request};
use ratucker_tensor::dense::DenseTensor;
use ratucker_tensor::matrix::Matrix;
use ratucker_tensor::scalar::Scalar;
use ratucker_tensor::ttm::{ttm, Transpose};

/// Converts a ledger refusal into the typed comm error, revoking the
/// communicator first: peers blocked in the collective this rank is
/// abandoning fail fast with [`CommError::Revoked`] instead of timing
/// out, so every rank reaches the recovery agreement — and the
/// degradation-rung verdict — promptly.
pub(crate) fn budget_error(comm: &Comm, e: mem::BudgetExceeded) -> CommError {
    comm.revoke();
    CommError::BudgetExceeded {
        rank: comm.world_rank_of(comm.rank()),
        phase: e.phase.name(),
        requested: e.requested,
        live: e.live,
        budget: e.budget,
    }
}

/// Algorithm-based fault tolerance (ABFT) policy for the checked
/// kernels ([`try_dist_gram_checked`], [`try_dist_ttm_checked`]).
///
/// The checksums are *linear*, so they commute with the sum-combining
/// collectives: a column-sum row rides through the Gram allreduce and a
/// per-chunk total rides through the TTM reduce-scatter, and any finite
/// corruption of the numeric traffic breaks the linear relation at the
/// receiver — the class of silent error the NaN/Inf screens provably
/// cannot see.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AbftMode {
    /// No checksums (the unchecked kernels).
    #[default]
    Off,
    /// Verify checksums; surface mismatches as
    /// [`CommError::SilentCorruption`] and let the caller abort.
    Detect,
    /// Verify checksums; the solver responds to a mismatch by
    /// recomputing the poisoned contraction (kernel behavior is the
    /// same as [`AbftMode::Detect`] — the distinction lives in the
    /// caller's recovery policy).
    Recover,
}

impl AbftMode {
    /// Are checksums being computed and verified?
    pub fn is_enabled(&self) -> bool {
        !matches!(self, AbftMode::Off)
    }

    /// Parses `off` / `detect` / `recover` (the CLI flag values).
    pub fn parse(s: &str) -> Option<AbftMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" => Some(AbftMode::Off),
            "detect" => Some(AbftMode::Detect),
            "recover" => Some(AbftMode::Recover),
            _ => None,
        }
    }
}

/// Relative tolerance separating accumulation roundoff from injected
/// corruption: `sqrt(eps)` of the element type (≈1.5e-8 for `f64`) —
/// orders of magnitude above roundoff for the problem sizes here, and
/// orders of magnitude below the ≥2× magnitude change of an
/// exponent-bit flip.
fn abft_tol<T: Scalar>() -> f64 {
    T::EPSILON.to_f64().sqrt()
}

fn sum_f64<T: Scalar>(v: &[T]) -> f64 {
    v.iter().map(|x| x.to_f64()).sum()
}

fn abs_sum_f64<T: Scalar>(v: &[T]) -> f64 {
    v.iter().map(|x| x.to_f64().abs()).sum()
}

/// All-to-all with a per-block scalar checksum appended to every
/// message; the receiver re-sums each block and records the worst
/// relative mismatch. Covers the Gram redistribution leg, whose
/// corruption would otherwise be *absorbed* into the local rank-k
/// update before the allreduce checksums are formed. Returns the
/// received blocks plus the local maximum relative checksum error
/// (`f64::INFINITY` for a non-finite mismatch), which the caller folds
/// into the kernel's single collective verdict.
fn try_alltoallv_checked<T: Scalar>(
    comm: &Comm,
    blocks: Vec<Vec<T>>,
) -> Result<(Vec<Vec<T>>, f64), CommError> {
    let stamped: Vec<Vec<T>> = blocks
        .into_iter()
        .map(|mut b| {
            let cs = T::from_f64(sum_f64(&b));
            b.push(cs);
            b
        })
        .collect();
    let received = comm.try_alltoallv(stamped)?;
    let mut rel_err = 0.0f64;
    let mut out = Vec::with_capacity(received.len());
    for mut b in received {
        let cs = b.pop().expect("checked block carries a checksum").to_f64();
        let s = sum_f64(&b);
        let e = (s - cs).abs() / (abs_sum_f64(&b) + cs.abs() + f64::MIN_POSITIVE);
        rel_err = rel_err.max(if e.is_finite() { e } else { f64::INFINITY });
        out.push(b);
    }
    Ok((out, rel_err))
}

/// Turns the kernel-local checksum error into a grid-wide collective
/// verdict over the control plane: every rank learns the worst relative
/// error anyone observed and all ranks reach the same accept /
/// [`CommError::SilentCorruption`] decision — without this, only the
/// ranks whose inbound traffic was corrupted would abort, and a solver
/// retrying the contraction in [`AbftMode::Recover`] would deadlock the
/// collective.
fn abft_verdict<T: Scalar>(grid: &CartGrid, mode: usize, local_rel: f64) -> Result<(), CommError> {
    let _span = ratucker_obs::span_mode(&grid.comm, "ABFT", mode);
    let rel_err = grid.comm.try_verdict_max(if local_rel.is_finite() {
        local_rel
    } else {
        f64::INFINITY
    })?;
    if !rel_err.is_finite() || rel_err > abft_tol::<T>() {
        return Err(CommError::SilentCorruption { mode, rel_err });
    }
    Ok(())
}

/// Fallible distributed TTM: `Y = X ×_mode op(M)` with `M` replicated on
/// every rank.
///
/// The output mode extent (`M`'s rows, or columns under [`Transpose::Yes`])
/// must be at least `P_mode` so every rank keeps a nonempty block.
/// Collective over `grid`. Communication failures (lost messages,
/// crashed peers) surface as [`CommError`].
pub fn try_dist_ttm<T: Scalar>(
    grid: &CartGrid,
    x: &DistTensor<T>,
    mode: usize,
    m: &Matrix<T>,
    trans: Transpose,
) -> Result<DistTensor<T>, CommError> {
    ttm_impl(grid, x, mode, m, trans, AbftMode::Off)
}

/// Checksum-augmented variant of [`try_dist_ttm`]: when `abft` is
/// enabled, each reduce-scatter chunk carries a linear total that is
/// summed along with the data; a mismatch at the receiver surfaces as
/// [`CommError::SilentCorruption`] so the solver can recompute the
/// contraction instead of silently converging to a wrong core.
pub fn try_dist_ttm_checked<T: Scalar>(
    grid: &CartGrid,
    x: &DistTensor<T>,
    mode: usize,
    m: &Matrix<T>,
    trans: Transpose,
    abft: AbftMode,
) -> Result<DistTensor<T>, CommError> {
    ttm_impl(grid, x, mode, m, trans, abft)
}

fn ttm_impl<T: Scalar>(
    grid: &CartGrid,
    x: &DistTensor<T>,
    mode: usize,
    m: &Matrix<T>,
    trans: Transpose,
    abft: AbftMode,
) -> Result<DistTensor<T>, CommError> {
    let _span = ratucker_obs::span_mode(&grid.comm, "TTM", mode);
    let _mem = mem::with_phase(MemPhase::Ttm);
    if !x.local().all_finite() {
        return Err(CommError::Corrupted {
            rank: grid.comm.rank(),
            what: format!("non-finite entry in local tensor block entering TTM (mode {mode})"),
        });
    }
    if !m.all_finite() {
        return Err(CommError::Corrupted {
            rank: grid.comm.rank(),
            what: format!("non-finite entry in TTM operand matrix (mode {mode})"),
        });
    }
    let n_j = x.global_shape().dim(mode);
    let out_dim = match trans {
        Transpose::No => m.rows(),
        Transpose::Yes => m.cols(),
    };
    let my_range = x.dist().range(mode, grid.coord(mode));

    // Restrict the operand to this rank's slice of the contracted mode.
    let m_sub = match trans {
        // M : out_dim × n_j, keep columns my_range.
        Transpose::No => Matrix::from_fn(out_dim, my_range.len, |i, j| m[(i, my_range.offset + j)]),
        // M : n_j × out_dim, keep rows my_range.
        Transpose::Yes => {
            Matrix::from_fn(my_range.len, out_dim, |i, j| m[(my_range.offset + i, j)])
        }
    };
    debug_assert_eq!(
        match trans {
            Transpose::No => m.cols(),
            Transpose::Yes => m.rows(),
        },
        n_j,
        "operand inner dimension must match the global mode extent"
    );

    // Preflight the partial product's footprint before allocating it:
    // under a budget, a rank that cannot even hold the local multiply
    // output fails typed (and revokes) rather than aborting on OOM.
    let left = x.local().shape().left(mode);
    let right = x.local().shape().right(mode);
    mem::ensure_headroom(mem::bytes_of::<T>(left * out_dim * right))
        .map_err(|e| budget_error(&grid.comm, e))?;

    let out_dist = x.dist().with_dim(mode, out_dim);
    let coords = x.coords().to_vec();
    let fiber = grid.mode_comm(mode);
    let p_j = fiber.size();
    if p_j == 1 {
        // Local partial product: full `out_dim` in the contracted mode.
        let partial = ttm(x.local(), mode, &m_sub, trans);
        return Ok(DistTensor::from_parts(out_dist, coords, partial));
    }

    // Slab count for the pipelined path: enough slabs to overlap, few
    // enough that per-slab GEMMs stay well above kernel overheads.
    let n_slabs = right.min(2);
    let pipelined = crate::overlap::overlap().is_on() && mem::rung() == 0 && n_slabs >= 2;
    let mut local_rel = 0.0f64;
    let my_block = if pipelined {
        let (block, rel) = ttm_pipelined(
            grid, x, mode, &m_sub, trans, abft, out_dim, left, right, n_slabs, fiber,
        )?;
        local_rel = rel;
        block
    } else {
        // Local partial product: full `out_dim` in the contracted mode.
        let partial = ttm(x.local(), mode, &m_sub, trans);
        // Pack the partial into P_j contiguous chunks along the output
        // mode (chunk q = the block of `out_dim` owned by fiber rank q),
        // each chunk in standard [left, block, right] layout.
        let pack_chunk = |packed: &mut Vec<T>, q: usize| {
            let r_q = block_range(out_dim, p_j, q);
            let chunk_start = packed.len();
            for r in 0..right {
                for i in 0..r_q.len {
                    let src = (r * out_dim + r_q.offset + i) * left;
                    packed.extend_from_slice(&partial.data()[src..src + left]);
                }
            }
            if abft.is_enabled() {
                // Linear chunk total: summed elementwise across the fiber
                // along with the data, so at the destination the last slot
                // holds the expected total of the reduced block.
                let cs = T::from_f64(sum_f64(&packed[chunk_start..]));
                packed.push(cs);
            }
        };
        let mut blk = if mem::rung() >= 1 {
            // Degradation rung ≥ 1: per-chunk reductions instead of one
            // monolithic reduce-scatter. Peak staging drops from the full
            // packed partial (≈ the local block size) to a single 1/P_j
            // chunk, at the cost of P_j collectives. Every fiber member
            // iterates the roots in the same order, so the pattern is as
            // deterministic as the reduce-scatter it replaces. (This is
            // also why rung ≥ 1 never pipelines: the lean path trades
            // overlap for minimum staging memory.)
            let mut mine: Option<Vec<T>> = None;
            for q in 0..p_j {
                let r_q = block_range(out_dim, p_j, q);
                let cap = left * r_q.len * right + usize::from(abft.is_enabled());
                let mut chunk = mem::TrackedBuf::try_with_capacity(cap)
                    .map_err(|e| budget_error(&grid.comm, e))?;
                pack_chunk(&mut chunk, q);
                let reduced = fiber.try_reduce(q, chunk.into_vec(), sum_op)?;
                if fiber.rank() == q {
                    mine = reduced;
                }
            }
            mine.expect("fiber rank received its reduced chunk")
        } else {
            let cap = partial.num_entries() + p_j;
            let mut packed =
                mem::TrackedBuf::try_with_capacity(cap).map_err(|e| budget_error(&grid.comm, e))?;
            let mut counts = Vec::with_capacity(p_j);
            for q in 0..p_j {
                pack_chunk(&mut packed, q);
                let r_q = block_range(out_dim, p_j, q);
                counts.push(left * r_q.len * right + usize::from(abft.is_enabled()));
            }
            fiber.try_reduce_scatter(packed.into_vec(), &counts, sum_op)?
        };
        if abft.is_enabled() {
            let cs = blk
                .pop()
                .expect("checked reduce-scatter block carries a checksum")
                .to_f64();
            local_rel = if blk.iter().any(|v| !v.is_finite_s()) {
                f64::INFINITY
            } else {
                let s = sum_f64(&blk);
                (s - cs).abs() / (abs_sum_f64(&blk) + cs.abs() + f64::MIN_POSITIVE)
            };
        }
        blk
    };
    if abft.is_enabled() {
        // Fold the non-finite screen into the checksum error (NaN/Inf ⇒
        // infinite relative error) and agree on a grid-wide verdict so
        // every rank aborts — or retries — together.
        if my_block.iter().any(|v| !v.is_finite_s()) {
            local_rel = f64::INFINITY;
        }
        abft_verdict::<T>(grid, mode, local_rel)?;
    } else if my_block.iter().any(|v| !v.is_finite_s()) {
        return Err(CommError::Corrupted {
            rank: grid.comm.rank(),
            what: format!(
                "non-finite entry in TTM reduce-scatter result (mode {mode}); \
                 a peer contributed a corrupted partial product"
            ),
        });
    }
    let local_shape = out_dist.local_shape(&coords);
    let local = DenseTensor::from_vec(local_shape, my_block);
    Ok(DistTensor::from_parts(out_dist, coords, local))
}

/// The rung-0 pipelined TTM backend (`Overlap on`, DESIGN.md §17): the
/// local partial product is computed and reduce-scattered in `n_slabs`
/// right-slabs, slab `s`'s collective in flight while slab `s+1`'s GEMM
/// and packing run on this rank. `ireduce_scatter` posts all of a
/// slab's contribution sends eagerly, so the traffic genuinely moves
/// during the next slab's compute; at most one collective is ever in
/// flight per fiber (the links are tagless FIFOs), waited before the
/// next slab posts.
///
/// Bit-identity with the blocking path: a right-slab of the local block
/// is contiguous, its GEMM is the right-slab restriction of the blocking
/// GEMM (bit-equal per the §16 kernel contract), the split-phase
/// reduce-scatter reproduces the blocking ring's exact elementwise
/// accumulation order (fixed by rank arithmetic alone), and slabs are
/// waited and appended in ascending order — exactly the blocking
/// `[left, block, right]` layout.
#[allow(clippy::too_many_arguments)]
fn ttm_pipelined<T: Scalar>(
    grid: &CartGrid,
    x: &DistTensor<T>,
    mode: usize,
    m_sub: &Matrix<T>,
    trans: Transpose,
    abft: AbftMode,
    out_dim: usize,
    left: usize,
    right: usize,
    n_slabs: usize,
    fiber: &Comm,
) -> Result<(Vec<T>, f64), CommError> {
    let p_j = fiber.size();
    let my_len = block_range(out_dim, p_j, fiber.rank()).len;

    // Staging charge: the *blocking envelope* — the full packed partial
    // plus the collective's resident copy — even though the pipeline's
    // real allocations are per-slab and smaller. The §14 admission
    // estimate and the degradation-ladder pressure points are
    // calibrated against the blocking staging trajectory; charging the
    // same envelope keeps a budgeted run refusing (and the ladder
    // engaging) at the same pressure whichever way the overlap knob is
    // set. The perf win of the pipeline is deleted copies, not deleted
    // accounting.
    let stage_entries = left * out_dim * right + p_j;
    let _stage = mem::Charge::try_new(mem::bytes_of::<T>(2 * stage_entries))
        .map_err(|e| budget_error(&grid.comm, e))?;

    let mut out: Vec<T> = Vec::with_capacity(left * my_len * right);
    let mut rel = 0.0f64;
    // Per-slab checksums differ from the blocking path's single chunk
    // checksum, but they guard the *same* reduced data (which is
    // bit-identical); folding the per-slab relative errors by max keeps
    // the verdict semantics.
    //
    // Each chunk additionally carries a slab-sequence *sentinel* as its
    // last element (value `s + 1`; the sum-reduce turns it into
    // `p_j * (s + 1)` at the owner). Slabbing splits what the blocking
    // path sent as one message into several — often of *equal* length —
    // so a dropped message could silently pair a receive with the
    // neighboring slab's same-typed, same-sized payload, which no type
    // or length check can notice. A sentinel mismatch must surface
    // *symmetrically*: under ABFT it rides the kernel's collective
    // checksum verdict as an infinite relative error (every rank agrees
    // on the abort — a lone typed error here would strand peers mid
    // collective); without ABFT there is no verdict round, so the
    // mismatching rank revokes the fabric — peers fail fast with
    // [`CommError::Revoked`] — and returns [`CommError::Corrupted`].
    let absorb = |req: Request<Vec<T>>, s: usize, out: &mut Vec<T>, rel: &mut f64| {
        let mut blk = req.wait()?;
        let tag = blk
            .pop()
            .expect("pipelined reduce-scatter slab carries a sequence sentinel")
            .to_f64();
        let want_tag = (p_j * (s + 1)) as f64;
        if (tag - want_tag).abs() > 0.5 {
            if !abft.is_enabled() {
                fiber.revoke();
                return Err(CommError::Corrupted {
                    rank: fiber.world_rank_of(fiber.rank()),
                    what: format!(
                        "pipelined reduce-scatter slab out of sequence \
                         (sentinel {tag} where slab {s} expects {want_tag}): \
                         a lost message desynchronized the fiber"
                    ),
                });
            }
            *rel = f64::INFINITY;
        }
        if abft.is_enabled() {
            let cs = blk
                .pop()
                .expect("checked reduce-scatter slab carries a checksum")
                .to_f64();
            let e = if blk.iter().any(|v| !v.is_finite_s()) {
                f64::INFINITY
            } else {
                let s = sum_f64(&blk);
                (s - cs).abs() / (abs_sum_f64(&blk) + cs.abs() + f64::MIN_POSITIVE)
            };
            *rel = rel.max(e);
        }
        out.extend_from_slice(&blk);
        Ok::<(), CommError>(())
    };

    let mut pending: Option<Request<Vec<T>>> = None;
    for s in 0..n_slabs {
        let rr = block_range(right, n_slabs, s);
        // `ttm_right_range` computes exactly this right-slab of the
        // blocking partial product, zero-copy on the input and bit-equal
        // to the matching run of the full GEMM (§16 kernel contract).
        let partial_s = ratucker_tensor::ttm_right_range(
            x.local(),
            mode,
            m_sub,
            trans,
            rr.offset..rr.offset + rr.len,
        );

        // Pack this slab's P_j chunks directly as owned per-destination
        // blocks, each in [left, block, right-slab] layout, with the
        // linear ABFT chunk total appended when checked. The blocks are
        // *moved* into the fabric by `ireduce_scatter_blocks` — unlike
        // the blocking path, no contiguous staging buffer is ever built,
        // which deletes one full copy of the partial product per slab.
        let mut blocks: Vec<Vec<T>> = Vec::with_capacity(p_j);
        for q in 0..p_j {
            let r_q = block_range(out_dim, p_j, q);
            let mut chunk: Vec<T> =
                Vec::with_capacity(left * r_q.len * rr.len + 1 + usize::from(abft.is_enabled()));
            for r in 0..rr.len {
                for i in 0..r_q.len {
                    let src = (r * out_dim + r_q.offset + i) * left;
                    chunk.extend_from_slice(&partial_s[src..src + left]);
                }
            }
            if abft.is_enabled() {
                let cs = T::from_f64(sum_f64(&chunk));
                chunk.push(cs);
            }
            chunk.push(T::from_f64((s + 1) as f64)); // slab-sequence sentinel
            blocks.push(chunk);
        }

        // Overlap point: slab s−1's reduce-scatter has been in flight
        // across the GEMM + pack above; drain it before posting slab s
        // so only one collective ever occupies the fiber.
        if let Some(req) = pending.take() {
            absorb(req, s - 1, &mut out, &mut rel)?;
        }
        pending = Some(fiber.ireduce_scatter_blocks(blocks, sum_op));
    }
    if let Some(req) = pending.take() {
        absorb(req, n_slabs - 1, &mut out, &mut rel)?;
    }
    Ok((out, rel))
}

/// Fallible distributed multi-TTM with every factor transposed, skipping
/// `skip_mode` (Alg. 2 line 5), applying modes in increasing order.
pub fn try_dist_multi_ttm_all_but<T: Scalar>(
    grid: &CartGrid,
    x: &DistTensor<T>,
    factors: &[Matrix<T>],
    skip_mode: usize,
) -> Result<DistTensor<T>, CommError> {
    let mut cur: Option<DistTensor<T>> = None;
    for (k, u) in factors.iter().enumerate() {
        if k == skip_mode {
            continue;
        }
        let next = match &cur {
            None => try_dist_ttm(grid, x, k, u, Transpose::Yes)?,
            Some(t) => try_dist_ttm(grid, t, k, u, Transpose::Yes)?,
        };
        cur = Some(next);
    }
    Ok(cur.unwrap_or_else(|| x.clone()))
}

/// Fallible distributed Gram of the mode-`mode` unfolding: returns the
/// replicated `n_mode × n_mode` matrix `X_(mode) X_(mode)ᵀ` on every rank.
/// Collective.
pub fn try_dist_gram<T: Scalar>(
    grid: &CartGrid,
    x: &DistTensor<T>,
    mode: usize,
) -> Result<Matrix<T>, CommError> {
    gram_impl(grid, x, mode, AbftMode::Off)
}

/// Checksum-augmented variant of [`try_dist_gram`]: when `abft` is
/// enabled, (a) every redistribution message carries a scalar total
/// verified on receipt, and (b) a column-sum checksum row is appended
/// to the local Gram contribution and rides through the allreduce —
/// linearity means the reduced checksum row must equal the column sums
/// of the reduced matrix. Mismatch surfaces as
/// [`CommError::SilentCorruption`] with the observed relative error.
pub fn try_dist_gram_checked<T: Scalar>(
    grid: &CartGrid,
    x: &DistTensor<T>,
    mode: usize,
    abft: AbftMode,
) -> Result<Matrix<T>, CommError> {
    gram_impl(grid, x, mode, abft)
}

fn gram_impl<T: Scalar>(
    grid: &CartGrid,
    x: &DistTensor<T>,
    mode: usize,
    abft: AbftMode,
) -> Result<Matrix<T>, CommError> {
    let _span = ratucker_obs::span_mode(&grid.comm, "Gram", mode);
    let _mem = mem::with_phase(MemPhase::Gram);
    if !x.local().all_finite() {
        return Err(CommError::Corrupted {
            rank: grid.comm.rank(),
            what: format!("non-finite entry in local tensor block entering Gram (mode {mode})"),
        });
    }
    let n_j = x.global_shape().dim(mode);
    let fiber = grid.mode_comm(mode);
    let p_j = fiber.size();

    // Worst relative checksum error seen on the redistribution leg;
    // folded into the kernel's single end-of-kernel verdict.
    let mut a2a_rel = 0.0f64;
    let mut g_partial = Matrix::try_zeros(n_j, n_j).map_err(|e| budget_error(&grid.comm, e))?;
    if p_j == 1 {
        // Mode fully local: straight local Gram.
        ratucker_tensor::gram::gram_accumulate(x.local(), mode, &mut g_partial);
    } else {
        // Redistribute to a 1D column layout within the fiber: all fiber
        // members hold the same global columns (identical non-mode
        // coordinates) with distinct row blocks; each takes full rows of a
        // 1/P_j share of those columns.
        let local = x.local();
        let nj_loc = local.dim(mode);
        let left = local.shape().left(mode);
        let right = local.shape().right(mode);
        let total_cols = left * right;

        // Pack column fibers destined to each fiber rank. The staging
        // total (one copy of the local block) is charged up front so a
        // budgeted rank refuses typed instead of aborting on OOM.
        let _stage = mem::Charge::try_new(mem::bytes_of::<T>(nj_loc * total_cols))
            .map_err(|e| budget_error(&grid.comm, e))?;
        let mut blocks: Vec<Vec<T>> = Vec::with_capacity(p_j);
        for q in 0..p_j {
            let cr = block_range(total_cols, p_j, q);
            let mut buf = Vec::with_capacity(cr.len * nj_loc);
            for c in cr.offset..cr.offset + cr.len {
                let l = c % left;
                let r = c / left;
                let base = l + r * left * nj_loc;
                for i in 0..nj_loc {
                    buf.push(local.data()[base + i * left]);
                }
            }
            blocks.push(buf);
        }
        let received = if abft.is_enabled() {
            let (received, rel) = try_alltoallv_checked(fiber, blocks)?;
            a2a_rel = rel;
            received
        } else {
            fiber.try_alltoallv(blocks)?
        };

        // Validate the received block sizes before assembling anything.
        let my_cols = block_range(total_cols, p_j, fiber.rank()).len;
        for (s, block) in received.iter().enumerate() {
            let rows_s = x.dist().range(mode, s);
            if block.len() != rows_s.len * my_cols {
                // Channel desync from a dropped message: typed and
                // failure-class rather than an untyped panic.
                return Err(CommError::SizeMismatch {
                    src: fiber.world_rank_of(s),
                    dst: fiber.world_rank_of(fiber.rank()),
                    expected: rows_s.len * my_cols,
                    got: block.len(),
                });
            }
        }

        // Assemble my column share with full rows (A is n_j × my_cols)
        // and apply the symmetric rank-k update G += A Aᵀ. On rung ≥ 2
        // the unfolding is *streamed*: A is assembled and consumed in
        // contiguous ascending column batches of 1/8 of the share, so
        // the scratch shrinks 8× — and because every `syrk_nt` path
        // (packed, small-fallback, multithreaded) accumulates each
        // G[i,j] by the same strictly-ascending-k chain with an exact
        // store/load between batches (symmetrization is an overwrite
        // copy), the batched result is bit-identical to the monolithic
        // one at ANY batch boundaries — the DESIGN.md §16 contract,
        // regression-tested by
        // `syrk_nt_k_batched_accumulation_is_bit_identical` in
        // crates/tensor.
        let batch_cols = if mem::rung() >= 2 {
            my_cols.div_ceil(8).max(1)
        } else {
            my_cols.max(1)
        };
        let mut c0 = 0;
        while c0 < my_cols {
            let cols_now = batch_cols.min(my_cols - c0);
            let mut a =
                Matrix::try_zeros(n_j, cols_now).map_err(|e| budget_error(&grid.comm, e))?;
            for (s, block) in received.iter().enumerate() {
                let rows_s = x.dist().range(mode, s);
                for c in 0..cols_now {
                    let col = a.col_mut(c);
                    col[rows_s.offset..rows_s.offset + rows_s.len]
                        .copy_from_slice(&block[(c0 + c) * rows_s.len..(c0 + c + 1) * rows_s.len]);
                }
            }
            ratucker_tensor::kernels::syrk_nt(
                n_j,
                cols_now,
                a.as_slice(),
                n_j,
                g_partial.as_mut_slice(),
                n_j,
            );
            c0 += cols_now;
        }
    }

    // Sum contributions across the whole grid; result replicated. Under
    // ABFT, append a column-sum checksum row: it is a linear function of
    // the payload, so summing it across ranks yields the column sums of
    // the summed matrix — any finite corruption of the allreduce traffic
    // breaks the equality.
    let mut payload = g_partial.into_vec();
    if abft.is_enabled() {
        for j in 0..n_j {
            let col = &payload[j * n_j..(j + 1) * n_j];
            payload.push(T::from_f64(sum_f64(col)));
        }
    }
    let summed = grid.comm.try_allreduce(payload, sum_op)?;
    if abft.is_enabled() {
        // Fold the non-finite screen and the redistribution-leg error
        // into one relative error, then agree on a grid-wide verdict so
        // every rank aborts — or retries — together.
        let mut rel_err = a2a_rel;
        if summed.iter().any(|v| !v.is_finite_s()) {
            rel_err = f64::INFINITY;
        } else {
            for j in 0..n_j {
                let col = &summed[j * n_j..(j + 1) * n_j];
                let cs = summed[n_j * n_j + j].to_f64();
                let s = sum_f64(col);
                let e = (s - cs).abs() / (abs_sum_f64(col) + cs.abs() + f64::MIN_POSITIVE);
                rel_err = rel_err.max(e);
            }
        }
        abft_verdict::<T>(grid, mode, rel_err)?;
    } else if summed.iter().any(|v| !v.is_finite_s()) {
        return Err(CommError::Corrupted {
            rank: grid.comm.rank(),
            what: format!(
                "non-finite entry in allreduced Gram matrix (mode {mode}); \
                 a peer contributed a corrupted partial sum"
            ),
        });
    }
    Ok(Matrix::from_vec(n_j, n_j, summed[..n_j * n_j].to_vec()))
}

/// Fallible distributed all-but-one contraction (the new §3.4 kernel):
/// `Z = Y_(mode) G_(mode)ᵀ` with `core` the *replicated* current core
/// tensor. Returns the replicated `n_mode × r_mode` iterate. Collective.
pub fn try_dist_contract<T: Scalar>(
    grid: &CartGrid,
    y: &DistTensor<T>,
    core: &DenseTensor<T>,
    mode: usize,
) -> Result<Matrix<T>, CommError> {
    let _span = ratucker_obs::span_mode(&grid.comm, "SI", mode);
    let d = y.global_shape().order();
    assert_eq!(core.order(), d);
    let n_j = y.global_shape().dim(mode);
    let r_j = core.dim(mode);
    for k in 0..d {
        if k != mode {
            assert_eq!(
                y.global_shape().dim(k),
                core.dim(k),
                "core/global dim mismatch in mode {k}"
            );
        }
    }

    // Extract the core block matching this rank's non-mode ranges.
    let ranges: Vec<_> = (0..d)
        .map(|k| {
            if k == mode {
                crate::distribution::BlockRange {
                    offset: 0,
                    len: r_j,
                }
            } else {
                y.dist().range(k, y.coords()[k])
            }
        })
        .collect();
    let my_rows = y.dist().range(mode, grid.coord(mode));
    // A rank's local contraction for a *column slab* of the iterate only
    // needs the matching mode-slab of the core, so the iterate can be
    // built in column slabs — and slab s's allreduce overlapped with
    // slab s+1's local contraction (`Overlap on`, DESIGN.md §17).
    let make_slab = |cr: crate::distribution::BlockRange| {
        let mut slab_ranges = ranges.clone();
        slab_ranges[mode] = cr;
        let sub_dims: Vec<usize> = slab_ranges.iter().map(|r| r.len).collect();
        let mut gidx = vec![0usize; d];
        let g_s = DenseTensor::from_fn(ratucker_tensor::shape::Shape::new(&sub_dims), |lidx| {
            for k in 0..d {
                gidx[k] = slab_ranges[k].offset + lidx[k];
            }
            core.get(&gidx)
        });
        // Local contraction covers my row block and the slab's columns;
        // embed at my row offset for the sum-reduce + broadcast.
        let z_s = ratucker_tensor::contract::contract_all_but(y.local(), &g_s, mode);
        let mut z_full = Matrix::zeros(n_j, cr.len);
        for c in 0..cr.len {
            z_full.col_mut(c)[my_rows.offset..my_rows.offset + my_rows.len]
                .copy_from_slice(z_s.col(c));
        }
        z_full.into_vec()
    };

    if crate::overlap::overlap().is_on() && mem::rung() == 0 && grid.comm.size() > 1 && r_j >= 2 {
        // Two column slabs, one allreduce in flight at a time. Each
        // column's binomial combine is elementwise and fixed by rank
        // arithmetic alone, so per-slab allreduces are bit-identical to
        // the monolithic one column by column; ascending-slab concat of
        // a column-major matrix is the blocking layout verbatim.
        const SI_SLABS: usize = 2;
        // Slab-sequence sentinel base (kept distinct from the TTM
        // pipeline's `s + 1` tags so the two kernels' slabs can never
        // masquerade as each other): each slab's allreduce payload ends
        // with `SI_TAG_BASE + s`, which the sum-reduce turns into
        // `p * (SI_TAG_BASE + s)`. Column slabs of equal width produce
        // equal-length payloads, so a dropped message could otherwise
        // silently pair a wait with the neighboring slab's broadcast;
        // the sentinel turns that swap into a typed error (see the TTM
        // pipeline's matching check).
        const SI_TAG_BASE: usize = 16;
        let p = grid.comm.size();
        let absorb = |req: Request<Vec<T>>, s: usize, out: &mut Vec<T>| {
            let mut v = req.wait()?;
            let tag = v
                .pop()
                .expect("pipelined SI slab carries a sequence sentinel")
                .to_f64();
            let want_tag = (p * (SI_TAG_BASE + s)) as f64;
            if (tag - want_tag).abs() > 0.5 {
                // No checksum-verdict round exists on this path, so the
                // abort cannot ride a collective: revoke instead, so
                // peers still blocked in the allreduce fail fast with
                // `Revoked` rather than stranding on a dead collective.
                grid.comm.revoke();
                return Err(CommError::Corrupted {
                    rank: grid.comm.world_rank_of(grid.comm.rank()),
                    what: format!(
                        "pipelined SI slab out of sequence \
                         (sentinel {tag} where slab {s} expects {want_tag}): \
                         a lost message desynchronized the channel"
                    ),
                });
            }
            out.extend_from_slice(&v);
            Ok::<(), CommError>(())
        };
        let mut out: Vec<T> = Vec::with_capacity(n_j * r_j);
        let mut pending: Option<Request<Vec<T>>> = None;
        for s in 0..SI_SLABS {
            let cr = block_range(r_j, SI_SLABS, s);
            let mut embedded = make_slab(cr);
            embedded.push(T::from_f64((SI_TAG_BASE + s) as f64));
            if let Some(req) = pending.take() {
                absorb(req, s - 1, &mut out)?;
            }
            pending = Some(grid.comm.iallreduce(embedded, sum_op));
        }
        if let Some(req) = pending.take() {
            absorb(req, SI_SLABS - 1, &mut out)?;
        }
        return Ok(Matrix::from_vec(n_j, r_j, out));
    }

    let embedded = make_slab(crate::distribution::BlockRange {
        offset: 0,
        len: r_j,
    });
    let summed = grid.comm.try_allreduce(embedded, sum_op)?;
    Ok(Matrix::from_vec(n_j, r_j, summed))
}

// -------------------------------------------------------------------
// Legacy panicking wrappers
// -------------------------------------------------------------------

/// Distributed TTM: `Y = X ×_mode op(M)` with `M` replicated on every rank.
/// Panicking wrapper over [`try_dist_ttm`].
pub fn dist_ttm<T: Scalar>(
    grid: &CartGrid,
    x: &DistTensor<T>,
    mode: usize,
    m: &Matrix<T>,
    trans: Transpose,
) -> DistTensor<T> {
    try_dist_ttm(grid, x, mode, m, trans).unwrap_or_else(|e| panic!("{e}"))
}

/// Distributed multi-TTM with every factor transposed, skipping
/// `skip_mode` (Alg. 2 line 5), applying modes in increasing order.
/// Panicking wrapper over [`try_dist_multi_ttm_all_but`].
pub fn dist_multi_ttm_all_but<T: Scalar>(
    grid: &CartGrid,
    x: &DistTensor<T>,
    factors: &[Matrix<T>],
    skip_mode: usize,
) -> DistTensor<T> {
    try_dist_multi_ttm_all_but(grid, x, factors, skip_mode).unwrap_or_else(|e| panic!("{e}"))
}

/// Distributed Gram of the mode-`mode` unfolding: returns the replicated
/// `n_mode × n_mode` matrix `X_(mode) X_(mode)ᵀ` on every rank. Collective.
/// Panicking wrapper over [`try_dist_gram`].
pub fn dist_gram<T: Scalar>(grid: &CartGrid, x: &DistTensor<T>, mode: usize) -> Matrix<T> {
    try_dist_gram(grid, x, mode).unwrap_or_else(|e| panic!("{e}"))
}

/// Distributed all-but-one contraction (the new §3.4 kernel):
/// `Z = Y_(mode) G_(mode)ᵀ` with `core` the *replicated* current core
/// tensor. Returns the replicated `n_mode × r_mode` iterate. Collective.
/// Panicking wrapper over [`try_dist_contract`].
pub fn dist_contract<T: Scalar>(
    grid: &CartGrid,
    y: &DistTensor<T>,
    core: &DenseTensor<T>,
    mode: usize,
) -> Matrix<T> {
    try_dist_contract(grid, y, core, mode).unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratucker_mpi::Universe;
    use ratucker_tensor::shape::Shape;

    fn global_value(idx: &[usize]) -> f64 {
        idx.iter()
            .enumerate()
            .map(|(k, &i)| ((k + 2) * (i + 1)) as f64 * 0.31)
            .sum::<f64>()
            .sin()
    }

    fn factor(n: usize, r: usize, seed: usize) -> Matrix<f64> {
        Matrix::from_fn(n, r, |i, j| {
            (((seed + 1) * (i + 2 * j + 1)) as f64 * 0.17).cos()
        })
    }

    #[test]
    fn dist_ttm_matches_sequential_all_modes_and_grids() {
        let dims = [6, 5, 4];
        let x_ref = DenseTensor::from_fn(dims, global_value);
        for grid_dims in [
            vec![1, 1, 1],
            vec![2, 1, 1],
            vec![1, 1, 2],
            vec![2, 1, 2],
            vec![3, 1, 2],
        ] {
            let p: usize = grid_dims.iter().product();
            for mode in 0..3 {
                let u = factor(dims[mode], 3, mode);
                let want = ttm(&x_ref, mode, &u, Transpose::Yes);
                let gd = grid_dims.clone();
                let uu = u.clone();
                let results = Universe::launch(p, move |c| {
                    let grid = CartGrid::new(c, &gd);
                    let x = DistTensor::from_fn(&grid, Shape::new(&dims), global_value);
                    let y = dist_ttm(&grid, &x, mode, &uu, Transpose::Yes);
                    y.gather_replicated(&grid)
                });
                for got in results {
                    assert!(
                        got.max_abs_diff(&want) < 1e-11,
                        "grid {grid_dims:?} mode {mode}"
                    );
                }
            }
        }
    }

    #[test]
    fn dist_ttm_distributed_output_mode_is_split() {
        // Grid splits the mode being multiplied: out_dim 4 over P_1 = 2.
        let dims = [6, 6];
        let results = Universe::launch(4, |c| {
            let grid = CartGrid::new(c, &[2, 2]);
            let x = DistTensor::from_fn(&grid, Shape::new(&dims), global_value);
            let u = factor(6, 4, 9);
            let y = dist_ttm(&grid, &x, 0, &u, Transpose::Yes);
            (
                y.local().shape().dims().to_vec(),
                y.gather_replicated(&grid),
            )
        });
        let x_ref = DenseTensor::from_fn(dims, global_value);
        let want = ttm(&x_ref, 0, &factor(6, 4, 9), Transpose::Yes);
        for (local_dims, got) in results {
            assert_eq!(local_dims, vec![2, 3]);
            assert!(got.max_abs_diff(&want) < 1e-11);
        }
    }

    #[test]
    fn dist_ttm_untransposed() {
        let dims = [5, 4];
        let x_ref = DenseTensor::from_fn(dims, global_value);
        let m = factor(4, 5, 3).transpose(); // 5x4? transpose gives 5 rows? factor(4,5) is 4x5; transpose 5x4... we need out x n_j for mode 1: n_1 = 4.
        let want = ttm(&x_ref, 1, &m, Transpose::No);
        let mm = m.clone();
        let results = Universe::launch(2, move |c| {
            let grid = CartGrid::new(c, &[1, 2]);
            let x = DistTensor::from_fn(&grid, Shape::new(&dims), global_value);
            dist_ttm(&grid, &x, 1, &mm, Transpose::No).gather_replicated(&grid)
        });
        for got in results {
            assert!(got.max_abs_diff(&want) < 1e-11);
        }
    }

    #[test]
    fn dist_multi_ttm_matches_sequential() {
        let dims = [5, 4, 6];
        let x_ref = DenseTensor::from_fn(dims, global_value);
        let factors: Vec<Matrix<f64>> = (0..3).map(|k| factor(dims[k], 2, k)).collect();
        for skip in 0..3 {
            let want = ratucker_tensor::ttm::multi_ttm_all_but(&x_ref, &factors, skip);
            let fs = factors.clone();
            let results = Universe::launch(4, move |c| {
                let grid = CartGrid::new(c, &[2, 1, 2]);
                let x = DistTensor::from_fn(&grid, Shape::new(&dims), global_value);
                dist_multi_ttm_all_but(&grid, &x, &fs, skip).gather_replicated(&grid)
            });
            for got in results {
                assert!(got.max_abs_diff(&want) < 1e-11, "skip {skip}");
            }
        }
    }

    #[test]
    fn dist_gram_matches_sequential_all_modes_and_grids() {
        let dims = [6, 5, 4];
        let x_ref = DenseTensor::from_fn(dims, global_value);
        for grid_dims in [
            vec![1, 1, 1],
            vec![2, 1, 1],
            vec![1, 2, 2],
            vec![2, 1, 2],
            vec![2, 2, 2],
        ] {
            let p: usize = grid_dims.iter().product();
            for mode in 0..3 {
                let want = ratucker_tensor::gram::gram(&x_ref, mode);
                let gd = grid_dims.clone();
                let results = Universe::launch(p, move |c| {
                    let grid = CartGrid::new(c, &gd);
                    let x = DistTensor::from_fn(&grid, Shape::new(&dims), global_value);
                    dist_gram(&grid, &x, mode)
                });
                for got in results {
                    assert!(
                        got.max_abs_diff(&want) < 1e-10,
                        "grid {grid_dims:?} mode {mode}"
                    );
                }
            }
        }
    }

    #[test]
    fn nan_input_block_is_a_corrupted_error() {
        // Single rank: the screen fires before any communication.
        let dims = [4, 3];
        let results = Universe::launch(1, move |c| {
            let grid = CartGrid::new(c, &[1, 1]);
            let x = DistTensor::from_fn(&grid, Shape::new(&dims), |idx| {
                if idx == [1, 2] {
                    f64::NAN
                } else {
                    global_value(idx)
                }
            });
            let u = factor(4, 2, 0);
            let ttm_err = try_dist_ttm(&grid, &x, 0, &u, Transpose::Yes).unwrap_err();
            let gram_err = try_dist_gram(&grid, &x, 0).unwrap_err();
            (ttm_err, gram_err)
        });
        for (ttm_err, gram_err) in results {
            assert!(matches!(ttm_err, CommError::Corrupted { .. }), "{ttm_err}");
            assert!(ttm_err.to_string().contains("detected corrupted data"));
            assert!(
                matches!(gram_err, CommError::Corrupted { .. }),
                "{gram_err}"
            );
        }
    }

    #[test]
    fn nan_operand_matrix_is_a_corrupted_error_on_every_rank() {
        // Replicated operand: every rank screens it out before the
        // collective starts, so no rank is left hanging in a reduce.
        let dims = [6, 4];
        let results = Universe::launch(2, move |c| {
            let grid = CartGrid::new(c, &[2, 1]);
            let x = DistTensor::from_fn(&grid, Shape::new(&dims), global_value);
            let mut u = factor(6, 3, 1);
            u[(2, 1)] = f64::INFINITY;
            try_dist_ttm(&grid, &x, 0, &u, Transpose::Yes).unwrap_err()
        });
        for err in results {
            assert!(matches!(err, CommError::Corrupted { .. }), "{err}");
            assert!(err.to_string().contains("operand matrix"));
        }
    }

    #[test]
    fn corrupted_collective_payload_is_detected() {
        // A fault plan NaN-injects every message; the post-allreduce
        // screen in the Gram kernel must catch the poisoned sum.
        use ratucker_mpi::{CorruptMode, FaultPlan};
        let dims = [6, 4];
        let plan = FaultPlan::quiet(11).with_corruption(1.0, CorruptMode::NanInject);
        let results = Universe::try_launch(2, plan, move |c| {
            let grid = CartGrid::new(c, &[2, 1]);
            let x = DistTensor::from_fn(&grid, Shape::new(&dims), global_value);
            try_dist_gram(&grid, &x, 0)
        });
        for r in results {
            let err = r
                .expect("screen returns an error, not a panic")
                .unwrap_err();
            assert!(matches!(err, CommError::Corrupted { .. }), "{err}");
        }
    }

    #[test]
    fn checked_kernels_match_unchecked_when_clean() {
        // With no faults, ABFT must be invisible: identical results,
        // no spurious SilentCorruption from accumulation roundoff.
        let dims = [6, 5, 4];
        for mode in 0..3 {
            let results = Universe::launch(8, move |c| {
                let grid = CartGrid::new(c, &[2, 2, 2]);
                let x = DistTensor::from_fn(&grid, Shape::new(&dims), global_value);
                let g0 = try_dist_gram(&grid, &x, mode).unwrap();
                let g1 = try_dist_gram_checked(&grid, &x, mode, AbftMode::Detect).unwrap();
                let u = factor(dims[mode], 3, mode);
                let y0 = try_dist_ttm(&grid, &x, mode, &u, Transpose::Yes).unwrap();
                let y1 =
                    try_dist_ttm_checked(&grid, &x, mode, &u, Transpose::Yes, AbftMode::Detect)
                        .unwrap();
                (g0.max_abs_diff(&g1), y0.local().max_abs_diff(y1.local()))
            });
            for (dg, dy) in results {
                assert_eq!(dg, 0.0, "mode {mode}: gram checksum must not alter result");
                assert_eq!(dy, 0.0, "mode {mode}: ttm checksum must not alter result");
            }
        }
    }

    #[test]
    fn finite_corruption_is_invisible_to_unchecked_gram() {
        // The satellite claim: an exponent flip is FINITE, so the NaN
        // screens pass it through and the unchecked kernel silently
        // returns a wrong matrix.
        use ratucker_mpi::{CorruptMode, FaultPlan};
        let dims = [6, 4];
        let plan = FaultPlan::quiet(23).with_corruption(1.0, CorruptMode::ExponentFlip);
        let clean = Universe::launch(2, move |c| {
            let grid = CartGrid::new(c, &[2, 1]);
            let x = DistTensor::from_fn(&grid, Shape::new(&dims), global_value);
            try_dist_gram(&grid, &x, 0).unwrap()
        });
        let poisoned = Universe::try_launch(2, plan, move |c| {
            let grid = CartGrid::new(c, &[2, 1]);
            let x = DistTensor::from_fn(&grid, Shape::new(&dims), global_value);
            try_dist_gram(&grid, &x, 0)
        });
        for (r, want) in poisoned.into_iter().zip(clean) {
            let got = r.unwrap().expect("NaN screens miss finite corruption");
            assert!(
                got.max_abs_diff(&want) > 0.0,
                "corruption must actually have changed the result"
            );
        }
    }

    #[test]
    fn finite_corruption_is_flagged_by_checked_gram() {
        use ratucker_mpi::{CorruptMode, FaultPlan};
        let dims = [6, 4];
        let plan = FaultPlan::quiet(23).with_corruption(1.0, CorruptMode::ExponentFlip);
        let results = Universe::try_launch(2, plan, move |c| {
            let grid = CartGrid::new(c, &[2, 1]);
            let x = DistTensor::from_fn(&grid, Shape::new(&dims), global_value);
            try_dist_gram_checked(&grid, &x, 0, AbftMode::Detect)
        });
        for r in results {
            let err = r.unwrap().unwrap_err();
            match err {
                CommError::SilentCorruption { mode: 0, rel_err } => {
                    assert!(rel_err > abft_tol::<f64>(), "rel_err {rel_err}");
                }
                other => panic!("expected SilentCorruption, got {other}"),
            }
            assert!(err.to_string().contains("silent data corruption"));
        }
    }

    #[test]
    fn finite_corruption_is_flagged_by_checked_ttm() {
        use ratucker_mpi::{CorruptMode, FaultPlan};
        let dims = [6, 4];
        // Grid splits mode 0 so the TTM runs a real reduce-scatter.
        let plan = FaultPlan::quiet(31).with_corruption(1.0, CorruptMode::ExponentFlip);
        let results = Universe::try_launch(2, plan, move |c| {
            let grid = CartGrid::new(c, &[2, 1]);
            let x = DistTensor::from_fn(&grid, Shape::new(&dims), global_value);
            let u = factor(6, 3, 5);
            try_dist_ttm_checked(&grid, &x, 0, &u, Transpose::Yes, AbftMode::Detect)
        });
        for r in results {
            match r.unwrap().unwrap_err() {
                CommError::SilentCorruption { mode: 0, .. } => {}
                other => panic!("expected SilentCorruption, got {other}"),
            }
        }
    }

    #[test]
    fn abft_mode_parses_cli_values() {
        assert_eq!(AbftMode::parse("off"), Some(AbftMode::Off));
        assert_eq!(AbftMode::parse("Detect"), Some(AbftMode::Detect));
        assert_eq!(AbftMode::parse(" recover "), Some(AbftMode::Recover));
        assert_eq!(AbftMode::parse("on"), None);
        assert!(!AbftMode::Off.is_enabled());
        assert!(AbftMode::Recover.is_enabled());
    }

    #[test]
    fn dist_contract_matches_sequential() {
        let dims = [6, 5, 4];
        let y_ref = DenseTensor::from_fn(dims, global_value);
        for mode in 0..3 {
            let mut core_dims = dims;
            core_dims[mode] = 2;
            let core = DenseTensor::from_fn(core_dims, |idx| global_value(idx).cos());
            let want = ratucker_tensor::contract::contract_all_but(&y_ref, &core, mode);
            let cc = core.clone();
            for grid_dims in [vec![1, 1, 1], vec![2, 2, 1], vec![2, 1, 2]] {
                let p: usize = grid_dims.iter().product();
                let gd = grid_dims.clone();
                let core2 = cc.clone();
                let results = Universe::launch(p, move |c| {
                    let grid = CartGrid::new(c, &gd);
                    let y = DistTensor::from_fn(&grid, Shape::new(&dims), global_value);
                    dist_contract(&grid, &y, &core2, mode)
                });
                for got in results {
                    assert!(
                        got.max_abs_diff(&want) < 1e-10,
                        "grid {grid_dims:?} mode {mode}"
                    );
                }
            }
        }
    }
}
