//! Property tests: for arbitrary small tensors and admissible grids, the
//! distributed kernels must agree with the sequential ones bitwise-close.

use proptest::prelude::*;
use ratucker_dist::{dist_contract, dist_gram, dist_ttm, DistTensor};
use ratucker_mpi::{CartGrid, Universe};
use ratucker_tensor::dense::DenseTensor;
use ratucker_tensor::matrix::Matrix;
use ratucker_tensor::shape::Shape;
use ratucker_tensor::ttm::{ttm, Transpose};

/// Strategy: (dims, grid) with 2–3 modes, dims 3–6, and a grid whose
/// product is ≤ 8 and which never oversubscribes a mode.
fn arb_dims_grid() -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    (2usize..=3)
        .prop_flat_map(|d| {
            (
                prop::collection::vec(3usize..=6, d..=d),
                prop::collection::vec(1usize..=2, d..=d),
            )
        })
        .prop_filter("grid fits dims", |(dims, grid)| {
            grid.iter().zip(dims).all(|(&g, &n)| g <= n) && grid.iter().product::<usize>() <= 8
        })
}

fn tensor_of(dims: &[usize], seed: u64) -> DenseTensor<f64> {
    DenseTensor::from_fn(Shape::new(dims), |idx| {
        let mut v = seed as f64 * 0.01;
        for (k, &i) in idx.iter().enumerate() {
            v += ((k + 1) * (i + 2)) as f64 * 0.19;
        }
        v.sin()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn dist_ttm_matches_sequential(
        (dims, grid) in arb_dims_grid(),
        seed in 0u64..100,
        mode_pick in 0usize..3,
    ) {
        let d = dims.len();
        let mode = mode_pick % d;
        let r = 2usize.min(dims[mode]);
        // Keep the output mode's extent ≥ the grid dim there.
        let r = r.max(grid[mode]);
        let x_ref = tensor_of(&dims, seed);
        let u = Matrix::from_fn(dims[mode], r, |i, j| ((seed as usize + i + 3 * j) as f64 * 0.23).cos());
        let want = ttm(&x_ref, mode, &u, Transpose::Yes);
        let p: usize = grid.iter().product();
        let dims2 = dims.clone();
        let grid2 = grid.clone();
        let out = Universe::launch(p, move |c| {
            let g = CartGrid::new(c, &grid2);
            let xd = DistTensor::from_fn(&g, Shape::new(&dims2), |idx| x_ref.get(idx));
            dist_ttm(&g, &xd, mode, &u, Transpose::Yes).gather_replicated(&g)
        });
        for got in out {
            prop_assert!(got.max_abs_diff(&want) < 1e-11);
        }
    }

    #[test]
    fn dist_gram_matches_sequential(
        (dims, grid) in arb_dims_grid(),
        seed in 0u64..100,
        mode_pick in 0usize..3,
    ) {
        let d = dims.len();
        let mode = mode_pick % d;
        let x_ref = tensor_of(&dims, seed);
        let want = ratucker_tensor::gram::gram(&x_ref, mode);
        let p: usize = grid.iter().product();
        let dims2 = dims.clone();
        let grid2 = grid.clone();
        let out = Universe::launch(p, move |c| {
            let g = CartGrid::new(c, &grid2);
            let xd = DistTensor::from_fn(&g, Shape::new(&dims2), |idx| x_ref.get(idx));
            dist_gram(&g, &xd, mode)
        });
        for got in out {
            prop_assert!(got.max_abs_diff(&want) < 1e-10);
        }
    }

    #[test]
    fn dist_contract_matches_sequential(
        (dims, grid) in arb_dims_grid(),
        seed in 0u64..100,
        mode_pick in 0usize..3,
    ) {
        let d = dims.len();
        let mode = mode_pick % d;
        let x_ref = tensor_of(&dims, seed);
        let mut core_dims = dims.clone();
        core_dims[mode] = 2.min(core_dims[mode]);
        let core = tensor_of(&core_dims, seed.wrapping_add(7));
        let want = ratucker_tensor::contract::contract_all_but(&x_ref, &core, mode);
        let p: usize = grid.iter().product();
        let dims2 = dims.clone();
        let grid2 = grid.clone();
        let core2 = core.clone();
        let out = Universe::launch(p, move |c| {
            let g = CartGrid::new(c, &grid2);
            let xd = DistTensor::from_fn(&g, Shape::new(&dims2), |idx| x_ref.get(idx));
            dist_contract(&g, &xd, &core2, mode)
        });
        for got in out {
            prop_assert!(got.max_abs_diff(&want) < 1e-10);
        }
    }

    #[test]
    fn scatter_gather_roundtrip_any_grid(
        (dims, grid) in arb_dims_grid(),
        seed in 0u64..100,
    ) {
        let x_ref = tensor_of(&dims, seed);
        let p: usize = grid.iter().product();
        let dims2 = dims.clone();
        let grid2 = grid.clone();
        let x_in = x_ref.clone();
        let out = Universe::launch(p, move |c| {
            let g = CartGrid::new(c, &grid2);
            let xd = DistTensor::from_fn(&g, Shape::new(&dims2), |idx| x_in.get(idx));
            let norm = xd.squared_norm(&g);
            (xd.gather_replicated(&g), norm)
        });
        for (got, norm) in out {
            prop_assert_eq!(got.max_abs_diff(&x_ref), 0.0);
            prop_assert!((norm - x_ref.squared_norm_f64()).abs() < 1e-9);
        }
    }
}
