//! Property test: re-blocking after an arbitrary single-rank loss
//! preserves the global tensor **bit-exactly**.
//!
//! This is the invariant `dist::redistribute` documents: assembly is a
//! pure copy, so for any tensor shape, any source grid with P ∈ {2,4,8}
//! ranks, and any single victim rank, redistributing the survivors'
//! blocks plus one replica of the victim's block onto the shrunken grid
//! reproduces every global entry with `==` equality — no tolerance.

use proptest::prelude::*;
use ratucker_dist::{try_redistribute, BlockPiece, DistTensor, TensorDist};
use ratucker_mpi::{choose_shrunk_dims, CartGrid, Universe};
use ratucker_tensor::dense::DenseTensor;
use ratucker_tensor::shape::Shape;

/// Strategy: (dims, grid, victim) with 2–3 modes, dims 3–7, grid entries
/// 1–2 whose product P is in {2, 4, 8}, and a victim rank < P.
fn arb_loss_case() -> impl Strategy<Value = (Vec<usize>, Vec<usize>, usize)> {
    (2usize..=3)
        .prop_flat_map(|d| {
            (
                prop::collection::vec(3usize..=7, d..=d),
                prop::collection::vec(1usize..=2, d..=d),
                0usize..8,
            )
        })
        .prop_filter("grid fits dims, P in {2,4,8}", |(dims, grid, _)| {
            let p: usize = grid.iter().product();
            grid.iter().zip(dims).all(|(&g, &n)| g <= n) && p >= 2
        })
        .prop_map(|(dims, grid, v)| {
            let p: usize = grid.iter().product();
            (dims, grid, v % p)
        })
}

/// Deterministic global entry — both the scattered tensor and the
/// reference the survivors check against.
fn val(idx: &[usize], seed: u64) -> f64 {
    let mut v = seed as f64 * 0.013;
    for (k, &i) in idx.iter().enumerate() {
        v += ((k + 2) * (i + 3)) as f64 * 0.61;
    }
    v.sin()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn single_rank_loss_reblocks_bit_exactly(
        (dims, grid, victim) in arb_loss_case(),
        seed in 0u64..1000,
    ) {
        let p: usize = grid.iter().product();
        let d = dims.len();
        let (dims2, grid2) = (dims.clone(), grid.clone());
        let out = Universe::launch(p, move |c| {
            let g = CartGrid::new(c, &grid2);
            let x = DistTensor::from_fn(&g, Shape::new(&dims2), |idx| val(idx, seed));
            if g.comm.rank() == victim {
                return None; // the "dead" rank contributes nothing
            }
            // Communication-free survivor communicator, as `try_agree`
            // would produce it after the victim's failure.
            let survivors: Vec<usize> = (0..p).filter(|&r| r != victim).collect();
            let newcomm = g.comm.shrink(&survivors).expect("survivor is in the group");

            // The victim's ring successor holds its buddy replica; here
            // the replica block is rebuilt from the same deterministic
            // generator the victim scattered from.
            let mut pieces =
                vec![BlockPiece::from_block(x.dist(), x.coords(), x.local())];
            if g.comm.rank() == (victim + 1) % p {
                let vcoords = CartGrid::rank_to_coords(victim, &grid2);
                let vshape = x.dist().local_shape(&vcoords);
                let vranges: Vec<_> =
                    (0..d).map(|k| x.dist().range(k, vcoords[k])).collect();
                let vblock = DenseTensor::from_fn(vshape, |idx| {
                    let gidx: Vec<usize> = idx
                        .iter()
                        .zip(&vranges)
                        .map(|(&i, r)| r.offset + i)
                        .collect();
                    val(&gidx, seed)
                });
                pieces.push(BlockPiece::from_block(x.dist(), &vcoords, &vblock));
            }

            let new_dims = choose_shrunk_dims(&grid2, newcomm.size());
            let new_dist = TensorDist::new(x.global_shape().clone(), &new_dims);
            let block = try_redistribute(&newcomm, &new_dist, pieces).unwrap();
            Some(block.map(|b| {
                // Verify every received entry against the generator with
                // exact equality, and report the entry count so the
                // drivers below can check full coverage.
                let ranges: Vec<_> = (0..d)
                    .map(|k| new_dist.range(k, b.coords()[k]))
                    .collect();
                let mut exact = true;
                for idx in b.local().shape().clone().indices() {
                    let gidx: Vec<usize> = idx
                        .iter()
                        .zip(&ranges)
                        .map(|(&i, r)| r.offset + i)
                        .collect();
                    exact &= b.local().get(&idx) == val(&gidx, seed);
                }
                (exact, b.local().shape().num_entries())
            }))
        });

        let total: usize = dims.iter().product();
        let mut covered = 0usize;
        let mut actives = 0usize;
        for (rank, res) in out.into_iter().enumerate() {
            match res {
                None => prop_assert_eq!(rank, victim),
                Some(None) => {} // spare survivor
                Some(Some((exact, n))) => {
                    prop_assert!(exact, "rank {} received a perturbed entry", rank);
                    covered += n;
                    actives += 1;
                }
            }
        }
        let q: usize = choose_shrunk_dims(&grid, p - 1).iter().product();
        prop_assert_eq!(actives, q);
        prop_assert_eq!(covered, total, "shrunken grid must tile the tensor");
    }
}
