//! The indexed core store: compressed tensors at rest, hyperslab
//! extraction on demand.
//!
//! Generalizes `examples/partial_decompression.rs` into a service
//! component: cores live under `(tenant, name)` keys, tenants are
//! namespaces (a query can only see its own tenant's cores), and
//! extraction goes through [`ratucker::TuckerTensor::extract_hyperslab`]
//! so a query answers with the *same bits* a client would get by
//! reconstructing everything and slicing — at partial-decompression
//! cost.

use ratucker::TuckerTensor;
use ratucker_tensor::dense::DenseTensor;
use std::collections::BTreeMap;

/// A compressed tensor at rest, with its provenance.
#[derive(Clone, Debug)]
pub struct StoredCore {
    /// The decomposition.
    pub tucker: TuckerTensor<f64>,
    /// Relative error the compressing job achieved.
    pub rel_error: f64,
}

/// Why a query failed.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryError {
    /// No core stored under `(tenant, name)`.
    NotFound {
        /// The missing name.
        name: String,
    },
    /// Offsets/lens have the wrong number of modes.
    WrongOrder {
        /// Modes of the stored core.
        expected: usize,
        /// Modes in the request.
        got: usize,
    },
    /// A zero-length extent (mode index attached).
    EmptyExtent(usize),
    /// `offsets[mode] + lens[mode]` exceeds the stored dimension.
    OutOfBounds {
        /// Violating mode.
        mode: usize,
        /// Requested end (offset + len).
        end: usize,
        /// Stored dimension of that mode.
        dim: usize,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::NotFound { name } => write!(f, "no stored core named {name:?}"),
            QueryError::WrongOrder { expected, got } => {
                write!(f, "core has {expected} modes but the request names {got}")
            }
            QueryError::EmptyExtent(mode) => write!(f, "zero-length extent in mode {mode}"),
            QueryError::OutOfBounds { mode, end, dim } => {
                write!(
                    f,
                    "mode {mode}: slab ends at {end} but the dimension is {dim}"
                )
            }
        }
    }
}

/// In-memory indexed store of compressed tensors, keyed by
/// `(tenant, name)`. Deterministic iteration order for stable reports.
#[derive(Debug, Default)]
pub struct CoreStore {
    cores: BTreeMap<(String, String), StoredCore>,
}

impl CoreStore {
    /// An empty store.
    pub fn new() -> CoreStore {
        CoreStore::default()
    }

    /// Inserts (or replaces) a core under the tenant's namespace.
    pub fn insert(&mut self, tenant: &str, name: &str, core: StoredCore) {
        self.cores
            .insert((tenant.to_string(), name.to_string()), core);
    }

    /// Looks up a core in the tenant's namespace.
    pub fn get(&self, tenant: &str, name: &str) -> Option<&StoredCore> {
        self.cores.get(&(tenant.to_string(), name.to_string()))
    }

    /// Number of stored cores across tenants.
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// Names stored under one tenant.
    pub fn names(&self, tenant: &str) -> Vec<&str> {
        self.cores
            .keys()
            .filter(|(t, _)| t == tenant)
            .map(|(_, n)| n.as_str())
            .collect()
    }

    /// Total stored entries (cores + factors) across tenants — the
    /// store's resident footprint in elements.
    pub fn storage_entries(&self) -> usize {
        self.cores
            .values()
            .map(|c| c.tucker.storage_entries())
            .sum()
    }

    /// Extracts the hyperslab `offsets[k]..offsets[k]+lens[k]` of the
    /// named core's approximated tensor, bit-identically to slicing the
    /// full reconstruction, after validating bounds.
    pub fn extract(
        &self,
        tenant: &str,
        name: &str,
        offsets: &[usize],
        lens: &[usize],
    ) -> Result<DenseTensor<f64>, QueryError> {
        let stored = self.get(tenant, name).ok_or_else(|| QueryError::NotFound {
            name: name.to_string(),
        })?;
        let dims = stored.tucker.outer_dims();
        if offsets.len() != dims.len() || lens.len() != dims.len() {
            return Err(QueryError::WrongOrder {
                expected: dims.len(),
                got: offsets.len().max(lens.len()),
            });
        }
        for (mode, ((&off, &len), &dim)) in offsets.iter().zip(lens).zip(&dims).enumerate() {
            if len == 0 {
                return Err(QueryError::EmptyExtent(mode));
            }
            let end = off.checked_add(len).ok_or(QueryError::OutOfBounds {
                mode,
                end: usize::MAX,
                dim,
            })?;
            if end > dim {
                return Err(QueryError::OutOfBounds { mode, end, dim });
            }
        }
        Ok(stored.tucker.extract_hyperslab(offsets, lens))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ratucker::SyntheticSpec;
    use ratucker::{ra_hooi, RaConfig};

    fn store_one(tenant: &str, name: &str) -> (CoreStore, DenseTensor<f64>) {
        let x = SyntheticSpec::new(&[8, 7, 6], &[3, 2, 2], 0.01, 77).build::<f64>();
        let cfg = RaConfig::ra_hosi_dt(0.1, &[2, 2, 2])
            .with_seed(5)
            .with_max_iters(3);
        let res = ra_hooi(&x, &cfg);
        let mut store = CoreStore::new();
        let full = res.tucker.reconstruct();
        store.insert(
            tenant,
            name,
            StoredCore {
                tucker: res.tucker,
                rel_error: res.rel_error,
            },
        );
        (store, full)
    }

    #[test]
    fn extract_is_bit_identical_to_slicing_the_reconstruction() {
        let (store, full) = store_one("acme", "hcci");
        let slab = store
            .extract("acme", "hcci", &[2, 1, 3], &[4, 5, 2])
            .unwrap();
        assert_eq!(slab.shape().dims(), &[4, 5, 2]);
        for idx in slab.shape().indices() {
            let gidx = [idx[0] + 2, idx[1] + 1, idx[2] + 3];
            let a = slab.get(&idx);
            let b = full.get(&gidx);
            assert!(
                a.to_bits() == b.to_bits(),
                "{idx:?}: {a:e} != {b:e} (bitwise)"
            );
        }
    }

    #[test]
    fn tenants_are_namespaces() {
        let (store, _) = store_one("acme", "hcci");
        assert!(store.get("other", "hcci").is_none());
        assert_eq!(
            store.extract("other", "hcci", &[0, 0, 0], &[1, 1, 1]),
            Err(QueryError::NotFound {
                name: "hcci".into()
            })
        );
        assert_eq!(store.names("acme"), vec!["hcci"]);
        assert!(store.storage_entries() > 0);
    }

    #[test]
    fn bounds_are_validated() {
        let (store, _) = store_one("acme", "hcci");
        assert_eq!(
            store.extract("acme", "hcci", &[0, 0], &[1, 1]),
            Err(QueryError::WrongOrder {
                expected: 3,
                got: 2
            })
        );
        assert_eq!(
            store.extract("acme", "hcci", &[0, 0, 0], &[1, 0, 1]),
            Err(QueryError::EmptyExtent(1))
        );
        assert_eq!(
            store.extract("acme", "hcci", &[5, 0, 0], &[4, 1, 1]),
            Err(QueryError::OutOfBounds {
                mode: 0,
                end: 9,
                dim: 8
            })
        );
        assert_eq!(
            store.extract("acme", "hcci", &[usize::MAX, 0, 0], &[2, 1, 1]),
            Err(QueryError::OutOfBounds {
                mode: 0,
                end: usize::MAX,
                dim: 8
            })
        );
    }
}
