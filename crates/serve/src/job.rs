//! Job descriptions, states, and outcomes.

use std::fmt;
use std::time::Duration;

/// Opaque job handle returned by [`crate::Service::submit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// A compression job: generate the tenant's tensor deterministically
/// from a spec (the offline stand-in for a network ingest), run
/// RA-HOSI-DT on the daemon's universe, and store the result under
/// `(tenant, name)` in the [`crate::CoreStore`].
#[derive(Clone, Debug)]
pub struct CompressSpec {
    /// Store key within the tenant's namespace.
    pub name: String,
    /// Global tensor dimensions (d = dims.len(), 2 ≤ d).
    pub dims: Vec<usize>,
    /// Construction ranks of the synthetic signal part.
    pub construction_ranks: Vec<usize>,
    /// Relative noise level of the ingest.
    pub noise: f64,
    /// Generation seed (each rank rebuilds its block bit-identically).
    pub seed: u64,
    /// Relative-error threshold ε for the rank-adaptive solve.
    pub eps: f64,
    /// Initial ranks for RA-HOSI-DT.
    pub initial_ranks: Vec<usize>,
    /// Rank growth factor α.
    pub alpha: f64,
    /// Maximum rank-adaptation iterations.
    pub max_iters: usize,
}

impl CompressSpec {
    /// Bytes of the full (uncompressed) f64 ingest, saturating.
    pub fn ingest_bytes(&self) -> u64 {
        self.dims
            .iter()
            .try_fold(8u64, |acc, &n| acc.checked_mul(n as u64))
            .unwrap_or(u64::MAX)
    }
}

/// A partial-decompression job against a stored core.
#[derive(Clone, Debug)]
pub struct QuerySpec {
    /// Name of the stored core in the tenant's namespace.
    pub name: String,
    /// Per-mode start of the hyperslab.
    pub offsets: Vec<usize>,
    /// Per-mode extent of the hyperslab (all ≥ 1).
    pub lens: Vec<usize>,
}

/// What a client asks the service to do.
#[derive(Clone, Debug)]
pub enum Request {
    /// Compress and store.
    Compress(CompressSpec),
    /// Partially decompress a stored core.
    Query(QuerySpec),
    /// Report the tenant's accounting and the service's job counters.
    Status,
}

impl Request {
    /// Stable label for metrics and logs.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Compress(_) => "compress",
            Request::Query(_) => "query",
            Request::Status => "status",
        }
    }
}

/// What the fault-tolerance stack did to a compress job.
#[derive(Clone, Debug, Default)]
pub struct RecoverySummary {
    /// Recovery rounds taken (0 = fault-free).
    pub recoveries: usize,
    /// Ranks restored from buddy replicas.
    pub restored_ranks: Vec<usize>,
    /// Stragglers proactively demoted.
    pub demoted_ranks: Vec<usize>,
    /// Grid dimensions the run finished on.
    pub final_grid: Vec<usize>,
    /// Whether the job had to fall back to its checkpoint and resume.
    pub resumed_from_checkpoint: bool,
}

/// Terminal result of a job.
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// Compress finished; the core is in the store.
    Compressed {
        /// Final Tucker ranks.
        ranks: Vec<usize>,
        /// Relative error achieved.
        rel_error: f64,
        /// Stored entries (core + factors).
        storage_entries: usize,
        /// What the resilience stack did, if anything.
        recovery: RecoverySummary,
        /// Max per-rank ledger high-water mark during the job, bytes.
        peak_bytes: u64,
    },
    /// Query finished.
    Queried {
        /// Entries in the extracted hyperslab.
        entries: usize,
        /// Sum of the extracted entries (a cheap content witness the
        /// client can check against its own reconstruction).
        checksum: f64,
    },
    /// Status snapshot (pre-rendered, tenant-scoped).
    Status {
        /// Human-readable accounting report.
        report: String,
    },
    /// Refused by admission control before running.
    Rejected {
        /// Margin-adjusted bytes the cheapest execution mode needs.
        required: u64,
        /// The per-rank budget it was checked against.
        budget: u64,
    },
    /// The job failed (after any recovery attempts).
    Failed {
        /// Human-readable reason.
        reason: String,
    },
}

impl JobOutcome {
    /// Whether the outcome counts as a success for availability math.
    pub fn is_success(&self) -> bool {
        matches!(
            self,
            JobOutcome::Compressed { .. } | JobOutcome::Queried { .. } | JobOutcome::Status { .. }
        )
    }
}

/// Lifecycle state of a job.
#[derive(Clone, Debug)]
pub enum JobState {
    /// Accepted, waiting in the fairness queue.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; the outcome and queue-to-done latency are final.
    Done(JobOutcome, Duration),
}

impl JobState {
    /// Stable label for status lines.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(o, _) if o.is_success() => "done",
            JobState::Done(JobOutcome::Rejected { .. }, _) => "rejected",
            JobState::Done(_, _) => "failed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingest_bytes_saturates() {
        let mut spec = CompressSpec {
            name: "x".into(),
            dims: vec![usize::MAX, usize::MAX],
            construction_ranks: vec![1, 1],
            noise: 0.0,
            seed: 0,
            eps: 0.1,
            initial_ranks: vec![1, 1],
            alpha: 1.5,
            max_iters: 2,
        };
        assert_eq!(spec.ingest_bytes(), u64::MAX);
        spec.dims = vec![4, 2];
        assert_eq!(spec.ingest_bytes(), 64);
    }

    #[test]
    fn state_labels_partition_outcomes() {
        let d = Duration::from_millis(1);
        assert_eq!(JobState::Queued.label(), "queued");
        assert_eq!(
            JobState::Done(
                JobOutcome::Queried {
                    entries: 1,
                    checksum: 0.0
                },
                d
            )
            .label(),
            "done"
        );
        assert_eq!(
            JobState::Done(
                JobOutcome::Rejected {
                    required: 2,
                    budget: 1
                },
                d
            )
            .label(),
            "rejected"
        );
        assert_eq!(
            JobState::Done(JobOutcome::Failed { reason: "x".into() }, d).label(),
            "failed"
        );
    }
}
