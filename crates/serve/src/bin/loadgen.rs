//! Load generator for the compression service.
//!
//! Boots an in-process [`Service`], has every tenant compress a couple
//! of base cores, then hammers the daemon with a mixed stream of
//! query/status/compress requests from one client thread per tenant,
//! keeping a bounded window of jobs in flight. Reports throughput,
//! per-kind latency percentiles, per-tenant accounting, and checks the
//! tenant-partition invariant; exits non-zero on any lost or failed
//! job.
//!
//! ```sh
//! cargo run --release -p ratucker-serve --bin loadgen -- \
//!     --p 4 --tenants 2 --requests 1000
//! ```

use ratucker_serve::{CompressSpec, JobId, QuerySpec, Request, ServeConfig, Service, SubmitError};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

struct Args {
    p: usize,
    tenants: usize,
    requests: usize,
    compress_per_mille: usize,
    status_per_mille: usize,
    window: usize,
    seed: u64,
    mem_budget: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        p: 4,
        tenants: 2,
        requests: 1000,
        compress_per_mille: 20,
        status_per_mille: 100,
        window: 16,
        seed: 1,
        mem_budget: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--p" => args.p = value()?.parse().map_err(|e| format!("--p: {e}"))?,
            "--tenants" => {
                args.tenants = value()?.parse().map_err(|e| format!("--tenants: {e}"))?
            }
            "--requests" => {
                args.requests = value()?.parse().map_err(|e| format!("--requests: {e}"))?
            }
            "--compress-per-mille" => {
                args.compress_per_mille = value()?
                    .parse()
                    .map_err(|e| format!("--compress-per-mille: {e}"))?
            }
            "--status-per-mille" => {
                args.status_per_mille = value()?
                    .parse()
                    .map_err(|e| format!("--status-per-mille: {e}"))?
            }
            "--window" => args.window = value()?.parse().map_err(|e| format!("--window: {e}"))?,
            "--seed" => args.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--mem-budget" => {
                let v = value()?;
                args.mem_budget = Some(
                    ratucker_mem::parse_size(v).ok_or(format!("--mem-budget: bad size {v:?}"))?,
                )
            }
            // Installed before Service::start spawns rank threads;
            // results are bit-identical at any setting.
            "--threads" => {
                let v = value()?;
                let n: usize = v.parse().map_err(|e| format!("--threads: {e}"))?;
                if n == 0 {
                    return Err("--threads must be positive".into());
                }
                ratucker_tensor::par::set_num_threads(n);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.tenants == 0 || args.requests == 0 || args.window == 0 {
        return Err("--tenants, --requests, --window must be positive".into());
    }
    if args.compress_per_mille + args.status_per_mille > 1000 {
        return Err("per-mille mix must sum to at most 1000".into());
    }
    Ok(args)
}

/// Deterministic splitmix64 — the load pattern must replay from --seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// The base cores every tenant compresses before the mixed phase.
fn base_specs(tenant_idx: usize) -> Vec<CompressSpec> {
    vec![
        CompressSpec {
            name: "base3".into(),
            dims: vec![12, 10, 8],
            construction_ranks: vec![3, 3, 2],
            noise: 0.01,
            seed: 900 + tenant_idx as u64,
            eps: 0.2,
            initial_ranks: vec![2, 2, 2],
            alpha: 2.0,
            max_iters: 2,
        },
        CompressSpec {
            name: "base4".into(),
            dims: vec![8, 6, 5, 4],
            construction_ranks: vec![2, 2, 2, 2],
            noise: 0.01,
            seed: 950 + tenant_idx as u64,
            eps: 0.3,
            initial_ranks: vec![2, 2, 2, 2],
            alpha: 2.0,
            max_iters: 2,
        },
    ]
}

fn random_query(rng: &mut Rng, stored: &[(String, Vec<usize>)]) -> Request {
    let (name, dims) = &stored[rng.below(stored.len())];
    let mut offsets = Vec::with_capacity(dims.len());
    let mut lens = Vec::with_capacity(dims.len());
    for &n in dims {
        let len = 1 + rng.below(n);
        offsets.push(rng.below(n - len + 1));
        lens.push(len);
    }
    Request::Query(QuerySpec {
        name: name.clone(),
        offsets,
        lens,
    })
}

#[derive(Default)]
struct TenantResult {
    latencies: Vec<(&'static str, Duration)>,
    failed: Vec<String>,
    accepted: usize,
    refused: usize,
}

fn drain_one(
    service: &Service,
    inflight: &mut VecDeque<(JobId, &'static str)>,
    out: &mut TenantResult,
) {
    let Some((id, kind)) = inflight.pop_front() else {
        return;
    };
    let (outcome, latency) = service.wait(id);
    out.latencies.push((kind, latency));
    if !outcome.is_success() {
        out.failed.push(format!("{kind} {id}: {outcome:?}"));
    }
}

fn tenant_client(
    service: &Service,
    tenant: &str,
    tenant_idx: usize,
    n_requests: usize,
    args: &Args,
) -> TenantResult {
    let mut out = TenantResult::default();
    let mut rng = Rng(args.seed ^ ((tenant_idx as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)));
    let mut stored: Vec<(String, Vec<usize>)> = Vec::new();
    let mut inflight: VecDeque<(JobId, &'static str)> = VecDeque::new();

    // Phase 1: base cores, waited out so the mixed phase always has
    // valid query targets.
    for spec in base_specs(tenant_idx) {
        let dims = spec.dims.clone();
        let name = spec.name.clone();
        match service.submit(tenant, Request::Compress(spec)) {
            Ok(id) => {
                out.accepted += 1;
                let (outcome, latency) = service.wait(id);
                out.latencies.push(("compress", latency));
                if outcome.is_success() {
                    stored.push((name, dims));
                } else {
                    out.failed.push(format!("base compress {id}: {outcome:?}"));
                }
            }
            Err(e) => out.failed.push(format!("base compress refused: {e}")),
        }
    }
    if stored.is_empty() {
        out.failed
            .push("no base cores stored; aborting tenant".into());
        return out;
    }

    // Phase 2: the mixed stream, windowed.
    let mut extra_core = 0usize;
    for i in 0..n_requests {
        let roll = rng.below(1000);
        let (kind, request): (&'static str, Request) = if roll < args.compress_per_mille {
            extra_core += 1;
            let mut spec = base_specs(tenant_idx).swap_remove(0);
            spec.name = format!("core{extra_core}");
            spec.seed = args.seed.wrapping_add((tenant_idx * 10_000 + i) as u64);
            ("compress", Request::Compress(spec))
        } else if roll < args.compress_per_mille + args.status_per_mille {
            ("status", Request::Status)
        } else {
            ("query", random_query(&mut rng, &stored))
        };
        match service.submit(tenant, request) {
            Ok(id) => {
                out.accepted += 1;
                if kind == "compress" {
                    // Wait compress jobs out immediately so the new core
                    // is a valid query target for the rest of the stream.
                    let (outcome, latency) = service.wait(id);
                    out.latencies.push(("compress", latency));
                    if outcome.is_success() {
                        stored.push((
                            format!("core{extra_core}"),
                            base_specs(tenant_idx)[0].dims.clone(),
                        ));
                    } else {
                        out.failed.push(format!("compress {id}: {outcome:?}"));
                    }
                } else {
                    inflight.push_back((id, kind));
                    if inflight.len() >= args.window {
                        drain_one(service, &mut inflight, &mut out);
                    }
                }
            }
            Err(SubmitError::QueueFull { .. }) => {
                // Backpressure, not an error: drain a slot and drop the
                // request (the generator's mix is approximate anyway).
                out.refused += 1;
                drain_one(service, &mut inflight, &mut out);
            }
            Err(e) => out.failed.push(format!("{kind} refused: {e}")),
        }
    }
    while !inflight.is_empty() {
        drain_one(service, &mut inflight, &mut out);
    }
    out
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(2);
        }
    };
    let service = Service::start(ServeConfig {
        p: args.p,
        mem_budget: args.mem_budget,
        query_workers: 2,
        ..ServeConfig::default()
    });
    let tenant_names: Vec<String> = (0..args.tenants).map(|i| format!("tenant{i}")).collect();
    let per_tenant = args.requests.div_ceil(args.tenants);

    println!(
        "loadgen: p={} tenants={} requests={} (~{per_tenant}/tenant) seed={}",
        args.p, args.tenants, args.requests, args.seed
    );
    let started = Instant::now();
    let results: Vec<TenantResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = tenant_names
            .iter()
            .enumerate()
            .map(|(idx, name)| {
                let service = &service;
                let args = &args;
                scope.spawn(move || tenant_client(service, name, idx, per_tenant, args))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = started.elapsed();

    // ---- aggregate -----------------------------------------------------
    let mut by_kind: std::collections::BTreeMap<&str, Vec<Duration>> = Default::default();
    let mut failures: Vec<&String> = Vec::new();
    let (mut accepted, mut refused) = (0usize, 0usize);
    for r in &results {
        for (kind, latency) in &r.latencies {
            by_kind.entry(kind).or_default().push(*latency);
        }
        failures.extend(&r.failed);
        accepted += r.accepted;
        refused += r.refused;
    }
    let done: usize = by_kind.values().map(Vec::len).sum();
    println!(
        "\n{done} jobs done in {elapsed:.2?} ({:.0} jobs/s), {refused} backpressured",
        done as f64 / elapsed.as_secs_f64()
    );
    for (kind, lats) in by_kind.iter_mut() {
        lats.sort();
        println!(
            "  {kind:>8}: n={:<5} p50={:>10.2?} p99={:>10.2?} max={:>10.2?}",
            lats.len(),
            percentile(lats, 0.50),
            percentile(lats, 0.99),
            lats.last().copied().unwrap_or_default(),
        );
    }

    // ---- per-tenant accounting + partition invariant -------------------
    println!();
    for name in &tenant_names {
        if let Some(acc) = service.tenant_account(name) {
            println!(
                "  {name}: submitted={} completed={} failed={} rejected={} \
                 traffic={} B/{} msgs peak={} B",
                acc.submitted,
                acc.completed,
                acc.failed,
                acc.rejected,
                acc.traffic.total_bytes(),
                acc.traffic.total_messages(),
                acc.peak_job_bytes,
            );
        }
    }
    let partition_ok = service.check_partition();
    let global = service.global_traffic();
    println!(
        "  global traffic: {} B / {} msgs — tenant partition {}",
        global.total_bytes(),
        global.total_messages(),
        if partition_ok { "EXACT" } else { "VIOLATED" },
    );

    let report = service.shutdown();
    let lost = report
        .submitted
        .checked_sub(report.completed + report.failed + report.rejected);
    println!(
        "shutdown: submitted={} completed={} failed={} rejected={} stored={} partition_ok={}",
        report.submitted,
        report.completed,
        report.failed,
        report.rejected,
        report.stored_cores,
        report.partition_ok,
    );

    let mut bad = false;
    if !failures.is_empty() {
        bad = true;
        eprintln!("\n{} FAILED jobs:", failures.len());
        for f in failures.iter().take(10) {
            eprintln!("  {f}");
        }
    }
    if accepted as u64 != report.submitted {
        bad = true;
        eprintln!(
            "accounting mismatch: clients accepted {accepted}, service saw {}",
            report.submitted
        );
    }
    if lost != Some(0) {
        bad = true;
        eprintln!(
            "lost jobs: submitted={} vs terminal={}",
            report.submitted,
            report.completed + report.failed + report.rejected
        );
    }
    if !partition_ok || !report.partition_ok {
        bad = true;
        eprintln!("tenant traffic does not partition the global ledger");
    }
    if bad {
        std::process::exit(1);
    }
    println!("\nloadgen: PASS (zero lost jobs, partition invariant exact)");
}
