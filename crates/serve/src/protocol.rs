//! Line protocol for the `served` daemon.
//!
//! The daemon speaks newline-delimited commands on stdin/stdout — the
//! sandbox-friendly stand-in for a network front end (same shape as
//! piping to `nc`). One request per line:
//!
//! ```text
//! compress <tenant> <name> dims=12x10x8 ranks=3x3x2 [noise=0.01]
//!          [seed=1] [eps=0.1] [init=2x2x2] [alpha=2.0] [iters=3]
//! query <tenant> <name> off=0,0,0 len=4,4,4
//! status <tenant>
//! shutdown
//! ```
//!
//! Responses are `ok <detail>` / `err <reason>`, one line per request,
//! in request order (the daemon front end waits each job out so the
//! protocol stays a simple lockstep pipe; concurrency lives behind the
//! queue, driven by `loadgen` in-process).

use crate::job::{CompressSpec, QuerySpec, Request};

/// A parsed protocol line.
#[derive(Clone, Debug)]
pub enum Command {
    /// Submit a job on behalf of a tenant.
    Submit {
        /// The tenant name.
        tenant: String,
        /// The job.
        request: Request,
    },
    /// Drain and exit.
    Shutdown,
}

fn parse_dims(s: &str, sep: char) -> Result<Vec<usize>, String> {
    let v: Result<Vec<usize>, _> = s.split(sep).map(|t| t.trim().parse::<usize>()).collect();
    match v {
        Ok(v) if !v.is_empty() => Ok(v),
        _ => Err(format!("malformed extent list {s:?}")),
    }
}

/// Parses one protocol line. Empty lines and `#` comments yield
/// `Ok(None)`.
pub fn parse_line(line: &str) -> Result<Option<Command>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut words = line.split_whitespace();
    let verb = words.next().expect("non-empty line has a first word");
    let rest: Vec<&str> = words.collect();
    let kv = |key: &str| -> Option<&str> {
        rest.iter()
            .find_map(|w| w.strip_prefix(key).and_then(|s| s.strip_prefix('=')))
    };
    match verb {
        "shutdown" => {
            if rest.is_empty() {
                Ok(Some(Command::Shutdown))
            } else {
                Err("shutdown takes no arguments".into())
            }
        }
        "status" => {
            let [tenant] = rest.as_slice() else {
                return Err("usage: status <tenant>".into());
            };
            Ok(Some(Command::Submit {
                tenant: tenant.to_string(),
                request: Request::Status,
            }))
        }
        "query" => {
            let (Some(tenant), Some(name)) = (rest.first(), rest.get(1)) else {
                return Err("usage: query <tenant> <name> off=… len=…".into());
            };
            let off = kv("off").ok_or("query needs off=…")?;
            let len = kv("len").ok_or("query needs len=…")?;
            Ok(Some(Command::Submit {
                tenant: tenant.to_string(),
                request: Request::Query(QuerySpec {
                    name: name.to_string(),
                    offsets: parse_dims(off, ',')?,
                    lens: parse_dims(len, ',')?,
                }),
            }))
        }
        "compress" => {
            let (Some(tenant), Some(name)) = (rest.first(), rest.get(1)) else {
                return Err("usage: compress <tenant> <name> dims=… ranks=…".into());
            };
            let dims = parse_dims(kv("dims").ok_or("compress needs dims=…")?, 'x')?;
            let ranks = parse_dims(kv("ranks").ok_or("compress needs ranks=…")?, 'x')?;
            let init = match kv("init") {
                Some(s) => parse_dims(s, 'x')?,
                None => vec![2; dims.len()],
            };
            let parse_f64 = |key: &str, default: f64| -> Result<f64, String> {
                kv(key).map_or(Ok(default), |s| {
                    s.parse().map_err(|_| format!("malformed {key}={s:?}"))
                })
            };
            let parse_u64 = |key: &str, default: u64| -> Result<u64, String> {
                kv(key).map_or(Ok(default), |s| {
                    s.parse().map_err(|_| format!("malformed {key}={s:?}"))
                })
            };
            Ok(Some(Command::Submit {
                tenant: tenant.to_string(),
                request: Request::Compress(CompressSpec {
                    name: name.to_string(),
                    dims,
                    construction_ranks: ranks,
                    noise: parse_f64("noise", 0.01)?,
                    seed: parse_u64("seed", 1)?,
                    eps: parse_f64("eps", 0.1)?,
                    initial_ranks: init,
                    alpha: parse_f64("alpha", 2.0)?,
                    max_iters: parse_u64("iters", 3)? as usize,
                }),
            }))
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_three_job_kinds() {
        let c = parse_line("compress acme field dims=12x10x8 ranks=3x3x2 eps=0.15 seed=9")
            .unwrap()
            .unwrap();
        let Command::Submit {
            tenant,
            request: Request::Compress(spec),
        } = c
        else {
            panic!("not a compress");
        };
        assert_eq!(tenant, "acme");
        assert_eq!(spec.dims, vec![12, 10, 8]);
        assert_eq!(spec.construction_ranks, vec![3, 3, 2]);
        assert_eq!(spec.initial_ranks, vec![2, 2, 2], "default init");
        assert!((spec.eps - 0.15).abs() < 1e-12);
        assert_eq!(spec.seed, 9);

        let q = parse_line("query acme field off=0,2,1 len=4,4,2")
            .unwrap()
            .unwrap();
        let Command::Submit {
            request: Request::Query(spec),
            ..
        } = q
        else {
            panic!("not a query");
        };
        assert_eq!(spec.offsets, vec![0, 2, 1]);
        assert_eq!(spec.lens, vec![4, 4, 2]);

        assert!(matches!(
            parse_line("status acme").unwrap().unwrap(),
            Command::Submit {
                request: Request::Status,
                ..
            }
        ));
        assert!(matches!(
            parse_line("shutdown").unwrap().unwrap(),
            Command::Shutdown
        ));
    }

    #[test]
    fn blank_and_comment_lines_are_skipped() {
        assert!(parse_line("").unwrap().is_none());
        assert!(parse_line("   ").unwrap().is_none());
        assert!(parse_line("# hello").unwrap().is_none());
    }

    #[test]
    fn malformed_lines_are_refused_with_reasons() {
        assert!(parse_line("launch x").is_err());
        assert!(
            parse_line("compress acme field ranks=1x1").is_err(),
            "missing dims"
        );
        assert!(parse_line("compress acme field dims=axb ranks=1x1").is_err());
        assert!(
            parse_line("query acme field off=0,0").is_err(),
            "missing len"
        );
        assert!(parse_line("query acme field off=0,z len=1,1").is_err());
        assert!(parse_line("status").is_err());
        assert!(parse_line("shutdown now").is_err());
    }
}
