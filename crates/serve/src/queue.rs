//! FIFO-per-tenant fair queue.
//!
//! Jobs of one tenant run in submission order (FIFO within the
//! tenant), but tenants take turns: the dispatcher round-robins over
//! tenants with pending work, so a tenant that dumps a thousand jobs
//! cannot starve a tenant that submits one. A per-tenant depth cap
//! provides backpressure at submit time instead of unbounded growth.

use std::collections::VecDeque;

/// Error returned when a tenant's queue is at its depth cap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueFull {
    /// The cap that was hit.
    pub cap: usize,
}

/// Round-robin-fair multi-queue keyed by tenant name.
#[derive(Debug)]
pub struct FairQueue<T> {
    /// One FIFO lane per tenant, in first-seen order (stable cursor
    /// arithmetic; empty lanes are kept so the order never shifts).
    lanes: Vec<(String, VecDeque<T>)>,
    /// Next lane the dispatcher offers a turn to.
    cursor: usize,
    /// Per-tenant depth cap.
    cap: usize,
    len: usize,
}

impl<T> FairQueue<T> {
    /// An empty queue with the given per-tenant depth cap (≥ 1).
    pub fn new(cap: usize) -> FairQueue<T> {
        assert!(cap >= 1, "per-tenant cap must be at least 1");
        FairQueue {
            lanes: Vec::new(),
            cursor: 0,
            cap,
            len: 0,
        }
    }

    /// Total queued items across tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queued items for one tenant.
    pub fn tenant_len(&self, tenant: &str) -> usize {
        self.lanes
            .iter()
            .find(|(name, _)| name == tenant)
            .map_or(0, |(_, lane)| lane.len())
    }

    /// Appends to the tenant's FIFO lane, refusing at the depth cap.
    pub fn push(&mut self, tenant: &str, item: T) -> Result<(), QueueFull> {
        let lane = match self.lanes.iter_mut().find(|(name, _)| name == tenant) {
            Some((_, lane)) => lane,
            None => {
                self.lanes.push((tenant.to_string(), VecDeque::new()));
                &mut self.lanes.last_mut().expect("just pushed").1
            }
        };
        if lane.len() >= self.cap {
            return Err(QueueFull { cap: self.cap });
        }
        lane.push_back(item);
        self.len += 1;
        Ok(())
    }

    /// Pops the next item round-robin: the first non-empty lane at or
    /// after the cursor gets its oldest item, and the cursor moves past
    /// it so the next pop offers the turn to the following tenant.
    pub fn pop(&mut self) -> Option<(String, T)> {
        if self.len == 0 {
            return None;
        }
        let n = self.lanes.len();
        for step in 0..n {
            let i = (self.cursor + step) % n;
            if let Some(item) = self.lanes[i].1.pop_front() {
                self.cursor = (i + 1) % n;
                self.len -= 1;
                return Some((self.lanes[i].0.clone(), item));
            }
        }
        unreachable!("len > 0 but every lane was empty");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_tenant() {
        let mut q = FairQueue::new(8);
        q.push("a", 1).unwrap();
        q.push("a", 2).unwrap();
        q.push("a", 3).unwrap();
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn round_robin_across_tenants() {
        let mut q = FairQueue::new(8);
        // "bulk" floods before "solo" submits one job; fairness means
        // solo's job runs second, not fifth.
        for i in 0..4 {
            q.push("bulk", ("bulk", i)).unwrap();
        }
        q.push("solo", ("solo", 0)).unwrap();
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, (t, _))| t)).collect();
        assert_eq!(order, vec!["bulk", "solo", "bulk", "bulk", "bulk"]);
    }

    #[test]
    fn depth_cap_backpressures_only_the_hog() {
        let mut q = FairQueue::new(2);
        q.push("hog", 1).unwrap();
        q.push("hog", 2).unwrap();
        assert_eq!(q.push("hog", 3), Err(QueueFull { cap: 2 }));
        q.push("meek", 10).unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.tenant_len("hog"), 2);
        // Draining a lane frees capacity for that tenant again.
        assert!(q.pop().is_some());
        q.push("hog", 3).unwrap();
    }

    #[test]
    fn empty_lane_does_not_stall_rotation() {
        let mut q = FairQueue::new(4);
        q.push("a", 1).unwrap();
        q.push("b", 2).unwrap();
        assert_eq!(q.pop().unwrap().0, "a");
        assert_eq!(q.pop().unwrap().0, "b");
        assert!(q.pop().is_none());
        // "a" drained; new work for "b" only must still pop.
        q.push("b", 3).unwrap();
        assert_eq!(q.pop().unwrap(), ("b".to_string(), 3));
    }
}
