//! The service: a warm universe, two worker pools, and the books.
//!
//! One **compress worker** owns the fabric: compress jobs are
//! serialized onto the warm [`Universe`] (so per-job traffic deltas
//! partition the global counters exactly, and a mid-job rank failure
//! is confined to the job that was running). A pool of **light
//! workers** serves query and status jobs concurrently from the shared
//! [`CoreStore`] — queries never touch the fabric, which is what keeps
//! them available while a compress job is being recovered.

use crate::job::{CompressSpec, JobId, JobOutcome, JobState, QuerySpec, RecoverySummary, Request};
use crate::queue::{FairQueue, QueueFull};
use crate::store::{CoreStore, StoredCore};
use ratucker::dist::dist_ra_hooi_checkpointed;
use ratucker::{
    dist_ra_hooi_resilient, CheckpointPolicy, RaConfig, ResilienceConfig, ResilientOutcome,
    SyntheticSpec, TuckerTensor,
};
use ratucker_dist::AbftMode;
use ratucker_dist::DistTensor;
use ratucker_mem::JobScope;
use ratucker_mpi::{enumerate_grids, CartGrid, FaultPlan, KindSnapshot, Universe};
use ratucker_obs::TenantLedger;
use ratucker_perfmodel::memory::{admit, Admission, MemProblem};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Ranks in the warm universe.
    pub p: usize,
    /// Per-rank memory budget for compress jobs; `None` disables
    /// admission control and ledger budgets.
    pub mem_budget: Option<u64>,
    /// Largest full-tensor ingest accepted, in bytes.
    pub ingest_limit: Option<u64>,
    /// Per-tenant queue depth cap (backpressure at submit).
    pub queue_cap: usize,
    /// Light workers serving query/status jobs.
    pub query_workers: usize,
    /// Directory for per-job RTCK checkpoints; `None` disables the
    /// disk-fallback path (failures beyond online recovery fail the job).
    pub checkpoint_dir: Option<PathBuf>,
    /// Buddy-replication degree for compress jobs.
    pub buddy_degree: usize,
    /// Fabric receive timeout (bounds how long survivors of a rank
    /// crash can block).
    pub recv_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            p: 4,
            mem_budget: None,
            ingest_limit: None,
            queue_cap: 1024,
            query_workers: 2,
            checkpoint_dir: None,
            buddy_degree: 1,
            recv_timeout: Duration::from_secs(5),
        }
    }
}

/// Why a submission was refused at the door.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The service is shutting down.
    ShuttingDown,
    /// The tenant's queue is at its depth cap.
    QueueFull {
        /// The cap that was hit.
        cap: usize,
    },
    /// The ingest exceeds `--ingest-limit`.
    IngestTooLarge {
        /// Requested full-tensor bytes.
        bytes: u64,
        /// The configured limit.
        limit: u64,
    },
    /// The spec is malformed (mode-count mismatch, rank > dim, …).
    Invalid(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
            SubmitError::QueueFull { cap } => write!(f, "tenant queue full (cap {cap})"),
            SubmitError::IngestTooLarge { bytes, limit } => {
                write!(f, "ingest of {bytes} B exceeds the {limit} B limit")
            }
            SubmitError::Invalid(msg) => write!(f, "invalid request: {msg}"),
        }
    }
}

/// What the daemon reports after a clean shutdown.
#[derive(Clone, Debug)]
pub struct ShutdownReport {
    /// Jobs accepted over the service lifetime.
    pub submitted: u64,
    /// Jobs that finished successfully.
    pub completed: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Jobs refused by admission control.
    pub rejected: u64,
    /// Global fabric traffic over the lifetime.
    pub global_traffic: KindSnapshot,
    /// Whether per-tenant charges partition the global traffic exactly.
    pub partition_ok: bool,
    /// Cores resident in the store at shutdown.
    pub stored_cores: usize,
}

/// A light (fabric-free) job.
enum LightJob {
    Query(QuerySpec),
    Status,
}

struct QueueState {
    compress: FairQueue<(JobId, CompressSpec)>,
    light: FairQueue<(JobId, LightJob)>,
}

struct JobRecord {
    tenant: String,
    kind: &'static str,
    state: JobState,
    enqueued: Instant,
}

struct Inner {
    cfg: ServeConfig,
    universe: Universe,
    queues: Mutex<QueueState>,
    work_cv: Condvar,
    jobs: Mutex<HashMap<JobId, JobRecord>>,
    done_cv: Condvar,
    store: RwLock<CoreStore>,
    tenants: Mutex<TenantLedger>,
    next_id: AtomicU64,
    accepting: AtomicBool,
    draining: AtomicBool,
    injected_plan: Mutex<Option<FaultPlan>>,
}

/// The running service. Dropping it without [`Service::shutdown`]
/// detaches the workers; call `shutdown` for a clean drain and report.
pub struct Service {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// Per-rank verdict of one compress run, reduced on the service side.
enum RankVerdict {
    Done {
        tucker: Box<TuckerTensor<f64>>,
        rel_error: f64,
        summary: RecoverySummary,
        hwm: u64,
    },
    Spare {
        hwm: u64,
    },
    Fallback {
        dead: Vec<usize>,
        reason: String,
    },
    CommError(String),
}

impl Service {
    /// Boots the universe and the worker pools.
    pub fn start(cfg: ServeConfig) -> Service {
        assert!(cfg.p >= 1, "need at least one rank");
        assert!(cfg.query_workers >= 1, "need at least one light worker");
        let universe = Universe::new(cfg.p);
        universe.set_recv_timeout(cfg.recv_timeout);
        universe.set_mem_budget(cfg.mem_budget);
        let inner = Arc::new(Inner {
            queues: Mutex::new(QueueState {
                compress: FairQueue::new(cfg.queue_cap),
                light: FairQueue::new(cfg.queue_cap),
            }),
            work_cv: Condvar::new(),
            jobs: Mutex::new(HashMap::new()),
            done_cv: Condvar::new(),
            store: RwLock::new(CoreStore::new()),
            tenants: Mutex::new(TenantLedger::new()),
            next_id: AtomicU64::new(1),
            accepting: AtomicBool::new(true),
            draining: AtomicBool::new(false),
            injected_plan: Mutex::new(None),
            universe,
            cfg,
        });
        let mut workers = Vec::new();
        {
            let inner = Arc::clone(&inner);
            workers.push(
                std::thread::Builder::new()
                    .name("serve-compress".into())
                    .spawn(move || compress_worker(&inner))
                    .expect("spawn compress worker"),
            );
        }
        for i in 0..inner.cfg.query_workers {
            let inner = Arc::clone(&inner);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-light-{i}"))
                    .spawn(move || light_worker(&inner))
                    .expect("spawn light worker"),
            );
        }
        Service { inner, workers }
    }

    /// Arms a one-shot fault-injection plan: the *next* compress job
    /// runs with it attached and the plan is cleared once that job
    /// finishes (a warm universe re-arms plan counters every run, so
    /// leaving it attached would crash every subsequent job). Chaos
    /// tests use this to kill a rank mid-compress under load.
    pub fn inject_fault_plan(&self, plan: FaultPlan) {
        *self.inner.injected_plan.lock().unwrap() = Some(plan);
    }

    /// Accepts a job, or refuses it at the door.
    pub fn submit(&self, tenant: &str, req: Request) -> Result<JobId, SubmitError> {
        let inner = &self.inner;
        if !inner.accepting.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        if tenant.is_empty() || tenant.contains(char::is_whitespace) {
            return Err(SubmitError::Invalid(
                "tenant must be a non-empty word".into(),
            ));
        }
        if let Request::Compress(spec) = &req {
            validate_compress(spec).map_err(SubmitError::Invalid)?;
            if let Some(limit) = inner.cfg.ingest_limit {
                let bytes = spec.ingest_bytes();
                if bytes > limit {
                    return Err(SubmitError::IngestTooLarge { bytes, limit });
                }
            }
        }
        let id = JobId(inner.next_id.fetch_add(1, Ordering::SeqCst));
        let kind = req.kind();
        {
            let mut queues = inner.queues.lock().unwrap();
            let pushed = match req {
                Request::Compress(spec) => queues.compress.push(tenant, (id, spec)),
                Request::Query(spec) => queues.light.push(tenant, (id, LightJob::Query(spec))),
                Request::Status => queues.light.push(tenant, (id, LightJob::Status)),
            };
            if let Err(QueueFull { cap }) = pushed {
                return Err(SubmitError::QueueFull { cap });
            }
            inner.jobs.lock().unwrap().insert(
                id,
                JobRecord {
                    tenant: tenant.to_string(),
                    kind,
                    state: JobState::Queued,
                    enqueued: Instant::now(),
                },
            );
        }
        inner.tenants.lock().unwrap().record_submitted(tenant);
        inner.work_cv.notify_all();
        Ok(id)
    }

    /// Blocks until the job finishes; returns its outcome and
    /// queue-to-done latency. Panics on an unknown id.
    pub fn wait(&self, id: JobId) -> (JobOutcome, Duration) {
        let mut jobs = self.inner.jobs.lock().unwrap();
        loop {
            match &jobs.get(&id).expect("unknown job id").state {
                JobState::Done(outcome, latency) => return (outcome.clone(), *latency),
                _ => jobs = self.inner.done_cv.wait(jobs).unwrap(),
            }
        }
    }

    /// Non-blocking state probe.
    pub fn state(&self, id: JobId) -> Option<JobState> {
        self.inner
            .jobs
            .lock()
            .unwrap()
            .get(&id)
            .map(|r| r.state.clone())
    }

    /// Global traffic the universe has moved since boot.
    pub fn global_traffic(&self) -> KindSnapshot {
        self.inner.universe.traffic().kind_totals()
    }

    /// Checks the tenant-partition invariant right now (only exact
    /// while no compress job is in flight).
    pub fn check_partition(&self) -> bool {
        let global = self.global_traffic();
        self.inner
            .tenants
            .lock()
            .unwrap()
            .check_partition(&global)
            .is_ok()
    }

    /// A tenant's books, if it has any history.
    pub fn tenant_account(&self, tenant: &str) -> Option<ratucker_obs::TenantAccount> {
        self.inner.tenants.lock().unwrap().account(tenant).cloned()
    }

    /// Stops accepting, drains both queues, joins the workers, and
    /// reports the lifetime books.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.inner.accepting.store(false, Ordering::SeqCst);
        self.inner.draining.store(true, Ordering::SeqCst);
        self.inner.work_cv.notify_all();
        for handle in self.workers.drain(..) {
            handle.join().expect("worker panicked");
        }
        let global = self.inner.universe.traffic().kind_totals();
        let tenants = self.inner.tenants.lock().unwrap();
        let (mut submitted, mut completed, mut failed, mut rejected) = (0, 0, 0, 0);
        for (_, acc) in tenants.accounts() {
            submitted += acc.submitted;
            completed += acc.completed;
            failed += acc.failed;
            rejected += acc.rejected;
        }
        ShutdownReport {
            submitted,
            completed,
            failed,
            rejected,
            partition_ok: tenants.check_partition(&global).is_ok(),
            global_traffic: global,
            stored_cores: self.inner.store.read().unwrap().len(),
        }
    }
}

fn validate_compress(spec: &CompressSpec) -> Result<(), String> {
    let d = spec.dims.len();
    if d < 2 {
        return Err("need at least 2 modes".into());
    }
    if spec.construction_ranks.len() != d || spec.initial_ranks.len() != d {
        return Err("rank vectors must have one entry per mode".into());
    }
    for (&n, (&cr, &ir)) in spec
        .dims
        .iter()
        .zip(spec.construction_ranks.iter().zip(&spec.initial_ranks))
    {
        if n == 0 || cr == 0 || ir == 0 {
            return Err("dims and ranks must be positive".into());
        }
        if cr > n || ir > n {
            return Err("ranks must not exceed dimensions".into());
        }
    }
    if !(spec.eps > 0.0 && spec.eps < 1.0) {
        return Err("eps must be in (0, 1)".into());
    }
    if spec.max_iters == 0 || spec.alpha <= 1.0 {
        return Err("need max_iters >= 1 and alpha > 1".into());
    }
    if spec.name.is_empty() || spec.name.contains(char::is_whitespace) {
        return Err("name must be a non-empty word".into());
    }
    Ok(())
}

/// Best process grid for a job: among all factorizations of `p` over
/// `d` modes that fit elementwise under `caps`, the one with the
/// smallest local block of `dims` (most balanced split). `caps` must
/// bound every distributed extent the job will create — the tensor's
/// `dims` *and* the core's ranks, since `n_k ≥ P_k` per mode is a hard
/// distribution invariant.
fn choose_grid(p: usize, dims: &[usize], caps: &[usize]) -> Option<Vec<usize>> {
    enumerate_grids(p, dims.len())
        .into_iter()
        .filter(|g| g.iter().zip(caps).all(|(&gj, &cj)| gj <= cj))
        .min_by_key(|g| {
            g.iter()
                .zip(dims)
                .map(|(&gj, &nj)| nj.div_ceil(gj))
                .product::<usize>()
        })
}

fn finish_job(inner: &Inner, id: JobId, outcome: JobOutcome) {
    let mut jobs = inner.jobs.lock().unwrap();
    let record = jobs.get_mut(&id).expect("finishing unknown job");
    let latency = record.enqueued.elapsed();
    {
        let mut tenants = inner.tenants.lock().unwrap();
        match &outcome {
            JobOutcome::Compressed { peak_bytes, .. } => {
                tenants.record_completed(&record.tenant, *peak_bytes)
            }
            JobOutcome::Queried { entries, .. } => {
                tenants.record_completed(&record.tenant, (*entries as u64).saturating_mul(8))
            }
            JobOutcome::Status { .. } => tenants.record_completed(&record.tenant, 0),
            JobOutcome::Rejected { .. } => tenants.record_rejected(&record.tenant),
            JobOutcome::Failed { .. } => tenants.record_failed(&record.tenant),
        }
    }
    record.state = JobState::Done(outcome, latency);
    drop(jobs);
    inner.done_cv.notify_all();
}

fn mark_running(inner: &Inner, id: JobId) {
    if let Some(record) = inner.jobs.lock().unwrap().get_mut(&id) {
        record.state = JobState::Running;
    }
}

// ------------------------------------------------------------ compress

fn compress_worker(inner: &Inner) {
    loop {
        let next = {
            let mut queues = inner.queues.lock().unwrap();
            loop {
                if let Some(job) = queues.compress.pop() {
                    break Some(job);
                }
                if inner.draining.load(Ordering::SeqCst) {
                    break None;
                }
                queues = inner.work_cv.wait(queues).unwrap();
            }
        };
        let Some((tenant, (id, spec))) = next else {
            return;
        };
        mark_running(inner, id);
        let outcome = run_compress(inner, &tenant, &spec);
        finish_job(inner, id, outcome);
    }
}

fn run_compress(inner: &Inner, tenant: &str, spec: &CompressSpec) -> JobOutcome {
    let p = inner.cfg.p;
    // The grid must fit under the tensor dims AND the smallest core the
    // job can hold (its initial ranks) — the solver distributes both.
    let caps: Vec<usize> = spec
        .dims
        .iter()
        .zip(&spec.initial_ranks)
        .map(|(&n, &r)| n.min(r))
        .collect();
    let Some(grid_dims) = choose_grid(p, &spec.dims, &caps) else {
        return JobOutcome::Failed {
            reason: format!(
                "no {}-way grid of {p} ranks fits dims {:?} with initial ranks {:?}",
                spec.dims.len(),
                spec.dims,
                spec.initial_ranks
            ),
        };
    };

    let ra = RaConfig::ra_hosi_dt(spec.eps, &spec.initial_ranks)
        .with_seed(spec.seed)
        .with_alpha(spec.alpha)
        .with_max_iters(spec.max_iters);
    if let Err(msg) = ra.validate(&spec.dims) {
        return JobOutcome::Failed {
            reason: format!("infeasible rank-adaptive configuration: {msg}"),
        };
    }

    let mut resilience = ResilienceConfig::default().with_buddy_degree(inner.cfg.buddy_degree);
    let ckpt_policy = inner
        .cfg
        .checkpoint_dir
        .as_ref()
        .map(|dir| CheckpointPolicy::new(dir.join(format!("{tenant}-{}", spec.name))).every(1));
    if let Some(policy) = &ckpt_policy {
        resilience = resilience.with_checkpoint(policy.clone());
    }

    // Admission control against the daemon budget: growth-capped
    // worst-case ranks, as the CLI driver does.
    let mut start_rung = 0u8;
    if let Some(budget) = inner.cfg.mem_budget {
        let growth = spec.alpha.powi(spec.max_iters.saturating_sub(1) as i32);
        let peak_ranks: Vec<usize> = spec
            .initial_ranks
            .iter()
            .zip(&spec.dims)
            .map(|(&r, &n)| (((r as f64) * growth).ceil() as usize).min(n))
            .collect();
        let prob = MemProblem {
            dims: spec.dims.clone(),
            grid: grid_dims.clone(),
            ranks: peak_ranks,
            buddy_degree: resilience.buddy_degree,
            abft: resilience.abft != AbftMode::Off,
            elem_bytes: std::mem::size_of::<f64>(),
        };
        match admit(&prob, budget) {
            Admission::Admit {
                start_rung: rung, ..
            } => start_rung = rung,
            Admission::Reject { required, budget } => {
                return JobOutcome::Rejected { required, budget };
            }
        }
    }

    // One-shot chaos injection: attach for this job only.
    let injected = inner.injected_plan.lock().unwrap().take();
    let has_plan = injected.is_some();
    if let Some(plan) = injected {
        inner.universe.set_fault_plan(plan);
    }
    inner.universe.set_start_rung(start_rung);

    let traffic_before = inner.universe.traffic().kind_totals();
    let generator = SyntheticSpec::new(&spec.dims, &spec.construction_ranks, spec.noise, spec.seed);
    let results = {
        let gd = grid_dims.clone();
        let gen = generator.clone();
        let ra = ra.clone();
        let resilience = resilience.clone();
        inner.universe.try_run(move |c| {
            let scope = JobScope::begin();
            let grid = CartGrid::new(c, &gd);
            let x = DistTensor::scatter_from_replicated(&grid, &gen.build::<f64>());
            match dist_ra_hooi_resilient(&grid, &x, &ra, &resilience) {
                Ok(ResilientOutcome::Completed {
                    result,
                    grid,
                    report,
                }) => {
                    let tucker = result.tucker.gather(&grid);
                    RankVerdict::Done {
                        tucker: Box::new(tucker),
                        rel_error: result.rel_error,
                        summary: RecoverySummary {
                            recoveries: report.recoveries,
                            restored_ranks: report.restored_ranks,
                            demoted_ranks: report.demoted_ranks,
                            final_grid: report.final_grid,
                            resumed_from_checkpoint: false,
                        },
                        hwm: scope.peak(),
                    }
                }
                Ok(ResilientOutcome::Spare { .. }) => RankVerdict::Spare { hwm: scope.peak() },
                Ok(ResilientOutcome::FallbackToCheckpoint { dead, reason, .. }) => {
                    RankVerdict::Fallback { dead, reason }
                }
                Err(e) => RankVerdict::CommError(e.to_string()),
            }
        })
    };
    // The plan (if any) was for this job alone; a warm universe re-arms
    // plan op-counters on every run, so clear it before the next job.
    if has_plan {
        inner.universe.clear_fault_plan();
    }
    inner.universe.set_start_rung(0);

    let outcome = reduce_compress(inner, tenant, spec, &grid_dims, &ra, &ckpt_policy, results);
    let delta = inner
        .universe
        .traffic()
        .kind_totals()
        .since(&traffic_before);
    inner.tenants.lock().unwrap().charge_traffic(tenant, &delta);
    outcome
}

#[allow(clippy::too_many_arguments)]
fn reduce_compress(
    inner: &Inner,
    tenant: &str,
    spec: &CompressSpec,
    grid_dims: &[usize],
    ra: &RaConfig,
    ckpt_policy: &Option<CheckpointPolicy>,
    results: Vec<Result<RankVerdict, ratucker_mpi::RankFailure>>,
) -> JobOutcome {
    let mut done: Option<(Box<TuckerTensor<f64>>, f64, RecoverySummary)> = None;
    let mut peak = 0u64;
    let mut fallback: Option<String> = None;
    let mut first_error: Option<String> = None;
    for result in results {
        let verdict = match result {
            Ok(v) => v,
            Err(f) => {
                first_error.get_or_insert(format!("rank {} crashed: {}", f.rank, f.message));
                continue;
            }
        };
        match verdict {
            RankVerdict::Done {
                tucker,
                rel_error,
                summary,
                hwm,
            } => {
                peak = peak.max(hwm);
                if done.is_none() {
                    done = Some((tucker, rel_error, summary));
                }
            }
            RankVerdict::Spare { hwm } => peak = peak.max(hwm),
            RankVerdict::Fallback { dead, reason } => {
                fallback.get_or_insert(format!("dead ranks {dead:?}: {reason}"));
            }
            RankVerdict::CommError(e) => {
                first_error.get_or_insert(e);
            }
        }
    }

    if done.is_none() {
        if let (Some(why), Some(policy)) = (&fallback, ckpt_policy) {
            // Disk fallback: the failure exceeded online recovery, but
            // every survivor checkpointed. Resume on a healthy universe
            // run (the one-shot plan is already cleared).
            let resume = policy.clone().resuming();
            let gd = grid_dims.to_vec();
            let gen =
                SyntheticSpec::new(&spec.dims, &spec.construction_ranks, spec.noise, spec.seed);
            let ra = ra.clone();
            let resumed = inner.universe.try_run(move |c| {
                let scope = JobScope::begin();
                let grid = CartGrid::new(c, &gd);
                let x = DistTensor::scatter_from_replicated(&grid, &gen.build::<f64>());
                let res = dist_ra_hooi_checkpointed(&grid, &x, &ra, &resume);
                let tucker = res.tucker.gather(&grid);
                (Box::new(tucker), res.rel_error, scope.peak())
            });
            for r in resumed.into_iter().flatten() {
                peak = peak.max(r.2);
                if done.is_none() {
                    let summary = RecoverySummary {
                        resumed_from_checkpoint: true,
                        final_grid: grid_dims.to_vec(),
                        ..RecoverySummary::default()
                    };
                    done = Some((r.0, r.1, summary));
                }
            }
            if done.is_none() {
                return JobOutcome::Failed {
                    reason: format!("checkpoint resume failed after fallback ({why})"),
                };
            }
        }
    }

    match done {
        Some((tucker, rel_error, recovery)) => {
            let ranks = tucker.ranks();
            let storage_entries = tucker.storage_entries();
            inner.store.write().unwrap().insert(
                tenant,
                &spec.name,
                StoredCore {
                    tucker: *tucker,
                    rel_error,
                },
            );
            JobOutcome::Compressed {
                ranks,
                rel_error,
                storage_entries,
                recovery,
                peak_bytes: peak,
            }
        }
        None => JobOutcome::Failed {
            reason: fallback
                .map(|w| format!("unrecoverable failure, no checkpoint policy: {w}"))
                .or(first_error)
                .unwrap_or_else(|| "no rank produced a result".into()),
        },
    }
}

// --------------------------------------------------------------- light

fn light_worker(inner: &Inner) {
    loop {
        let next = {
            let mut queues = inner.queues.lock().unwrap();
            loop {
                if let Some(job) = queues.light.pop() {
                    break Some(job);
                }
                if inner.draining.load(Ordering::SeqCst) {
                    break None;
                }
                queues = inner.work_cv.wait(queues).unwrap();
            }
        };
        let Some((tenant, (id, job))) = next else {
            return;
        };
        mark_running(inner, id);
        let outcome = match job {
            LightJob::Query(spec) => run_query(inner, &tenant, &spec),
            LightJob::Status => run_status(inner, &tenant),
        };
        finish_job(inner, id, outcome);
    }
}

fn run_query(inner: &Inner, tenant: &str, spec: &QuerySpec) -> JobOutcome {
    let store = inner.store.read().unwrap();
    match store.extract(tenant, &spec.name, &spec.offsets, &spec.lens) {
        Ok(slab) => {
            let entries = slab.num_entries();
            let checksum = slab.data().iter().sum();
            JobOutcome::Queried { entries, checksum }
        }
        Err(e) => JobOutcome::Failed {
            reason: e.to_string(),
        },
    }
}

fn run_status(inner: &Inner, tenant: &str) -> JobOutcome {
    let store = inner.store.read().unwrap();
    let names = store.names(tenant);
    // Live per-kind pressure: how many of the tenant's jobs are still
    // queued or running right now.
    let (mut pending_compress, mut pending_light) = (0usize, 0usize);
    for record in inner.jobs.lock().unwrap().values() {
        if record.tenant == tenant && !matches!(record.state, JobState::Done(..)) {
            match record.kind {
                "compress" => pending_compress += 1,
                _ => pending_light += 1,
            }
        }
    }
    let tenants = inner.tenants.lock().unwrap();
    let report = match tenants.account(tenant) {
        Some(acc) => format!(
            "tenant {tenant}: submitted {} completed {} failed {} rejected {} \
             pending {}+{} (compress+light), traffic {} B / {} msgs, \
             peak job {} B, cores [{}]",
            acc.submitted,
            acc.completed,
            acc.failed,
            acc.rejected,
            pending_compress,
            pending_light,
            acc.traffic.total_bytes(),
            acc.traffic.total_messages(),
            acc.peak_job_bytes,
            names.join(", "),
        ),
        None => format!("tenant {tenant}: no history"),
    };
    JobOutcome::Status { report }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_compress(name: &str, seed: u64) -> Request {
        Request::Compress(CompressSpec {
            name: name.into(),
            dims: vec![10, 8, 6],
            construction_ranks: vec![3, 2, 2],
            noise: 0.01,
            seed,
            eps: 0.2,
            initial_ranks: vec![2, 2, 2],
            alpha: 2.0,
            max_iters: 2,
        })
    }

    #[test]
    fn compress_query_status_roundtrip_with_partition_invariant() {
        let service = Service::start(ServeConfig {
            p: 2,
            query_workers: 1,
            ..ServeConfig::default()
        });
        let c = service.submit("acme", small_compress("field", 42)).unwrap();
        let (outcome, _) = service.wait(c);
        let JobOutcome::Compressed {
            ranks, rel_error, ..
        } = &outcome
        else {
            panic!("compress failed: {outcome:?}");
        };
        assert!(ranks.iter().all(|&r| r >= 1));
        assert!(*rel_error <= 0.2, "missed eps: {rel_error}");

        let q = service
            .submit(
                "acme",
                Request::Query(QuerySpec {
                    name: "field".into(),
                    offsets: vec![1, 2, 0],
                    lens: vec![3, 2, 4],
                }),
            )
            .unwrap();
        let (outcome, _) = service.wait(q);
        let JobOutcome::Queried { entries, .. } = outcome else {
            panic!("query failed: {outcome:?}");
        };
        assert_eq!(entries, 3 * 2 * 4);

        // Cross-tenant reads are refused; the tenant's failure count
        // records it.
        let stranger = service
            .submit(
                "other",
                Request::Query(QuerySpec {
                    name: "field".into(),
                    offsets: vec![0, 0, 0],
                    lens: vec![1, 1, 1],
                }),
            )
            .unwrap();
        assert!(!service.wait(stranger).0.is_success());

        let s = service.submit("acme", Request::Status).unwrap();
        let (outcome, _) = service.wait(s);
        let JobOutcome::Status { report } = outcome else {
            panic!("status failed");
        };
        assert!(report.contains("field"), "{report}");

        assert!(
            service.check_partition(),
            "tenant charges must partition traffic"
        );
        let report = service.shutdown();
        assert_eq!(report.submitted, 4);
        assert_eq!(report.completed, 3);
        assert_eq!(report.failed, 1);
        assert!(report.partition_ok);
        assert_eq!(report.stored_cores, 1);
        assert!(report.global_traffic.total_bytes() > 0);
    }

    #[test]
    fn admission_rejects_what_cannot_fit() {
        let service = Service::start(ServeConfig {
            p: 2,
            query_workers: 1,
            mem_budget: Some(1024), // nothing real fits in 1 KiB
            ..ServeConfig::default()
        });
        let id = service.submit("acme", small_compress("big", 7)).unwrap();
        let (outcome, _) = service.wait(id);
        let JobOutcome::Rejected { required, budget } = outcome else {
            panic!("expected rejection, got {outcome:?}");
        };
        assert_eq!(budget, 1024);
        assert!(required > budget);
        let report = service.shutdown();
        assert_eq!(report.rejected, 1);
        assert_eq!(report.stored_cores, 0);
    }

    #[test]
    fn door_checks_refuse_bad_submissions() {
        let service = Service::start(ServeConfig {
            p: 2,
            query_workers: 1,
            ingest_limit: Some(1024),
            ..ServeConfig::default()
        });
        // Ingest limit.
        let err = service
            .submit("acme", small_compress("big", 1))
            .unwrap_err();
        assert!(matches!(
            err,
            SubmitError::IngestTooLarge {
                bytes: 3840,
                limit: 1024
            }
        ));
        // Malformed specs.
        let mut bad = small_compress("x", 1);
        if let Request::Compress(c) = &mut bad {
            c.initial_ranks = vec![99, 99, 99];
        }
        assert!(matches!(
            service.submit("acme", bad),
            Err(SubmitError::Invalid(_))
        ));
        assert!(matches!(
            service.submit("bad tenant", Request::Status),
            Err(SubmitError::Invalid(_))
        ));
        let report = service.shutdown();
        assert_eq!(report.submitted, 0);
    }

    #[test]
    fn queue_cap_backpressures() {
        let service = Service::start(ServeConfig {
            p: 2,
            query_workers: 1,
            queue_cap: 1,
            ..ServeConfig::default()
        });
        // The first compress starts running almost immediately; a burst
        // of two more must hit the 1-deep lane at least once, because
        // the worker is busy for the burst's microseconds.
        let a = service.submit("acme", small_compress("a", 1)).unwrap();
        let burst: Vec<_> = ["b", "c"]
            .iter()
            .map(|name| service.submit("acme", small_compress(name, 2)))
            .collect();
        let saw_full = burst
            .iter()
            .any(|r| matches!(r, Err(SubmitError::QueueFull { cap: 1 })));
        for id in burst.into_iter().flatten() {
            let _ = service.wait(id);
        }
        let _ = service.wait(a);
        assert!(saw_full, "a 1-deep queue must refuse a burst of 3");
        service.shutdown();
    }

    #[test]
    fn grid_choice_fits_and_balances() {
        // Minimal block volume for p=4 over [10, 8, 6] is 120 (e.g.
        // [2,2,1]); [4,1,1]'s 144 must lose.
        let dims = [10usize, 8, 6];
        let g = choose_grid(4, &dims, &dims).unwrap();
        let block: usize = g
            .iter()
            .zip(&dims)
            .map(|(&gj, &nj)| nj.div_ceil(gj))
            .product();
        assert_eq!(block, 120, "unbalanced grid {g:?}");
        assert_eq!(
            choose_grid(4, &[10, 1, 1], &[10, 1, 1]),
            Some(vec![4, 1, 1])
        );
        assert_eq!(choose_grid(4, &[1, 1, 1], &[1, 1, 1]), None);
        // Rank caps bind: p=4 with per-mode cap 2 must spread over two
        // modes even when one dim could hold all four ranks.
        assert_eq!(choose_grid(4, &[10, 8, 6], &[2, 2, 1]), Some(vec![2, 2, 1]));
        let g = choose_grid(8, &[6, 5, 4, 3], &[6, 5, 4, 3]).unwrap();
        assert_eq!(g.iter().product::<usize>(), 8);
        assert!(g.iter().zip(&[6, 5, 4, 3]).all(|(&gj, &nj)| gj <= nj));
    }
}
