//! Multi-tenant tensor-compression service over the fabric.
//!
//! The batch layers below (`ratucker`'s RA-HOSI-DT, the resilient
//! solver, `ratucker-mem` budgets, `ratucker-perfmodel` admission,
//! `ratucker-obs` accounting) become *uptime* features here: a
//! long-running daemon owns a warm [`ratucker_mpi::Universe`] and
//! processes concurrent jobs from many tenants.
//!
//! Three job kinds:
//! - **compress** — deterministic tensor ingest → rank-adaptive
//!   HOSI-DT on the universe → factors/core stored in the indexed
//!   [`CoreStore`];
//! - **query** — partial decompression of an arbitrary hyperslab from
//!   a stored core, bit-identical to slicing the full reconstruction
//!   and never touching the fabric;
//! - **status** — per-tenant job and traffic/memory accounting.
//!
//! Properties the tests pin down:
//! - **fairness** — FIFO per tenant, round-robin across tenants, with
//!   per-tenant depth caps ([`FairQueue`]);
//! - **admission** — compress jobs are checked against the daemon's
//!   per-rank memory budget via `perfmodel::memory::admit` before any
//!   allocation, and may start on a degradation rung;
//! - **isolation** — a mid-job rank crash demotes the *job* (online
//!   recovery, or disk fallback when checkpointing is on), never the
//!   daemon; queries on stored cores keep succeeding throughout;
//! - **accounting** — per-tenant traffic charges partition the global
//!   fabric counters exactly ([`ratucker_obs::TenantLedger`]).
//!
//! The `loadgen` bin hammers an in-process service with thousands of
//! mixed requests and reports throughput and latency percentiles; the
//! `served` bin (in `ratucker-cli`) exposes the same service over a
//! newline-delimited stdio protocol ([`protocol`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod job;
pub mod protocol;
pub mod queue;
pub mod service;
pub mod store;

pub use job::{CompressSpec, JobId, JobOutcome, JobState, QuerySpec, RecoverySummary, Request};
pub use protocol::{parse_line, Command};
pub use queue::{FairQueue, QueueFull};
pub use service::{ServeConfig, Service, ShutdownReport, SubmitError};
pub use store::{CoreStore, QueryError, StoredCore};
