//! Rank-adaptive core analysis (paper §3.2, optimization problem eq. 3).
//!
//! Given the current core `G` and the input norm, find the leading
//! subtensor `G(0..r)` minimizing the Tucker storage
//! `Π r_j + Σ n_j r_j` subject to `‖G(0..r)‖² ≥ (1−ε²)‖X‖²`. Solved
//! exhaustively over all `Π r_j` leading-rank vectors in O(1) per
//! candidate using the multidimensional prefix sums of squared core
//! entries — `O(d·r^d)` total, as analyzed in the paper.

use ratucker_tensor::dense::DenseTensor;
use ratucker_tensor::prefix::prefix_squared_sums;
use ratucker_tensor::scalar::Scalar;

/// The outcome of a core-analysis truncation search.
#[derive(Clone, Debug, PartialEq)]
pub struct CoreAnalysis {
    /// The chosen ranks (exclusive upper bounds per mode).
    pub ranks: Vec<usize>,
    /// Storage of the truncated decomposition, in entries.
    pub storage: usize,
    /// `‖G(0..r)‖²` of the chosen truncation.
    pub kept_norm_sq: f64,
}

/// Storage in entries of a Tucker decomposition with the given ranks and
/// outer dimensions: `Π r_j + Σ n_j r_j` (the objective of eq. 3).
pub fn tucker_storage(ranks: &[usize], outer_dims: &[usize]) -> usize {
    let core: usize = ranks.iter().product();
    let factors: usize = ranks.iter().zip(outer_dims).map(|(&r, &n)| r * n).sum();
    core + factors
}

/// Solves eq. (3). Returns `None` when even the full core fails the
/// threshold (i.e. the current approximation is not yet accurate enough
/// and the rank-adaptive loop must grow ranks instead).
pub fn analyze_core<T: Scalar>(
    core: &DenseTensor<T>,
    outer_dims: &[usize],
    x_norm_sq: f64,
    eps: f64,
) -> Option<CoreAnalysis> {
    assert_eq!(core.order(), outer_dims.len());
    let target = (1.0 - eps * eps) * x_norm_sq;
    let prefix = prefix_squared_sums(core);
    let mut best: Option<CoreAnalysis> = None;
    // Every index of the prefix tensor is a candidate rank vector
    // r_j = idx_j + 1; feasibility and cost are O(d) reads each.
    let mut ranks = vec![0usize; core.order()];
    for idx in core.shape().indices() {
        let kept = prefix.get(&idx);
        if kept < target {
            continue;
        }
        for (r, &i) in ranks.iter_mut().zip(&idx) {
            *r = i + 1;
        }
        let storage = tucker_storage(&ranks, outer_dims);
        let better = match &best {
            None => true,
            Some(b) => storage < b.storage,
        };
        if better {
            best = Some(CoreAnalysis {
                ranks: ranks.clone(),
                storage,
                kept_norm_sq: kept,
            });
        }
    }
    best
}

/// Greedy mode-wise truncation, in the spirit of Xiao & Yang's RA-HOOI
/// ([26], discussed in §2.3): starting from the full core, repeatedly
/// drop one rank from whichever mode keeps the threshold satisfied and
/// saves the most storage, until no single-mode decrement is feasible.
///
/// This is the ablation partner of [`analyze_core`]: the paper's
/// exhaustive eq.-(3) search can shift rank *across* modes, which greedy
/// per-mode decisions cannot; `analyze_core` is therefore never worse.
pub fn analyze_core_greedy<T: Scalar>(
    core: &DenseTensor<T>,
    outer_dims: &[usize],
    x_norm_sq: f64,
    eps: f64,
) -> Option<CoreAnalysis> {
    assert_eq!(core.order(), outer_dims.len());
    let target = (1.0 - eps * eps) * x_norm_sq;
    let prefix = prefix_squared_sums(core);
    let mut ranks: Vec<usize> = core.shape().dims().to_vec();
    let kept = |ranks: &[usize]| -> f64 {
        let idx: Vec<usize> = ranks.iter().map(|&r| r - 1).collect();
        prefix.get(&idx)
    };
    if kept(&ranks) < target {
        return None;
    }
    loop {
        let mut best: Option<(usize, usize)> = None; // (mode, storage)
        for k in 0..ranks.len() {
            if ranks[k] == 1 {
                continue;
            }
            ranks[k] -= 1;
            if kept(&ranks) >= target {
                let storage = tucker_storage(&ranks, outer_dims);
                if best.is_none_or(|(_, s)| storage < s) {
                    best = Some((k, storage));
                }
            }
            ranks[k] += 1;
        }
        match best {
            Some((k, _)) => ranks[k] -= 1,
            None => break,
        }
    }
    let kept_norm_sq = kept(&ranks);
    let storage = tucker_storage(&ranks, outer_dims);
    Some(CoreAnalysis {
        ranks,
        storage,
        kept_norm_sq,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diagonal-dominant core: entry (i,i,..) big, rest small.
    fn decaying_core(dims: &[usize], decay: f64) -> DenseTensor<f64> {
        DenseTensor::from_fn(ratucker_tensor::shape::Shape::new(dims), |idx| {
            let s: usize = idx.iter().sum();
            (-decay * s as f64).exp()
        })
    }

    #[test]
    fn storage_formula() {
        assert_eq!(tucker_storage(&[2, 3], &[10, 20]), 6 + 20 + 60);
    }

    #[test]
    fn full_ranks_always_feasible_at_zero_eps_when_exact() {
        let g = decaying_core(&[3, 3], 1.0);
        let xns = g.squared_norm_f64();
        let res = analyze_core(&g, &[10, 10], xns, 0.0).unwrap();
        // Only the full core keeps all mass.
        assert_eq!(res.ranks, vec![3, 3]);
        assert!((res.kept_norm_sq - xns).abs() < 1e-12);
    }

    #[test]
    fn loose_tolerance_truncates_harder() {
        let g = decaying_core(&[5, 5, 5], 2.0);
        let xns = g.squared_norm_f64();
        let tight = analyze_core(&g, &[50, 50, 50], xns, 0.01).unwrap();
        let loose = analyze_core(&g, &[50, 50, 50], xns, 0.3).unwrap();
        assert!(loose.storage <= tight.storage);
        assert!(loose.ranks.iter().zip(&tight.ranks).all(|(l, t)| l <= t));
    }

    #[test]
    fn infeasible_when_noise_exceeds_core_mass() {
        // ‖G‖² is only half of ‖X‖² → no truncation satisfies ε = 0.1.
        let g = decaying_core(&[3, 3], 1.0);
        let xns = g.squared_norm_f64() * 2.0;
        assert!(analyze_core(&g, &[10, 10], xns, 0.1).is_none());
    }

    #[test]
    fn chosen_truncation_is_feasible_and_optimal_by_brute_force() {
        let g = decaying_core(&[4, 3, 4], 0.9);
        let xns = g.squared_norm_f64() * 1.001; // slight noise mass outside
        let eps = 0.2;
        let res = analyze_core(&g, &[20, 30, 10], xns, eps).unwrap();
        let target = (1.0 - eps * eps) * xns;
        assert!(res.kept_norm_sq >= target);

        // Brute-force the optimum.
        let mut best: Option<(usize, Vec<usize>)> = None;
        for r0 in 1..=4usize {
            for r1 in 1..=3usize {
                for r2 in 1..=4usize {
                    let sub = g.leading_subtensor(&[r0, r1, r2]);
                    if sub.squared_norm_f64() >= target {
                        let s = tucker_storage(&[r0, r1, r2], &[20, 30, 10]);
                        if best.as_ref().is_none_or(|(bs, _)| s < *bs) {
                            best = Some((s, vec![r0, r1, r2]));
                        }
                    }
                }
            }
        }
        let (best_storage, _) = best.unwrap();
        assert_eq!(res.storage, best_storage);
    }

    #[test]
    fn greedy_is_feasible_and_never_beats_exhaustive() {
        for decay in [0.4, 0.9, 1.5] {
            let g = decaying_core(&[4, 4, 4], decay);
            let xns = g.squared_norm_f64() * 1.0005;
            for eps in [0.05, 0.15, 0.3] {
                let exhaustive = analyze_core(&g, &[40, 25, 10], xns, eps);
                let greedy = analyze_core_greedy(&g, &[40, 25, 10], xns, eps);
                match (exhaustive, greedy) {
                    (Some(e), Some(gr)) => {
                        let target = (1.0 - eps * eps) * xns;
                        assert!(gr.kept_norm_sq >= target);
                        assert!(
                            e.storage <= gr.storage,
                            "exhaustive {} > greedy {} (decay {decay}, eps {eps})",
                            e.storage,
                            gr.storage
                        );
                    }
                    (None, None) => {}
                    other => panic!("feasibility disagreement: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn greedy_infeasible_when_mass_insufficient() {
        let g = decaying_core(&[3, 3], 1.0);
        let xns = g.squared_norm_f64() * 2.0;
        assert!(analyze_core_greedy(&g, &[10, 10], xns, 0.1).is_none());
    }

    #[test]
    fn unbalanced_outer_dims_shift_ranks_across_modes() {
        // With mode 0 very expensive (n_0 huge), the optimizer should
        // prefer trimming mode 0 over mode 1 when mass allows.
        let g = DenseTensor::from_fn([3, 3], |idx| {
            // Symmetric mass in both modes.
            (-((idx[0] + idx[1]) as f64)).exp()
        });
        let xns = g.squared_norm_f64();
        let res = analyze_core(&g, &[10_000, 10], xns, 0.35).unwrap();
        assert!(
            res.ranks[0] <= res.ranks[1],
            "expected mode 0 trimmed at least as hard: {:?}",
            res.ranks
        );
    }
}
