//! Sequentially Truncated Higher-Order SVD (Alg. 1) — the baseline.

use crate::llsv::{llsv_gram_evd, Truncation};
use crate::timings::{Phase, Timings};
use crate::tucker_tensor::TuckerTensor;
use ratucker_tensor::dense::DenseTensor;
use ratucker_tensor::scalar::Scalar;
use ratucker_tensor::ttm::{ttm, Transpose};

/// How STHOSVD truncates each mode.
#[derive(Clone, Debug)]
pub enum SthosvdTruncation {
    /// Fixed per-mode ranks (rank-specified formulation, eq. 1).
    Ranks(Vec<usize>),
    /// Relative error tolerance ε (error-specified formulation, eq. 2):
    /// each mode keeps the smallest rank with discarded mass ≤ ε²‖X‖²/d.
    RelError(f64),
}

/// Result of an STHOSVD run.
#[derive(Clone, Debug)]
pub struct SthosvdResult<T: Scalar> {
    /// The computed decomposition.
    pub tucker: TuckerTensor<T>,
    /// Per-phase time/flop breakdown.
    pub timings: Timings,
    /// Relative approximation error (from the core-norm identity).
    pub rel_error: f64,
}

/// Runs STHOSVD, processing modes `0, 1, …, d−1` in order.
pub fn sthosvd<T: Scalar>(x: &DenseTensor<T>, trunc: &SthosvdTruncation) -> SthosvdResult<T> {
    let d = x.order();
    let x_norm_sq = x.squared_norm_f64();
    let mut timings = Timings::new();
    let mut y = x.clone();
    let mut factors = Vec::with_capacity(d);
    for j in 0..d {
        let mode_trunc = match trunc {
            SthosvdTruncation::Ranks(r) => Truncation::Rank(r[j]),
            SthosvdTruncation::RelError(eps) => {
                Truncation::ErrorSq(eps * eps * x_norm_sq / d as f64)
            }
        };
        let u = llsv_gram_evd(&y, j, mode_trunc, &mut timings);
        y = timings.time(Phase::Ttm, || ttm(&y, j, &u, Transpose::Yes));
        factors.push(u);
    }
    let tucker = TuckerTensor::new(y, factors);
    let rel_error = tucker.rel_error_from_core(x_norm_sq);
    SthosvdResult {
        tucker,
        timings,
        rel_error,
    }
}

/// Classic (non-sequentially-truncated) HOSVD: every factor matrix is
/// computed from the *original* tensor's unfoldings, then a single
/// multi-TTM forms the core. This is the direct method STHOSVD improves
/// on (it does `d` full-size Grams instead of a shrinking sequence) —
/// included as the natural extra baseline and for validating STHOSVD's
/// quasi-optimality claims.
pub fn hosvd<T: Scalar>(x: &DenseTensor<T>, trunc: &SthosvdTruncation) -> SthosvdResult<T> {
    let d = x.order();
    let x_norm_sq = x.squared_norm_f64();
    let mut timings = Timings::new();
    let mut factors = Vec::with_capacity(d);
    for j in 0..d {
        let mode_trunc = match trunc {
            SthosvdTruncation::Ranks(r) => Truncation::Rank(r[j]),
            SthosvdTruncation::RelError(eps) => {
                Truncation::ErrorSq(eps * eps * x_norm_sq / d as f64)
            }
        };
        factors.push(llsv_gram_evd(x, j, mode_trunc, &mut timings));
    }
    let mut y = x.clone();
    for (j, u) in factors.iter().enumerate() {
        y = timings.time(Phase::Ttm, || ttm(&y, j, u, Transpose::Yes));
    }
    let tucker = TuckerTensor::new(y, factors);
    let rel_error = tucker.rel_error_from_core(x_norm_sq);
    SthosvdResult {
        tucker,
        timings,
        rel_error,
    }
}

/// STHOSVD with the randomized range-finder LLSV (the [20, 21] option of
/// Alg. 1 line 4). Rank-specified only: the sketch width must be chosen
/// up front.
pub fn sthosvd_randomized<T: Scalar>(
    x: &DenseTensor<T>,
    ranks: &[usize],
    oversample: usize,
    seed: u64,
) -> SthosvdResult<T> {
    use rand::SeedableRng;
    let d = x.order();
    assert_eq!(ranks.len(), d);
    let x_norm_sq = x.squared_norm_f64();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut timings = Timings::new();
    let mut y = x.clone();
    let mut factors = Vec::with_capacity(d);
    for (j, &r) in ranks.iter().enumerate() {
        let u = crate::llsv::llsv_randomized(&y, j, r, oversample, &mut rng, &mut timings);
        y = timings.time(Phase::Ttm, || ttm(&y, j, &u, Transpose::Yes));
        factors.push(u);
    }
    let tucker = TuckerTensor::new(y, factors);
    let rel_error = tucker.rel_error_from_core(x_norm_sq);
    SthosvdResult {
        tucker,
        timings,
        rel_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticSpec;

    #[test]
    fn hosvd_recovers_noiseless_tucker() {
        let spec = SyntheticSpec::new(&[10, 9, 8], &[3, 2, 4], 0.0, 507);
        let x = spec.build::<f64>();
        let res = hosvd(&x, &SthosvdTruncation::Ranks(vec![3, 2, 4]));
        assert!(res.rel_error < 1e-6, "rel_error {}", res.rel_error);
        assert!(res.tucker.orthonormality_defect() < 1e-10);
    }

    #[test]
    fn hosvd_and_sthosvd_comparable_error_but_hosvd_costlier() {
        let spec = SyntheticSpec::new(&[16, 14, 12], &[4, 3, 3], 0.05, 509);
        let x = spec.build::<f64>();
        let st = sthosvd(&x, &SthosvdTruncation::Ranks(vec![4, 3, 3]));
        let ho = hosvd(&x, &SthosvdTruncation::Ranks(vec![4, 3, 3]));
        // Both quasi-optimal.
        assert!((ho.rel_error - st.rel_error).abs() < 0.01);
        // HOSVD does all Grams at full size → strictly more Gram flops.
        assert!(
            ho.timings.flops(Phase::Gram) > st.timings.flops(Phase::Gram),
            "HOSVD {} vs STHOSVD {}",
            ho.timings.flops(Phase::Gram),
            st.timings.flops(Phase::Gram)
        );
    }

    #[test]
    fn hosvd_error_specified_meets_tolerance() {
        let spec = SyntheticSpec::new(&[12, 10, 8], &[3, 3, 2], 0.01, 511);
        let x = spec.build::<f64>();
        let res = hosvd(&x, &SthosvdTruncation::RelError(0.1));
        assert!(res.rel_error <= 0.1, "rel_error {}", res.rel_error);
    }

    #[test]
    fn randomized_sthosvd_recovers_noiseless_tucker() {
        let spec = SyntheticSpec::new(&[14, 12, 10], &[3, 3, 2], 0.0, 501);
        let x = spec.build::<f64>();
        let res = sthosvd_randomized(&x, &[3, 3, 2], 5, 1);
        assert!(res.rel_error < 1e-6, "rel_error {}", res.rel_error);
        assert!(res.tucker.orthonormality_defect() < 1e-10);
    }

    #[test]
    fn randomized_close_to_deterministic_on_noisy_input() {
        let spec = SyntheticSpec::new(&[16, 14, 12], &[4, 3, 3], 0.05, 503);
        let x = spec.build::<f64>();
        let det = sthosvd(&x, &SthosvdTruncation::Ranks(vec![4, 3, 3]));
        let rnd = sthosvd_randomized(&x, &[4, 3, 3], 8, 2);
        assert!(
            rnd.rel_error <= det.rel_error * 1.5 + 1e-12,
            "randomized {} vs deterministic {}",
            rnd.rel_error,
            det.rel_error
        );
    }

    #[test]
    fn randomized_uses_no_evd() {
        let spec = SyntheticSpec::new(&[10, 10, 10], &[2, 2, 2], 0.01, 505);
        let x = spec.build::<f32>();
        let res = sthosvd_randomized(&x, &[2, 2, 2], 4, 3);
        assert_eq!(res.timings.flops(Phase::Evd), 0);
        assert_eq!(res.timings.flops(Phase::Gram), 0);
        assert!(res.timings.flops(Phase::Qr) > 0);
    }

    #[test]
    fn exact_recovery_of_noiseless_tucker() {
        let spec = SyntheticSpec::new(&[10, 9, 8], &[3, 2, 4], 0.0, 11);
        let x = spec.build::<f64>();
        let res = sthosvd(&x, &SthosvdTruncation::Ranks(vec![3, 2, 4]));
        assert!(res.rel_error < 1e-6, "rel_error {}", res.rel_error);
        // Reconstruction agrees with the identity-based error.
        let rec_err = res.tucker.reconstruct().rel_error(&x);
        assert!((rec_err - res.rel_error).abs() < 1e-6);
    }

    #[test]
    fn error_specified_meets_tolerance_and_trims_ranks() {
        let spec = SyntheticSpec::new(&[12, 11, 10], &[3, 3, 3], 0.01, 13);
        let x = spec.build::<f64>();
        let res = sthosvd(&x, &SthosvdTruncation::RelError(0.1));
        assert!(res.rel_error <= 0.1, "rel_error {}", res.rel_error);
        // With noise at 1% and ε = 10%, the true ranks suffice.
        for (&r, &r_true) in res.tucker.ranks().iter().zip(&[3usize, 3, 3]) {
            assert!(r <= r_true, "rank {r} > true {r_true}");
        }
    }

    #[test]
    fn tight_tolerance_keeps_more_rank_than_loose() {
        let spec = SyntheticSpec::new(&[14, 12, 10], &[4, 4, 4], 0.05, 17);
        let x = spec.build::<f64>();
        let loose = sthosvd(&x, &SthosvdTruncation::RelError(0.3));
        let tight = sthosvd(&x, &SthosvdTruncation::RelError(0.06));
        let sl: usize = loose.tucker.storage_entries();
        let st: usize = tight.tucker.storage_entries();
        assert!(st >= sl, "tight {st} < loose {sl}");
        assert!(tight.rel_error <= 0.06);
    }

    #[test]
    fn factors_orthonormal_and_error_identity_consistent() {
        let spec = SyntheticSpec::new(&[9, 8, 7, 6], &[2, 2, 2, 2], 0.02, 19);
        let x = spec.build::<f64>();
        let res = sthosvd(&x, &SthosvdTruncation::Ranks(vec![2, 2, 2, 2]));
        assert!(res.tucker.orthonormality_defect() < 1e-10);
        let direct = res.tucker.reconstruct().rel_error(&x);
        assert!((direct - res.rel_error).abs() < 1e-8);
    }

    #[test]
    fn timings_cover_expected_phases() {
        let spec = SyntheticSpec::new(&[8, 8, 8], &[2, 2, 2], 0.0, 23);
        let x = spec.build::<f32>();
        let res = sthosvd(&x, &SthosvdTruncation::Ranks(vec![2, 2, 2]));
        assert!(res.timings.flops(Phase::Gram) > 0);
        assert!(res.timings.flops(Phase::Evd) > 0);
        assert!(res.timings.flops(Phase::Ttm) > 0);
        assert_eq!(res.timings.flops(Phase::Qr), 0);
    }

    #[test]
    fn quasi_optimality_error_bounded_by_noise() {
        // STHOSVD at the true ranks must achieve error ≈ the noise floor.
        let spec = SyntheticSpec::new(&[12, 12, 12], &[3, 3, 3], 0.05, 29);
        let x = spec.build::<f64>();
        let res = sthosvd(&x, &SthosvdTruncation::Ranks(vec![3, 3, 3]));
        assert!(res.rel_error < 0.06, "rel_error {}", res.rel_error);
        assert!(res.rel_error > 0.01, "suspiciously low {}", res.rel_error);
    }
}
