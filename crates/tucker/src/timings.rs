//! Per-phase wall-clock and flop instrumentation.
//!
//! The paper's Figs. 3, 5, 7 and 9 are running-time *breakdowns* by
//! algorithm phase (Gram, EVD, TTM, QR, core analysis, …). Every algorithm
//! in this crate threads a [`Timings`] accumulator through its kernels so
//! those breakdowns come from measurement, not estimation.

use std::time::Instant;

/// The phases distinguished in the paper's breakdown plots.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Tensor-times-matrix products (including the multi-TTM tree).
    Ttm,
    /// Gram-matrix formation.
    Gram,
    /// Dense symmetric eigensolves.
    Evd,
    /// The subspace-iteration contraction `Y_(j) G_(j)ᵀ`.
    Contract,
    /// QR / QR-with-column-pivoting orthonormalizations.
    Qr,
    /// Rank-adaptive core analysis (prefix sums + truncation search).
    CoreAnalysis,
    /// Core gather / factor setup and everything else.
    Other,
}

/// All phases, in display order.
pub const ALL_PHASES: [Phase; 7] = [
    Phase::Ttm,
    Phase::Gram,
    Phase::Evd,
    Phase::Contract,
    Phase::Qr,
    Phase::CoreAnalysis,
    Phase::Other,
];

impl Phase {
    /// Short label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Ttm => "TTM",
            Phase::Gram => "Gram",
            Phase::Evd => "EVD",
            Phase::Contract => "SI-Contract",
            Phase::Qr => "QR",
            Phase::CoreAnalysis => "CoreAnalysis",
            Phase::Other => "Other",
        }
    }

    fn index(self) -> usize {
        ALL_PHASES.iter().position(|&p| p == self).unwrap()
    }
}

/// Accumulated seconds and flops per phase.
#[derive(Clone, Debug, Default)]
pub struct Timings {
    secs: [f64; 7],
    flops: [u64; 7],
}

impl Timings {
    /// A zeroed accumulator.
    pub fn new() -> Timings {
        Timings::default()
    }

    /// Runs `f`, charging its wall time and flops to `phase`.
    pub fn time<R>(&mut self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let (out, fl) = ratucker_tensor::flops::measure(f);
        self.secs[phase.index()] += t0.elapsed().as_secs_f64();
        self.flops[phase.index()] += fl;
        out
    }

    /// Seconds accumulated in `phase`.
    pub fn secs(&self, phase: Phase) -> f64 {
        self.secs[phase.index()]
    }

    /// Flops accumulated in `phase`.
    pub fn flops(&self, phase: Phase) -> u64 {
        self.flops[phase.index()]
    }

    /// Total seconds across phases.
    pub fn total_secs(&self) -> f64 {
        self.secs.iter().sum()
    }

    /// Total flops across phases.
    pub fn total_flops(&self) -> u64 {
        self.flops.iter().sum()
    }

    /// Adds another accumulator into this one.
    pub fn merge(&mut self, other: &Timings) {
        for i in 0..self.secs.len() {
            self.secs[i] += other.secs[i];
            self.flops[i] += other.flops[i];
        }
    }

    /// One-line breakdown, e.g. for harness output.
    pub fn summary(&self) -> String {
        let mut parts = Vec::new();
        for &p in &ALL_PHASES {
            let s = self.secs(p);
            if s > 0.0 || self.flops(p) > 0 {
                parts.push(format!("{}={:.4}s", p.label(), s));
            }
        }
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_accumulates_and_returns() {
        let mut t = Timings::new();
        let v = t.time(Phase::Ttm, || {
            ratucker_tensor::flops::add(100);
            7
        });
        assert_eq!(v, 7);
        assert_eq!(t.flops(Phase::Ttm), 100);
        assert!(t.secs(Phase::Ttm) >= 0.0);
        t.time(Phase::Ttm, || ratucker_tensor::flops::add(1));
        assert_eq!(t.flops(Phase::Ttm), 101);
        assert_eq!(t.total_flops(), 101);
    }

    #[test]
    fn merge_sums_phases() {
        let mut a = Timings::new();
        a.time(Phase::Gram, || ratucker_tensor::flops::add(5));
        let mut b = Timings::new();
        b.time(Phase::Gram, || ratucker_tensor::flops::add(6));
        b.time(Phase::Qr, || ratucker_tensor::flops::add(1));
        a.merge(&b);
        assert_eq!(a.flops(Phase::Gram), 11);
        assert_eq!(a.flops(Phase::Qr), 1);
    }

    #[test]
    fn summary_mentions_active_phases() {
        let mut t = Timings::new();
        t.time(Phase::Evd, || ratucker_tensor::flops::add(2));
        let s = t.summary();
        assert!(s.contains("EVD"));
        assert!(!s.contains("QR"));
    }
}
