//! Per-phase wall-clock and flop instrumentation.
//!
//! The paper's Figs. 3, 5, 7 and 9 are running-time *breakdowns* by
//! algorithm phase (Gram, EVD, TTM, QR, core analysis, …). Every algorithm
//! in this crate threads a [`Timings`] accumulator through its kernels so
//! those breakdowns come from measurement, not estimation.

use std::time::Instant;

/// The phases distinguished in the paper's breakdown plots.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Tensor-times-matrix products (including the multi-TTM tree).
    Ttm,
    /// Gram-matrix formation.
    Gram,
    /// Dense symmetric eigensolves.
    Evd,
    /// The subspace-iteration contraction `Y_(j) G_(j)ᵀ`.
    Contract,
    /// QR / QR-with-column-pivoting orthonormalizations.
    Qr,
    /// Rank-adaptive core analysis (prefix sums + truncation search).
    CoreAnalysis,
    /// Fault recovery: snapshot refresh, shrink, redistribute, restore.
    Recovery,
    /// Core gather / factor setup and everything else.
    Other,
}

/// All phases, in display order.
pub const ALL_PHASES: [Phase; 8] = [
    Phase::Ttm,
    Phase::Gram,
    Phase::Evd,
    Phase::Contract,
    Phase::Qr,
    Phase::CoreAnalysis,
    Phase::Recovery,
    Phase::Other,
];

impl Phase {
    /// Short label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Ttm => "TTM",
            Phase::Gram => "Gram",
            Phase::Evd => "EVD",
            Phase::Contract => "SI-Contract",
            Phase::Qr => "QR",
            Phase::CoreAnalysis => "CoreAnalysis",
            Phase::Recovery => "Recovery",
            Phase::Other => "Other",
        }
    }

    fn index(self) -> usize {
        ALL_PHASES.iter().position(|&p| p == self).unwrap()
    }
}

/// Accumulated seconds and flops per phase.
#[derive(Clone, Debug, Default)]
pub struct Timings {
    secs: [f64; 8],
    flops: [u64; 8],
}

impl Timings {
    /// A zeroed accumulator.
    pub fn new() -> Timings {
        Timings::default()
    }

    /// Runs `f`, charging its wall time and flops to `phase`.
    pub fn time<R>(&mut self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let (out, fl) = ratucker_tensor::flops::measure(f);
        self.secs[phase.index()] += t0.elapsed().as_secs_f64();
        self.flops[phase.index()] += fl;
        out
    }

    /// Charges `secs` wall seconds directly to `phase` — for callers
    /// that measured a region themselves (e.g. the recovery loop's
    /// shrink/restore timer) rather than through [`Timings::time`].
    pub fn record(&mut self, phase: Phase, secs: f64) {
        self.secs[phase.index()] += secs;
    }

    /// Seconds accumulated in `phase`.
    pub fn secs(&self, phase: Phase) -> f64 {
        self.secs[phase.index()]
    }

    /// Flops accumulated in `phase`.
    pub fn flops(&self, phase: Phase) -> u64 {
        self.flops[phase.index()]
    }

    /// Total seconds across phases.
    pub fn total_secs(&self) -> f64 {
        self.secs.iter().sum()
    }

    /// Total flops across phases.
    pub fn total_flops(&self) -> u64 {
        self.flops.iter().sum()
    }

    /// Adds another accumulator into this one.
    pub fn merge(&mut self, other: &Timings) {
        for i in 0..self.secs.len() {
            self.secs[i] += other.secs[i];
            self.flops[i] += other.flops[i];
        }
    }

    /// Integer percent-of-total-seconds per phase (display order),
    /// apportioned by largest remainder so the row sums to exactly 100
    /// whenever any time was recorded (all-zero timings yield zeros).
    pub fn percents(&self) -> [u32; 8] {
        let total: f64 = self.secs.iter().sum();
        let mut out = [0u32; 8];
        if total <= 0.0 {
            return out;
        }
        // Floor shares, then hand the missing percent points to the
        // phases with the largest fractional remainders (ties broken by
        // display order, keeping the result deterministic).
        let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(8);
        let mut used = 0u32;
        for (i, &s) in self.secs.iter().enumerate() {
            let share = s / total * 100.0;
            let fl = share.floor();
            out[i] = fl as u32;
            used += out[i];
            remainders.push((i, share - fl));
        }
        remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let mut left = 100u32.saturating_sub(used);
        for (i, _) in remainders {
            if left == 0 {
                break;
            }
            out[i] += 1;
            left -= 1;
        }
        out
    }

    /// One-line breakdown, e.g. for harness output.
    pub fn summary(&self) -> String {
        let mut parts = Vec::new();
        for &p in &ALL_PHASES {
            let s = self.secs(p);
            if s > 0.0 || self.flops(p) > 0 {
                parts.push(format!("{}={:.4}s", p.label(), s));
            }
        }
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_accumulates_and_returns() {
        let mut t = Timings::new();
        let v = t.time(Phase::Ttm, || {
            ratucker_tensor::flops::add(100);
            7
        });
        assert_eq!(v, 7);
        assert_eq!(t.flops(Phase::Ttm), 100);
        assert!(t.secs(Phase::Ttm) >= 0.0);
        t.time(Phase::Ttm, || ratucker_tensor::flops::add(1));
        assert_eq!(t.flops(Phase::Ttm), 101);
        assert_eq!(t.total_flops(), 101);
    }

    #[test]
    fn merge_sums_phases() {
        let mut a = Timings::new();
        a.time(Phase::Gram, || ratucker_tensor::flops::add(5));
        let mut b = Timings::new();
        b.time(Phase::Gram, || ratucker_tensor::flops::add(6));
        b.time(Phase::Qr, || ratucker_tensor::flops::add(1));
        a.merge(&b);
        assert_eq!(a.flops(Phase::Gram), 11);
        assert_eq!(a.flops(Phase::Qr), 1);
    }

    #[test]
    fn summary_mentions_active_phases() {
        let mut t = Timings::new();
        t.time(Phase::Evd, || ratucker_tensor::flops::add(2));
        let s = t.summary();
        assert!(s.contains("EVD"));
        assert!(!s.contains("QR"));
    }

    fn with_secs(pairs: &[(Phase, f64)]) -> Timings {
        let mut t = Timings::new();
        for &(p, s) in pairs {
            t.record(p, s);
        }
        t
    }

    #[test]
    fn merge_is_associative() {
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c), per phase, for both secs and flops.
        let mk = |seed: u64| {
            let mut t = Timings::new();
            for (i, &p) in ALL_PHASES.iter().enumerate() {
                t.record(p, (seed * 31 + i as u64) as f64 * 0.125);
            }
            t.time(ALL_PHASES[seed as usize % ALL_PHASES.len()], || {
                ratucker_tensor::flops::add(seed * 7 + 3)
            });
            t
        };
        let (a, b, c) = (mk(1), mk(2), mk(3));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        for &p in &ALL_PHASES {
            // record() adds exact dyadic fractions, so equality is exact.
            assert_eq!(left.secs(p), right.secs(p), "{}", p.label());
            assert_eq!(left.flops(p), right.flops(p), "{}", p.label());
        }
    }

    #[test]
    fn percents_sum_to_exactly_100() {
        // A pathological split: 1/3, 1/3, 1/3 floors to 33+33+33 = 99;
        // largest-remainder must top one phase up to 34.
        let t = with_secs(&[(Phase::Ttm, 1.0), (Phase::Gram, 1.0), (Phase::Evd, 1.0)]);
        let p = t.percents();
        assert_eq!(p.iter().sum::<u32>(), 100);
        assert!(p.iter().filter(|&&x| x == 34).count() == 1);
        assert!(p.iter().filter(|&&x| x == 33).count() == 2);

        // Seven equal shares: 7 × 14 = 98, two phases get 15.
        let t = with_secs(
            &ALL_PHASES[..7]
                .iter()
                .map(|&p| (p, 0.5))
                .collect::<Vec<_>>(),
        );
        assert_eq!(t.percents().iter().sum::<u32>(), 100);

        // All-zero timings stay all-zero (no NaN, no 100-from-nothing).
        assert_eq!(Timings::new().percents(), [0u32; 8]);

        // A dominant phase keeps ~all of it.
        let t = with_secs(&[(Phase::Recovery, 99.0), (Phase::Other, 1.0)]);
        let p = t.percents();
        assert_eq!(p.iter().sum::<u32>(), 100);
        assert_eq!(
            p[ALL_PHASES
                .iter()
                .position(|&x| x == Phase::Recovery)
                .unwrap()],
            99
        );
    }

    #[test]
    fn display_order_is_stable() {
        // The breakdown tables and the percents() array are indexed by
        // ALL_PHASES order; freezing it here turns silent reorderings
        // into loud test failures.
        let labels: Vec<&str> = ALL_PHASES.iter().map(|p| p.label()).collect();
        assert_eq!(
            labels,
            vec![
                "TTM",
                "Gram",
                "EVD",
                "SI-Contract",
                "QR",
                "CoreAnalysis",
                "Recovery",
                "Other"
            ]
        );
        // label() and index() are mutually consistent and distinct.
        for (i, &p) in ALL_PHASES.iter().enumerate() {
            assert_eq!(ALL_PHASES.iter().position(|&q| q == p), Some(i));
        }
    }

    #[test]
    fn record_charges_phase_directly() {
        let mut t = Timings::new();
        t.record(Phase::Recovery, 2.5);
        t.record(Phase::Recovery, 0.5);
        assert_eq!(t.secs(Phase::Recovery), 3.0);
        assert_eq!(t.total_secs(), 3.0);
        assert!(t.summary().contains("Recovery=3.0000s"));
    }
}
