//! Higher Order Orthogonal Iteration (Alg. 2) and its optimized variants.
//!
//! The four variants of the paper are the cross product of two choices:
//!
//! | variant  | multi-TTM            | LLSV               |
//! |----------|----------------------|--------------------|
//! | HOOI     | direct (Alg. 2)      | Gram + EVD         |
//! | HOOI-DT  | dimension tree (Alg. 4) | Gram + EVD      |
//! | HOSI     | direct               | subspace iteration (Alg. 5) |
//! | HOSI-DT  | dimension tree       | subspace iteration |
//!
//! The dimension tree halves the mode set at each level and memoizes the
//! partial multi-TTM products, cutting the TTM flops from `2d·rn^d/P` to
//! `4·rn^d/P` (§3.3). Subspace iteration replaces the `n×n` Gram + `O(n³)`
//! EVD with two thin products and an `n×r` QRCP (§3.4).

use crate::llsv::{llsv_gram_evd, llsv_subspace_iter, Truncation};
use crate::timings::{Phase, Timings};
use crate::tucker_tensor::TuckerTensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ratucker_tensor::dense::DenseTensor;
use ratucker_tensor::matrix::Matrix;
use ratucker_tensor::random::random_orthonormal;
use ratucker_tensor::scalar::Scalar;
use ratucker_tensor::ttm::{multi_ttm_all_but, ttm, Transpose};

/// Multi-TTM evaluation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TtmStrategy {
    /// Recompute the all-but-one product from scratch per subiteration.
    Direct,
    /// Dimension-tree memoization (Alg. 4).
    DimTree,
}

/// LLSV evaluation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LlsvStrategy {
    /// Gram matrix + symmetric EVD.
    GramEvd,
    /// One step of subspace iteration seeded by the previous factor.
    SubspaceIter,
}

/// Configuration of a fixed-rank HOOI run.
#[derive(Clone, Debug)]
pub struct HooiConfig {
    /// Multi-TTM strategy.
    pub ttm: TtmStrategy,
    /// LLSV strategy.
    pub llsv: LlsvStrategy,
    /// Maximum number of full sweeps.
    pub max_iters: usize,
    /// Optional early stop: halt when the relative error improves by less
    /// than this fraction between sweeps.
    pub tol: Option<f64>,
    /// Seed for the random initial factors.
    pub seed: u64,
    /// Subspace-iteration steps per subiteration (paper default: 1).
    pub si_steps: usize,
}

impl HooiConfig {
    /// Paper variant HOOI: direct TTM, Gram+EVD.
    pub fn hooi() -> Self {
        Self::variant(TtmStrategy::Direct, LlsvStrategy::GramEvd)
    }
    /// Paper variant HOOI-DT: dimension tree, Gram+EVD.
    pub fn hooi_dt() -> Self {
        Self::variant(TtmStrategy::DimTree, LlsvStrategy::GramEvd)
    }
    /// Paper variant HOSI: direct TTM, subspace iteration.
    pub fn hosi() -> Self {
        Self::variant(TtmStrategy::Direct, LlsvStrategy::SubspaceIter)
    }
    /// Paper variant HOSI-DT: dimension tree, subspace iteration.
    pub fn hosi_dt() -> Self {
        Self::variant(TtmStrategy::DimTree, LlsvStrategy::SubspaceIter)
    }

    fn variant(ttm: TtmStrategy, llsv: LlsvStrategy) -> Self {
        HooiConfig {
            ttm,
            llsv,
            max_iters: 2,
            tol: None,
            seed: 0,
            si_steps: 1,
        }
    }

    /// Builder: number of sweeps.
    pub fn with_max_iters(mut self, it: usize) -> Self {
        self.max_iters = it;
        self
    }

    /// Builder: RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: relative-improvement stopping tolerance.
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = Some(tol);
        self
    }

    /// Builder: subspace-iteration steps per subiteration.
    pub fn with_si_steps(mut self, steps: usize) -> Self {
        self.si_steps = steps;
        self
    }

    /// The paper's name for this variant.
    pub fn variant_name(&self) -> &'static str {
        match (self.ttm, self.llsv) {
            (TtmStrategy::Direct, LlsvStrategy::GramEvd) => "HOOI",
            (TtmStrategy::DimTree, LlsvStrategy::GramEvd) => "HOOI-DT",
            (TtmStrategy::Direct, LlsvStrategy::SubspaceIter) => "HOSI",
            (TtmStrategy::DimTree, LlsvStrategy::SubspaceIter) => "HOSI-DT",
        }
    }
}

/// Per-sweep record.
#[derive(Clone, Debug)]
pub struct SweepInfo {
    /// Relative error at sweep end (core-norm identity).
    pub rel_error: f64,
    /// Phase breakdown of the sweep.
    pub timings: Timings,
}

/// Result of a fixed-rank HOOI run.
#[derive(Clone, Debug)]
pub struct HooiResult<T: Scalar> {
    /// The computed decomposition.
    pub tucker: TuckerTensor<T>,
    /// Per-sweep history.
    pub sweeps: Vec<SweepInfo>,
    /// Total breakdown across sweeps (plus initialization).
    pub timings: Timings,
}

impl<T: Scalar> HooiResult<T> {
    /// Final relative error.
    pub fn rel_error(&self) -> f64 {
        self.sweeps.last().map(|s| s.rel_error).unwrap_or(1.0)
    }
}

/// Random orthonormal initial factors (the paper's initialization).
pub fn random_init<T: Scalar>(dims: &[usize], ranks: &[usize], seed: u64) -> Vec<Matrix<T>> {
    let mut rng = StdRng::seed_from_u64(seed);
    dims.iter()
        .zip(ranks)
        .map(|(&n, &r)| {
            assert!(r <= n, "rank {r} exceeds dimension {n}");
            random_orthonormal(n, r, &mut rng)
        })
        .collect()
}

/// Runs fixed-rank HOOI (any variant) from random initial factors.
pub fn hooi<T: Scalar>(x: &DenseTensor<T>, ranks: &[usize], config: &HooiConfig) -> HooiResult<T> {
    let factors = random_init(x.shape().dims(), ranks, config.seed);
    hooi_with_init(x, ranks, factors, config)
}

/// Runs fixed-rank HOOI from the given initial factors.
pub fn hooi_with_init<T: Scalar>(
    x: &DenseTensor<T>,
    ranks: &[usize],
    mut factors: Vec<Matrix<T>>,
    config: &HooiConfig,
) -> HooiResult<T> {
    assert_eq!(ranks.len(), x.order());
    let x_norm_sq = x.squared_norm_f64();
    let mut total = Timings::new();
    let mut sweeps = Vec::new();
    let mut prev_err = f64::INFINITY;
    let mut core: Option<DenseTensor<T>> = None;

    for _ in 0..config.max_iters {
        let mut t = Timings::new();
        let c = run_sweep(x, &mut factors, ranks, config, &mut t);
        let rel_error = {
            let g = c.squared_norm_f64();
            ((x_norm_sq - g).max(0.0) / x_norm_sq).sqrt()
        };
        core = Some(c);
        total.merge(&t);
        sweeps.push(SweepInfo {
            rel_error,
            timings: t,
        });
        if let Some(tol) = config.tol {
            if (prev_err - rel_error).abs() <= tol * rel_error.max(f64::EPSILON) {
                break;
            }
        }
        prev_err = rel_error;
    }

    let core = core.expect("max_iters must be at least 1");
    HooiResult {
        tucker: TuckerTensor::new(core, factors),
        sweeps,
        timings: total,
    }
}

/// One full HOOI sweep: updates every factor, returns the new core.
pub fn run_sweep<T: Scalar>(
    x: &DenseTensor<T>,
    factors: &mut [Matrix<T>],
    ranks: &[usize],
    config: &HooiConfig,
    timings: &mut Timings,
) -> DenseTensor<T> {
    match config.ttm {
        TtmStrategy::Direct => sweep_direct(x, factors, ranks, config, timings),
        TtmStrategy::DimTree => sweep_dimtree(x, factors, ranks, config, timings),
    }
}

/// Updates one factor from the all-but-one product `y`.
fn update_factor<T: Scalar>(
    y: &DenseTensor<T>,
    mode: usize,
    rank: usize,
    config: &HooiConfig,
    factors: &mut [Matrix<T>],
    timings: &mut Timings,
) {
    factors[mode] = match config.llsv {
        LlsvStrategy::GramEvd => llsv_gram_evd(y, mode, Truncation::Rank(rank), timings),
        LlsvStrategy::SubspaceIter => {
            llsv_subspace_iter(y, mode, &factors[mode], config.si_steps, timings)
        }
    };
}

/// Direct sweep (Alg. 2 lines 4–7 + the line-9 core update).
fn sweep_direct<T: Scalar>(
    x: &DenseTensor<T>,
    factors: &mut [Matrix<T>],
    ranks: &[usize],
    config: &HooiConfig,
    timings: &mut Timings,
) -> DenseTensor<T> {
    let d = x.order();
    let mut core = None;
    for j in 0..d {
        let y = timings.time(Phase::Ttm, || multi_ttm_all_but(x, factors, j));
        update_factor(&y, j, ranks[j], config, factors, timings);
        if j == d - 1 {
            core = Some(timings.time(Phase::Ttm, || ttm(&y, j, &factors[j], Transpose::Yes)));
        }
    }
    core.expect("tensor has at least one mode")
}

/// Dimension-tree sweep (Alg. 4, with the paper's branch order: the
/// low-mode half of the tree is visited first — its leaves are reached by
/// multiplying the *high* modes from mode `d` downward for memory
/// locality — so the mode-`d−1` leaf comes last and computes the core from
/// fully-updated factors).
fn sweep_dimtree<T: Scalar>(
    x: &DenseTensor<T>,
    factors: &mut [Matrix<T>],
    ranks: &[usize],
    config: &HooiConfig,
    timings: &mut Timings,
) -> DenseTensor<T> {
    let d = x.order();
    let modes: Vec<usize> = (0..d).collect();
    let mut core = None;
    dimtree_rec(x, &modes, factors, ranks, config, timings, &mut core);
    core.expect("mode d-1 leaf must set the core")
}

fn dimtree_rec<T: Scalar>(
    x: &DenseTensor<T>,
    modes: &[usize],
    factors: &mut [Matrix<T>],
    ranks: &[usize],
    config: &HooiConfig,
    timings: &mut Timings,
    core: &mut Option<DenseTensor<T>>,
) {
    let d = factors.len();
    if modes.len() == 1 {
        let m = modes[0];
        update_factor(x, m, ranks[m], config, factors, timings);
        if m == d - 1 {
            *core = Some(timings.time(Phase::Ttm, || ttm(x, m, &factors[m], Transpose::Yes)));
        }
        return;
    }
    let mid = modes.len() / 2;
    let (lo, hi) = modes.split_at(mid);

    // Multiply the high half (mode d first — the layout-friendly order the
    // paper uses in the left branch), then recurse into the low half.
    let x_hi = timings.time(Phase::Ttm, || {
        let mut cur = None;
        for &m in hi.iter().rev() {
            let next = match &cur {
                None => ttm(x, m, &factors[m], Transpose::Yes),
                Some(t) => ttm(t, m, &factors[m], Transpose::Yes),
            };
            cur = Some(next);
        }
        cur.expect("hi half is nonempty")
    });
    dimtree_rec(&x_hi, lo, factors, ranks, config, timings, core);
    drop(x_hi);

    // Multiply the (freshly updated) low half in ascending order, then
    // recurse into the high half.
    let x_lo = timings.time(Phase::Ttm, || {
        let mut cur = None;
        for &m in lo.iter() {
            let next = match &cur {
                None => ttm(x, m, &factors[m], Transpose::Yes),
                Some(t) => ttm(t, m, &factors[m], Transpose::Yes),
            };
            cur = Some(next);
        }
        cur.expect("lo half is nonempty")
    });
    dimtree_rec(&x_lo, hi, factors, ranks, config, timings, core);
}

/// One event of the dimension-tree traversal (used to render the paper's
/// Fig. 1 and to reason about the TTM schedule without running a sweep).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DimTreeEvent {
    /// A TTM in `mode`, performed at a node whose not-yet-multiplied mode
    /// set (after this TTM) is `remaining`.
    Ttm {
        /// The mode being multiplied.
        mode: usize,
        /// Modes still unmultiplied after this TTM.
        remaining: Vec<usize>,
    },
    /// A leaf: the factor of `mode` is updated by LLSV.
    Leaf {
        /// The mode whose factor is updated.
        mode: usize,
        /// True at the mode `d−1` leaf, where the core is also computed.
        computes_core: bool,
    },
}

/// The TTM/LLSV schedule of one dimension-tree sweep for an order-`d`
/// tensor, in execution order.
pub fn dimtree_schedule(d: usize) -> Vec<DimTreeEvent> {
    fn rec(modes: &[usize], d: usize, out: &mut Vec<DimTreeEvent>) {
        if modes.len() == 1 {
            out.push(DimTreeEvent::Leaf {
                mode: modes[0],
                computes_core: modes[0] == d - 1,
            });
            return;
        }
        let mid = modes.len() / 2;
        let (lo, hi) = modes.split_at(mid);
        let mut remaining: Vec<usize> = modes.to_vec();
        for &m in hi.iter().rev() {
            remaining.retain(|&x| x != m);
            out.push(DimTreeEvent::Ttm {
                mode: m,
                remaining: remaining.clone(),
            });
        }
        rec(lo, d, out);
        let mut remaining: Vec<usize> = modes.to_vec();
        for &m in lo.iter() {
            remaining.retain(|&x| x != m);
            out.push(DimTreeEvent::Ttm {
                mode: m,
                remaining: remaining.clone(),
            });
        }
        rec(hi, d, out);
    }
    let modes: Vec<usize> = (0..d).collect();
    let mut out = Vec::new();
    rec(&modes, d, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticSpec;

    #[test]
    fn schedule_leaves_cover_all_modes_in_order() {
        for d in 2..=6 {
            let sched = dimtree_schedule(d);
            let leaves: Vec<usize> = sched
                .iter()
                .filter_map(|e| match e {
                    DimTreeEvent::Leaf { mode, .. } => Some(*mode),
                    _ => None,
                })
                .collect();
            assert_eq!(leaves, (0..d).collect::<Vec<_>>(), "d={d}");
            // Exactly one leaf computes the core: the last one.
            let core_leaves: Vec<&DimTreeEvent> = sched
                .iter()
                .filter(|e| {
                    matches!(
                        e,
                        DimTreeEvent::Leaf {
                            computes_core: true,
                            ..
                        }
                    )
                })
                .collect();
            assert_eq!(core_leaves.len(), 1);
            assert!(matches!(
                sched.last().unwrap(),
                DimTreeEvent::Leaf { mode, computes_core: true } if *mode == d - 1
            ));
        }
    }

    #[test]
    fn schedule_ttm_count_is_memoized() {
        // Direct: d·(d−1) TTMs per sweep. Tree for d=6 should do far fewer.
        let sched = dimtree_schedule(6);
        let ttms = sched
            .iter()
            .filter(|e| matches!(e, DimTreeEvent::Ttm { .. }))
            .count();
        assert!(ttms < 6 * 5, "tree does {ttms} TTMs");
        // Fig. 1: the order-6 tree performs 6 TTMs off the root (3 each
        // branch) plus the deeper levels.
        assert!(ttms >= 6);
    }

    #[test]
    fn schedule_root_branches_match_paper_order() {
        // Root of the d=6 tree: high modes multiplied first, from mode 5
        // (paper's "left branch ... in reverse order, mode d first").
        let sched = dimtree_schedule(6);
        match &sched[0] {
            DimTreeEvent::Ttm { mode, remaining } => {
                assert_eq!(*mode, 5);
                assert_eq!(remaining, &vec![0, 1, 2, 3, 4]);
            }
            other => panic!("unexpected first event {other:?}"),
        }
    }

    fn all_variants() -> [HooiConfig; 4] {
        [
            HooiConfig::hooi(),
            HooiConfig::hooi_dt(),
            HooiConfig::hosi(),
            HooiConfig::hosi_dt(),
        ]
    }

    #[test]
    fn all_variants_recover_noiseless_tucker() {
        let spec = SyntheticSpec::new(&[10, 9, 8], &[3, 2, 3], 0.0, 31);
        let x = spec.build::<f64>();
        for cfg in all_variants() {
            let res = hooi(&x, &[3, 2, 3], &cfg.with_seed(5).with_max_iters(2));
            assert!(
                res.rel_error() < 1e-6,
                "{:?}: rel_error {}",
                res.tucker.ranks(),
                res.rel_error()
            );
            assert!(res.tucker.orthonormality_defect() < 1e-9);
        }
    }

    #[test]
    fn dimension_tree_matches_direct_error() {
        // DT reorders subiterations but must land at equivalent quality.
        let spec = SyntheticSpec::new(&[12, 10, 9, 8], &[2, 3, 2, 2], 0.02, 37);
        let x = spec.build::<f64>();
        let direct = hooi(
            &x,
            &[2, 3, 2, 2],
            &HooiConfig::hooi().with_seed(7).with_max_iters(2),
        );
        let tree = hooi(
            &x,
            &[2, 3, 2, 2],
            &HooiConfig::hooi_dt().with_seed(7).with_max_iters(2),
        );
        assert!(
            (direct.rel_error() - tree.rel_error()).abs() < 1e-3,
            "direct {} tree {}",
            direct.rel_error(),
            tree.rel_error()
        );
    }

    #[test]
    fn dimension_tree_uses_fewer_ttm_flops() {
        let spec = SyntheticSpec::new(&[14, 14, 14, 14], &[3, 3, 3, 3], 0.01, 41);
        let x = spec.build::<f64>();
        let direct = hooi(&x, &[3, 3, 3, 3], &HooiConfig::hooi().with_max_iters(1));
        let tree = hooi(&x, &[3, 3, 3, 3], &HooiConfig::hooi_dt().with_max_iters(1));
        let fd = direct.timings.flops(Phase::Ttm);
        let ft = tree.timings.flops(Phase::Ttm);
        // Theory: direct ≈ 2d·rn^d, tree ≈ 4·rn^d → ratio ≈ d/2 = 2 for d=4.
        assert!(
            fd as f64 / ft as f64 > 1.4,
            "direct {fd} tree {ft} (ratio {})",
            fd as f64 / ft as f64
        );
    }

    #[test]
    fn subspace_iteration_avoids_evd() {
        let spec = SyntheticSpec::new(&[10, 10, 10], &[2, 2, 2], 0.01, 43);
        let x = spec.build::<f64>();
        let hosi = hooi(&x, &[2, 2, 2], &HooiConfig::hosi_dt().with_max_iters(2));
        assert_eq!(hosi.timings.flops(Phase::Evd), 0);
        assert_eq!(hosi.timings.flops(Phase::Gram), 0);
        assert!(hosi.timings.flops(Phase::Qr) > 0);
        assert!(hosi.timings.flops(Phase::Contract) > 0);
    }

    #[test]
    fn converges_in_two_sweeps_with_noise() {
        // The paper's claim: random init reaches STHOSVD-level error in
        // 1-2 iterations.
        let spec = SyntheticSpec::new(&[16, 14, 12], &[4, 3, 3], 0.05, 47);
        let x = spec.build::<f64>();
        let st =
            crate::sthosvd::sthosvd(&x, &crate::sthosvd::SthosvdTruncation::Ranks(vec![4, 3, 3]));
        for cfg in all_variants() {
            let res = hooi(&x, &[4, 3, 3], &cfg.with_seed(3).with_max_iters(2));
            assert!(
                res.rel_error() < st.rel_error * 1.05 + 1e-12,
                "{} vs STHOSVD {}",
                res.rel_error(),
                st.rel_error
            );
        }
    }

    #[test]
    fn error_is_monotone_nonincreasing_over_sweeps() {
        let spec = SyntheticSpec::new(&[12, 11, 10], &[3, 3, 3], 0.1, 53);
        let x = spec.build::<f64>();
        let res = hooi(&x, &[3, 3, 3], &HooiConfig::hooi().with_max_iters(4));
        for w in res.sweeps.windows(2) {
            assert!(
                w[1].rel_error <= w[0].rel_error + 1e-10,
                "{} -> {}",
                w[0].rel_error,
                w[1].rel_error
            );
        }
    }

    #[test]
    fn tol_stops_early() {
        let spec = SyntheticSpec::new(&[10, 10], &[2, 2], 0.0, 59);
        let x = spec.build::<f64>();
        let res = hooi(
            &x,
            &[2, 2],
            &HooiConfig::hooi().with_max_iters(10).with_tol(1e-8),
        );
        assert!(res.sweeps.len() < 10, "ran {} sweeps", res.sweeps.len());
        assert!(res.rel_error() < 1e-7);
    }

    #[test]
    fn two_way_tensors_work() {
        // d = 2 exercises the smallest dimension tree.
        let spec = SyntheticSpec::new(&[20, 15], &[4, 4], 0.01, 61);
        let x = spec.build::<f64>();
        for cfg in all_variants() {
            let res = hooi(&x, &[4, 4], &cfg.with_max_iters(2));
            assert!(res.rel_error() < 0.02, "{}", res.rel_error());
        }
    }

    #[test]
    fn five_way_dimension_tree() {
        let spec = SyntheticSpec::new(&[6, 6, 6, 6, 6], &[2, 2, 2, 2, 2], 0.0, 67);
        let x = spec.build::<f64>();
        let res = hooi(
            &x,
            &[2, 2, 2, 2, 2],
            &HooiConfig::hosi_dt().with_max_iters(2),
        );
        assert!(res.rel_error() < 1e-5, "{}", res.rel_error());
    }

    #[test]
    fn variant_names() {
        assert_eq!(HooiConfig::hooi().variant_name(), "HOOI");
        assert_eq!(HooiConfig::hooi_dt().variant_name(), "HOOI-DT");
        assert_eq!(HooiConfig::hosi().variant_name(), "HOSI");
        assert_eq!(HooiConfig::hosi_dt().variant_name(), "HOSI-DT");
    }
}
