//! Leading left singular vectors (LLSV) of tensor unfoldings.
//!
//! Two routes, matching the paper:
//! - **Gram + EVD** (§2.1): form `Y_(j) Y_(j)ᵀ`, eigensolve, keep the
//!   leading eigenvectors. Supports both the rank-specified and the
//!   error-specified truncation rule.
//! - **Subspace iteration** (Alg. 5): one step of orthogonal iteration
//!   seeded by the previous factor — `G = Uᵀ·Y_(j)` (a TTM), `Z = Y_(j)·Gᵀ`
//!   (the all-but-one contraction), then QRCP to orthonormalize and order
//!   the columns.

use crate::timings::{Phase, Timings};
use ratucker_linalg::evd::{rank_for_error, try_sym_evd, EvdError, SymEvd};
use ratucker_linalg::qr::qrcp;
use ratucker_tensor::contract::contract_all_but;
use ratucker_tensor::dense::DenseTensor;
use ratucker_tensor::gram::gram;
use ratucker_tensor::matrix::Matrix;
use ratucker_tensor::scalar::Scalar;
use ratucker_tensor::ttm::{ttm, Transpose};

/// Truncation rule for the Gram+EVD route.
#[derive(Clone, Copy, Debug)]
pub enum Truncation {
    /// Keep exactly `r` leading singular vectors (rank-specified).
    Rank(usize),
    /// Keep the smallest rank whose discarded squared singular-value mass
    /// is at most this threshold (error-specified; STHOSVD passes
    /// `ε²‖X‖²/d`).
    ErrorSq(f64),
}

/// Symmetric EVD with a Jacobi-SVD fallback, for Gram matrices.
///
/// The QL iteration can stall on pathological spectra; for a symmetric
/// positive semidefinite Gram matrix the one-sided Jacobi SVD computes
/// the same decomposition (singular values = eigenvalues, left singular
/// vectors = eigenvectors), slower but unconditionally convergent — so
/// [`EvdError::NoConvergence`] downgrades to a fallback instead of
/// failing the sweep.
///
/// # Panics
/// Panics on [`EvdError::NonFinite`]: no factorization can repair NaN/∞
/// input, which indicates corrupted data upstream (see the screening in
/// the distributed kernels).
pub fn robust_sym_evd<T: Scalar>(g: &Matrix<T>) -> SymEvd<T> {
    match try_sym_evd(g) {
        Ok(evd) => evd,
        Err(e @ EvdError::NonFinite) => panic!("{e}"),
        Err(EvdError::NoConvergence { .. }) => {
            let svd = ratucker_linalg::svd_jacobi(g);
            SymEvd {
                values: svd.sigma,
                vectors: svd.u,
            }
        }
    }
}

/// LLSV via Gram + EVD. Returns `(U, kept_rank)`.
pub fn llsv_gram_evd<T: Scalar>(
    y: &DenseTensor<T>,
    mode: usize,
    trunc: Truncation,
    timings: &mut Timings,
) -> Matrix<T> {
    let g = timings.time(Phase::Gram, || gram(y, mode));
    let evd = timings.time(Phase::Evd, || robust_sym_evd(&g));
    let r = match trunc {
        Truncation::Rank(r) => r.min(evd.values.len()),
        Truncation::ErrorSq(t) => rank_for_error(&evd.values, t),
    };
    evd.vectors.leading_cols(r)
}

/// LLSV via subspace iteration (Alg. 5): `u_prev` is the factor from the
/// previous HOOI iteration (its column count fixes the output rank).
///
/// The paper performs a single step ("we choose to do only a single
/// subspace iteration because we use an accurate initialization … and
/// because high accuracy of a HOOI subiteration is less of a priority");
/// `steps > 1` repeats the computation to improve subiteration accuracy,
/// the extension the paper notes "could be repeated".
pub fn llsv_subspace_iter<T: Scalar>(
    y: &DenseTensor<T>,
    mode: usize,
    u_prev: &Matrix<T>,
    steps: usize,
    timings: &mut Timings,
) -> Matrix<T> {
    assert!(steps >= 1, "subspace iteration needs at least one step");
    assert_eq!(
        u_prev.rows(),
        y.dim(mode),
        "previous factor rows must match the mode extent"
    );
    let mut u = u_prev.clone();
    for _ in 0..steps {
        // G = Uᵀ A as the TTM Y ×_mode Uᵀ (line 2). Charged to the
        // Contract phase: both multiplies of Alg. 5 belong to the "SI"
        // cost row of Table 1 (4d·n·r^d together), distinct from the
        // multi-TTM phase.
        let g_core = timings.time(Phase::Contract, || ttm(y, mode, &u, Transpose::Yes));
        // Z = A Gᵀ as the all-but-one contraction (line 3).
        let z = timings.time(Phase::Contract, || contract_all_but(y, &g_core, mode));
        // QRCP(Z) (line 4): orthonormalize and order columns by importance.
        let f = timings.time(Phase::Qr, || qrcp(&z));
        u = f.q;
    }
    u
}

/// LLSV via LQ + SVD (the numerically accurate alternative of Li et
/// al. [18] that §2.1 lists for Alg. 1 line 4): factor `Y_(j)ᵀ = Q·R`
/// (so `Y_(j) = L·Qᵀ` with `L = Rᵀ`), then take the left singular vectors
/// of the small `n_j × n_j` triangular factor. Unlike the Gram route this
/// never squares the condition number, at the price of a tall QR (and an
/// explicit unfolding copy — this implementation targets accuracy
/// studies, not the performance path).
pub fn llsv_lq_svd<T: Scalar>(
    y: &DenseTensor<T>,
    mode: usize,
    trunc: Truncation,
    timings: &mut Timings,
) -> Matrix<T> {
    let unf_t = timings.time(Phase::Other, || {
        ratucker_tensor::unfold(y, mode).transpose()
    });
    let f = timings.time(Phase::Qr, || ratucker_linalg::qr(&unf_t));
    let l = f.r.transpose(); // n_j × n_j (lower triangular)
    let svd = timings.time(Phase::Evd, || ratucker_linalg::svd_jacobi(&l));
    let r = match trunc {
        Truncation::Rank(r) => r.min(svd.sigma.len()),
        Truncation::ErrorSq(t) => {
            let sq: Vec<T> = svd.sigma.iter().map(|&s| s * s).collect();
            rank_for_error(&sq, t)
        }
    };
    svd.u.leading_cols(r)
}

/// LLSV via the randomized range finder (the [20, 21] alternative the
/// paper describes for STHOSVD's line 4): sketch the unfolding with a
/// Gaussian test tensor, `Z = Y_(j) Ωᵀ`, and orthonormalize with QRCP.
/// Returns the leading `rank` columns; `oversample` extra sketch columns
/// improve subspace capture (5–10 is customary).
pub fn llsv_randomized<T: Scalar, R: rand::Rng + ?Sized>(
    y: &DenseTensor<T>,
    mode: usize,
    rank: usize,
    oversample: usize,
    rng: &mut R,
    timings: &mut Timings,
) -> Matrix<T> {
    let l = (rank + oversample).min(y.dim(mode));
    // The sketch is a Gaussian tensor with mode-`mode` extent l; the
    // product Y_(j) Ωᵀ is exactly the all-but-one contraction kernel.
    let omega: DenseTensor<T> =
        ratucker_tensor::random::normal_tensor(y.shape().with_dim(mode, l), rng);
    let z = timings.time(Phase::Contract, || contract_all_but(y, &omega, mode));
    let f = timings.time(Phase::Qr, || qrcp(&z));
    f.q.leading_cols(rank.min(f.q.cols()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ratucker_tensor::random::random_orthonormal;

    /// A 3-way tensor with a known mode-0 subspace of dimension 2.
    fn structured_tensor(seed: u64) -> (DenseTensor<f64>, Matrix<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u: Matrix<f64> = random_orthonormal(8, 2, &mut rng);
        let core: DenseTensor<f64> = ratucker_tensor::random::normal_tensor([2, 5, 4], &mut rng);
        let x = ttm(&core, 0, &u, Transpose::No);
        (x, u)
    }

    fn subspace_distance(a: &Matrix<f64>, b: &Matrix<f64>) -> f64 {
        // ‖A Aᵀ − B Bᵀ‖_max for orthonormal A, B of equal rank.
        let pa = a.matmul(&a.transpose());
        let pb = b.matmul(&b.transpose());
        pa.max_abs_diff(&pb)
    }

    #[test]
    fn robust_evd_agrees_with_plain_evd() {
        let mut rng = StdRng::seed_from_u64(40);
        let b: Matrix<f64> = ratucker_tensor::random::normal_matrix(7, 7, &mut rng);
        let g = b.matmul(&b.transpose()); // symmetric PSD
        let plain = ratucker_linalg::sym_evd(&g);
        let robust = robust_sym_evd(&g);
        assert_eq!(robust.values, plain.values);
        assert_eq!(robust.vectors.max_abs_diff(&plain.vectors), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn robust_evd_rejects_non_finite_gram() {
        let mut g = Matrix::<f64>::identity(3);
        g[(1, 1)] = f64::NAN;
        let _ = robust_sym_evd(&g);
    }

    #[test]
    fn jacobi_fallback_matches_ql_on_gram_matrices() {
        // Exercise the fallback arm directly: for PSD Gram matrices the
        // Jacobi SVD must reproduce the QL eigendecomposition.
        let mut rng = StdRng::seed_from_u64(41);
        let b: Matrix<f64> = ratucker_tensor::random::normal_matrix(6, 4, &mut rng);
        let g = b.transpose().matmul(&b);
        let ql = ratucker_linalg::sym_evd(&g);
        let svd = ratucker_linalg::svd_jacobi(&g);
        for (a, b) in svd.sigma.iter().zip(&ql.values) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
        // Same subspace per eigenvector (sign may flip).
        for j in 0..4 {
            let dot: f64 = svd
                .u
                .col(j)
                .iter()
                .zip(ql.vectors.col(j))
                .map(|(x, y)| x * y)
                .sum();
            assert!(dot.abs() > 1.0 - 1e-8, "column {j}: |dot| = {}", dot.abs());
        }
    }

    #[test]
    fn gram_evd_recovers_exact_subspace() {
        let (x, u_true) = structured_tensor(5);
        let mut t = Timings::new();
        let u = llsv_gram_evd(&x, 0, Truncation::Rank(2), &mut t);
        assert_eq!(u.cols(), 2);
        assert!(u.orthonormality_defect() < 1e-12);
        assert!(subspace_distance(&u, &u_true) < 1e-10);
        assert!(t.flops(Phase::Gram) > 0);
        assert!(t.flops(Phase::Evd) > 0);
    }

    #[test]
    fn error_specified_rank_selection() {
        let (x, _) = structured_tensor(6);
        let mut t = Timings::new();
        // Tiny error budget (above round-off, below the spectrum) → the
        // numerical rank of the exactly-rank-2 unfolding.
        let u = llsv_gram_evd(&x, 0, Truncation::ErrorSq(1e-9), &mut t);
        assert_eq!(u.cols(), 2);
        // Huge budget → rank 1.
        let u1 = llsv_gram_evd(&x, 0, Truncation::ErrorSq(1e12), &mut t);
        assert_eq!(u1.cols(), 1);
    }

    #[test]
    fn subspace_iter_recovers_exact_subspace_from_random_start() {
        let (x, u_true) = structured_tensor(7);
        let mut rng = StdRng::seed_from_u64(99);
        let u0: Matrix<f64> = random_orthonormal(8, 2, &mut rng);
        let mut t = Timings::new();
        // With an exactly rank-2 unfolding, a single subspace iteration
        // lands in the true subspace (A Aᵀ applied to any full-rank start
        // spans the range of A).
        let u = llsv_subspace_iter(&x, 0, &u0, 1, &mut t);
        assert_eq!(u.cols(), 2);
        assert!(u.orthonormality_defect() < 1e-12);
        assert!(subspace_distance(&u, &u_true) < 1e-9);
        assert!(t.flops(Phase::Contract) > 0);
        assert!(t.flops(Phase::Qr) > 0);
    }

    #[test]
    fn subspace_iter_matches_gram_route_on_dominant_subspace() {
        // With noise, one subspace iteration from the Gram answer must stay
        // on the Gram answer (it is an invariant subspace).
        let (mut x, _) = structured_tensor(8);
        let mut rng = StdRng::seed_from_u64(1);
        let noise: DenseTensor<f64> =
            ratucker_tensor::random::normal_tensor(x.shape().clone(), &mut rng);
        x.add_scaled(1e-6, &noise);
        let mut t = Timings::new();
        let u_gram = llsv_gram_evd(&x, 0, Truncation::Rank(2), &mut t);
        let u_si = llsv_subspace_iter(&x, 0, &u_gram, 1, &mut t);
        assert!(subspace_distance(&u_gram, &u_si) < 1e-4);
    }

    #[test]
    fn works_on_middle_and_last_modes() {
        let mut rng = StdRng::seed_from_u64(3);
        let u1: Matrix<f64> = random_orthonormal(6, 2, &mut rng);
        let core: DenseTensor<f64> = ratucker_tensor::random::normal_tensor([4, 2, 5], &mut rng);
        let x = ttm(&core, 1, &u1, Transpose::No);
        let mut t = Timings::new();
        let got = llsv_gram_evd(&x, 1, Truncation::Rank(2), &mut t);
        assert!(subspace_distance(&got, &u1) < 1e-10);
        let got_si = llsv_subspace_iter(&x, 1, &got, 1, &mut t);
        assert!(subspace_distance(&got_si, &u1) < 1e-10);
    }

    #[test]
    fn multi_step_subspace_iteration_improves_noisy_start() {
        // Gapped spectrum with noise: more SI steps from a random start
        // must land at least as close to the dominant subspace.
        let (mut x, u_true) = structured_tensor(9);
        let mut rng = StdRng::seed_from_u64(2);
        let noise: DenseTensor<f64> =
            ratucker_tensor::random::normal_tensor(x.shape().clone(), &mut rng);
        x.add_scaled(0.05, &noise);
        let u0: Matrix<f64> = random_orthonormal(8, 2, &mut rng);
        let mut t = Timings::new();
        let one = llsv_subspace_iter(&x, 0, &u0, 1, &mut t);
        let many = llsv_subspace_iter(&x, 0, &u0, 4, &mut t);
        let d1 = subspace_distance(&one, &u_true);
        let d4 = subspace_distance(&many, &u_true);
        // With a wide spectral gap one step already converges to the
        // noise floor; extra steps must stay there (never diverge).
        assert!(d4 <= d1 + 1e-3, "1 step: {d1}, 4 steps: {d4}");
        assert!(d4 < 0.05, "4 steps should converge tightly: {d4}");
    }

    #[test]
    fn lq_svd_matches_gram_route() {
        let (mut x, u_true) = structured_tensor(12);
        let mut rng = StdRng::seed_from_u64(5);
        let noise: DenseTensor<f64> =
            ratucker_tensor::random::normal_tensor(x.shape().clone(), &mut rng);
        x.add_scaled(1e-3, &noise);
        let mut t = Timings::new();
        let u_gram = llsv_gram_evd(&x, 0, Truncation::Rank(2), &mut t);
        let u_lq = llsv_lq_svd(&x, 0, Truncation::Rank(2), &mut t);
        assert!(u_lq.orthonormality_defect() < 1e-10);
        assert!(subspace_distance(&u_lq, &u_gram) < 1e-5);
        assert!(subspace_distance(&u_lq, &u_true) < 1e-2);
    }

    #[test]
    fn lq_svd_is_more_accurate_on_ill_conditioned_unfoldings() {
        // Columns scaled across ~8 decades: the Gram route squares the
        // condition number; LQ+SVD must still produce an orthonormal
        // basis capturing the dominant direction.
        let x = DenseTensor::from_fn([6, 30], |idx| {
            let scale = 10f64.powi(-((idx[1] % 9) as i32));
            ((idx[0] * 7 + idx[1] + 1) as f64).sin() * scale
        });
        let mut t = Timings::new();
        let u = llsv_lq_svd(&x, 0, Truncation::Rank(3), &mut t);
        assert_eq!(u.cols(), 3);
        assert!(u.orthonormality_defect() < 1e-12);
    }

    #[test]
    fn lq_svd_error_specified_selection() {
        let (x, _) = structured_tensor(13);
        let mut t = Timings::new();
        let u = llsv_lq_svd(&x, 0, Truncation::ErrorSq(1e-9), &mut t);
        assert_eq!(u.cols(), 2);
        let u1 = llsv_lq_svd(&x, 0, Truncation::ErrorSq(1e12), &mut t);
        assert_eq!(u1.cols(), 1);
    }

    #[test]
    fn randomized_range_finder_captures_exact_subspace() {
        let (x, u_true) = structured_tensor(10);
        let mut rng = StdRng::seed_from_u64(3);
        let mut t = Timings::new();
        let u = llsv_randomized(&x, 0, 2, 4, &mut rng, &mut t);
        assert_eq!(u.cols(), 2);
        assert!(u.orthonormality_defect() < 1e-12);
        assert!(subspace_distance(&u, &u_true) < 1e-9);
    }

    #[test]
    fn randomized_sketch_width_is_capped_by_dim() {
        let (x, _) = structured_tensor(11);
        let mut rng = StdRng::seed_from_u64(4);
        let mut t = Timings::new();
        // rank + oversample far beyond n_0 = 8 must be clamped.
        let u = llsv_randomized(&x, 0, 6, 100, &mut rng, &mut t);
        assert_eq!(u.cols(), 6);
        assert!(u.orthonormality_defect() < 1e-10);
    }
}
