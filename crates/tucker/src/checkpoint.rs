//! Checkpoint/restart for the rank-adaptive solvers.
//!
//! A long RA-HOSI-DT run is a sequence of sweeps; everything the next
//! sweep needs is the state *entering* it: the sweep index, the current
//! rank vector, the (replicated) factor matrices, `‖X‖²`, and the run's
//! configuration fingerprint (seed, ε, tensor dimensions). This module
//! snapshots exactly that state to a small versioned binary file
//! (`RTCK`, a sibling of the `.rtt` tensor format) so a crashed run can
//! resume mid-decomposition and reproduce the fault-free result bit for
//! bit.
//!
//! Bit-exact resume relies on one more ingredient: the random columns
//! appended when ranks grow must not depend on *how many* sweeps ran
//! before. The growth RNG is therefore derived per sweep
//! ([`expansion_rng`]) from `(seed, sweep index)` alone, so a resumed
//! sweep draws exactly the columns the uninterrupted run would have.
//!
//! In the distributed driver the factors are replicated, so a single
//! checkpoint file serves every rank: rank 0 writes it, and on resume
//! each rank reads the same file (writes are atomic via a temp-file
//! rename, so a reader never observes a partial checkpoint).

use rand::rngs::StdRng;
use rand::SeedableRng;
use ratucker_tensor::io::IoScalar;
use ratucker_tensor::matrix::Matrix;
use ratucker_tensor::scalar::Scalar;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Magic bytes of the checkpoint format ("ratucker checkpoint").
const MAGIC: &[u8; 4] = b"RTCK";
/// Current format version. Version 2 appends a trailing FNV-1a checksum
/// over the entire preceding payload, so *any* byte-wise corruption —
/// header or factor data — surfaces as a typed load error instead of a
/// silently wrong resume.
const VERSION: u32 = 2;

/// FNV-1a 64-bit hash of `bytes` (the integrity checksum appended to
/// every checkpoint).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The growth RNG for a given sweep.
///
/// Derived from `(seed, sweep)` only — never from the run's history — so
/// sequential, distributed, and resumed runs that reach the same sweep
/// with the same seed draw identical expansion columns.
pub fn expansion_rng(seed: u64, sweep: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ 0x5151_5151 ^ (sweep as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// When and where the rank-adaptive drivers write checkpoints.
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// Directory holding `sweep_NNNN.rtck` files (created on first save).
    pub dir: PathBuf,
    /// Save the state entering every `every`-th sweep (1 ⇒ every sweep).
    pub every: usize,
    /// Resume from the latest checkpoint in `dir` if one exists.
    pub resume: bool,
}

impl CheckpointPolicy {
    /// A policy saving every sweep into `dir`, without resuming.
    pub fn new(dir: impl Into<PathBuf>) -> CheckpointPolicy {
        CheckpointPolicy {
            dir: dir.into(),
            every: 1,
            resume: false,
        }
    }

    /// Builder: save only every `n`-th sweep (`n` is clamped to ≥ 1).
    pub fn every(mut self, n: usize) -> Self {
        self.every = n.max(1);
        self
    }

    /// Builder: resume from the latest checkpoint if present.
    pub fn resuming(mut self) -> Self {
        self.resume = true;
        self
    }

    /// Whether the state entering `sweep` should be saved.
    pub fn should_save(&self, sweep: usize) -> bool {
        sweep.is_multiple_of(self.every)
    }

    /// The checkpoint path for a sweep index.
    pub fn path_for(&self, sweep: usize) -> PathBuf {
        self.dir.join(format!("sweep_{sweep:04}.rtck"))
    }

    /// The latest (highest-sweep) checkpoint file in the directory, if
    /// the directory exists and holds any.
    pub fn latest_path(&self) -> Option<PathBuf> {
        let entries = fs::read_dir(&self.dir).ok()?;
        let mut best: Option<(usize, PathBuf)> = None;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let Some(stem) = name
                .strip_prefix("sweep_")
                .and_then(|s| s.strip_suffix(".rtck"))
            else {
                continue;
            };
            let Ok(sweep) = stem.parse::<usize>() else {
                continue;
            };
            if best.as_ref().is_none_or(|(b, _)| sweep > *b) {
                best = Some((sweep, entry.path()));
            }
        }
        best.map(|(_, p)| p)
    }
}

/// The state entering one rank-adaptive sweep.
#[derive(Clone, Debug)]
pub struct Checkpoint<T: Scalar> {
    /// Index of the sweep this state enters (0-based).
    pub sweep: usize,
    /// The run's RNG seed (`RaConfig::inner.seed`).
    pub seed: u64,
    /// The run's relative-error tolerance ε.
    pub eps: f64,
    /// Global squared norm `‖X‖²` of the input tensor.
    pub x_norm_sq: f64,
    /// Global tensor dimensions.
    pub dims: Vec<usize>,
    /// Current Tucker ranks.
    pub ranks: Vec<usize>,
    /// Current (replicated) factor matrices, one per mode.
    pub factors: Vec<Matrix<T>>,
}

impl<T: Scalar> Checkpoint<T> {
    /// Checks that this checkpoint belongs to a run with the given
    /// configuration fingerprint; returns a human-readable mismatch
    /// description otherwise.
    pub fn validate(
        &self,
        seed: u64,
        eps: f64,
        dims: &[usize],
        x_norm_sq: f64,
    ) -> Result<(), String> {
        if self.seed != seed {
            return Err(format!(
                "checkpoint seed {} != run seed {}",
                self.seed, seed
            ));
        }
        if self.eps != eps {
            return Err(format!("checkpoint eps {} != run eps {}", self.eps, eps));
        }
        if self.dims != dims {
            return Err(format!(
                "checkpoint dims {:?} != tensor dims {:?}",
                self.dims, dims
            ));
        }
        // ‖X‖² is a summation whose rounding depends on the reduction
        // order (sequential vs. grid), so compare with a tolerance.
        let scale = x_norm_sq.abs().max(1.0);
        if (self.x_norm_sq - x_norm_sq).abs() > 1e-6 * scale {
            return Err(format!(
                "checkpoint ‖X‖² = {} but the input tensor has {}",
                self.x_norm_sq, x_norm_sq
            ));
        }
        if self.ranks.len() != self.dims.len() || self.factors.len() != self.dims.len() {
            return Err("checkpoint rank/factor count does not match its order".into());
        }
        Ok(())
    }
}

impl<T: IoScalar> Checkpoint<T> {
    /// Serializes to the `RTCK` byte layout.
    fn encode(&self) -> Vec<u8> {
        let d = self.dims.len();
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.push(T::ELEM.size() as u8);
        buf.push(d as u8);
        buf.extend_from_slice(&self.seed.to_le_bytes());
        buf.extend_from_slice(&(self.sweep as u64).to_le_bytes());
        buf.extend_from_slice(&self.eps.to_le_bytes());
        buf.extend_from_slice(&self.x_norm_sq.to_le_bytes());
        for &n in &self.dims {
            buf.extend_from_slice(&(n as u64).to_le_bytes());
        }
        for &r in &self.ranks {
            buf.extend_from_slice(&(r as u64).to_le_bytes());
        }
        for u in &self.factors {
            buf.extend_from_slice(&(u.rows() as u64).to_le_bytes());
            buf.extend_from_slice(&(u.cols() as u64).to_le_bytes());
            for &x in u.as_slice() {
                x.write_le(&mut buf);
            }
        }
        let checksum = fnv1a(&buf);
        buf.extend_from_slice(&checksum.to_le_bytes());
        buf
    }

    /// Writes the checkpoint atomically (temp file + rename), creating
    /// the parent directory if needed.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let tmp = path.with_extension("rtck.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&self.encode())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)
    }

    /// Reads a checkpoint back.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Checkpoint<T>> {
        let bytes = fs::read(path)?;
        let mut cur = Cursor {
            bytes: &bytes,
            pos: 0,
        };
        if cur.take(4)? != MAGIC {
            return Err(bad("not an RTCK checkpoint file"));
        }
        let version = u32::from_le_bytes(cur.take(4)?.try_into().unwrap());
        if version != VERSION {
            return Err(bad(&format!("unsupported checkpoint version {version}")));
        }
        // Verify the trailing checksum before trusting any length field:
        // a corrupted size could otherwise send the parser far off course.
        if bytes.len() < 16 {
            return Err(bad("truncated checkpoint file"));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().unwrap());
        if fnv1a(body) != stored {
            return Err(bad("checkpoint checksum mismatch (file corrupted)"));
        }
        let elem = cur.take(1)?[0];
        if elem as usize != T::ELEM.size() {
            return Err(bad(&format!(
                "checkpoint stores {elem}-byte elements, requested {}-byte",
                T::ELEM.size()
            )));
        }
        let d = cur.take(1)?[0] as usize;
        if d == 0 {
            return Err(bad("zero-order checkpoint"));
        }
        let seed = cur.u64()?;
        let sweep = cur.u64()? as usize;
        let eps = f64::from_le_bytes(cur.take(8)?.try_into().unwrap());
        let x_norm_sq = f64::from_le_bytes(cur.take(8)?.try_into().unwrap());
        let dims: Vec<usize> = (0..d)
            .map(|_| cur.u64().map(|v| v as usize))
            .collect::<Result<_, _>>()?;
        let ranks: Vec<usize> = (0..d)
            .map(|_| cur.u64().map(|v| v as usize))
            .collect::<Result<_, _>>()?;
        let es = T::ELEM.size();
        let mut factors = Vec::with_capacity(d);
        for k in 0..d {
            let rows = cur.u64()? as usize;
            let cols = cur.u64()? as usize;
            // Checked arithmetic: a corrupt (but checksum-colliding)
            // length field must not overflow into a short read or panic.
            let n = rows
                .checked_mul(cols)
                .and_then(|n| n.checked_mul(es))
                .ok_or_else(|| bad("factor size overflows"))?;
            if rows != dims[k] || cols != ranks[k] {
                return Err(bad(&format!(
                    "factor {k} is {rows}x{cols} but the header promises {}x{}",
                    dims[k], ranks[k]
                )));
            }
            let data = cur.take(n)?;
            let elems: Vec<T> = data.chunks_exact(es).map(T::read_le).collect();
            factors.push(Matrix::from_vec(rows, cols, elems));
        }
        if cur.pos != body.len() {
            return Err(bad("trailing bytes after checkpoint payload"));
        }
        Ok(Checkpoint {
            sweep,
            seed,
            eps,
            x_norm_sq,
            dims,
            ranks,
            factors,
        })
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated checkpoint file",
            ));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// Hook pair the rank-adaptive loops call around each sweep; the no-op
/// implementation keeps the plain entry points free of any I/O bound.
pub(crate) trait RaCheckpointer<T: Scalar> {
    /// Loads the state to resume from, if any.
    fn resume(
        &mut self,
        seed: u64,
        eps: f64,
        dims: &[usize],
        x_norm_sq: f64,
    ) -> Option<Checkpoint<T>>;
    /// Persists the state entering a sweep.
    fn save(&mut self, ck: &Checkpoint<T>);
}

/// Checkpointer that never saves or resumes.
pub(crate) struct NoCheckpoint;

impl<T: Scalar> RaCheckpointer<T> for NoCheckpoint {
    fn resume(&mut self, _: u64, _: f64, _: &[usize], _: f64) -> Option<Checkpoint<T>> {
        None
    }
    fn save(&mut self, _: &Checkpoint<T>) {}
}

/// File-backed checkpointer driven by a [`CheckpointPolicy`].
///
/// `write` gates the save side: in the distributed driver only grid rank
/// 0 writes (the state is replicated), while every rank resumes.
pub(crate) struct FileCheckpointer<'a> {
    pub policy: &'a CheckpointPolicy,
    pub write: bool,
}

impl<T: IoScalar> RaCheckpointer<T> for FileCheckpointer<'_> {
    fn resume(
        &mut self,
        seed: u64,
        eps: f64,
        dims: &[usize],
        x_norm_sq: f64,
    ) -> Option<Checkpoint<T>> {
        if !self.policy.resume {
            return None;
        }
        let path = self.policy.latest_path()?;
        let ck = Checkpoint::<T>::load(&path)
            .unwrap_or_else(|e| panic!("failed to load checkpoint {}: {e}", path.display()));
        if let Err(msg) = ck.validate(seed, eps, dims, x_norm_sq) {
            panic!("refusing to resume from {}: {msg}", path.display());
        }
        Some(ck)
    }

    fn save(&mut self, ck: &Checkpoint<T>) {
        if !self.write || !self.policy.should_save(ck.sweep) {
            return;
        }
        let path = self.policy.path_for(ck.sweep);
        ck.save(&path)
            .unwrap_or_else(|e| panic!("failed to write checkpoint {}: {e}", path.display()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ratucker_ckpt_test_{}_{name}", std::process::id()));
        p
    }

    fn sample() -> Checkpoint<f64> {
        Checkpoint {
            sweep: 2,
            seed: 42,
            eps: 0.1,
            x_norm_sq: 123.456,
            dims: vec![6, 5, 4],
            ranks: vec![3, 2, 2],
            factors: vec![
                Matrix::from_fn(6, 3, |i, j| (i * 10 + j) as f64),
                Matrix::from_fn(5, 2, |i, j| (i as f64) - (j as f64) * 0.5),
                Matrix::from_fn(4, 2, |i, j| ((i + j) as f64).sin()),
            ],
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let dir = tmp_dir("roundtrip");
        let ck = sample();
        let path = dir.join("sweep_0002.rtck");
        ck.save(&path).unwrap();
        let back = Checkpoint::<f64>::load(&path).unwrap();
        assert_eq!(back.sweep, 2);
        assert_eq!(back.seed, 42);
        assert_eq!(back.eps, 0.1);
        assert_eq!(back.x_norm_sq, 123.456);
        assert_eq!(back.dims, vec![6, 5, 4]);
        assert_eq!(back.ranks, vec![3, 2, 2]);
        for (a, b) in back.factors.iter().zip(&ck.factors) {
            assert_eq!(a.max_abs_diff(b), 0.0);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_precision_is_an_error() {
        let dir = tmp_dir("precision");
        let path = dir.join("sweep_0000.rtck");
        sample().save(&path).unwrap();
        assert!(Checkpoint::<f32>::load(&path).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_and_truncation_are_errors() {
        let dir = tmp_dir("garbage");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep_0000.rtck");
        fs::write(&path, b"definitely not a checkpoint").unwrap();
        assert!(Checkpoint::<f64>::load(&path).is_err());
        // A truncated real checkpoint must also fail cleanly.
        let full = sample().encode();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(Checkpoint::<f64>::load(&path).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bytewise_corruption_is_a_typed_error_never_a_panic() {
        // Flip one byte at every offset of a valid checkpoint. Each
        // corruption must surface as a typed io::Error from load —
        // never a panic, never a silently wrong checkpoint (the trailing
        // FNV-1a checksum covers every byte, so single flips cannot
        // slip through).
        let dir = tmp_dir("corruption");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep_0002.rtck");
        let bytes = sample().encode();
        for pos in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0xA5;
            fs::write(&path, &corrupt).unwrap();
            let outcome = std::panic::catch_unwind(|| Checkpoint::<f64>::load(&path));
            let loaded = outcome.unwrap_or_else(|_| panic!("load panicked at offset {pos}"));
            assert!(
                loaded.is_err(),
                "corruption at offset {pos} loaded successfully"
            );
        }
        // Truncation at every length is likewise a clean error.
        for len in 0..bytes.len() {
            fs::write(&path, &bytes[..len]).unwrap();
            assert!(
                Checkpoint::<f64>::load(&path).is_err(),
                "truncation to {len} bytes loaded successfully"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn absurd_length_field_cannot_overflow() {
        // A length field of u64::MAX with a *recomputed* checksum (so the
        // integrity check passes) must die in checked arithmetic, not in
        // a wrapping multiply or capacity panic. Factor 0's row count
        // lives right after the header: magic(4) + version(4) + elem(1)
        // + d(1) + seed(8) + sweep(8) + eps(8) + ‖X‖²(8) + dims(3×8)
        // + ranks(3×8) = 90.
        let dir = tmp_dir("overflow");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep_0002.rtck");
        let mut bytes = sample().encode();
        bytes[90..98].copy_from_slice(&u64::MAX.to_le_bytes());
        let body_len = bytes.len() - 8;
        let checksum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&checksum.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        let outcome = std::panic::catch_unwind(|| Checkpoint::<f64>::load(&path));
        assert!(outcome.expect("load must not panic").is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn latest_path_picks_highest_sweep() {
        let dir = tmp_dir("latest");
        let policy = CheckpointPolicy::new(&dir);
        assert!(policy.latest_path().is_none());
        for sweep in [0, 3, 1] {
            let mut ck = sample();
            ck.sweep = sweep;
            ck.save(policy.path_for(sweep)).unwrap();
        }
        // A stray non-checkpoint file must be ignored.
        fs::write(dir.join("notes.txt"), b"hi").unwrap();
        let latest = policy.latest_path().unwrap();
        assert!(latest.ends_with("sweep_0003.rtck"), "{latest:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn validate_rejects_mismatches() {
        let ck = sample();
        assert!(ck.validate(42, 0.1, &[6, 5, 4], 123.456).is_ok());
        assert!(ck.validate(43, 0.1, &[6, 5, 4], 123.456).is_err());
        assert!(ck.validate(42, 0.2, &[6, 5, 4], 123.456).is_err());
        assert!(ck.validate(42, 0.1, &[6, 5, 5], 123.456).is_err());
        assert!(ck.validate(42, 0.1, &[6, 5, 4], 999.0).is_err());
        // ‖X‖² comparison tolerates reduction-order rounding.
        assert!(ck.validate(42, 0.1, &[6, 5, 4], 123.456 + 1e-9).is_ok());
    }

    #[test]
    fn policy_gating() {
        let p = CheckpointPolicy::new("x").every(2);
        assert!(p.should_save(0));
        assert!(!p.should_save(1));
        assert!(p.should_save(2));
        // every(0) clamps to 1.
        assert_eq!(CheckpointPolicy::new("x").every(0).every, 1);
    }

    #[test]
    fn expansion_rng_is_sweep_local() {
        use rand::RngCore;
        let a = expansion_rng(7, 0).next_u64();
        let b = expansion_rng(7, 1).next_u64();
        let a2 = expansion_rng(7, 0).next_u64();
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }
}
