//! Rank-adaptive HOOI (Alg. 3: RA-HOSI-DT and friends).
//!
//! Solves the *error-specified* Tucker problem with HOOI: sweep, check
//! `‖G‖² ≥ (1−ε²)‖X‖²`; when satisfied, run the core analysis (eq. 3) and
//! truncate core and factors to the storage-optimal leading subtensor;
//! otherwise grow every rank by the factor α (appending random orthonormal
//! columns to the factors) and sweep again. Any TTM/LLSV strategy pair can
//! back the sweep; the paper's flagship is the dimension-tree + subspace-
//! iteration combination (RA-HOSI-DT).

use crate::checkpoint::{
    expansion_rng, Checkpoint, CheckpointPolicy, FileCheckpointer, NoCheckpoint, RaCheckpointer,
};
use crate::core_analysis::analyze_core;
use crate::hooi::{run_sweep, HooiConfig};
use crate::timings::{Phase, Timings};
use crate::tucker_tensor::TuckerTensor;
use rand::rngs::StdRng;
use ratucker_tensor::dense::DenseTensor;
use ratucker_tensor::io::IoScalar;
use ratucker_tensor::matrix::Matrix;
use ratucker_tensor::random::{normal_matrix, orthonormalize_columns};
use ratucker_tensor::scalar::Scalar;

/// Configuration of a rank-adaptive run.
#[derive(Clone, Debug)]
pub struct RaConfig {
    /// Relative error tolerance ε.
    pub eps: f64,
    /// Rank growth factor α (the paper typically uses 1.5 or 2).
    pub alpha: f64,
    /// Initial rank estimate (perfect / over / under in the experiments).
    pub initial_ranks: Vec<usize>,
    /// Maximum number of sweeps (the paper caps at 3).
    pub max_iters: usize,
    /// Stop at the first sweep that satisfies the tolerance.
    pub stop_on_threshold: bool,
    /// The sweep engine (TTM/LLSV strategies, seed).
    pub inner: HooiConfig,
}

impl RaConfig {
    /// RA-HOSI-DT with the given tolerance and starting ranks — the
    /// paper's flagship configuration.
    pub fn ra_hosi_dt(eps: f64, initial_ranks: &[usize]) -> RaConfig {
        RaConfig {
            eps,
            alpha: 1.5,
            initial_ranks: initial_ranks.to_vec(),
            max_iters: 3,
            stop_on_threshold: false,
            inner: HooiConfig::hosi_dt(),
        }
    }

    /// Builder: growth factor.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Builder: sweep cap.
    pub fn with_max_iters(mut self, it: usize) -> Self {
        self.max_iters = it;
        self
    }

    /// Builder: stop at first satisfying sweep.
    pub fn stopping_on_threshold(mut self) -> Self {
        self.stop_on_threshold = true;
        self
    }

    /// Builder: RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.inner.seed = seed;
        self
    }

    /// Checks the configuration against the tensor dimensions, returning
    /// a description of the first infeasible state found.
    ///
    /// The solvers call this before touching any data so that a bad
    /// configuration surfaces as one clear message at entry instead of an
    /// obscure mid-sweep panic or an infinite growth stall (e.g. a
    /// non-finite α would never enlarge the ranks).
    pub fn validate(&self, dims: &[usize]) -> Result<(), String> {
        if !self.eps.is_finite() || self.eps <= 0.0 || self.eps >= 1.0 {
            return Err(format!(
                "tolerance eps = {} must be a finite value in (0, 1)",
                self.eps
            ));
        }
        if !self.alpha.is_finite() || self.alpha <= 1.0 {
            return Err(format!(
                "growth factor alpha = {} must be finite and > 1",
                self.alpha
            ));
        }
        if self.max_iters == 0 {
            return Err("max_iters = 0: at least one sweep is required".to_string());
        }
        if self.initial_ranks.len() != dims.len() {
            return Err(format!(
                "initial ranks have {} entries but the tensor has {} modes",
                self.initial_ranks.len(),
                dims.len()
            ));
        }
        if let Some(k) = self.initial_ranks.iter().position(|&r| r == 0) {
            return Err(format!(
                "initial rank for mode {k} is 0; ranks must be >= 1"
            ));
        }
        if let Some(k) = dims.iter().position(|&n| n == 0) {
            return Err(format!("tensor dimension for mode {k} is 0"));
        }
        Ok(())
    }
}

/// One sweep of the rank-adaptive loop.
#[derive(Clone, Debug)]
pub struct RaIterInfo {
    /// Ranks the sweep ran at.
    pub ranks_in: Vec<usize>,
    /// Ranks after the post-sweep action (truncation or growth).
    pub ranks_out: Vec<usize>,
    /// Relative error *after* the post-sweep action.
    pub rel_error: f64,
    /// Whether `‖G‖² ≥ (1−ε²)‖X‖²` held at sweep end.
    pub met_threshold: bool,
    /// Whether the sweep ended with a core-analysis truncation.
    pub truncated: bool,
    /// Relative size of the decomposition after this sweep.
    pub relative_size: f64,
    /// Phase breakdown of the sweep.
    pub timings: Timings,
}

/// Result of a rank-adaptive run.
#[derive(Clone, Debug)]
pub struct RaResult<T: Scalar> {
    /// The final (truncated, if the threshold was met) decomposition.
    pub tucker: TuckerTensor<T>,
    /// Per-sweep history.
    pub iterations: Vec<RaIterInfo>,
    /// First sweep index (0-based) meeting the tolerance, if any.
    pub met_at: Option<usize>,
    /// Total phase breakdown.
    pub timings: Timings,
    /// Final relative error.
    pub rel_error: f64,
}

/// Grows a factor matrix from `r` to `r_new` columns by appending random
/// columns orthonormalized against the existing basis.
fn expand_factor<T: Scalar>(u: &Matrix<T>, r_new: usize, rng: &mut StdRng) -> Matrix<T> {
    let r_old = u.cols();
    debug_assert!(r_new > r_old);
    let extra = normal_matrix::<T, _>(u.rows(), r_new - r_old, rng);
    let mut ext = u.hcat(&extra);
    orthonormalize_columns(&mut ext, r_old);
    ext
}

/// Runs rank-adaptive HOOI (Alg. 3).
pub fn ra_hooi<T: Scalar>(x: &DenseTensor<T>, config: &RaConfig) -> RaResult<T> {
    ra_hooi_impl(x, config, &mut NoCheckpoint)
}

/// Runs rank-adaptive HOOI with checkpoint/restart.
///
/// The state entering each sweep (per `policy.every`) is written to
/// `policy.dir`; with `policy.resume` the run starts from the latest
/// checkpoint instead of sweep 0 and — because the growth RNG is derived
/// per sweep — produces the same decomposition bit for bit as an
/// uninterrupted run. `RaResult::iterations` covers only the sweeps the
/// resumed run actually executed (sweep indices stay absolute).
///
/// # Panics
/// Panics if a checkpoint exists but cannot be read, or does not match
/// this run's seed/ε/tensor (see [`Checkpoint::validate`]).
pub fn ra_hooi_checkpointed<T: IoScalar>(
    x: &DenseTensor<T>,
    config: &RaConfig,
    policy: &CheckpointPolicy,
) -> RaResult<T> {
    ra_hooi_impl(
        x,
        config,
        &mut FileCheckpointer {
            policy,
            write: true,
        },
    )
}

fn ra_hooi_impl<T: Scalar>(
    x: &DenseTensor<T>,
    config: &RaConfig,
    ckpt: &mut impl RaCheckpointer<T>,
) -> RaResult<T> {
    let dims: Vec<usize> = x.shape().dims().to_vec();
    if let Err(msg) = config.validate(&dims) {
        panic!("infeasible rank-adaptive configuration: {msg}");
    }
    let x_norm_sq = x.squared_norm_f64();
    let threshold = (1.0 - config.eps * config.eps) * x_norm_sq;

    let mut ranks: Vec<usize> = config
        .initial_ranks
        .iter()
        .zip(&dims)
        .map(|(&r, &n)| r.min(n).max(1))
        .collect();
    let mut factors = crate::hooi::random_init::<T>(&dims, &ranks, config.inner.seed);
    let mut start_sweep = 0;
    if let Some(ck) = ckpt.resume(config.inner.seed, config.eps, &dims, x_norm_sq) {
        assert!(
            ck.sweep < config.max_iters,
            "checkpoint is at sweep {} but this run caps at {} sweeps",
            ck.sweep,
            config.max_iters
        );
        start_sweep = ck.sweep;
        ranks = ck.ranks;
        factors = ck.factors;
    }

    let mut iterations: Vec<RaIterInfo> = Vec::new();
    let mut met_at = None;
    let mut total = Timings::new();
    let mut tucker: Option<TuckerTensor<T>> = None;

    for it in start_sweep..config.max_iters {
        ckpt.save(&Checkpoint {
            sweep: it,
            seed: config.inner.seed,
            eps: config.eps,
            x_norm_sq,
            dims: dims.clone(),
            ranks: ranks.clone(),
            factors: factors.clone(),
        });
        let mut t = Timings::new();
        let core = run_sweep(x, &mut factors, &ranks, &config.inner, &mut t);
        let core_norm_sq = core.squared_norm_f64();
        let met = core_norm_sq >= threshold;

        let ranks_in = ranks.clone();
        let (truncated, ranks_out, rel_error);
        if met {
            // Alg. 3 lines 6-7: optimal leading truncation via eq. (3).
            let analysis = t.time(Phase::CoreAnalysis, || {
                analyze_core(&core, &dims, x_norm_sq, config.eps)
            });
            let full = TuckerTensor::new(core, factors.clone());
            let chosen = match analysis {
                Some(a) => full.truncate(&a.ranks),
                // Rounding put ‖G‖² a hair above the threshold while every
                // prefix fell below: keep the full decomposition.
                None => full,
            };
            ranks = chosen.ranks();
            factors = chosen.factors.clone();
            ranks_out = ranks.clone();
            rel_error = chosen.rel_error_from_core(x_norm_sq);
            truncated = true;
            if met_at.is_none() {
                met_at = Some(it);
            }
            tucker = Some(chosen);
        } else {
            // Alg. 3 line 9: grow ranks by α, capped at the dimensions.
            let full = TuckerTensor::new(core, factors.clone());
            rel_error = full.rel_error_from_core(x_norm_sq);
            tucker = Some(full);
            let grown: Vec<usize> = ranks
                .iter()
                .zip(&dims)
                .map(|(&r, &n)| (((r as f64) * config.alpha).ceil() as usize).min(n))
                .collect();
            if grown != ranks {
                // The growth RNG is a pure function of (seed, sweep) so a
                // checkpoint-resumed run draws the same columns.
                let mut rng = expansion_rng(config.inner.seed, it);
                for (k, u) in factors.iter_mut().enumerate() {
                    if grown[k] > u.cols() {
                        *u = expand_factor(u, grown[k], &mut rng);
                    }
                }
                ranks = grown;
            }
            ranks_out = ranks.clone();
            truncated = false;
        }

        let relative_size = tucker.as_ref().unwrap().relative_size();
        total.merge(&t);
        iterations.push(RaIterInfo {
            ranks_in,
            ranks_out,
            rel_error,
            met_threshold: met,
            truncated,
            relative_size,
            timings: t,
        });
        if met && config.stop_on_threshold {
            break;
        }
    }

    let tucker = tucker.expect("max_iters must be at least 1");
    let rel_error = tucker.rel_error_from_core(x_norm_sq);
    RaResult {
        tucker,
        iterations,
        met_at,
        timings: total,
        rel_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticSpec;

    fn noisy_tensor(seed: u64) -> DenseTensor<f64> {
        SyntheticSpec::new(&[14, 12, 10], &[4, 3, 3], 0.02, seed).build()
    }

    #[test]
    fn validate_rejects_infeasible_configs() {
        let dims = [14usize, 12, 10];
        let good = RaConfig::ra_hosi_dt(0.1, &[4, 3, 3]);
        assert!(good.validate(&dims).is_ok());

        let bad_eps = RaConfig {
            eps: 0.0,
            ..good.clone()
        };
        assert!(bad_eps.validate(&dims).unwrap_err().contains("eps"));
        let nan_eps = RaConfig {
            eps: f64::NAN,
            ..good.clone()
        };
        assert!(nan_eps.validate(&dims).unwrap_err().contains("eps"));

        let bad_alpha = good.clone().with_alpha(1.0);
        assert!(bad_alpha.validate(&dims).unwrap_err().contains("alpha"));
        let inf_alpha = good.clone().with_alpha(f64::INFINITY);
        assert!(inf_alpha.validate(&dims).unwrap_err().contains("alpha"));

        let no_sweeps = good.clone().with_max_iters(0);
        assert!(no_sweeps.validate(&dims).unwrap_err().contains("max_iters"));

        let wrong_order = RaConfig::ra_hosi_dt(0.1, &[4, 3]);
        assert!(wrong_order.validate(&dims).unwrap_err().contains("modes"));

        let zero_rank = RaConfig::ra_hosi_dt(0.1, &[4, 0, 3]);
        assert!(zero_rank.validate(&dims).unwrap_err().contains("mode 1"));
    }

    #[test]
    #[should_panic(expected = "infeasible rank-adaptive configuration")]
    fn infeasible_config_is_rejected_at_entry() {
        let x = noisy_tensor(71);
        // α = 1 would stall rank growth forever; reject before sweeping.
        let cfg = RaConfig::ra_hosi_dt(0.1, &[4, 3, 3]).with_alpha(1.0);
        let _ = ra_hooi(&x, &cfg);
    }

    #[test]
    fn perfect_start_meets_tolerance_in_one_sweep() {
        let x = noisy_tensor(71);
        let cfg = RaConfig::ra_hosi_dt(0.1, &[4, 3, 3]).with_seed(1);
        let res = ra_hooi(&x, &cfg);
        assert_eq!(
            res.met_at,
            Some(0),
            "history: {:?}",
            res.iterations
                .iter()
                .map(|i| i.rel_error)
                .collect::<Vec<_>>()
        );
        assert!(res.rel_error <= 0.1, "rel_error {}", res.rel_error);
    }

    #[test]
    fn overshoot_truncates_below_start() {
        let x = noisy_tensor(73);
        // 25% overshoot, as in §4.2.
        let cfg = RaConfig::ra_hosi_dt(0.1, &[5, 4, 4])
            .with_seed(2)
            .with_max_iters(1);
        let res = ra_hooi(&x, &cfg);
        assert_eq!(res.met_at, Some(0));
        let r = res.tucker.ranks();
        assert!(
            r.iter().zip(&[5usize, 4, 4]).all(|(a, b)| a <= b),
            "ranks {r:?}"
        );
        assert!(res.rel_error <= 0.1);
    }

    #[test]
    fn undershoot_grows_then_meets() {
        let x = noisy_tensor(79);
        // Start well below the true ranks with a tight tolerance: the
        // first sweep cannot meet it, so ranks must grow.
        let cfg = RaConfig::ra_hosi_dt(0.03, &[1, 1, 1])
            .with_seed(3)
            .with_alpha(2.0)
            .with_max_iters(4);
        let res = ra_hooi(&x, &cfg);
        assert!(res.iterations[0].ranks_out > res.iterations[0].ranks_in);
        assert!(
            res.met_at.is_some(),
            "never met: {:?}",
            res.iterations
                .iter()
                .map(|i| (i.ranks_in.clone(), i.rel_error))
                .collect::<Vec<_>>()
        );
        assert!(res.rel_error <= 0.03);
    }

    #[test]
    fn growth_caps_at_dimensions() {
        let x = SyntheticSpec::new(&[4, 4], &[4, 4], 0.5, 83).build::<f64>();
        // Impossible tolerance forces growth to the caps.
        let cfg = RaConfig::ra_hosi_dt(1e-9, &[2, 2])
            .with_seed(4)
            .with_alpha(3.0)
            .with_max_iters(3);
        let res = ra_hooi(&x, &cfg);
        let last = res.iterations.last().unwrap();
        assert!(last.ranks_in.iter().all(|&r| r <= 4));
    }

    #[test]
    fn relative_size_decreases_when_truncating_overshoot() {
        let x = noisy_tensor(89);
        let cfg = RaConfig::ra_hosi_dt(0.1, &[6, 5, 5])
            .with_seed(5)
            .with_max_iters(2);
        let res = ra_hooi(&x, &cfg);
        let full_size = crate::core_analysis::tucker_storage(&[6, 5, 5], &[14, 12, 10]) as f64
            / (14.0 * 12.0 * 10.0);
        assert!(
            res.iterations[0].relative_size <= full_size,
            "size {} vs start {}",
            res.iterations[0].relative_size,
            full_size
        );
    }

    #[test]
    fn stop_on_threshold_halts_early() {
        let x = noisy_tensor(97);
        // A loose tolerance the very first sweep is certain to satisfy.
        let cfg = RaConfig::ra_hosi_dt(0.3, &[4, 3, 3])
            .with_seed(6)
            .with_max_iters(3)
            .stopping_on_threshold();
        let res = ra_hooi(&x, &cfg);
        assert_eq!(res.iterations.len(), 1);
    }

    #[test]
    fn ra_works_with_all_variants() {
        let x = noisy_tensor(101);
        for inner in [
            HooiConfig::hooi(),
            HooiConfig::hooi_dt(),
            HooiConfig::hosi(),
            HooiConfig::hosi_dt(),
        ] {
            let cfg = RaConfig {
                eps: 0.1,
                alpha: 1.5,
                initial_ranks: vec![4, 3, 3],
                max_iters: 2,
                stop_on_threshold: false,
                inner: inner.with_seed(7),
            };
            let res = ra_hooi(&x, &cfg);
            assert!(
                res.rel_error <= 0.1,
                "{} failed: {}",
                cfg.inner.variant_name(),
                res.rel_error
            );
        }
    }

    #[test]
    fn core_analysis_time_is_recorded_when_truncating() {
        let x = noisy_tensor(103);
        let cfg = RaConfig::ra_hosi_dt(0.15, &[5, 4, 4])
            .with_seed(8)
            .with_max_iters(1);
        let res = ra_hooi(&x, &cfg);
        assert!(res.iterations[0].truncated);
        assert!(res.timings.flops(Phase::CoreAnalysis) > 0);
    }

    fn ckpt_dir(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ratucker_ra_ckpt_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn checkpointed_run_equals_plain_run() {
        let x = noisy_tensor(113);
        let cfg = RaConfig::ra_hosi_dt(0.03, &[1, 1, 1])
            .with_seed(21)
            .with_alpha(2.0)
            .with_max_iters(4);
        let reference = ra_hooi(&x, &cfg);
        let dir = ckpt_dir("plain");
        let policy = CheckpointPolicy::new(&dir);
        let checked = ra_hooi_checkpointed(&x, &cfg, &policy);
        assert_eq!(checked.rel_error, reference.rel_error);
        for (a, b) in checked.tucker.factors.iter().zip(&reference.tucker.factors) {
            assert_eq!(a.max_abs_diff(b), 0.0);
        }
        // One checkpoint per executed sweep.
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            reference.iterations.len()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_resume_reproduces_uninterrupted_run_bit_for_bit() {
        let x = noisy_tensor(113);
        let cfg = RaConfig::ra_hosi_dt(0.03, &[1, 1, 1])
            .with_seed(21)
            .with_alpha(2.0)
            .with_max_iters(4);
        let reference = ra_hooi(&x, &cfg);
        assert!(
            reference.iterations.len() >= 3,
            "test needs a multi-sweep run, got {}",
            reference.iterations.len()
        );
        let dir = ckpt_dir("resume");
        let policy = CheckpointPolicy::new(&dir);
        let _ = ra_hooi_checkpointed(&x, &cfg, &policy);
        // Simulate a crash during sweep 2: throw away everything the run
        // wrote after the state entering sweep 1.
        for sweep in 2..cfg.max_iters {
            let _ = std::fs::remove_file(policy.path_for(sweep));
        }
        let resumed = ra_hooi_checkpointed(&x, &cfg, &policy.clone().resuming());
        // Only sweeps 1.. re-ran, yet the result is identical.
        assert_eq!(resumed.iterations.len(), reference.iterations.len() - 1);
        assert_eq!(resumed.rel_error, reference.rel_error);
        assert_eq!(resumed.tucker.ranks(), reference.tucker.ranks());
        assert_eq!(
            resumed.tucker.core.max_abs_diff(&reference.tucker.core),
            0.0
        );
        for (a, b) in resumed.tucker.factors.iter().zip(&reference.tucker.factors) {
            assert_eq!(a.max_abs_diff(b), 0.0);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "refusing to resume")]
    fn resume_rejects_mismatched_seed() {
        let x = noisy_tensor(127);
        let cfg = RaConfig::ra_hosi_dt(0.1, &[4, 3, 3])
            .with_seed(30)
            .with_max_iters(1);
        let dir = ckpt_dir("mismatch");
        let policy = CheckpointPolicy::new(&dir);
        let _ = ra_hooi_checkpointed(&x, &cfg, &policy);
        let other = cfg.clone().with_seed(31);
        // Leak the dir on purpose: the panic unwinds before cleanup, and
        // the unique name keeps reruns isolated.
        let _ = ra_hooi_checkpointed(&x, &other, &policy.resuming());
    }

    #[test]
    fn reconstruction_error_matches_reported() {
        let x = noisy_tensor(107);
        let cfg = RaConfig::ra_hosi_dt(0.08, &[4, 3, 3]).with_seed(9);
        let res = ra_hooi(&x, &cfg);
        let direct = res.tucker.reconstruct().rel_error(&x);
        assert!(
            (direct - res.rel_error).abs() < 1e-8,
            "direct {direct} reported {}",
            res.rel_error
        );
    }
}
