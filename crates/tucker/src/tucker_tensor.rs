//! The Tucker-format tensor: a core plus one factor matrix per mode.

use ratucker_tensor::dense::DenseTensor;
use ratucker_tensor::matrix::Matrix;
use ratucker_tensor::scalar::Scalar;
use ratucker_tensor::ttm::{ttm, Transpose};

/// A Tucker decomposition `X̂ = G ×_1 U_1 ×_2 … ×_d U_d`.
#[derive(Clone, Debug)]
pub struct TuckerTensor<T: Scalar> {
    /// The core tensor `G ∈ ℝ^{r_1 × … × r_d}`.
    pub core: DenseTensor<T>,
    /// Factor matrices `U_j ∈ ℝ^{n_j × r_j}` with orthonormal columns.
    pub factors: Vec<Matrix<T>>,
}

impl<T: Scalar> TuckerTensor<T> {
    /// Creates a Tucker tensor, checking dimension consistency.
    pub fn new(core: DenseTensor<T>, factors: Vec<Matrix<T>>) -> Self {
        assert_eq!(core.order(), factors.len(), "one factor per mode required");
        for (k, u) in factors.iter().enumerate() {
            assert_eq!(
                u.cols(),
                core.dim(k),
                "factor {k} has {} columns but core dim is {}",
                u.cols(),
                core.dim(k)
            );
        }
        TuckerTensor { core, factors }
    }

    /// Number of modes.
    pub fn order(&self) -> usize {
        self.core.order()
    }

    /// The Tucker ranks `(r_1, …, r_d)`.
    pub fn ranks(&self) -> Vec<usize> {
        self.core.shape().dims().to_vec()
    }

    /// The dimensions of the tensor being approximated.
    pub fn outer_dims(&self) -> Vec<usize> {
        self.factors.iter().map(|u| u.rows()).collect()
    }

    /// Storage footprint in entries: `Π r_j + Σ n_j r_j` — the objective
    /// of the error-specified formulation (paper eq. 2).
    pub fn storage_entries(&self) -> usize {
        self.core.num_entries()
            + self
                .factors
                .iter()
                .map(|u| u.rows() * u.cols())
                .sum::<usize>()
    }

    /// Compression ratio: full entries / Tucker entries.
    pub fn compression_ratio(&self) -> f64 {
        let full: usize = self.outer_dims().iter().product();
        full as f64 / self.storage_entries() as f64
    }

    /// Relative size: Tucker entries / full entries (the "relative size"
    /// axis of the paper's Figs. 4/6/8).
    pub fn relative_size(&self) -> f64 {
        1.0 / self.compression_ratio()
    }

    /// Reconstructs the full tensor `G ×_1 U_1 … ×_d U_d`.
    pub fn reconstruct(&self) -> DenseTensor<T> {
        let mut cur = self.core.clone();
        for (k, u) in self.factors.iter().enumerate() {
            cur = ttm(&cur, k, u, Transpose::No);
        }
        cur
    }

    /// Decompresses only the hyper-rectangular region
    /// `offsets[k]..offsets[k]+lens[k]` of the approximated tensor —
    /// *without* reconstructing the full tensor. This is the Tucker-format
    /// advantage the paper's introduction highlights ("subtensors can be
    /// efficiently decompressed … which allows for fast visualization of
    /// particular time steps, spatial regions, or quantities of
    /// interest"): the cost is `O(Π lens · Σ r)` instead of `O(Π n · Σ r)`.
    pub fn reconstruct_region(&self, offsets: &[usize], lens: &[usize]) -> DenseTensor<T> {
        assert_eq!(offsets.len(), self.order());
        assert_eq!(lens.len(), self.order());
        // Apply the most-restrictive modes first: multiplying a length-1
        // slice early collapses that mode of the intermediate, so the
        // remaining TTMs run on a much smaller tensor. TTMs in distinct
        // modes commute, so the result is unchanged.
        let mut order: Vec<usize> = (0..self.order()).collect();
        order.sort_by_key(|&k| lens[k] * self.core.dim(k));
        let mut cur = self.core.clone();
        for &k in &order {
            let rows = self.factors[k].row_slice(offsets[k], lens[k]);
            cur = ttm(&cur, k, &rows, Transpose::No);
        }
        cur
    }

    /// Decompresses the hyper-rectangular region
    /// `offsets[k]..offsets[k]+lens[k]` **bit-identically** to slicing
    /// [`TuckerTensor::reconstruct`]'s output at the same coordinates.
    ///
    /// Unlike [`TuckerTensor::reconstruct_region`] (which reorders the
    /// TTMs by restrictiveness — same math, different floating-point
    /// summation nesting, so results agree only to roundoff), this
    /// applies the TTMs in mode order with row-sliced factors: every
    /// retained output element is computed by exactly the arithmetic
    /// the full reconstruction performs, so the extraction is a bitwise
    /// sub-array of it. The serve layer's `CoreStore` uses this so a
    /// query against a stored core answers with the *same bits* a
    /// client would get by decompressing everything and slicing —
    /// still at `O(Π lens · Σ r)` cost, never `O(Π n · Σ r)`.
    pub fn extract_hyperslab(&self, offsets: &[usize], lens: &[usize]) -> DenseTensor<T> {
        assert_eq!(offsets.len(), self.order());
        assert_eq!(lens.len(), self.order());
        let mut cur = self.core.clone();
        for (k, u) in self.factors.iter().enumerate() {
            let rows = u.row_slice(offsets[k], lens[k]);
            cur = ttm(&cur, k, &rows, Transpose::No);
        }
        cur
    }

    /// Decompresses a single mode-`mode` hyper-slice (e.g. one time step
    /// or one variable of a simulation dataset).
    pub fn reconstruct_slice(&self, mode: usize, index: usize) -> DenseTensor<T> {
        let mut offsets = vec![0; self.order()];
        let mut lens = self.outer_dims();
        offsets[mode] = index;
        lens[mode] = 1;
        self.reconstruct_region(&offsets, &lens)
    }

    /// Relative approximation error computed *from the core norm* via the
    /// identity `‖X − X̂‖² = ‖X‖² − ‖G‖²` (valid for orthonormal factors
    /// with `G = X ×_1 U_1ᵀ … ×_d U_dᵀ`; §3.2). `x_norm_sq = ‖X‖²`.
    pub fn rel_error_from_core(&self, x_norm_sq: f64) -> f64 {
        let g = self.core.squared_norm_f64();
        ((x_norm_sq - g).max(0.0) / x_norm_sq).sqrt()
    }

    /// Truncates to the leading sub-ranks: `G(0..r)` with the matching
    /// leading factor columns (the §3.2 truncation step, Alg. 3 line 7).
    pub fn truncate(&self, ranks: &[usize]) -> TuckerTensor<T> {
        assert_eq!(ranks.len(), self.order());
        let core = self.core.leading_subtensor(ranks);
        let factors = self
            .factors
            .iter()
            .zip(ranks)
            .map(|(u, &r)| u.leading_cols(r))
            .collect();
        TuckerTensor { core, factors }
    }

    /// Largest factor-orthonormality defect across modes (test helper).
    pub fn orthonormality_defect(&self) -> f64 {
        self.factors
            .iter()
            .map(|u| u.orthonormality_defect())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ratucker_tensor::random::{normal_tensor, random_orthonormal};

    fn random_tucker(dims: &[usize], ranks: &[usize], seed: u64) -> TuckerTensor<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let core = normal_tensor(ratucker_tensor::shape::Shape::new(ranks), &mut rng);
        let factors = dims
            .iter()
            .zip(ranks)
            .map(|(&n, &r)| random_orthonormal(n, r, &mut rng))
            .collect();
        TuckerTensor::new(core, factors)
    }

    #[test]
    fn storage_and_compression() {
        let t = random_tucker(&[10, 12, 8], &[2, 3, 2], 1);
        assert_eq!(t.storage_entries(), 12 + 20 + 36 + 16);
        let full = 10 * 12 * 8;
        assert!((t.compression_ratio() - full as f64 / 84.0).abs() < 1e-12);
        assert!((t.relative_size() * t.compression_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn error_identity_holds() {
        // For X built exactly in Tucker form, the core-norm error of the
        // exact decomposition is 0 and reconstruct() matches.
        let t = random_tucker(&[6, 5, 4], &[2, 2, 3], 2);
        let x = t.reconstruct();
        let err = t.rel_error_from_core(x.squared_norm_f64());
        assert!(err < 1e-7, "err {err}");
    }

    #[test]
    fn error_identity_matches_reconstruction_error() {
        // Truncate an exact decomposition; both error routes must agree.
        let t = random_tucker(&[8, 7, 6], &[4, 3, 3], 3);
        let x = t.reconstruct();
        let x_norm_sq = x.squared_norm_f64();
        let trunc = t.truncate(&[2, 3, 1]);
        let direct = trunc.reconstruct().rel_error(&x);
        let via_core = {
            // For a *truncated* decomposition the identity needs the full
            // core norm replaced by the kept mass: recompute from scratch.
            let kept = trunc.core.squared_norm_f64();
            ((x_norm_sq - kept).max(0.0) / x_norm_sq).sqrt()
        };
        assert!(
            (direct - via_core).abs() < 1e-9,
            "direct {direct} via_core {via_core}"
        );
    }

    #[test]
    fn truncate_shapes() {
        let t = random_tucker(&[9, 9], &[4, 5], 4);
        let s = t.truncate(&[2, 3]);
        assert_eq!(s.ranks(), vec![2, 3]);
        assert_eq!(s.factors[0].cols(), 2);
        assert_eq!(s.factors[1].cols(), 3);
        assert_eq!(s.outer_dims(), vec![9, 9]);
    }

    #[test]
    fn orthonormality_defect_small_for_random() {
        let t = random_tucker(&[12, 10], &[3, 3], 5);
        assert!(t.orthonormality_defect() < 1e-12);
    }

    #[test]
    fn region_reconstruction_matches_full() {
        let t = random_tucker(&[7, 6, 5], &[3, 2, 2], 6);
        let full = t.reconstruct();
        let region = t.reconstruct_region(&[2, 1, 0], &[3, 4, 2]);
        assert_eq!(region.shape().dims(), &[3, 4, 2]);
        for idx in region.shape().indices() {
            let gidx = [idx[0] + 2, idx[1] + 1, idx[2]];
            assert!(
                (region.get(&idx) - full.get(&gidx)).abs() < 1e-12,
                "{idx:?}"
            );
        }
    }

    #[test]
    fn slice_reconstruction_matches_full() {
        let t = random_tucker(&[6, 5, 4], &[2, 2, 2], 7);
        let full = t.reconstruct();
        for mode in 0..3 {
            let idx_in_mode = t.outer_dims()[mode] - 1;
            let slice = t.reconstruct_slice(mode, idx_in_mode);
            assert_eq!(slice.dim(mode), 1);
            for idx in slice.shape().indices() {
                let mut gidx = idx.clone();
                gidx[mode] = idx_in_mode;
                assert!((slice.get(&idx) - full.get(&gidx)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn hyperslab_extraction_is_bitwise_a_subarray_of_reconstruction() {
        // Unlike reconstruct_region (which may reorder TTMs), the
        // serve-layer contract for extract_hyperslab is exact bit
        // identity with slicing the full reconstruction.
        let t = random_tucker(&[7, 6, 5, 4], &[3, 2, 2, 2], 9);
        let full = t.reconstruct();
        let offsets = [2usize, 1, 0, 3];
        let lens = [3usize, 4, 5, 1];
        let slab = t.extract_hyperslab(&offsets, &lens);
        assert_eq!(slab.shape().dims(), &lens);
        for idx in slab.shape().indices() {
            let gidx: Vec<usize> = idx.iter().zip(&offsets).map(|(&i, &o)| i + o).collect();
            assert_eq!(
                slab.get(&idx).to_bits(),
                full.get(&gidx).to_bits(),
                "{idx:?} not bit-identical"
            );
        }
    }

    #[test]
    #[should_panic(expected = "row slice")]
    fn region_out_of_bounds_panics() {
        let t = random_tucker(&[4, 4], &[2, 2], 8);
        t.reconstruct_region(&[3, 0], &[2, 4]);
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn rejects_mismatched_factor() {
        let core: DenseTensor<f64> = DenseTensor::zeros([2, 2]);
        let factors = vec![Matrix::zeros(5, 2), Matrix::zeros(5, 3)];
        TuckerTensor::new(core, factors);
    }
}
