//! Distributed Tucker algorithms over the `ratucker-mpi` runtime.
//!
//! Every function here is *collective*: all ranks of the grid call it with
//! identical arguments (aside from their local tensor blocks) and follow
//! the same control flow. Factor matrices are replicated; the per-mode
//! EVD/QR factorizations are executed redundantly on every rank, exactly
//! as TuckerMPI does — the paper's strong-scaling story (the sequential
//! EVD plateau of STHOSVD vs. HOSI's thin QR) depends on reproducing that
//! design decision.
//!
//! Under `ratucker_dist::OverlapMode::On` (the default; `--overlap` in
//! the CLI) the TTM and SI kernels these algorithms call pipeline their
//! collectives behind the next slab's local compute. The pipelined paths
//! are bit-identical to the blocking ones (DESIGN.md §17), so every
//! algorithm here is oblivious to the knob — it changes wall-clock only.

use crate::checkpoint::{
    expansion_rng, Checkpoint, CheckpointPolicy, FileCheckpointer, NoCheckpoint, RaCheckpointer,
};
use crate::core_analysis::analyze_core;
use crate::hooi::{HooiConfig, LlsvStrategy, TtmStrategy};
use crate::llsv::robust_sym_evd;
use crate::llsv::Truncation;
use crate::ra::RaConfig;
use crate::sthosvd::SthosvdTruncation;
use crate::timings::{Phase, Timings};
use crate::tucker_tensor::TuckerTensor;
use ratucker_dist::{
    try_dist_contract, try_dist_gram_checked, try_dist_ttm_checked, AbftMode, DistTensor,
};
use ratucker_linalg::evd::rank_for_error;
use ratucker_linalg::qr::qrcp;
use ratucker_mpi::CartGrid;
use ratucker_mpi::CommError;
use ratucker_tensor::io::IoScalar;
use ratucker_tensor::matrix::Matrix;
use ratucker_tensor::random::{normal_matrix, orthonormalize_columns};
use ratucker_tensor::scalar::Scalar;
use ratucker_tensor::ttm::Transpose;

/// A distributed Tucker decomposition: distributed core, replicated
/// factors.
#[derive(Clone, Debug)]
pub struct DistTucker<T: Scalar> {
    /// The distributed core tensor.
    pub core: DistTensor<T>,
    /// Replicated factor matrices.
    pub factors: Vec<Matrix<T>>,
}

impl<T: Scalar> DistTucker<T> {
    /// Tucker ranks.
    pub fn ranks(&self) -> Vec<usize> {
        self.core.global_shape().dims().to_vec()
    }

    /// Gathers the core on every rank, yielding an ordinary
    /// [`TuckerTensor`]. Collective.
    pub fn gather(&self, grid: &CartGrid) -> TuckerTensor<T> {
        TuckerTensor::new(self.core.gather_replicated(grid), self.factors.clone())
    }
}

/// Result of a distributed algorithm run (per rank).
#[derive(Clone, Debug)]
pub struct DistRunResult<T: Scalar> {
    /// The decomposition (collectively consistent across ranks).
    pub tucker: DistTucker<T>,
    /// Relative error from the core-norm identity.
    pub rel_error: f64,
    /// This rank's phase breakdown (wall clock includes waiting on
    /// collectives, which is how communication imbalance shows up).
    pub timings: Timings,
    /// Per-sweep relative errors (HOOI variants; single entry for STHOSVD).
    pub sweep_errors: Vec<f64>,
    /// Per-sweep rank vectors (rank-adaptive runs).
    pub sweep_ranks: Vec<Vec<usize>>,
}

/// ABFT bookkeeping for a resilient run: how many checksum mismatches
/// the checked kernels reported and how many contractions were
/// recomputed in response ([`AbftMode::Recover`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AbftStats {
    /// Checksum mismatches detected.
    pub detected: usize,
    /// Poisoned contractions recomputed (always `<= detected`).
    pub recomputed: usize,
}

/// Resilience context threaded through the fallible sweep pipeline: the
/// ABFT policy plus the per-run detection counters.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SweepCtx {
    /// Checksum policy for the distributed kernels.
    pub abft: AbftMode,
    /// Detection / recomputation counters.
    pub stats: AbftStats,
}

impl SweepCtx {
    /// Context with checksums disabled (the legacy panicking drivers).
    pub fn off() -> Self {
        SweepCtx::new(AbftMode::Off)
    }

    /// Context with the given checksum policy.
    pub fn new(abft: AbftMode) -> Self {
        SweepCtx {
            abft,
            stats: AbftStats::default(),
        }
    }
}

/// How many times one poisoned contraction may be recomputed before the
/// mismatch is treated as persistent (a sticky hardware fault rather
/// than a transient bit flip) and surfaced to the caller.
const ABFT_MAX_ATTEMPTS: usize = 3;

/// Runs a checked collective kernel under the context's ABFT policy:
/// on a checksum mismatch in [`AbftMode::Recover`], recompute (the
/// verdict is collective — every rank of the grid reaches the same
/// decision, so the retry stays a well-formed collective); in
/// [`AbftMode::Detect`], count it and surface the error.
fn with_abft_retry<T>(
    ctx: &mut SweepCtx,
    mut op: impl FnMut() -> Result<T, CommError>,
) -> Result<T, CommError> {
    let mut attempt = 0;
    loop {
        match op() {
            Err(e @ CommError::SilentCorruption { .. }) => {
                ctx.stats.detected += 1;
                if ctx.abft == AbftMode::Recover && attempt + 1 < ABFT_MAX_ATTEMPTS {
                    ctx.stats.recomputed += 1;
                    attempt += 1;
                    continue;
                }
                return Err(e);
            }
            other => return other,
        }
    }
}

/// Checked TTM under the context's ABFT retry policy.
fn checked_ttm<T: Scalar>(
    grid: &CartGrid,
    x: &DistTensor<T>,
    mode: usize,
    m: &Matrix<T>,
    trans: Transpose,
    ctx: &mut SweepCtx,
) -> Result<DistTensor<T>, CommError> {
    let abft = ctx.abft;
    with_abft_retry(ctx, || try_dist_ttm_checked(grid, x, mode, m, trans, abft))
}

/// Checked multi-TTM (all factors transposed, skipping `skip_mode`)
/// under the context's ABFT retry policy.
fn checked_multi_ttm_all_but<T: Scalar>(
    grid: &CartGrid,
    x: &DistTensor<T>,
    factors: &[Matrix<T>],
    skip_mode: usize,
    ctx: &mut SweepCtx,
) -> Result<DistTensor<T>, CommError> {
    let mut cur: Option<DistTensor<T>> = None;
    for (k, u) in factors.iter().enumerate() {
        if k == skip_mode {
            continue;
        }
        let next = match &cur {
            None => checked_ttm(grid, x, k, u, Transpose::Yes, ctx)?,
            Some(t) => checked_ttm(grid, t, k, u, Transpose::Yes, ctx)?,
        };
        cur = Some(next);
    }
    Ok(cur.unwrap_or_else(|| x.clone()))
}

/// Distributed LLSV via Gram + redundant EVD (fallible).
fn try_dist_llsv_gram<T: Scalar>(
    grid: &CartGrid,
    y: &DistTensor<T>,
    mode: usize,
    trunc: Truncation,
    timings: &mut Timings,
    ctx: &mut SweepCtx,
) -> Result<Matrix<T>, CommError> {
    let abft = ctx.abft;
    let g = with_abft_retry(ctx, || {
        timings.time(Phase::Gram, || try_dist_gram_checked(grid, y, mode, abft))
    })?;
    let evd = timings.time(Phase::Evd, || {
        let _s = ratucker_obs::span_mode(&grid.comm, "EVD", mode);
        robust_sym_evd(&g)
    });
    let r = match trunc {
        Truncation::Rank(r) => r.min(evd.values.len()),
        Truncation::ErrorSq(t) => rank_for_error(&evd.values, t),
    };
    Ok(evd.vectors.leading_cols(r))
}

/// Distributed LLSV via subspace iteration (Alg. 5 over the grid,
/// fallible): distributed TTM for the core unfolding, core allgather,
/// distributed contraction with sum-reduce+broadcast, redundant QRCP.
/// `steps` repeats the iteration (the paper uses 1).
fn try_dist_llsv_subspace<T: Scalar>(
    grid: &CartGrid,
    y: &DistTensor<T>,
    mode: usize,
    u_prev: &Matrix<T>,
    steps: usize,
    timings: &mut Timings,
    ctx: &mut SweepCtx,
) -> Result<Matrix<T>, CommError> {
    let mut u = u_prev.clone();
    for _ in 0..steps.max(1) {
        // Both Alg. 5 multiplies are charged to the Contract ("SI") phase,
        // matching the sequential accounting.
        let g_core = {
            let abft = ctx.abft;
            with_abft_retry(ctx, || {
                timings.time(Phase::Contract, || {
                    try_dist_ttm_checked(grid, y, mode, &u, Transpose::Yes, abft)
                })
            })?
        };
        let z = timings.time(Phase::Contract, || -> Result<_, CommError> {
            let core_repl = g_core.try_gather_replicated(grid)?;
            try_dist_contract(grid, y, &core_repl, mode)
        })?;
        let f = timings.time(Phase::Qr, || {
            let _s = ratucker_obs::span_mode(&grid.comm, "QR", mode);
            qrcp(&z)
        });
        u = f.q;
    }
    Ok(u)
}

#[allow(clippy::too_many_arguments)]
fn try_dist_update_factor<T: Scalar>(
    grid: &CartGrid,
    y: &DistTensor<T>,
    mode: usize,
    rank: usize,
    config: &HooiConfig,
    factors: &mut [Matrix<T>],
    timings: &mut Timings,
    ctx: &mut SweepCtx,
) -> Result<(), CommError> {
    factors[mode] = match config.llsv {
        LlsvStrategy::GramEvd => {
            try_dist_llsv_gram(grid, y, mode, Truncation::Rank(rank), timings, ctx)?
        }
        LlsvStrategy::SubspaceIter => {
            try_dist_llsv_subspace(grid, y, mode, &factors[mode], config.si_steps, timings, ctx)?
        }
    };
    Ok(())
}

/// Distributed STHOSVD (Alg. 1). Collective.
pub fn dist_sthosvd<T: Scalar>(
    grid: &CartGrid,
    x: &DistTensor<T>,
    trunc: &SthosvdTruncation,
) -> DistRunResult<T> {
    let d = x.global_shape().order();
    let x_norm_sq = x.squared_norm(grid);
    let mut timings = Timings::new();
    let mut ctx = SweepCtx::off();
    let mut y = x.clone();
    let mut factors = Vec::with_capacity(d);
    for j in 0..d {
        let mode_trunc = match trunc {
            SthosvdTruncation::Ranks(r) => Truncation::Rank(r[j]),
            SthosvdTruncation::RelError(eps) => {
                Truncation::ErrorSq(eps * eps * x_norm_sq / d as f64)
            }
        };
        let u = try_dist_llsv_gram(grid, &y, j, mode_trunc, &mut timings, &mut ctx)
            .unwrap_or_else(|e| panic!("{e}"));
        y = timings
            .time(Phase::Ttm, || {
                checked_ttm(grid, &y, j, &u, Transpose::Yes, &mut ctx)
            })
            .unwrap_or_else(|e| panic!("{e}"));
        factors.push(u);
    }
    let core_norm_sq = y.squared_norm(grid);
    let rel_error = ((x_norm_sq - core_norm_sq).max(0.0) / x_norm_sq).sqrt();
    DistRunResult {
        tucker: DistTucker { core: y, factors },
        rel_error,
        timings,
        sweep_errors: vec![rel_error],
        sweep_ranks: Vec::new(),
    }
}

/// One distributed HOOI sweep (fallible); returns the new core.
///
/// All communication goes through the checked kernels under the
/// context's ABFT policy; any [`CommError`] (peer failure, timeout,
/// revocation, unrecovered checksum mismatch) aborts the sweep with the
/// factors possibly half-updated — callers that intend to retry must
/// snapshot `factors` first (see `crate::recover`).
pub(crate) fn try_dist_sweep<T: Scalar>(
    grid: &CartGrid,
    x: &DistTensor<T>,
    factors: &mut [Matrix<T>],
    ranks: &[usize],
    config: &HooiConfig,
    timings: &mut Timings,
    ctx: &mut SweepCtx,
) -> Result<DistTensor<T>, CommError> {
    let _span = ratucker_obs::span(&grid.comm, "sweep");
    match config.ttm {
        TtmStrategy::Direct => {
            let d = x.global_shape().order();
            let mut core = None;
            for j in 0..d {
                let y = timings.time(Phase::Ttm, || {
                    checked_multi_ttm_all_but(grid, x, factors, j, ctx)
                })?;
                try_dist_update_factor(grid, &y, j, ranks[j], config, factors, timings, ctx)?;
                if j == d - 1 {
                    core = Some(timings.time(Phase::Ttm, || {
                        checked_ttm(grid, &y, j, &factors[j], Transpose::Yes, ctx)
                    })?);
                }
            }
            Ok(core.expect("tensor has at least one mode"))
        }
        TtmStrategy::DimTree => {
            let d = x.global_shape().order();
            let modes: Vec<usize> = (0..d).collect();
            let mut core = None;
            try_dist_dimtree_rec(
                grid, x, &modes, factors, ranks, config, timings, &mut core, ctx,
            )?;
            Ok(core.expect("mode d-1 leaf must set the core"))
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn try_dist_dimtree_rec<T: Scalar>(
    grid: &CartGrid,
    x: &DistTensor<T>,
    modes: &[usize],
    factors: &mut [Matrix<T>],
    ranks: &[usize],
    config: &HooiConfig,
    timings: &mut Timings,
    core: &mut Option<DistTensor<T>>,
    ctx: &mut SweepCtx,
) -> Result<(), CommError> {
    let d = factors.len();
    if modes.len() == 1 {
        let m = modes[0];
        try_dist_update_factor(grid, x, m, ranks[m], config, factors, timings, ctx)?;
        if m == d - 1 {
            *core = Some(timings.time(Phase::Ttm, || {
                checked_ttm(grid, x, m, &factors[m], Transpose::Yes, ctx)
            })?);
        }
        return Ok(());
    }
    let mid = modes.len() / 2;
    let (lo, hi) = modes.split_at(mid);

    let x_hi = timings.time(Phase::Ttm, || -> Result<_, CommError> {
        let mut cur: Option<DistTensor<T>> = None;
        for &m in hi.iter().rev() {
            let next = match &cur {
                None => checked_ttm(grid, x, m, &factors[m], Transpose::Yes, ctx)?,
                Some(t) => checked_ttm(grid, t, m, &factors[m], Transpose::Yes, ctx)?,
            };
            cur = Some(next);
        }
        Ok(cur.expect("hi half is nonempty"))
    })?;
    try_dist_dimtree_rec(grid, &x_hi, lo, factors, ranks, config, timings, core, ctx)?;
    drop(x_hi);

    let x_lo = timings.time(Phase::Ttm, || -> Result<_, CommError> {
        let mut cur: Option<DistTensor<T>> = None;
        for &m in lo.iter() {
            let next = match &cur {
                None => checked_ttm(grid, x, m, &factors[m], Transpose::Yes, ctx)?,
                Some(t) => checked_ttm(grid, t, m, &factors[m], Transpose::Yes, ctx)?,
            };
            cur = Some(next);
        }
        Ok(cur.expect("lo half is nonempty"))
    })?;
    try_dist_dimtree_rec(grid, &x_lo, hi, factors, ranks, config, timings, core, ctx)
}

/// Distributed fixed-rank HOOI (any variant). Collective.
pub fn dist_hooi<T: Scalar>(
    grid: &CartGrid,
    x: &DistTensor<T>,
    ranks: &[usize],
    config: &HooiConfig,
) -> DistRunResult<T> {
    let dims: Vec<usize> = x.global_shape().dims().to_vec();
    let x_norm_sq = x.squared_norm(grid);
    // Same seed on every rank → identical replicated factors.
    let mut factors = crate::hooi::random_init::<T>(&dims, ranks, config.seed);
    let mut timings = Timings::new();
    let mut ctx = SweepCtx::off();
    let mut sweep_errors = Vec::new();
    let mut core = None;
    let mut prev_err = f64::INFINITY;

    for _ in 0..config.max_iters {
        let c = try_dist_sweep(grid, x, &mut factors, ranks, config, &mut timings, &mut ctx)
            .unwrap_or_else(|e| panic!("{e}"));
        let g = c.squared_norm(grid);
        let rel_error = ((x_norm_sq - g).max(0.0) / x_norm_sq).sqrt();
        core = Some(c);
        sweep_errors.push(rel_error);
        if let Some(tol) = config.tol {
            if (prev_err - rel_error).abs() <= tol * rel_error.max(f64::EPSILON) {
                break;
            }
        }
        prev_err = rel_error;
    }

    let rel_error = *sweep_errors.last().unwrap();
    DistRunResult {
        tucker: DistTucker {
            core: core.expect("max_iters must be at least 1"),
            factors,
        },
        rel_error,
        timings,
        sweep_errors,
        sweep_ranks: Vec::new(),
    }
}

/// Distributed rank-adaptive HOOI (Alg. 3). Collective.
///
/// The core is allgathered (cost `r^d`, the Table 2 "Core Analysis" row)
/// and the eq.-(3) search runs redundantly on every rank, so truncation
/// decisions are identical everywhere without extra coordination.
pub fn dist_ra_hooi<T: Scalar>(
    grid: &CartGrid,
    x: &DistTensor<T>,
    config: &RaConfig,
) -> DistRunResult<T> {
    dist_ra_hooi_impl(grid, x, config, &mut NoCheckpoint)
}

/// Distributed rank-adaptive HOOI with checkpoint/restart. Collective.
///
/// Factors and ranks are replicated, so a single checkpoint file serves
/// the whole grid: grid rank 0 writes it (atomically), and with
/// `policy.resume` every rank reads the latest checkpoint itself before
/// the first sweep. The growth RNG is derived per sweep, so the resumed
/// run reproduces the uninterrupted decomposition bit for bit on every
/// rank. `policy.dir` must name a filesystem location shared by all
/// ranks (trivially true in the threaded runtime).
///
/// # Panics
/// Panics if a checkpoint exists but cannot be read or does not match
/// this run's seed/ε/tensor (see [`Checkpoint::validate`]).
pub fn dist_ra_hooi_checkpointed<T: IoScalar>(
    grid: &CartGrid,
    x: &DistTensor<T>,
    config: &RaConfig,
    policy: &CheckpointPolicy,
) -> DistRunResult<T> {
    let mut ckpt = FileCheckpointer {
        policy,
        write: grid.comm.rank() == 0,
    };
    dist_ra_hooi_impl(grid, x, config, &mut ckpt)
}

fn dist_ra_hooi_impl<T: Scalar>(
    grid: &CartGrid,
    x: &DistTensor<T>,
    config: &RaConfig,
    ckpt: &mut impl RaCheckpointer<T>,
) -> DistRunResult<T> {
    let dims: Vec<usize> = x.global_shape().dims().to_vec();
    if let Err(msg) = config.validate(&dims) {
        panic!("infeasible rank-adaptive configuration: {msg}");
    }
    let x_norm_sq = x.squared_norm(grid);
    let threshold = (1.0 - config.eps * config.eps) * x_norm_sq;

    let mut ranks: Vec<usize> = config
        .initial_ranks
        .iter()
        .zip(&dims)
        .map(|(&r, &n)| r.min(n).max(1))
        .collect();
    let mut factors = crate::hooi::random_init::<T>(&dims, &ranks, config.inner.seed);
    let mut start_sweep = 0;
    if let Some(ck) = ckpt.resume(config.inner.seed, config.eps, &dims, x_norm_sq) {
        assert!(
            ck.sweep < config.max_iters,
            "checkpoint is at sweep {} but this run caps at {} sweeps",
            ck.sweep,
            config.max_iters
        );
        start_sweep = ck.sweep;
        ranks = ck.ranks;
        factors = ck.factors;
    }

    let mut timings = Timings::new();
    let mut sweep_errors = Vec::new();
    let mut sweep_ranks = Vec::new();
    let mut result_core: Option<DistTensor<T>> = None;
    let mut met = false;

    for it in start_sweep..config.max_iters {
        ckpt.save(&Checkpoint {
            sweep: it,
            seed: config.inner.seed,
            eps: config.eps,
            x_norm_sq,
            dims: dims.clone(),
            ranks: ranks.clone(),
            factors: factors.clone(),
        });
        let core = try_dist_sweep(
            grid,
            x,
            &mut factors,
            &ranks,
            &config.inner,
            &mut timings,
            &mut SweepCtx::off(),
        )
        .unwrap_or_else(|e| panic!("{e}"));
        let core_norm_sq = core.squared_norm(grid);
        let met_now = core_norm_sq >= threshold;

        if met_now {
            met = true;
            // Gather the (small) core everywhere and truncate redundantly.
            let core_repl = timings.time(Phase::Other, || core.gather_replicated(grid));
            let analysis = timings.time(Phase::CoreAnalysis, || {
                let _s = ratucker_obs::span(&grid.comm, "CoreAnalysis");
                analyze_core(&core_repl, &dims, x_norm_sq, config.eps)
            });
            if let Some(a) = analysis {
                // Keep ranks at least the grid dims so local blocks stay
                // nonempty (a distributed-implementation constraint the
                // sequential path does not have).
                let new_ranks: Vec<usize> = a
                    .ranks
                    .iter()
                    .zip(grid.dims())
                    .map(|(&r, &p)| r.max(p))
                    .collect();
                let full = TuckerTensor::new(core_repl, factors.clone());
                let trunc = full.truncate(&new_ranks);
                ranks = new_ranks;
                factors = trunc.factors.clone();
                result_core = Some(DistTensor::scatter_from_replicated(grid, &trunc.core));
                let err = trunc.rel_error_from_core(x_norm_sq);
                sweep_errors.push(err);
            } else {
                result_core = Some(core);
                sweep_errors.push(((x_norm_sq - core_norm_sq).max(0.0) / x_norm_sq).sqrt());
            }
            sweep_ranks.push(ranks.clone());
            if config.stop_on_threshold {
                break;
            }
        } else {
            sweep_errors.push(((x_norm_sq - core_norm_sq).max(0.0) / x_norm_sq).sqrt());
            result_core = Some(core);
            let grown: Vec<usize> = ranks
                .iter()
                .zip(&dims)
                .map(|(&r, &n)| (((r as f64) * config.alpha).ceil() as usize).min(n))
                .collect();
            if grown != ranks {
                // Same per-sweep RNG derivation as the sequential path:
                // pure in (seed, sweep), so all ranks and any resumed run
                // append identical columns.
                let mut rng = expansion_rng(config.inner.seed, it);
                for (k, u) in factors.iter_mut().enumerate() {
                    if grown[k] > u.cols() {
                        let extra = normal_matrix::<T, _>(u.rows(), grown[k] - u.cols(), &mut rng);
                        let mut ext = u.hcat(&extra);
                        orthonormalize_columns(&mut ext, u.cols());
                        *u = ext;
                    }
                }
                ranks = grown;
            }
            sweep_ranks.push(ranks.clone());
        }
    }

    let _ = met;
    let rel_error = *sweep_errors.last().unwrap();
    DistRunResult {
        tucker: DistTucker {
            core: result_core.expect("max_iters must be at least 1"),
            factors,
        },
        rel_error,
        timings,
        sweep_errors,
        sweep_ranks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticSpec;
    use ratucker_mpi::Universe;
    use ratucker_tensor::dense::DenseTensor;

    fn build_dist<T: Scalar>(
        grid: &CartGrid,
        spec: &SyntheticSpec,
    ) -> (DistTensor<T>, DenseTensor<T>) {
        // Deterministic generation: every rank builds the full tensor and
        // takes its block (test-scale only).
        let full = spec.build::<T>();
        let dist = DistTensor::scatter_from_replicated(grid, &full);
        (dist, full)
    }

    #[test]
    fn dist_sthosvd_matches_sequential() {
        let spec = SyntheticSpec::new(&[10, 9, 8], &[3, 2, 3], 0.02, 201);
        let seq = {
            let x = spec.build::<f64>();
            crate::sthosvd::sthosvd(&x, &SthosvdTruncation::Ranks(vec![3, 2, 3]))
        };
        for grid_dims in [vec![1, 1, 1], vec![2, 1, 2], vec![3, 1, 1]] {
            let p: usize = grid_dims.iter().product();
            let gd = grid_dims.clone();
            let s = spec.clone();
            let out = Universe::launch(p, move |c| {
                let grid = CartGrid::new(c, &gd);
                let (x, _) = build_dist::<f64>(&grid, &s);
                let res = dist_sthosvd(&grid, &x, &SthosvdTruncation::Ranks(vec![3, 2, 3]));
                (res.rel_error, res.tucker.gather(&grid))
            });
            for (err, tucker) in out {
                assert!(
                    (err - seq.rel_error).abs() < 1e-8,
                    "grid {grid_dims:?}: {err} vs {}",
                    seq.rel_error
                );
                assert_eq!(tucker.ranks(), vec![3, 2, 3]);
            }
        }
    }

    #[test]
    fn dist_sthosvd_error_specified_matches_sequential_ranks() {
        let spec = SyntheticSpec::new(&[12, 10, 8], &[3, 3, 2], 0.01, 203);
        let seq = {
            let x = spec.build::<f64>();
            crate::sthosvd::sthosvd(&x, &SthosvdTruncation::RelError(0.1))
        };
        let s = spec.clone();
        let out = Universe::launch(4, move |c| {
            let grid = CartGrid::new(c, &[2, 2, 1]);
            let (x, _) = build_dist::<f64>(&grid, &s);
            let res = dist_sthosvd(&grid, &x, &SthosvdTruncation::RelError(0.1));
            (res.rel_error, res.tucker.ranks())
        });
        for (err, ranks) in out {
            assert_eq!(ranks, seq.tucker.ranks());
            assert!((err - seq.rel_error).abs() < 1e-8);
        }
    }

    #[test]
    fn dist_hooi_all_variants_match_sequential_error() {
        let spec = SyntheticSpec::new(&[10, 9, 8], &[3, 3, 2], 0.02, 205);
        let x_full = spec.build::<f64>();
        for cfg in [
            HooiConfig::hooi(),
            HooiConfig::hooi_dt(),
            HooiConfig::hosi(),
            HooiConfig::hosi_dt(),
        ] {
            let cfg = cfg.with_seed(11).with_max_iters(2);
            let seq = crate::hooi::hooi(&x_full, &[3, 3, 2], &cfg);
            let s = spec.clone();
            let cfg2 = cfg.clone();
            let out = Universe::launch(4, move |c| {
                let grid = CartGrid::new(c, &[2, 1, 2]);
                let (x, _) = build_dist::<f64>(&grid, &s);
                dist_hooi(&grid, &x, &[3, 3, 2], &cfg2).rel_error
            });
            for err in out {
                assert!(
                    (err - seq.rel_error()).abs() < 1e-7,
                    "{}: dist {err} vs seq {}",
                    cfg.variant_name(),
                    seq.rel_error()
                );
            }
        }
    }

    #[test]
    fn dist_hooi_bitwise_consistent_across_ranks() {
        let spec = SyntheticSpec::new(&[8, 8, 8], &[2, 2, 2], 0.01, 207);
        let s = spec.clone();
        let out = Universe::launch(8, move |c| {
            let grid = CartGrid::new(c, &[2, 2, 2]);
            let (x, _) = build_dist::<f64>(&grid, &s);
            let res = dist_hooi(&grid, &x, &[2, 2, 2], &HooiConfig::hosi_dt().with_seed(3));
            // Factors are replicated: hash one entry stream.
            res.tucker.factors[1].as_slice().to_vec()
        });
        for f in &out[1..] {
            assert_eq!(f, &out[0]);
        }
    }

    #[test]
    fn dist_ra_matches_sequential_behaviour() {
        let spec = SyntheticSpec::new(&[12, 10, 8], &[3, 3, 2], 0.02, 209);
        let cfg = RaConfig::ra_hosi_dt(0.1, &[4, 4, 3])
            .with_seed(13)
            .with_max_iters(2);
        let x_full = spec.build::<f64>();
        let seq = crate::ra::ra_hooi(&x_full, &cfg);
        let s = spec.clone();
        let cfg2 = cfg.clone();
        let out = Universe::launch(4, move |c| {
            let grid = CartGrid::new(c, &[2, 2, 1]);
            let (x, _) = build_dist::<f64>(&grid, &s);
            let res = dist_ra_hooi(&grid, &x, &cfg2);
            (res.rel_error, res.tucker.ranks(), res.sweep_ranks.clone())
        });
        for (err, ranks, _sweeps) in out {
            assert!(err <= 0.1, "tolerance violated: {err}");
            // Same final ranks as the sequential run (deterministic seeds,
            // modulo the grid-dims floor which is inactive here).
            assert_eq!(ranks, seq.tucker.ranks());
        }
    }

    #[test]
    fn dist_checkpoint_resume_matches_uninterrupted_run() {
        let spec = SyntheticSpec::new(&[12, 10, 8], &[3, 3, 2], 0.01, 213);
        let cfg = RaConfig::ra_hosi_dt(0.05, &[2, 2, 2])
            .with_seed(19)
            .with_alpha(2.0)
            .with_max_iters(3);
        let mut dir = std::env::temp_dir();
        dir.push(format!("ratucker_dist_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Fault-free run, writing checkpoints as it goes.
        let policy = CheckpointPolicy::new(&dir);
        let (s, c2, p2) = (spec.clone(), cfg.clone(), policy.clone());
        let reference = Universe::launch(4, move |c| {
            let grid = CartGrid::new(c, &[2, 2, 1]);
            let (x, _) = build_dist::<f64>(&grid, &s);
            let res = dist_ra_hooi_checkpointed(&grid, &x, &c2, &p2);
            (res.rel_error, res.tucker.gather(&grid))
        });
        let sweeps = std::fs::read_dir(&dir).unwrap().count();
        assert!(
            sweeps >= 2,
            "need a multi-sweep run, saw {sweeps} checkpoints"
        );

        // Simulate a crash after sweep 1: drop later checkpoints, resume.
        for sweep in 2..cfg.max_iters {
            let _ = std::fs::remove_file(policy.path_for(sweep));
        }
        let (s, c2) = (spec.clone(), cfg.clone());
        let p2 = policy.clone().resuming();
        let resumed = Universe::launch(4, move |c| {
            let grid = CartGrid::new(c, &[2, 2, 1]);
            let (x, _) = build_dist::<f64>(&grid, &s);
            let res = dist_ra_hooi_checkpointed(&grid, &x, &c2, &p2);
            (res.rel_error, res.tucker.gather(&grid))
        });
        for ((err_a, tk_a), (err_b, tk_b)) in resumed.iter().zip(&reference) {
            assert_eq!(err_a, err_b);
            assert_eq!(tk_a.ranks(), tk_b.ranks());
            assert_eq!(tk_a.core.max_abs_diff(&tk_b.core), 0.0);
            for (ua, ub) in tk_a.factors.iter().zip(&tk_b.factors) {
                assert_eq!(ua.max_abs_diff(ub), 0.0);
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dist_ra_undershoot_grows_ranks() {
        let spec = SyntheticSpec::new(&[12, 10, 8], &[3, 3, 2], 0.01, 211);
        let cfg = RaConfig::ra_hosi_dt(0.05, &[2, 2, 2])
            .with_seed(17)
            .with_alpha(2.0)
            .with_max_iters(3);
        let s = spec.clone();
        let out = Universe::launch(2, move |c| {
            let grid = CartGrid::new(c, &[2, 1, 1]);
            let (x, _) = build_dist::<f64>(&grid, &s);
            let res = dist_ra_hooi(&grid, &x, &cfg);
            (res.rel_error, res.sweep_ranks.clone())
        });
        for (err, sweep_ranks) in out {
            assert!(err <= 0.05, "tolerance violated: {err}");
            assert!(sweep_ranks[0] > vec![2, 2, 2] || sweep_ranks.len() > 1);
        }
    }
}
