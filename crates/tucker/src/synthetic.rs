//! Synthetic test tensors (paper §4.1).
//!
//! "We generate tensors by forming a Tucker-format tensor of specified
//! rank and adding a specified level of noise." The construction here
//! matches: a Gaussian core of the requested ranks, random orthonormal
//! factors, and additive Gaussian noise scaled to a relative magnitude.

use crate::tucker_tensor::TuckerTensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ratucker_tensor::dense::DenseTensor;
use ratucker_tensor::random::{normal_tensor, random_orthonormal};
use ratucker_tensor::scalar::Scalar;
use ratucker_tensor::shape::Shape;

/// Parameters of a synthetic low-rank-plus-noise tensor.
#[derive(Clone, Debug)]
pub struct SyntheticSpec {
    /// Global dimensions.
    pub dims: Vec<usize>,
    /// True Tucker ranks of the noiseless part.
    pub ranks: Vec<usize>,
    /// Relative noise level: `‖noise‖ = noise · ‖signal‖`.
    pub noise: f64,
    /// RNG seed (deterministic generation — each rank of a distributed run
    /// regenerates its own block bit-identically).
    pub seed: u64,
}

impl SyntheticSpec {
    /// Convenience constructor.
    pub fn new(dims: &[usize], ranks: &[usize], noise: f64, seed: u64) -> Self {
        assert_eq!(dims.len(), ranks.len());
        for (&n, &r) in dims.iter().zip(ranks) {
            assert!(r <= n, "rank must not exceed dimension");
        }
        SyntheticSpec {
            dims: dims.to_vec(),
            ranks: ranks.to_vec(),
            noise,
            seed,
        }
    }

    /// The exact low-rank part as a Tucker tensor.
    pub fn ground_truth<T: Scalar>(&self) -> TuckerTensor<T> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let core = normal_tensor(Shape::new(&self.ranks), &mut rng);
        let factors = self
            .dims
            .iter()
            .zip(&self.ranks)
            .map(|(&n, &r)| random_orthonormal(n, r, &mut rng))
            .collect();
        TuckerTensor::new(core, factors)
    }

    /// The full synthetic tensor: reconstruction of the ground truth plus
    /// scaled Gaussian noise.
    pub fn build<T: Scalar>(&self) -> DenseTensor<T> {
        let truth = self.ground_truth::<T>();
        let mut x = truth.reconstruct();
        if self.noise > 0.0 {
            // Separate RNG stream for the noise so ground_truth() alone is
            // reproducible.
            let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9e37_79b9_7f4a_7c15);
            let mut noise: DenseTensor<T> = normal_tensor(x.shape().clone(), &mut rng);
            let scale = self.noise * x.norm().to_f64() / noise.norm().to_f64();
            noise.scale(T::from_f64(scale));
            x.add_scaled(T::ONE, &noise);
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_level_is_respected() {
        let spec = SyntheticSpec::new(&[12, 10, 8], &[3, 3, 2], 0.01, 42);
        let truth = spec.ground_truth::<f64>().reconstruct();
        let x = spec.build::<f64>();
        let rel = x.rel_error(&truth);
        assert!((rel - 0.01).abs() < 2e-3, "relative noise {rel}");
    }

    #[test]
    fn zero_noise_is_exactly_low_rank() {
        let spec = SyntheticSpec::new(&[8, 8], &[2, 2], 0.0, 7);
        let x = spec.build::<f64>();
        let truth = spec.ground_truth::<f64>().reconstruct();
        assert_eq!(x.max_abs_diff(&truth), 0.0);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = SyntheticSpec::new(&[6, 5, 4], &[2, 2, 2], 0.05, 3);
        let a = spec.build::<f32>();
        let b = spec.build::<f32>();
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticSpec::new(&[6, 6], &[2, 2], 0.0, 1).build::<f64>();
        let b = SyntheticSpec::new(&[6, 6], &[2, 2], 0.0, 2).build::<f64>();
        assert!(a.max_abs_diff(&b) > 1e-6);
    }

    #[test]
    #[should_panic(expected = "rank must not exceed")]
    fn rejects_rank_above_dim() {
        SyntheticSpec::new(&[4, 4], &[5, 2], 0.0, 0);
    }
}
