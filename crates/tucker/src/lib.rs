//! Tucker decomposition algorithms — the paper's contribution.
//!
//! This crate implements, sequentially and distributed (over the
//! `ratucker-mpi` runtime):
//!
//! - **STHOSVD** (Alg. 1) — the state-of-the-art baseline, in both the
//!   rank-specified and error-specified formulations;
//! - **HOOI / HOOI-DT / HOSI / HOSI-DT** (Algs. 2, 4, 5) — fixed-rank
//!   block coordinate descent with optional dimension-tree memoization of
//!   the multi-TTMs and optional subspace-iteration LLSV;
//! - **RA-HOSI-DT** (Alg. 3) — the rank-adaptive variant solving the
//!   error-specified problem, with the eq.-(3) core analysis.
//!
//! Sequential entry points: [`sthosvd::sthosvd`], [`hooi::hooi`],
//! [`ra::ra_hooi`]. Distributed entry points (collective over a
//! [`ratucker_mpi::CartGrid`]): [`dist::dist_sthosvd`],
//! [`dist::dist_hooi`], [`dist::dist_ra_hooi`].
//!
//! # Example: error-specified compression with RA-HOSI-DT
//!
//! ```
//! use ratucker::prelude::*;
//!
//! // A 20x18x16 tensor that is (ranks 3,3,3) + 1% noise.
//! let x = SyntheticSpec::new(&[20, 18, 16], &[3, 3, 3], 0.01, 42).build::<f64>();
//!
//! // Ask for 5% relative error from a deliberately wrong rank guess.
//! let cfg = RaConfig::ra_hosi_dt(0.05, &[2, 2, 2]).with_alpha(2.0);
//! let res = ra_hooi(&x, &cfg);
//! assert!(res.rel_error <= 0.05);
//! assert!(res.tucker.compression_ratio() > 10.0);
//!
//! // The identity ‖X − X̂‖² = ‖X‖² − ‖G‖² matches explicit reconstruction.
//! let direct = res.tucker.reconstruct().rel_error(&x);
//! assert!((direct - res.rel_error).abs() < 1e-9);
//! ```
//!
//! # Example: comparing the fixed-rank variants
//!
//! ```
//! use ratucker::prelude::*;
//!
//! let x = SyntheticSpec::new(&[16, 16, 16], &[4, 4, 4], 0.02, 7).build::<f32>();
//! let st = sthosvd(&x, &SthosvdTruncation::Ranks(vec![4, 4, 4]));
//! for cfg in [HooiConfig::hooi(), HooiConfig::hosi_dt()] {
//!     let res = ratucker::hooi(&x, &[4, 4, 4], &cfg.with_max_iters(2));
//!     // Random-init HOOI reaches STHOSVD-level error in two sweeps (§3.1).
//!     assert!(res.rel_error() < st.rel_error * 1.05 + 1e-6);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod core_analysis;
pub mod dist;
pub mod hooi;
pub mod llsv;
pub mod ra;
pub mod recover;
pub mod sthosvd;
pub mod synthetic;
pub mod timings;
pub mod tucker_tensor;

pub use checkpoint::{Checkpoint, CheckpointPolicy};
pub use core_analysis::{analyze_core, analyze_core_greedy, tucker_storage, CoreAnalysis};
pub use dist::AbftStats;
pub use hooi::{
    dimtree_schedule, hooi, hooi_with_init, DimTreeEvent, HooiConfig, HooiResult, LlsvStrategy,
    TtmStrategy,
};
pub use ra::{ra_hooi, ra_hooi_checkpointed, RaConfig, RaResult};
pub use recover::{dist_ra_hooi_resilient, RecoveryReport, ResilienceConfig, ResilientOutcome};
pub use sthosvd::{hosvd, sthosvd, sthosvd_randomized, SthosvdResult, SthosvdTruncation};
pub use synthetic::SyntheticSpec;
pub use timings::{Phase, Timings, ALL_PHASES};
pub use tucker_tensor::TuckerTensor;

/// Common imports.
pub mod prelude {
    pub use crate::checkpoint::CheckpointPolicy;
    pub use crate::hooi::{hooi, HooiConfig, LlsvStrategy, TtmStrategy};
    pub use crate::ra::{ra_hooi, ra_hooi_checkpointed, RaConfig};
    pub use crate::sthosvd::{sthosvd, SthosvdTruncation};
    pub use crate::synthetic::SyntheticSpec;
    pub use crate::timings::{Phase, Timings};
    pub use crate::tucker_tensor::TuckerTensor;
    pub use ratucker_dist::{set_overlap, OverlapMode};
}
